package pipesched_test

import (
	"encoding/binary"
	"math"
	"testing"

	"pipesched"
)

// floats decodes raw into float64s, 8 little-endian bytes each; the tail
// remainder is dropped.
func floats(raw []byte) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(raw[:8])))
		raw = raw[8:]
	}
	return out
}

// FuzzNewPipeline drives the pipeline constructor with arbitrary stage
// works and communication sizes: it must never panic, and accepted
// pipelines must honour their basic invariants.
func FuzzNewPipeline(f *testing.F) {
	le := func(vals ...float64) []byte {
		var raw []byte
		for _, v := range vals {
			raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(v))
		}
		return raw
	}
	f.Add(le(1, 2), le(1, 1, 1))               // valid 2-stage pipeline
	f.Add(le(120, 80, 250), le(10, 40, 40))    // deltas too short: rejected
	f.Add(le(0), le(0, 0))                     // zero work: rejected
	f.Add(le(math.NaN()), le(1, 1))            // NaN work: rejected
	f.Add(le(1), le(-1, 1))                    // negative delta: rejected
	f.Add([]byte{}, []byte{})                  // empty: rejected
	f.Add(le(math.MaxFloat64, 1), le(1, 1, 1)) // effectively-infinite work: rejected

	f.Fuzz(func(t *testing.T, worksRaw, deltasRaw []byte) {
		works := floats(worksRaw)
		deltas := floats(deltasRaw)
		app, err := pipesched.NewPipeline(works, deltas)
		if err != nil {
			if app != nil {
				t.Fatal("error with non-nil pipeline")
			}
			return
		}
		if app.Stages() != len(works) {
			t.Fatalf("Stages() = %d, built from %d works", app.Stages(), len(works))
		}
		if len(deltas) != len(works)+1 {
			t.Fatalf("accepted %d deltas for %d stages", len(deltas), len(works))
		}
		total := app.TotalWork()
		if math.IsNaN(total) || total <= 0 {
			t.Fatalf("TotalWork() = %v on an accepted pipeline", total)
		}
		// Mutating the input slices must not reach the pipeline.
		for i := range works {
			works[i] = -1
		}
		if app.TotalWork() != total {
			t.Fatal("pipeline aliases its input slice")
		}
		if app.String() == "" {
			t.Fatal("empty String()")
		}
	})
}

// FuzzNewMapping drives the mapping validator with arbitrary interval
// lists over a fuzzed instance shape: no panic, and accepted mappings must
// be fully evaluable.
func FuzzNewMapping(f *testing.F) {
	f.Add([]byte{4, 4}, []byte{1, 4, 1})          // one interval covering all 4 stages
	f.Add([]byte{3, 3}, []byte{1, 1, 1, 2, 3, 2}) // two intervals
	f.Add([]byte{2, 2}, []byte{1, 1, 1, 2, 2, 1}) // processor reused: rejected
	f.Add([]byte{4, 2}, []byte{1, 2, 1})          // stages 3..4 unmapped: rejected
	f.Add([]byte{1, 1}, []byte{})                 // no interval: rejected
	f.Add([]byte{1, 1}, []byte{1, 1, 9})          // processor out of range: rejected

	f.Fuzz(func(t *testing.T, shape, raw []byte) {
		if len(shape) < 2 {
			return
		}
		n := 1 + int(shape[0])%12
		p := 1 + int(shape[1])%12
		works := make([]float64, n)
		deltas := make([]float64, n+1)
		for i := range works {
			works[i] = float64(1 + i)
		}
		for i := range deltas {
			deltas[i] = float64(1 + i%3)
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + i%5)
		}
		app, err := pipesched.NewPipeline(works, deltas)
		if err != nil {
			t.Fatalf("harness pipeline invalid: %v", err)
		}
		plat, err := pipesched.NewPlatform(speeds, 10)
		if err != nil {
			t.Fatalf("harness platform invalid: %v", err)
		}
		var ivs []pipesched.Interval
		for len(raw) >= 3 {
			ivs = append(ivs, pipesched.Interval{
				Start: int(raw[0]),
				End:   int(raw[1]),
				Proc:  int(raw[2]),
			})
			raw = raw[3:]
		}
		m, err := pipesched.NewMapping(app, plat, ivs)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil mapping")
			}
			return
		}
		// An accepted mapping must cover every stage exactly once and
		// evaluate to finite positive metrics.
		ev := pipesched.NewEvaluator(app, plat)
		met := ev.Metrics(m)
		if math.IsNaN(met.Period) || met.Period <= 0 || math.IsNaN(met.Latency) || met.Latency <= 0 {
			t.Fatalf("accepted mapping %v has metrics %+v", m, met)
		}
		for k := 1; k <= n; k++ {
			if u := m.ProcessorOf(k); u < 1 || u > p {
				t.Fatalf("stage %d on processor %d outside [1..%d]", k, u, p)
			}
		}
	})
}
