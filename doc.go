// Package pipesched is a Go reproduction of "Multi-criteria scheduling of
// pipeline workflows" (Anne Benoit, Veronika Rehn-Sonigo, Yves Robert;
// INRIA RR-6232 / CLUSTER 2007).
//
// The library maps n-stage pipeline applications onto Communication
// Homogeneous platforms (different-speed processors, identical links,
// one-port model) under the paper's bi-criteria objective: minimise
// latency under a period bound, or minimise period under a latency bound.
// Both problems are NP-hard (the package executes the paper's
// NP-completeness reduction in pipesched/internal/nmwts); the six
// polynomial heuristics of the paper are provided, together with exact
// exponential reference solvers, a discrete-event simulator validating the
// analytic cost model, the chains-to-chains substrate, a one-to-one
// mapping baseline, and a harness regenerating every figure and table of
// the paper's evaluation.
//
// # Quick start
//
//	app, _ := pipesched.NewPipeline(
//		[]float64{120, 80, 250, 60},     // w_k: per-stage operations
//		[]float64{10, 40, 40, 20, 10})   // δ_k: inter-stage data sizes
//	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10) // speeds, bandwidth
//	ev := pipesched.NewEvaluator(app, plat)
//
//	res, err := pipesched.BestUnderPeriod(ev, 30) // latency-min mapping, period ≤ 30
//	if err != nil { ... }
//	fmt.Println(res.Mapping, res.Metrics.Period, res.Metrics.Latency)
//
// The cost model follows equations (1) and (2) of the paper: an interval
// of stages [d..e] on processor u has cycle-time δ_{d-1}/b + Σw_i/s_u +
// δ_e/b; the period is the largest cycle-time, and the latency sums the
// input and compute terms of all intervals plus the final output.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure and table.
package pipesched
