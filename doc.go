// Package pipesched is a Go reproduction of "Multi-criteria scheduling of
// pipeline workflows" (Anne Benoit, Veronika Rehn-Sonigo, Yves Robert;
// INRIA RR-6232 / CLUSTER 2007).
//
// The library maps n-stage pipeline applications onto Communication
// Homogeneous platforms (different-speed processors, identical links,
// one-port model) under the paper's bi-criteria objective: minimise
// latency under a period bound, or minimise period under a latency bound.
// Both problems are NP-hard (the package executes the paper's
// NP-completeness reduction in pipesched/internal/nmwts); the six
// polynomial heuristics of the paper are provided, together with exact
// exponential reference solvers, a discrete-event simulator validating the
// analytic cost model, the chains-to-chains substrate, a one-to-one
// mapping baseline, and a harness regenerating every figure and table of
// the paper's evaluation.
//
// # Quick start
//
//	app, _ := pipesched.NewPipeline(
//		[]float64{120, 80, 250, 60},     // w_k: per-stage operations
//		[]float64{10, 40, 40, 20, 10})   // δ_k: inter-stage data sizes
//	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10) // speeds, bandwidth
//	ev := pipesched.NewEvaluator(app, plat)
//
//	res, err := pipesched.BestUnderPeriod(ev, 30) // latency-min mapping, period ≤ 30
//	if err != nil { ... }
//	fmt.Println(res.Mapping, res.Metrics.Period, res.Metrics.Latency)
//
// The cost model follows equations (1) and (2) of the paper: an interval
// of stages [d..e] on processor u has cycle-time δ_{d-1}/b + Σw_i/s_u +
// δ_e/b; the period is the largest cycle-time, and the latency sums the
// input and compute terms of all intervals plus the final output.
//
// # Concurrency: portfolio and batch solving
//
// Both mapping problems are NP-hard, so at scale the library's value
// comes from throwing many solvers at many instances at once. All
// orchestration lives in a worker-pool layer (internal/portfolio) that
// keeps the solvers themselves deterministic and single-threaded; every
// concurrent entry point returns bit-identical results to its serial
// reference path, whatever the worker count.
//
//   - BestUnderPeriod and BestUnderLatency race their heuristics on
//     separate goroutines and select the winner with the original serial
//     tie-breaking rules.
//   - PortfolioUnderPeriod and PortfolioUnderLatency additionally race
//     the exact DP on ExactEligible platforms and name the winning
//     solver.
//   - SolveBatch solves a slice of WorkloadInstances across a bounded
//     pool (BatchOptions.Workers, default GOMAXPROCS) with per-instance
//     error capture, context cancellation, and a non-dominated
//     cross-instance frontier in the returned BatchReport.
//   - HeuristicParetoSweep runs one warm-started lane per heuristic over
//     the same pool (see the Performance chapter).
//
// For example:
//
//	batch := []pipesched.WorkloadInstance{...}
//	report, err := pipesched.SolveBatch(ctx, batch, pipesched.BatchOptions{
//		Objective:     pipesched.MinimizeLatency,
//		Bound:         1.5, RelativeBound: true, // 1.5 × each period lower bound
//		Exact:         true,                     // race the DP where it fits
//	})
//
// Evaluator, Pipeline, Platform and Mapping are immutable after
// construction and safe for concurrent use; the test-suite hammers one
// shared Evaluator from many workers under the race detector to keep that
// contract honest.
//
// # Performance: the zero-allocation heuristic engine
//
// The Section-4 heuristics H1–H6 share one interval-splitting engine
// that is allocation-free in steady state: its working set (interval
// list, cycle-times, fastest-first free list, δ/b tables) lives in a
// pooled scratch leased from the Evaluator, candidates are fixed-size
// values scored on reused buffers, splits splice in place, and the only
// heap work of a solve is materialising the returned Mapping (2
// allocations). H4 rewinds a single pooled engine through its bisection
// trials; the fully heterogeneous splitter scores whole trial mappings
// on scratch buffers via Evaluator.PeriodOf/LatencyOf. The pre-pooling
// engine survives as a frozen test oracle with property tests asserting
// the rebuilt engine matches it bit for bit — intervals, metrics and
// InfeasibleError payloads — across the paper's workload families under
// the race detector, and testing.AllocsPerRun regression tests cap the
// allocation counts of every heuristic, a portfolio race and a sweep
// point.
//
// Pareto sweeps are warm-started: each heuristic owns a lane that walks
// the sorted bound grid on one pooled engine. Period-constrained
// trajectories are target-independent (the bound only decides when to
// stop), so adjacent grid points extend one trajectory instead of
// recomputing its shared prefix; latency-constrained lanes track the
// smallest cap-rejected candidate latency and skip reruns whose outcome
// provably repeats; every lane stops at its heuristic's failure
// threshold. Per-point results are bit-identical to fresh runs, so
// frontiers are unchanged. BENCH_3 → BENCH_4: the portfolio race drops
// 937µs/1868 allocs → 421µs/20 allocs, one H2 solve 620µs/5272 allocs →
// 256µs/2 allocs, and the sweep benchmarks run 6–8× faster
// (HeuristicParetoSweep 11.3ms/105k allocs → 1.5ms/193 allocs).
//
// # Performance: the class-compressed exact engine
//
// The exact solvers run a speed-class-compressed dynamic program.
// Processors enter the cost model only through their speed, so
// equal-speed processors are interchangeable and the DP tracks per-class
// usage counts instead of a 2^p used-set bitmask: the state space is
// ∏(c_k+1) over the speed-class sizes c_k rather than 2^p. A homogeneous
// 14-processor platform collapses from 16384 states to 15, and platforms
// far beyond the historical 14-processor ceiling solve exactly whenever
// their class structure is small — a 100-processor platform with 2 speed
// classes of 50 is 2601 states. Eligibility (ExactEligible) admits any
// comm-homogeneous platform whose state space fits 2^16, so every
// platform of up to 16 processors qualifies unconditionally.
//
// The DP workspace is pooled: value tables, backpointers, per-class cycle
// tables and the candidate-bound set live in a sync.Pool arena, so
// repeated solves — portfolio races, batches, the daemon's cache-miss
// path — are allocation-free in steady state, and the bound-probing
// solvers (ExactMinPeriodUnderLatency, ExactParetoFront) reuse one arena
// and one sorted candidate set across all probes instead of re-deriving
// them per bound. The DP itself visits states outermost with its tables
// laid out for consecutive inner-loop reads, prunes cells below each
// state's processor-usage floor, and a pooled arena re-acquired for the
// evaluator it last served skips rebinding entirely — bit-identical to
// the row-major formulation, roughly halving ExactMinPeriod again after
// PR 3 (94µs → 45µs) and cutting the large few-class latency probe 7.5×.
//
// scripts/bench.sh snapshots the exact/heuristic/portfolio/serving
// benchmarks into BENCH_<pr>.json (ns/op, B/op, allocs/op per
// benchmark); CI uploads the file as an artifact on every run and
// scripts/bench_diff.sh compares two snapshots with crude regression
// thresholds (the advisory bench-diff CI job), so comparing commits is a
// diff of their BENCH_*.json. Tiny instances take a serial fallback
// inside the portfolio (goroutine fan-out costs more than it overlaps
// below ~256 stage×processor cells, and always on a single-core host),
// so the concurrent entry points never lose to the serial reference.
//
// # Serving: the solver service
//
// The serving layer (internal/service, packaged as cmd/pipeschedd) turns
// the solvers into a long-lived daemon: POST /v1/solve, /v1/batch and
// /v1/sweep accept JSON instances and route them through the portfolio
// engine under per-request contexts and deadlines, GET /healthz and
// /metrics expose liveness and counters. Requests are reduced to a
// canonical byte form and SHA-256 hashed into a bounded LRU result cache
// with singleflight deduplication: a repeated identical request is served
// from memory, and N concurrent identical requests trigger exactly one
// underlying solve. The X-Cache response header reports the disposition
// (miss, hit or collapsed).
//
// NewServer builds the service as an http.Handler for embedding;
// Serve runs the full lifecycle — listen, serve, drain gracefully when
// the context is cancelled:
//
//	srv := pipesched.NewServer(pipesched.ServerOptions{CacheEntries: 4096})
//	http.ListenAndServe(":8080", srv) // or: pipesched.Serve(ctx, ":8080", opts)
//
// # Fully heterogeneous serving
//
// Every endpoint accepts both platform kinds and dispatches by
// capability: comm-homogeneous instances race the paper's H1–H6 plus the
// exact DP where eligible, fully heterogeneous ones ({"kind":
// "fully-heterogeneous", "speeds": ..., "links": ...}) race the
// free-processor-choice lane — F1 (SplitFullyHet under a period bound)
// and F5/F6 (its latency-constrained variants). The capability check is
// a single shared gate (every heuristic implements Supports; the engine
// returns a typed ErrUnsupportedPlatform instead of panicking), so no
// servable request can reach a solver panic; a fuzz target pins this.
// Canonical cache keys cover the platform kind and every per-link
// bandwidth, so platforms differing in one link never share an entry.
// Mode "exact" remains comm-homogeneous-only: the DP's speed-class
// compression does not extend to per-link bandwidths.
//
// # Serving performance: the high-QPS hot path
//
// The serving path is built so that the steady state of heavy traffic —
// cache hits — does near-zero work beyond the unavoidable JSON decode:
//
//   - Sharded result cache. The LRU+singleflight cache is split across a
//     power-of-two number of shards selected by key bits (ServerOptions.
//     CacheShards; 0 picks one shard per core). Each shard owns its
//     mutex, LRU list and counters, so requests for distinct keys never
//     serialise on one lock; SHA-256 keys spread uniformly by
//     construction. Per shard the semantics are exactly the single-shard
//     implementation, which stays in the package as a property-test
//     oracle: randomized concurrent Get/Do/evict traffic must observe
//     identical hit/miss/collapse/eviction behaviour on both, and the
//     aggregate counters obey hits+misses+collapsed = calls.
//   - Pooled decode, hashing and render. Requests decode into pooled
//     wire structs whose float slices are reused across requests;
//     canonical hashing leases a pooled SHA-256 state and digests the
//     raw wire numbers, so no pipeline/platform object is built just to
//     ask the cache; responses render once through a pooled buffer and
//     are cached as finished bytes (trailing newline included) with an
//     exact Content-Length — a hit is one cache lookup and one Write.
//     Domain objects, evaluators and the solve itself exist only on the
//     miss path. Error bodies render through the same pooled path,
//     byte-identical to encoding/json (pinned by tests).
//   - Lock-free metrics. Each endpoint records into cache-line-padded
//     stripes of atomic moment accumulators plus a lock-free reservoir
//     ring; GET /metrics merges them at scrape time into mean/min/max/
//     stddev plus p50/p95/p99. Recording a request takes a handful of
//     atomics — no mutex, no map, no allocation.
//
// BENCH_4 → BENCH_5 on the same Xeon 2.10GHz (serving baselines measured
// on the PR-4 code with the same new end-to-end benchmarks): a cache-hit
// /v1/solve drops from 20.4µs and 80 allocs to ~12µs and 16 allocs (5×
// fewer allocations), cache-hit sweeps identically, and misses shed the
// old per-request canonicalizer and encoder overhead on top of the
// solve. The allocation budget is pinned by an AllocsPerRun regression
// test (cap 24 per cache-hit solve). Under RunParallel hit traffic the
// sharded cache overtakes the legacy single mutex as GOMAXPROCS grows
// (benchmarks in internal/service/cache, run with -cpu 1,4,8: Do-hit
// 66.8ns legacy vs 45.0ns sharded at -cpu 8; at GOMAXPROCS=1 — the
// committed BENCH_5.json snapshot — one shard is selected and only the
// router's few-ns overhead shows, there being nothing to parallelise).
//
// # Performance: the raw-speed floor
//
// Below the serving layer, the solve itself is floored on three axes,
// each pinned bit-identical to a retained serial oracle:
//
//   - Wave-parallel exact DP. The compressed DP's states group into
//     usage levels (processors consumed); every predecessor sits one
//     level down, so a level is a parallel wave. Above
//     exact.ParallelStateThreshold states (default 4096) the arena
//     splits each level across strided worker strata (capped at
//     GOMAXPROCS, max 8) behind a spin barrier; below it — and always
//     on a single-core host — the serial path runs unchanged. Both
//     schedules fill the same table cell by cell, so the choice is
//     invisible to callers. Tune the threshold from a single goroutine
//     only: raise it when platforms are small or cores scarce, lower
//     it toward ~1k on wide machines. exact.ReadStats (and the
//     /metrics Solver section) reports serial/parallel run counts,
//     strata and memo hits.
//   - Saturated-bound memo and feasibility prune. A latency run whose
//     period bound clears every interval cycle-time cannot reject a
//     candidate, so all such bounds share one table: the winning cell
//     is memoized per binding and the fill is skipped — the serving
//     path's "minimise latency, any period" shape hits this
//     constantly. Tight bounds instead precompute, per (class, end),
//     the first feasible interval start, and the DP inner loops skip
//     the infeasible prefix.
//   - Mid-race cancellation and the SoA batch lane. The portfolio race
//     publishes an atomic incumbent bound and cancels heuristics that
//     can no longer win; three race modes (serial reference,
//     sequential, concurrent) are pinned bit-identical under -race.
//     For /v1/batch, mapping.NewEvaluators shares one platform's
//     derived tables across a group and portfolio.SolveBatchGrouped
//     groups instances by platform; the service dedups wire-identical
//     platforms at decode time so batches arrive pointer-shared, and
//     pipeschedbench -batch drives the lane end to end.
//
// BENCH_8 → BENCH_9 on the snapshot machine: a cache-miss /v1/solve
// drops 83.6µs/90 allocs → 16.2µs/54, /v1/batch 65.5µs/252 allocs →
// ~35µs/23, and the portfolio race clears its 250µs target (~239µs).
// The snapshots run single-core, where the parallel gate folds every
// parallel path onto the serial one — parallel rows coinciding with
// serial is the gate's no-loss guarantee, and the wave-parallel
// speedup itself is only readable on a multi-core host.
//
// # Cluster serving: the peer-aware fleet
//
// internal/cluster scales the daemon horizontally. Started with
// -peers/-advertise (or a watched -peers-file), every canonical cache
// key gets an ordered replica set of -replicas owners (default 2),
// assigned by rendezvous hashing over the normalized peer list — no
// coordinator, no external store, and a membership change reassigns
// only the keys whose replica sets change. A local miss on a
// non-replica forwards the request to the first available replica
// (bounded by a forward timeout, loop-safe via a forward header); the
// replica's rendered bytes are relayed verbatim and installed locally
// as a second-tier hit, and the X-Cache header gains remote-hit,
// remote-miss, hedged-hit and fallback tiers.
//
// The failure semantics are explicit. Forwards are hedged: when the
// first replica has not answered within -hedge-after, the same forward
// races the next replica and the first usable response wins; the loser
// is cancelled, and cancellation never counts against its health. A
// failed attempt skips straight to the next replica. Peer health is
// capped exponential backoff with deterministic jitter — consecutive
// failures double the down window up to -peer-max-backoff, a completed
// exchange resets it, and consecutive 5xx responses mark a peer down
// just like transport failures. Only when every replica is down does
// the node fall back to a local solve: a dead or misbehaving peer is
// never a client-visible error, and with R>=2 a single death costs no
// cache coverage. Membership is dynamic: SIGHUP (or a -peers-watch
// poll) atomically swaps a new topology, and the node installs peer
// snapshot entries for keys it just became a replica for, so ownership
// changes hand off warm state. Joining nodes warm their cache the same
// way (GET /v1/peer/snapshot, a bounded length-prefixed format fuzzed
// nightly, as are the peers-file parser and reload ownership agreement)
// — a cold node is already correct, warm-up only makes it fast sooner.
// Solvers are deterministic and responses are canonical rendered bytes,
// so a fleet answers byte-identically to a single node whichever member
// serves and whatever faults its peers suffer — pinned by an in-process
// fleet-and-chaos harness under the race detector and by
// scripts/cluster_e2e.sh (the cluster-e2e CI job), which drives a
// verified stream through seeded chaos, a peer kill, a rolling restart,
// a SIGHUP membership shrink and a membership-churn phase (stale-view
// disagreement, seed-list join, partition of the joiner), requiring
// zero client-visible errors in every phase.
//
// # Self-healing: join, anti-entropy, disagreement detection
//
// The fleet grows and converges without a shared peers file. Seed-list
// join: a node started with -join (plus -advertise, replacing
// -peers/-peers-file) bootstraps its member list from any reachable
// seed URL (GET /v1/peer/members), merges itself in and announces the
// grown view to every member (POST /v1/peer/join); peers that missed
// the announce learn of the joiner from the gossip loop, which every
// -gossip-interval (default 10s) pulls one live peer's member list and
// merges it. Membership views are epoch-stamped with deterministic
// merge rules: a higher epoch wins wholesale (a SIGHUP reload bumps the
// epoch, so operator removals propagate), equal epochs union (two
// concurrent joins commute to the same view on every node), and a node
// never adopts a view that excludes itself — a foreign fleet or a stale
// decommission list is refused, counted, and left visible as a
// disagreement rather than silently obeyed.
//
// Replica anti-entropy heals drift that no membership change announces:
// a node restarted empty, a healed partition, an eviction racing a
// forward. Every -sync-interval (default 30s) each node pulls a bounded
// key digest from each live peer (GET /v1/peer/digest — the digest and
// membership codecs share the snapshot codec's bounded, fuzzed wire
// discipline) and fetches only the entries it replicates but does not
// hold (POST /v1/peer/fetch). A replica set with zero client traffic
// converges digest-equal within one round per direction; a missed round
// costs freshness, never correctness, because an unsynced key simply
// misses and forwards or solves.
//
// Disagreement is detected, not inferred: every peer exchange carries
// the sender's membership stamp (X-Pipesched-Membership, epoch plus a
// hash of the member list) in both directions, and each side counts
// stamps differing from its own. A converged fleet shows identical
// membership_epoch/membership_hash everywhere and flat
// membership_mismatches; a stale node is visible from both sides within
// one exchange. An unreachable peer is a health event, not a
// disagreement (a partitioned node moves no mismatch counters on the
// survivors), and an unstamped exchange (an older build) is ignored.
// The /metrics cluster section exposes membership_epoch,
// membership_hash, membership_mismatches, memberships_rejected,
// membership_age_seconds, converged_for_seconds and the
// gossip_exchanges / gossip_merges / joins_served / sync_rounds /
// sync_pulled loop counters.
//
// internal/faultinject supplies the chaos: seeded, scriptable fault
// schedules (latency, drops, synthesized 5xx, time windows, flapping
// duty cycles, per-host targeting) applied as an http.RoundTripper or a
// reverse proxy; cmd/chaosproxy packages the proxy so a fleet's peer
// traffic can cross a schedule while clients reach daemons directly.
// Injected failures always carry the X-Fault-Injected marker.
//
// cmd/pipeschedbench is the matching load generator: deterministic
// Zipf-skewed solve streams with atomic rate-setter arrival shaping
// (fixed or linearly ramped open-loop rates, or closed-loop), QPS /
// cache-tier / latency-percentile reporting, a -verify mode that
// byte-compares every fleet response against a reference daemon, a
// -chaos mode that injects scheduled faults into the load stream itself
// (counted separately, verified on a clean client), and -scenario
// scripts replaying multi-phase traffic shapes (scripts/scenarios/:
// diurnal cycle, flash crowd, rolling restart, membership churn). The
// façade mirrors the
// surface for embedding: NewClusterTopology builds the validated fleet
// view and ServerOptions.Cluster (a ServerClusterConfig) opts an
// embedded Server into peer-aware serving.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure and table.
package pipesched
