// Package pipesched is a Go reproduction of "Multi-criteria scheduling of
// pipeline workflows" (Anne Benoit, Veronika Rehn-Sonigo, Yves Robert;
// INRIA RR-6232 / CLUSTER 2007).
//
// The library maps n-stage pipeline applications onto Communication
// Homogeneous platforms (different-speed processors, identical links,
// one-port model) under the paper's bi-criteria objective: minimise
// latency under a period bound, or minimise period under a latency bound.
// Both problems are NP-hard (the package executes the paper's
// NP-completeness reduction in pipesched/internal/nmwts); the six
// polynomial heuristics of the paper are provided, together with exact
// exponential reference solvers, a discrete-event simulator validating the
// analytic cost model, the chains-to-chains substrate, a one-to-one
// mapping baseline, and a harness regenerating every figure and table of
// the paper's evaluation.
//
// # Quick start
//
//	app, _ := pipesched.NewPipeline(
//		[]float64{120, 80, 250, 60},     // w_k: per-stage operations
//		[]float64{10, 40, 40, 20, 10})   // δ_k: inter-stage data sizes
//	plat, _ := pipesched.NewPlatform([]float64{20, 14, 8, 5}, 10) // speeds, bandwidth
//	ev := pipesched.NewEvaluator(app, plat)
//
//	res, err := pipesched.BestUnderPeriod(ev, 30) // latency-min mapping, period ≤ 30
//	if err != nil { ... }
//	fmt.Println(res.Mapping, res.Metrics.Period, res.Metrics.Latency)
//
// The cost model follows equations (1) and (2) of the paper: an interval
// of stages [d..e] on processor u has cycle-time δ_{d-1}/b + Σw_i/s_u +
// δ_e/b; the period is the largest cycle-time, and the latency sums the
// input and compute terms of all intervals plus the final output.
//
// # Concurrency: portfolio and batch solving
//
// Both mapping problems are NP-hard, so at scale the library's value
// comes from throwing many solvers at many instances at once. All
// orchestration lives in a worker-pool layer (internal/portfolio) that
// keeps the solvers themselves deterministic and single-threaded; every
// concurrent entry point returns bit-identical results to its serial
// reference path, whatever the worker count.
//
//   - BestUnderPeriod and BestUnderLatency race their heuristics on
//     separate goroutines and select the winner with the original serial
//     tie-breaking rules.
//   - PortfolioUnderPeriod and PortfolioUnderLatency additionally race
//     the exact DP on ExactEligible platforms and name the winning
//     solver.
//   - SolveBatch solves a slice of WorkloadInstances across a bounded
//     pool (BatchOptions.Workers, default GOMAXPROCS) with per-instance
//     error capture, context cancellation, and a non-dominated
//     cross-instance frontier in the returned BatchReport.
//   - HeuristicParetoSweep fans its (grid point, heuristic) runs over the
//     same pool.
//
// For example:
//
//	batch := []pipesched.WorkloadInstance{...}
//	report, err := pipesched.SolveBatch(ctx, batch, pipesched.BatchOptions{
//		Objective:     pipesched.MinimizeLatency,
//		Bound:         1.5, RelativeBound: true, // 1.5 × each period lower bound
//		Exact:         true,                     // race the DP where it fits
//	})
//
// Evaluator, Pipeline, Platform and Mapping are immutable after
// construction and safe for concurrent use; the test-suite hammers one
// shared Evaluator from many workers under the race detector to keep that
// contract honest.
//
// # Performance: the class-compressed exact engine
//
// The exact solvers run a speed-class-compressed dynamic program.
// Processors enter the cost model only through their speed, so
// equal-speed processors are interchangeable and the DP tracks per-class
// usage counts instead of a 2^p used-set bitmask: the state space is
// ∏(c_k+1) over the speed-class sizes c_k rather than 2^p. A homogeneous
// 14-processor platform collapses from 16384 states to 15, and platforms
// far beyond the historical 14-processor ceiling solve exactly whenever
// their class structure is small — a 100-processor platform with 2 speed
// classes of 50 is 2601 states. Eligibility (ExactEligible) admits any
// comm-homogeneous platform whose state space fits 2^16, so every
// platform of up to 16 processors qualifies unconditionally.
//
// The DP workspace is pooled: value tables, backpointers, per-class cycle
// tables and the candidate-bound set live in a sync.Pool arena, so
// repeated solves — portfolio races, batches, the daemon's cache-miss
// path — are allocation-free in steady state, and the bound-probing
// solvers (ExactMinPeriodUnderLatency, ExactParetoFront) reuse one arena
// and one sorted candidate set across all probes instead of re-deriving
// them per bound.
//
// scripts/bench.sh snapshots the exact/portfolio benchmarks into
// BENCH_<pr>.json (ns/op, B/op, allocs/op per benchmark); CI uploads the
// file as an artifact on every run, so comparing two commits is a diff of
// their BENCH_*.json.
//
// # Serving: the solver service
//
// The serving layer (internal/service, packaged as cmd/pipeschedd) turns
// the solvers into a long-lived daemon: POST /v1/solve, /v1/batch and
// /v1/sweep accept JSON instances and route them through the portfolio
// engine under per-request contexts and deadlines, GET /healthz and
// /metrics expose liveness and counters. Requests are reduced to a
// canonical byte form and SHA-256 hashed into a bounded LRU result cache
// with singleflight deduplication: a repeated identical request is served
// from memory, and N concurrent identical requests trigger exactly one
// underlying solve. The X-Cache response header reports the disposition
// (miss, hit or collapsed).
//
// NewServer builds the service as an http.Handler for embedding;
// Serve runs the full lifecycle — listen, serve, drain gracefully when
// the context is cancelled:
//
//	srv := pipesched.NewServer(pipesched.ServerOptions{CacheEntries: 4096})
//	http.ListenAndServe(":8080", srv) // or: pipesched.Serve(ctx, ":8080", opts)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure and table.
package pipesched
