package pipesched_test

import (
	"math"
	"strings"
	"testing"

	"pipesched"
	"pipesched/internal/workload"
)

func TestHeuristicParetoSweepProperties(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: 12, Processors: 8, Seed: 21})
	ev := in.Evaluator()
	front := pipesched.HeuristicParetoSweep(ev, 12)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	// Sorted by period, strictly decreasing latency, mutually
	// non-dominated, all achievable (metrics re-evaluate).
	for i, pt := range front {
		if got := ev.Period(pt.Mapping); math.Abs(got-pt.Metrics.Period) > 1e-9*(1+got) {
			t.Errorf("point %d: period %g vs re-evaluated %g", i, pt.Metrics.Period, got)
		}
		if got := ev.Latency(pt.Mapping); math.Abs(got-pt.Metrics.Latency) > 1e-9*(1+got) {
			t.Errorf("point %d: latency %g vs re-evaluated %g", i, pt.Metrics.Latency, got)
		}
		if i == 0 {
			continue
		}
		if front[i].Metrics.Period < front[i-1].Metrics.Period {
			t.Errorf("frontier not sorted at %d", i)
		}
		if front[i].Metrics.Latency >= front[i-1].Metrics.Latency {
			t.Errorf("frontier latency not decreasing at %d", i)
		}
	}
	// The right end touches the optimal latency (the trivial bound makes
	// every heuristic return the single-processor mapping).
	_, optLat := pipesched.OptimalLatency(ev)
	if last := front[len(front)-1].Metrics.Latency; math.Abs(last-optLat) > 1e-9 {
		t.Errorf("frontier ends at latency %g, want optimal %g", last, optLat)
	}
}

func TestHeuristicSweepDominatedByExactFront(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 7, Processors: 5, Seed: 5})
	ev := in.Evaluator()
	heur := pipesched.HeuristicParetoSweep(ev, 10)
	exactFront, err := pipesched.ExactParetoFront(ev)
	if err != nil {
		t.Fatal(err)
	}
	// Every heuristic point must be weakly dominated by some exact point
	// (the exact front is the true lower envelope).
	for _, hp := range heur {
		dominated := false
		for _, ep := range exactFront {
			if ep.Metrics.Period <= hp.Metrics.Period*(1+1e-9) &&
				ep.Metrics.Latency <= hp.Metrics.Latency*(1+1e-9) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("heuristic point %+v below the exact front", hp.Metrics)
		}
	}
}

func TestHeuristicSweepLargePlatform(t *testing.T) {
	// The whole point of the heuristic sweep: p = 100 is far beyond the
	// exponential solvers.
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: 20, Processors: 100, Seed: 31})
	ev := in.Evaluator()
	front := pipesched.HeuristicParetoSweep(ev, 8)
	if len(front) < 2 {
		t.Fatalf("frontier too small on a large platform: %d points", len(front))
	}
}

func TestFormatTradeoff(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E4, Stages: 6, Processors: 5, Seed: 3})
	ev := in.Evaluator()
	out := pipesched.FormatTradeoff(pipesched.HeuristicParetoSweep(ev, 6))
	if !strings.Contains(out, "period") || !strings.Contains(out, "→P") {
		t.Errorf("FormatTradeoff output:\n%s", out)
	}
	if got := pipesched.FormatTradeoff(nil); !strings.Contains(got, "empty") {
		t.Errorf("empty frontier rendering %q", got)
	}
}

func TestSimulateTracedAndGantt(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 2})
	ev := in.Evaluator()
	res, err := pipesched.BestUnderPeriod(ev, pipesched.PeriodLowerBound(ev)*2.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pipesched.SimulateTraced(ev, res.Mapping, pipesched.SimulationOptions{DataSets: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	g := pipesched.Gantt(tr, 80, 0)
	if !strings.Contains(g, "legend") {
		t.Errorf("Gantt output:\n%s", g)
	}
}
