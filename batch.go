package pipesched

import (
	"context"
	"fmt"

	"pipesched/internal/portfolio"
)

// Concurrent portfolio and batch solving, built on internal/portfolio.
// The engine is pure orchestration: results are bit-identical to the
// serial reference path whatever the worker count.
type (
	// BatchOptions configure one SolveBatch run: objective, bound,
	// exact-solver participation and worker count.
	BatchOptions = portfolio.BatchOptions
	// BatchReport aggregates a batch: per-instance results in input
	// order plus the non-dominated cross-instance frontier.
	BatchReport = portfolio.BatchReport
	// InstanceResult is the outcome of one batch element (resolved
	// bound, winning solver and mapping, or the per-instance error).
	InstanceResult = portfolio.InstanceResult
	// FrontPoint is one entry of a batch's non-dominated frontier.
	FrontPoint = portfolio.FrontPoint
	// PortfolioOutcome is the winner of a portfolio race: the result
	// plus the identifier of the solver that produced it.
	PortfolioOutcome = portfolio.Outcome
	// BatchObjective selects which constrained problem a batch solves.
	BatchObjective = portfolio.Objective
)

// The two batch objectives.
const (
	// MinimizeLatency minimises latency under a period bound (H1–H4
	// plus the exact DP when enabled).
	MinimizeLatency = portfolio.MinimizeLatency
	// MinimizePeriod minimises period under a latency bound (H5–H6
	// plus the exact DP when enabled).
	MinimizePeriod = portfolio.MinimizePeriod
)

// SolveBatch solves every instance under opts across a bounded worker pool
// (opts.Workers goroutines, default GOMAXPROCS) and returns one result per
// instance plus the batch-level non-dominated frontier. One instance's
// failure never aborts the batch. Cancelling ctx stops the batch promptly;
// instances that never started carry the cancellation error.
func SolveBatch(ctx context.Context, instances []WorkloadInstance, opts BatchOptions) (BatchReport, error) {
	return portfolio.SolveBatch(ctx, instances, opts)
}

// PortfolioUnderPeriod races all four period-constrained heuristics plus
// the exact DP (on ExactEligible platforms — keyed on the speed-class
// structure, not the processor count) and returns the best feasible
// outcome — smallest latency, ties broken on period — as soon as the
// whole portfolio drains. The outcome names the winning solver
// ("H1".."H4" or "DP").
func PortfolioUnderPeriod(ctx context.Context, ev *Evaluator, maxPeriod float64) (PortfolioOutcome, error) {
	out, found, closest := portfolio.UnderPeriod(ctx, ev, maxPeriod, portfolio.SolveOptions{Exact: true})
	if !found {
		return PortfolioOutcome{}, fmt.Errorf("pipesched: no portfolio solver reached period ≤ %g: %w", maxPeriod, closest)
	}
	return out, nil
}

// PortfolioUnderLatency races both latency-constrained heuristics plus the
// exact DP (on ExactEligible platforms) and returns the best feasible
// outcome — smallest period.
func PortfolioUnderLatency(ctx context.Context, ev *Evaluator, maxLatency float64) (PortfolioOutcome, error) {
	out, found, closest := portfolio.UnderLatency(ctx, ev, maxLatency, portfolio.SolveOptions{Exact: true})
	if !found {
		return PortfolioOutcome{}, fmt.Errorf("pipesched: no portfolio solver reached latency ≤ %g: %w", maxLatency, closest)
	}
	return out, nil
}
