// Command chaosproxy fronts one pipeschedd daemon with a fault-injecting
// reverse proxy driven by a seeded schedule (internal/faultinject).
// Advertise the proxy's URL in a fleet's peers file and every
// peer-to-peer exchange with that node — forwards, hedges, snapshot
// pulls — crosses the fault schedule, while clients and health checks
// can still reach the daemon directly on its own port. That split is
// what lets scripts/cluster_e2e.sh inject latency, drops, flapping and
// 5xx bursts into the fleet's internal traffic and still assert that
// client-visible responses stay byte-identical to a clean reference.
//
// Injected failures are always marked: synthesized responses and
// injected-drop 502s carry the X-Fault-Injected header, so a harness can
// tell scheduled faults from real ones.
//
// Example:
//
//	chaosproxy -listen 127.0.0.1:7102 -target http://127.0.0.1:7002 \
//	    -schedule chaos.json
//
// Exit codes follow the shared contract: 2 on misuse, 1 on runtime
// failure. The proxy serves until SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pipesched/internal/cli"
	"pipesched/internal/faultinject"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and exit code, for tests.
func realMain(args []string, out, errOut io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return cli.ExitCode("chaosproxy", run(ctx, args, out, errOut), errOut)
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("chaosproxy", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "address the chaos proxy listens on")
		target   = fs.String("target", "", "base URL of the daemon to front (required)")
		schedule = fs.String("schedule", "", "fault schedule JSON file (empty = pass everything through)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *target == "" {
		return cli.Usagef("-target is required")
	}
	sched := &faultinject.Schedule{}
	if *schedule != "" {
		var err error
		if sched, err = faultinject.LoadSchedule(*schedule); err != nil {
			return cli.Usagef("%v", err)
		}
	}
	proxy, err := faultinject.NewProxy(*target, sched)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// Printed first so wrappers can scrape the resolved port, matching
	// the pipeschedd convention.
	fmt.Fprintf(out, "chaosproxy: listening on %s -> %s\n", ln.Addr(), *target)
	srv := &http.Server{Handler: proxy}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		srv.Close()
		<-done
		st := proxy.Stats()
		fmt.Fprintf(out, "chaosproxy: %d requests (%d passed, %d delayed, %d dropped, %d statuses)\n",
			st.Requests, st.Passed, st.Delayed, st.Dropped, st.Statuses)
		return nil
	case err := <-done:
		return err
	}
}
