package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pipesched/internal/workload"
)

func TestGenerateToDirectory(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-family", "E2", "-stages", "6", "-procs", "4", "-seed", "10", "-count", "3", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d files, want 3", len(entries))
	}
	// Every file parses back into a valid instance with the right shape.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var in workload.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if in.App.Stages() != 6 || in.Plat.Processors() != 4 {
			t.Errorf("%s: %d stages, %d processors", e.Name(), in.App.Stages(), in.Plat.Processors())
		}
	}
}

func TestGenerateDeterministicFiles(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		if err := run([]string{"-family", "E1", "-stages", "4", "-procs", "3", "-seed", "5", "-count", "1", "-out", dir}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	dataA, err := os.ReadFile(filepath.Join(dirA, a[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := os.ReadFile(filepath.Join(dirB, a[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(dataA) != string(dataB) {
		t.Error("same seed produced different files")
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-family", "E9"},
		{"-count", "0"},
		{"-count", "2"}, // multi-count without -out
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
