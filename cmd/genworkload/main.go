// Command genworkload emits random application/platform instances from
// the paper's experiment families (Section 5.1) as JSON, for use with the
// pipesched command or external tooling.
//
// Examples:
//
//	genworkload -family E2 -stages 20 -procs 10 -seed 3 > instance.json
//	genworkload -family E4 -stages 40 -procs 100 -count 5 -out dir/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pipesched/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "genworkload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("genworkload", flag.ContinueOnError)
	var (
		family = fs.String("family", "E1", "workload family E1..E4")
		stages = fs.Int("stages", 10, "pipeline stages")
		procs  = fs.Int("procs", 10, "platform processors")
		seed   = fs.Int64("seed", 1, "base seed")
		count  = fs.Int("count", 1, "number of instances (seeds seed..seed+count-1)")
		outDir = fs.String("out", "", "output directory (default: single instance to stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fam workload.Family
	found := false
	for _, f := range workload.Families() {
		if strings.EqualFold(f.String(), *family) {
			fam, found = f, true
		}
	}
	if !found {
		return fmt.Errorf("unknown family %q (want E1..E4)", *family)
	}
	if *count < 1 {
		return fmt.Errorf("count %d < 1", *count)
	}
	if *count > 1 && *outDir == "" {
		return fmt.Errorf("-count > 1 requires -out DIR")
	}
	for i := 0; i < *count; i++ {
		in := workload.Generate(workload.Config{
			Family: fam, Stages: *stages, Processors: *procs, Seed: *seed + int64(i),
		})
		data, err := json.MarshalIndent(in, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *outDir == "" {
			_, err = os.Stdout.Write(data)
		} else {
			if err = os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("%s_n%d_p%d_seed%d.json", fam, *stages, *procs, *seed+int64(i))
			err = os.WriteFile(filepath.Join(*outDir, name), data, 0o644)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
