package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"pipesched/internal/workload"
)

func TestDaemonPeerFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"peers-without-advertise", []string{"-peers", "http://a:1,http://b:2"}},
		{"advertise-without-peers", []string{"-advertise", "http://a:1"}},
		{"advertise-not-in-peers", []string{"-peers", "http://a:1,http://b:2", "-advertise", "http://c:3"}},
		{"duplicate-peer", []string{"-peers", "http://a:1,http://a:1", "-advertise", "http://a:1"}},
		{"bad-peer-url", []string{"-peers", "ftp://a:1", "-advertise", "ftp://a:1"}},
		{"zero-peer-timeout", []string{"-peer-timeout", "0s"}},
		{"negative-peer-backoff", []string{"-peer-backoff", "-1s"}},
		{"peers-and-peers-file", []string{"-peers", "http://a:1", "-peers-file", "x", "-advertise", "http://a:1"}},
		{"watch-without-file", []string{"-peers", "http://a:1,http://b:2", "-advertise", "http://a:1", "-peers-watch", "1s"}},
		{"negative-replicas", []string{"-peers", "http://a:1,http://b:2", "-advertise", "http://a:1", "-replicas", "-1"}},
		{"missing-peers-file", []string{"-peers-file", "/nonexistent/peers.txt", "-advertise", "http://a:1"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != 2 {
				t.Fatalf("exit code %d, want 2\nstderr: %s", got, errOut.String())
			}
			if !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("usage-class failure printed no usage hint:\n%s", errOut.String())
			}
		})
	}
}

// reservePort grabs an ephemeral loopback port and releases it, so two
// daemons can be given each other's addresses before either listens.
// The tiny window between Close and the daemon's own Listen is benign:
// loopback ephemeral ports are not reused that fast.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonFleetForwards boots a real 2-daemon fleet through the full
// flag surface and checks the peer wiring end to end: both nodes serve
// the same bytes for the same request, the non-owner's first touch takes
// a peer tier, and /metrics grows a cluster section.
func TestDaemonFleetForwards(t *testing.T) {
	addrA, addrB := reservePort(t), reservePort(t)
	fleet := fmt.Sprintf("http://%s,http://%s", addrA, addrB)

	var shutdowns []func() error
	for _, addr := range []string{addrA, addrB} {
		// -replicas 1: in a two-node fleet the default R=2 puts self in
		// every key's replica set, and this test is about the forward
		// wiring.
		_, shutdown := startDaemon(t,
			"-addr", addr,
			"-peers", fleet,
			"-advertise", "http://"+addr,
			"-replicas", "1",
			"-peer-timeout", "500ms",
			"-peer-backoff", "200ms",
			"-no-warmup",
		)
		shutdowns = append(shutdowns, shutdown)
	}
	defer func() {
		for _, s := range shutdowns {
			if err := s(); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}
	}()
	baseA, baseB := "http://"+addrA, "http://"+addrB

	// Walk seeds until one lands a peer tier on node A: that request was
	// owned by node B and proxied.
	sawPeerTier := ""
	var body []byte
	for seed := int64(0); seed < 24 && sawPeerTier == ""; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
		b, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(baseA+"/v1/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		switch tier := resp.Header.Get("X-Cache"); tier {
		case "remote-miss", "remote-hit":
			sawPeerTier, body = tier, b
		case "miss", "fallback":
			// self-owned, or B still coming up; try the next seed
		default:
			t.Fatalf("seed %d: unexpected tier %q", seed, tier)
		}
	}
	if sawPeerTier == "" {
		t.Fatal("no request was forwarded in 24 seeds")
	}

	// Both daemons must serve identical bytes for the forwarded request.
	var bodies [][]byte
	for _, base := range []string{baseA, baseB} {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", base, resp.StatusCode)
		}
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("daemons disagree on the same request:\n%s\nvs\n%s", bodies[0], bodies[1])
	}

	// The metrics surface carries the cluster section.
	resp, err := http.Get(baseA + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cluster *struct {
			Peers     int    `json:"peers"`
			Forwarded uint64 `json:"forwarded"`
		} `json:"cluster"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil || snap.Cluster.Peers != 2 {
		t.Fatalf("metrics cluster section: %+v", snap.Cluster)
	}
	if snap.Cluster.Forwarded == 0 {
		t.Fatal("forward not reflected in metrics")
	}
}

// TestDaemonPeersFileReload drives dynamic membership through the full
// daemon surface: two daemons share a -peers-file and watch it at a
// short poll interval; appending a third member must swap both onto the
// 3-peer topology without a restart, and the reload must be visible in
// /metrics. The new member never comes up — its snapshot pull failing is
// exactly the degraded-handoff path a real join races against, and it
// must not block the swap.
func TestDaemonPeersFileReload(t *testing.T) {
	addrA, addrB, addrC := reservePort(t), reservePort(t), reservePort(t)
	peersPath := t.TempDir() + "/peers.txt"
	writePeers := func(addrs ...string) {
		var b strings.Builder
		b.WriteString("# fleet members\n")
		for _, a := range addrs {
			b.WriteString("http://" + a + "\n")
		}
		if err := os.WriteFile(peersPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers(addrA, addrB)

	var shutdowns []func() error
	for _, addr := range []string{addrA, addrB} {
		_, shutdown := startDaemon(t,
			"-addr", addr,
			"-peers-file", peersPath,
			"-peers-watch", "50ms",
			"-advertise", "http://"+addr,
			"-peer-timeout", "500ms",
			"-peer-backoff", "200ms",
			"-no-warmup",
		)
		shutdowns = append(shutdowns, shutdown)
	}
	defer func() {
		for _, s := range shutdowns {
			if err := s(); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}
	}()

	clusterSnap := func(base string) (peers int, reloads uint64) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Cluster *struct {
				Peers   int    `json:"peers"`
				Reloads uint64 `json:"reloads"`
			} `json:"cluster"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Cluster == nil {
			t.Fatal("metrics carry no cluster section")
		}
		return snap.Cluster.Peers, snap.Cluster.Reloads
	}
	baseA, baseB := "http://"+addrA, "http://"+addrB
	if peers, reloads := clusterSnap(baseA); peers != 2 || reloads != 0 {
		t.Fatalf("before reload: peers=%d reloads=%d, want 2/0", peers, reloads)
	}

	// mtime granularity can swallow a rewrite that lands in the same
	// instant the file was created; a short sleep keeps the stamp distinct.
	time.Sleep(20 * time.Millisecond)
	writePeers(addrA, addrB, addrC)

	deadline := time.Now().Add(5 * time.Second)
	for _, base := range []string{baseA, baseB} {
		for {
			peers, reloads := clusterSnap(base)
			if peers == 3 && reloads == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never picked up the peers-file change: peers=%d reloads=%d", base, peers, reloads)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// The grown fleet must still serve: solve one instance on each live
	// node and require identical bytes (the absent third member only ever
	// costs a failed forward attempt, never an error).
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 3})
	body, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	for _, base := range []string{baseA, baseB} {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d after reload: %s", base, resp.StatusCode, buf.String())
		}
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("post-reload daemons disagree:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}
