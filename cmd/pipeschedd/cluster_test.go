package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"

	"pipesched/internal/workload"
)

func TestDaemonPeerFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"peers-without-advertise", []string{"-peers", "http://a:1,http://b:2"}},
		{"advertise-without-peers", []string{"-advertise", "http://a:1"}},
		{"advertise-not-in-peers", []string{"-peers", "http://a:1,http://b:2", "-advertise", "http://c:3"}},
		{"duplicate-peer", []string{"-peers", "http://a:1,http://a:1", "-advertise", "http://a:1"}},
		{"bad-peer-url", []string{"-peers", "ftp://a:1", "-advertise", "ftp://a:1"}},
		{"zero-peer-timeout", []string{"-peer-timeout", "0s"}},
		{"negative-peer-backoff", []string{"-peer-backoff", "-1s"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != 2 {
				t.Fatalf("exit code %d, want 2\nstderr: %s", got, errOut.String())
			}
			if !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("usage-class failure printed no usage hint:\n%s", errOut.String())
			}
		})
	}
}

// reservePort grabs an ephemeral loopback port and releases it, so two
// daemons can be given each other's addresses before either listens.
// The tiny window between Close and the daemon's own Listen is benign:
// loopback ephemeral ports are not reused that fast.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonFleetForwards boots a real 2-daemon fleet through the full
// flag surface and checks the peer wiring end to end: both nodes serve
// the same bytes for the same request, the non-owner's first touch takes
// a peer tier, and /metrics grows a cluster section.
func TestDaemonFleetForwards(t *testing.T) {
	addrA, addrB := reservePort(t), reservePort(t)
	fleet := fmt.Sprintf("http://%s,http://%s", addrA, addrB)

	var shutdowns []func() error
	for _, addr := range []string{addrA, addrB} {
		_, shutdown := startDaemon(t,
			"-addr", addr,
			"-peers", fleet,
			"-advertise", "http://"+addr,
			"-peer-timeout", "500ms",
			"-peer-backoff", "200ms",
			"-no-warmup",
		)
		shutdowns = append(shutdowns, shutdown)
	}
	defer func() {
		for _, s := range shutdowns {
			if err := s(); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}
	}()
	baseA, baseB := "http://"+addrA, "http://"+addrB

	// Walk seeds until one lands a peer tier on node A: that request was
	// owned by node B and proxied.
	sawPeerTier := ""
	var body []byte
	for seed := int64(0); seed < 24 && sawPeerTier == ""; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
		b, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(baseA+"/v1/solve", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		switch tier := resp.Header.Get("X-Cache"); tier {
		case "remote-miss", "remote-hit":
			sawPeerTier, body = tier, b
		case "miss", "fallback":
			// self-owned, or B still coming up; try the next seed
		default:
			t.Fatalf("seed %d: unexpected tier %q", seed, tier)
		}
	}
	if sawPeerTier == "" {
		t.Fatal("no request was forwarded in 24 seeds")
	}

	// Both daemons must serve identical bytes for the forwarded request.
	var bodies [][]byte
	for _, base := range []string{baseA, baseB} {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", base, resp.StatusCode)
		}
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("daemons disagree on the same request:\n%s\nvs\n%s", bodies[0], bodies[1])
	}

	// The metrics surface carries the cluster section.
	resp, err := http.Get(baseA + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cluster *struct {
			Peers     int    `json:"peers"`
			Forwarded uint64 `json:"forwarded"`
		} `json:"cluster"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil || snap.Cluster.Peers != 2 {
		t.Fatalf("metrics cluster section: %+v", snap.Cluster)
	}
	if snap.Cluster.Forwarded == 0 {
		t.Fatal("forward not reflected in metrics")
	}
}
