// Command pipeschedd is the solver service daemon: a long-lived HTTP
// process exposing the paper's heuristics, the exact DP and the
// concurrent portfolio/batch engine over a JSON API, with a sharded
// canonical-instance result cache and singleflight deduplication so that
// repeat and concurrent-identical traffic costs one solve and cache hits
// scale with cores (-cache-shards tunes the shard count; the default is
// one power-of-two shard per core).
//
// Endpoints:
//
//	POST /v1/solve   {"pipeline": ..., "platform": ..., "bound": P,
//	                  "objective": "min-latency"|"min-period",
//	                  "mode": "portfolio"|"best"|"exact"|"H1".."H6"|"F1"|"F5"|"F6",
//	                  "timeout_ms": N}
//	POST /v1/batch   {"instances": [...], "bound": B, "relative_bound": bool,
//	                  "exact": bool, "workers": N}
//	POST /v1/sweep   {"pipeline": ..., "platform": ..., "points": N}
//	GET  /healthz    liveness probe
//	GET  /metrics    cache hit rate, in-flight gauge, per-endpoint latencies
//
// Platforms may be comm-homogeneous ({"speeds": [...], "bandwidth": b},
// the default kind) or fully heterogeneous ({"kind":
// "fully-heterogeneous", "speeds": [...], "links": [[...], ...]}); the
// solver lane is chosen by kind — the paper's H1–H6 and the exact DP on
// the former, the free-processor-choice F1/F5/F6 heuristics on the
// latter. Mode "exact" requires a comm-homogeneous platform.
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get -drain-timeout to finish.
//
// The peer flags opt the daemon into a fleet sharing one replicated
// result-cache tier (see internal/cluster for the failure semantics):
//
//	-peers URLS           static fleet: comma-separated base URLs
//	-peers-file PATH      dynamic fleet: URLs from a file (one per line,
//	                      #-comments), reloaded on SIGHUP with
//	                      snapshot-driven key handoff
//	-peers-watch DUR      also poll -peers-file for changes (0 = SIGHUP only)
//	-join URLS            self-healing fleet: bootstrap the member list
//	                      from any reachable seed URL, announce this node,
//	                      and let gossip propagate the join (no peers file
//	                      anywhere; excludes -peers/-peers-file)
//	-advertise URL        this node's own entry in the peer list (required)
//	-replicas N           replica owners per key (default 2); a miss
//	                      forwards to the first available replica
//	-peer-timeout DUR     per-forward deadline (default 2s)
//	-hedge-after DUR      race the next replica when the first has not
//	                      answered within this delay (default
//	                      peer-timeout/4; negative disables hedging)
//	-peer-backoff DUR     initial down window after a failed or 5xx
//	                      exchange (default 5s)
//	-peer-max-backoff DUR cap for the exponential down window (default 60s)
//	-snapshot-entries N   cap per snapshot pull (default 1024)
//	-no-warmup            skip the background warm-up on boot
//	-gossip-interval DUR  membership exchange with one live peer per tick
//	                      (default 10s; 0 disables gossip)
//	-sync-interval DUR    replica anti-entropy round: pull peer cache
//	                      digests, fetch missing owned entries (default
//	                      30s; 0 disables sync)
//
// Example 3-node fleet member:
//
//	pipeschedd -addr :8080 -advertise http://10.0.0.1:8080 \
//	    -peers-file /etc/pipesched/peers.txt -peers-watch 30s
//
// Example self-healing join (no peers file on the new host):
//
//	pipeschedd -addr :8080 -advertise http://10.0.0.4:8080 \
//	    -join http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Profiling is opt-in: -pprof ADDR exposes net/http/pprof on a separate
// listener (never on the service port), so production deployments can
// attach a profiler on localhost without exposing /debug to API clients:
//
//	pipeschedd -addr :8080 -pprof 127.0.0.1:6060
//
// Example:
//
//	pipeschedd -addr :8080 -cache-entries 4096 -request-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pipesched/internal/cli"
	"pipesched/internal/cluster"
	"pipesched/internal/service"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and exit code, for tests.
// Exit codes follow the shared internal/cli contract: misuse exits 2
// with a usage pointer, runtime failures exit 1.
func realMain(args []string, out, errOut io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return cli.ExitCode("pipeschedd", run(ctx, args, out, errOut), errOut)
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pipeschedd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr           = fs.String("addr", ":8080", "listen address")
		cacheEntries   = fs.Int("cache-entries", 0, "result cache bound in entries (0 = default 1024, negative = disable storage)")
		cacheShards    = fs.Int("cache-shards", 0, "result cache shard count, rounded up to a power of two (0 = one shard per core, negative = single shard)")
		workers        = fs.Int("workers", 0, "batch worker pool cap (0 = GOMAXPROCS)")
		requestTimeout = fs.Duration("request-timeout", 0, "server-side deadline per request (0 = none; requests may still set timeout_ms)")
		drainTimeout   = fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown wait for in-flight requests")
		maxBody        = fs.Int64("max-body-bytes", 0, "request body limit in bytes (0 = default 8 MiB)")
		quiet          = fs.Bool("quiet", false, "suppress the serving log")
		pprofAddr      = fs.String("pprof", "", "expose net/http/pprof on this separate address (empty = disabled)")
		peers          = fs.String("peers", "", "comma-separated base URLs of the whole fleet, this node included (empty = single-node)")
		peersFile      = fs.String("peers-file", "", "file holding the fleet's base URLs (one per line, #-comments); reloaded on SIGHUP, enables dynamic membership")
		advertise      = fs.String("advertise", "", "this node's base URL as it appears in the peer list (required with -peers/-peers-file)")
		replicas       = fs.Int("replicas", 0, "replica owners per key; a miss forwards to the first available replica (0 = default 2)")
		peerTimeout    = fs.Duration("peer-timeout", cluster.DefaultForwardTimeout, "replica-forward round-trip bound; a slower peer is marked down and the solve runs locally")
		hedgeAfter     = fs.Duration("hedge-after", 0, "fire the same forward at the next replica when the first has not answered within this delay (0 = peer-timeout/4, negative = no hedging)")
		peerBackoff    = fs.Duration("peer-backoff", cluster.DefaultBackoff, "base down window after a peer failure; consecutive failures back off exponentially up to -peer-max-backoff")
		peerMaxBackoff = fs.Duration("peer-max-backoff", cluster.DefaultMaxBackoff, "cap on the exponential peer down window")
		snapshotMax    = fs.Int("snapshot-entries", 0, "hot cache entries served to (and accepted from) each peer at warm-up and handoff (0 = default 1024)")
		noWarmup       = fs.Bool("no-warmup", false, "skip the background cache warm-up from peers at start")
		peersWatch     = fs.Duration("peers-watch", 0, "poll -peers-file for changes at this interval and reload without a signal (0 = SIGHUP only)")
		join           = fs.String("join", "", "comma-separated seed URLs: bootstrap the member list from any reachable one, announce this node, and join the fleet (requires -advertise; excludes -peers/-peers-file)")
		gossipInterval = fs.Duration("gossip-interval", 10*time.Second, "membership gossip tick: pull one live peer's member list and merge (0 = disabled)")
		syncInterval   = fs.Duration("sync-interval", 30*time.Second, "replica anti-entropy tick: pull peer cache digests and fetch missing owned entries (0 = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *drainTimeout < 0 || *requestTimeout < 0 {
		return cli.Usagef("timeouts must be non-negative")
	}
	if *peerTimeout <= 0 || *peerBackoff <= 0 || *peerMaxBackoff <= 0 {
		return cli.Usagef("peer timeouts must be positive")
	}
	if *replicas < 0 {
		return cli.Usagef("-replicas must be non-negative")
	}
	if *peers != "" && *peersFile != "" {
		return cli.Usagef("-peers and -peers-file are mutually exclusive")
	}
	if *join != "" && (*peers != "" || *peersFile != "") {
		return cli.Usagef("-join and -peers/-peers-file are mutually exclusive (a joining node learns the fleet from its seeds)")
	}
	if *peersWatch < 0 {
		return cli.Usagef("-peers-watch must be non-negative")
	}
	if *peersWatch > 0 && *peersFile == "" {
		return cli.Usagef("-peers-watch requires -peers-file")
	}
	if *gossipInterval < 0 || *syncInterval < 0 {
		return cli.Usagef("-gossip-interval and -sync-interval must be non-negative")
	}
	peerList := strings.Split(*peers, ",")
	if *peersFile != "" {
		data, err := os.ReadFile(*peersFile)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		peerList = cluster.ParsePeersFile(data)
	}
	var clusterCfg *service.ClusterConfig
	switch {
	case *join != "":
		if *advertise == "" {
			return cli.Usagef("-join requires -advertise")
		}
		m, err := bootstrapJoin(ctx, strings.Split(*join, ","), *advertise, *peerTimeout)
		if err != nil {
			return fmt.Errorf("join: %w", err)
		}
		topo, err := cluster.NewTopology(m.Peers, *advertise)
		if err != nil {
			return fmt.Errorf("join: %w", err)
		}
		clusterCfg = &service.ClusterConfig{
			Topology:        topo,
			Epoch:           m.Epoch,
			Replicas:        *replicas,
			ForwardTimeout:  *peerTimeout,
			HedgeAfter:      *hedgeAfter,
			PeerBackoff:     *peerBackoff,
			MaxPeerBackoff:  *peerMaxBackoff,
			SnapshotEntries: *snapshotMax,
		}
	case *peers != "" || *peersFile != "":
		if *advertise == "" {
			return cli.Usagef("-peers/-peers-file requires -advertise")
		}
		topo, err := cluster.NewTopology(peerList, *advertise)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		clusterCfg = &service.ClusterConfig{
			Topology:        topo,
			Replicas:        *replicas,
			ForwardTimeout:  *peerTimeout,
			HedgeAfter:      *hedgeAfter,
			PeerBackoff:     *peerBackoff,
			MaxPeerBackoff:  *peerMaxBackoff,
			SnapshotEntries: *snapshotMax,
		}
	case *advertise != "":
		return cli.Usagef("-advertise requires -peers, -peers-file or -join")
	}

	logger := log.New(out, "", log.LstdFlags)
	if *quiet {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Printed unconditionally (and first) so wrappers can scrape the
	// resolved port when -addr ends in :0.
	fmt.Fprintf(out, "pipeschedd: listening on %s\n", ln.Addr())
	if *pprofAddr != "" {
		stopProf, err := servePprof(*pprofAddr, out)
		if err != nil {
			ln.Close()
			return err
		}
		defer stopProf()
	}
	srv := service.New(service.Options{
		CacheEntries:   *cacheEntries,
		CacheShards:    *cacheShards,
		Workers:        *workers,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
		Cluster:        clusterCfg,
	})
	if clusterCfg != nil && !*noWarmup {
		// Warm-up runs in the background while the listener is already
		// serving: a cold node is correct (it misses and forwards or
		// solves), warm-up only makes it fast sooner. Bounded so a
		// wedged peer cannot pin the goroutine forever.
		go func() {
			wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			n, err := srv.WarmFromPeers(wctx)
			if err != nil {
				logger.Printf("pipeschedd: warm-up incomplete (%d entries imported): %v", n, err)
				return
			}
			logger.Printf("pipeschedd: warm-up imported %d entries", n)
		}()
	}
	if clusterCfg != nil && *peersFile != "" {
		go watchPeersFile(ctx, srv, logger, *peersFile, *advertise, *peersWatch)
	}
	if clusterCfg != nil {
		if *join != "" {
			// Announce after the listener is up, so the peers that learn
			// about us can immediately exchange with us. Failures are
			// non-fatal: the gossip tick is the backstop.
			go func() {
				actx, cancel := context.WithTimeout(ctx, 30*time.Second)
				defer cancel()
				if err := srv.AnnounceSelf(actx); err != nil {
					logger.Printf("pipeschedd: join announce incomplete: %v", err)
					return
				}
				logger.Printf("pipeschedd: joined a fleet of %d peers", srv.Topology().Size())
			}()
		}
		go srv.RunSelfHealing(ctx, *gossipInterval, *syncInterval)
	}
	return srv.Serve(ctx, ln)
}

// bootstrapJoin resolves the initial membership from the seed list,
// retrying for a short window so "start the whole fleet at once" races
// do not kill a joining node whose seed is a second behind it.
func bootstrapJoin(ctx context.Context, seeds []string, advertise string, timeout time.Duration) (cluster.Members, error) {
	hc := &http.Client{Timeout: timeout}
	var (
		m   cluster.Members
		err error
	)
	for attempt := 0; attempt < 5; attempt++ {
		if m, err = cluster.BootstrapMembers(ctx, seeds, advertise, hc); err == nil {
			return m, nil
		}
		select {
		case <-ctx.Done():
			return cluster.Members{}, ctx.Err()
		case <-time.After(time.Second):
		}
	}
	return cluster.Members{}, err
}

// watchPeersFile is the dynamic-membership loop: it re-reads the peers
// file on SIGHUP (and, with -peers-watch, whenever the file's
// mtime/size changes) and swaps the new topology in atomically, pulling
// newly-owned keys from the fleet in the same pass. A reload that fails
// to parse or validate is logged and ignored — the serving view never
// regresses to a broken peer list.
func watchPeersFile(ctx context.Context, srv *service.Server, logger *log.Logger, path, advertise string, poll time.Duration) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	var tick <-chan time.Time
	if poll > 0 {
		t := time.NewTicker(poll)
		defer t.Stop()
		tick = t.C
	}
	stamp := func() string {
		fi, err := os.Stat(path)
		if err != nil {
			return ""
		}
		return fmt.Sprintf("%d/%d", fi.ModTime().UnixNano(), fi.Size())
	}
	last := stamp()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
		case <-tick:
			if s := stamp(); s == "" || s == last {
				continue
			}
		}
		last = stamp()
		reloadPeersFile(ctx, srv, logger, path, advertise)
	}
}

// reloadPeersFile performs one reload attempt: parse, diff, swap,
// handoff.
func reloadPeersFile(ctx context.Context, srv *service.Server, logger *log.Logger, path, advertise string) {
	data, err := os.ReadFile(path)
	if err != nil {
		logger.Printf("pipeschedd: peers reload: %v", err)
		return
	}
	topo, err := cluster.NewTopology(cluster.ParsePeersFile(data), advertise)
	if err != nil {
		logger.Printf("pipeschedd: peers reload rejected: %v", err)
		return
	}
	if cur := srv.Topology(); cur != nil && strings.Join(cur.Peers(), ",") == strings.Join(topo.Peers(), ",") {
		return // same fleet; nothing to swap
	}
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	n, err := srv.ReloadTopology(rctx, topo)
	if err != nil {
		logger.Printf("pipeschedd: topology reloaded (%d peers), handoff incomplete (%d entries): %v", topo.Size(), n, err)
		return
	}
	logger.Printf("pipeschedd: topology reloaded (%d peers), handoff imported %d entries", topo.Size(), n)
}

// servePprof starts the opt-in profiling listener: an explicit mux
// carrying only the net/http/pprof handlers (never http.DefaultServeMux,
// so nothing else can leak onto the debug port). It returns a stop
// function that closes the listener when the daemon exits.
func servePprof(addr string, out io.Writer) (func(), error) {
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	// Scrapable like the main line, for tooling and tests (-pprof :0).
	fmt.Fprintf(out, "pipeschedd: pprof listening on %s\n", pln.Addr())
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	psrv := &http.Server{Handler: mux}
	go psrv.Serve(pln) //nolint:errcheck // closed via stop below
	return func() { psrv.Close() }, nil
}
