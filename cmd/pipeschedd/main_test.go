package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pipesched/internal/workload"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the daemon logs from the
// serve goroutine while the test polls for the listening line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that cancels the context and waits for a
// clean exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...), out, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("daemon never exited")
		}
	}
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, shutdown := startDaemon(t)
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 3})
	body, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
	if err != nil {
		t.Fatal(err)
	}

	// healthz up.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Solve twice: second is a cache hit.
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Cache"); got != want {
			t.Fatalf("solve %d X-Cache %q, want %q", i, got, want)
		}
	}

	// Metrics reflect the hit.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("metrics cache = %+v, want 1 hit, 1 miss", snap.Cache)
	}

	// Cancelling the run context (the signal path) exits cleanly.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

var pprofListenRE = regexp.MustCompile(`pprof listening on (\S+)`)

// TestPprofEnabled: with -pprof, a separate listener serves the pprof
// index while the service port keeps /debug off limits.
func TestPprofEnabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-quiet"}, out, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var mainAddr, profAddr string
	for mainAddr == "" || profAddr == "" {
		s := out.String()
		if m := pprofListenRE.FindStringSubmatch(s); m != nil {
			profAddr = m[1]
		}
		// The main line has no "pprof" prefix; strip pprof lines first.
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "pprof") {
				continue
			}
			if m := listenRE.FindStringSubmatch(line); m != nil {
				mainAddr = m[1]
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported both addresses:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get("http://" + profAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body := &bytes.Buffer{}
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(body.String(), "goroutine") {
		t.Fatalf("pprof index does not list profiles:\n%s", body.String())
	}

	// The service listener must not expose the debug handlers.
	resp, err = http.Get("http://" + mainAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("service port served /debug/pprof/ with status %d, want 404", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited")
	}
}

// TestPprofDisabledByDefault: without -pprof, no profiling listener is
// announced and the service port stays clean of /debug.
func TestPprofDisabledByDefault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, out, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ on the service port: status %d, want 404", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited")
	}
	// Nothing may have announced a profiling listener.
	if pprofListenRE.MatchString(out.String()) {
		t.Fatalf("daemon announced a pprof listener without -pprof:\n%s", out.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"unknown-flag", []string{"-bogus"}, 2},
		{"positional-args", []string{"stray"}, 2},
		{"negative-timeout", []string{"-drain-timeout", "-1s"}, 2},
		{"bad-addr", []string{"-addr", "500.500.500.500:99999"}, 1},
		{"help", []string{"-h"}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != tc.want {
				t.Fatalf("exit code %d, want %d\nstderr: %s", got, tc.want, errOut.String())
			}
			if tc.want == 2 && !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("usage-class failure printed no usage hint:\n%s", errOut.String())
			}
		})
	}
}

func TestRunHelpReturnsErrHelp(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &out, &out)
	if err != flag.ErrHelp {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
}
