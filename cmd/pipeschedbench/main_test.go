package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pipesched/internal/loadgen"
	"pipesched/internal/service"
)

func TestBenchFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no-targets", nil, 2},
		{"unknown-flag", []string{"-bogus"}, 2},
		{"positional-args", []string{"-targets", "http://x", "stray"}, 2},
		{"bad-zipf-s", []string{"-targets", "http://x", "-zipf-s", "0.5"}, 2},
		{"bad-zipf-v", []string{"-targets", "http://x", "-zipf-v", "0"}, 2},
		{"bad-family", []string{"-targets", "http://x", "-family", "E9"}, 2},
		{"negative-requests", []string{"-targets", "http://x", "-requests", "-1"}, 2},
		{"zero-workers", []string{"-targets", "http://x", "-workers", "0"}, 2},
		{"help", []string{"-h"}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != tc.want {
				t.Fatalf("exit code %d, want %d\nstderr: %s", got, tc.want, errOut.String())
			}
			if tc.want == 2 && !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("usage-class failure printed no usage hint:\n%s", errOut.String())
			}
		})
	}
}

// TestBenchAgainstService drives the generator end to end against an
// in-process service and parses the -json report.
func TestBenchAgainstService(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Options{}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := realMain([]string{
		"-targets", ts.URL,
		"-requests", "60",
		"-keys", "8",
		"-seed", "3",
		"-stages", "4", "-procs", "3",
		"-workers", "4",
		"-json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Sent != 60 || rep.Errors != 0 || rep.Targets != 1 {
		t.Fatalf("report: %+v", rep)
	}
	// 60 Zipf-skewed requests over 8 keys must repeat: hits present.
	if rep.Tiers["hit"] == 0 || rep.Tiers["miss"] == 0 {
		t.Fatalf("tiers = %v, want both hits and misses", rep.Tiers)
	}
	if rep.QPS <= 0 || rep.Latency.MaxMS <= 0 {
		t.Fatalf("throughput/latency not measured: %+v", rep)
	}
}

// TestBenchVerifyAgainstReference: -verify against an identical service
// passes; the text report prints.
func TestBenchVerifyAgainstReference(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Options{}))
	defer ts.Close()
	ref := httptest.NewServer(service.New(service.Options{}))
	defer ref.Close()

	var out, errOut bytes.Buffer
	code := realMain([]string{
		"-targets", ts.URL,
		"-verify", ref.URL,
		"-requests", "30",
		"-keys", "6",
		"-stages", "4", "-procs", "3",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "mismatches 0") {
		t.Fatalf("text report missing mismatch count:\n%s", out.String())
	}
}

// TestBenchDirtyRunExitsOne: server errors surface as exit 1, after the
// report has printed.
func TestBenchDirtyRunExitsOne(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := realMain([]string{
		"-targets", ts.URL,
		"-requests", "5",
		"-keys", "2",
		"-stages", "4", "-procs", "3",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out.String(), "errors    5") {
		t.Fatalf("report not printed before the dirty exit:\n%s", out.String())
	}
}

// TestBenchMismatchExitsOne: a diverging verify target is a dirty run.
func TestBenchMismatchExitsOne(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("one"))
	}))
	defer ts.Close()
	ref := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("two"))
	}))
	defer ref.Close()

	var out, errOut bytes.Buffer
	code := realMain([]string{
		"-targets", ts.URL,
		"-verify", ref.URL,
		"-requests", "4",
		"-keys", "2",
		"-stages", "4", "-procs", "3",
	}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "mismatches") {
		t.Fatalf("dirty exit did not mention mismatches:\n%s", errOut.String())
	}
}

// TestBenchBatchAgainstService: -batch drives /v1/batch end to end —
// grouped solves on the daemon, repeat batches as cache hits, and
// bit-identity against a reference daemon through -verify.
func TestBenchBatchAgainstService(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Options{}))
	defer ts.Close()
	ref := httptest.NewServer(service.New(service.Options{}))
	defer ref.Close()

	var out, errOut bytes.Buffer
	code := realMain([]string{
		"-targets", ts.URL,
		"-verify", ref.URL,
		"-requests", "24",
		"-keys", "12",
		"-batch", "4",
		"-seed", "3",
		"-stages", "4", "-procs", "3",
		"-workers", "4",
		"-json",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Sent != 24 || rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("report: %+v", rep)
	}
	// 24 Zipf-skewed requests over 3 batch bodies must repeat: hits
	// present alongside the first-touch misses.
	if rep.Tiers["hit"] == 0 || rep.Tiers["miss"] == 0 {
		t.Fatalf("tiers = %v, want both hits and misses", rep.Tiers)
	}
}
