// Command pipeschedbench is the fleet load generator: it drives a
// deterministic, Zipf-skewed stream of solve requests at one or more
// pipeschedd daemons and reports achieved QPS, the X-Cache hit-tier
// breakdown (hit / miss / collapsed / remote-hit / remote-miss /
// hedged-hit / fallback) and latency percentiles.
//
// The instance universe (-keys seeded instances) and the key sequence
// (seeded Zipf skew, round-robin target choice) are fully reproducible
// from -seed, so two runs against different fleets replay byte-identical
// request streams — which is exactly what -verify exploits: every
// response is replayed against a reference daemon and byte-compared, the
// cluster CI lane's fleet-vs-single-node bit-identity check.
//
// Arrival shaping follows an atomic rate-setter: -rate fixes the
// open-loop arrival rate, -rate-final ramps it linearly over -duration
// (the pacer is retuned mid-run, no generator restart), and -rate 0
// runs closed-loop as fast as the -workers complete.
//
// -batch N switches the stream to /v1/batch: the key universe is
// grouped N instances per request, each group sharing one platform, so
// the daemon's decode-time platform dedup and the grouped SoA batch
// lane are exercised end to end (-verify byte-compares batch responses
// exactly like solve responses).
//
// -scenario FILE replays a multi-phase traffic shape instead of a
// single run: each phase overlays duration/rate/ramp/skew onto the base
// flags, phases run in order with optional pauses between (an operator
// window for restarts), and the per-phase reports are printed in
// sequence — scripts/scenarios/ ships diurnal, flash-crowd and
// rolling-restart shapes. -chaos FILE routes the load stream through a
// fault-injecting transport under a seeded internal/faultinject
// schedule: injected drops, latency and synthesized statuses are
// counted separately in the report (never as errors — they are the
// harness's own doing), and -verify always uses a clean client so
// bit-identity is asserted on real responses only.
//
// Examples:
//
//	# closed-loop, 3-node fleet, 30s, heavy skew
//	pipeschedbench -targets http://:8080,http://:8081,http://:8082 \
//	    -duration 30s -keys 4096 -zipf-s 1.3
//
//	# fixed 10k-request smoke, bit-identity against a reference node
//	pipeschedbench -targets http://:8080,http://:8081 -requests 10000 \
//	    -seed 7 -verify http://:9090
//
//	# open loop ramping 500 -> 5000 req/s
//	pipeschedbench -targets http://:8080 -rate 500 -rate-final 5000 -duration 60s
//
//	# the flash-crowd scenario with client-side chaos on top
//	pipeschedbench -targets http://:8080,http://:8081 \
//	    -scenario scripts/scenarios/flash-crowd.json -chaos chaos.json
//
// Exit codes follow the shared contract: 0 on a clean run, 1 when the
// run saw client-visible errors or verify mismatches (the counts are in
// the report), 2 on command-line misuse.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pipesched/internal/cli"
	"pipesched/internal/faultinject"
	"pipesched/internal/loadgen"
	"pipesched/internal/workload"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and exit code, for tests.
func realMain(args []string, out, errOut io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return cli.ExitCode("pipeschedbench", run(ctx, args, out, errOut), errOut)
}

// errRunDirty marks a completed run whose report shows client-visible
// errors or verify mismatches: exit 1, but only after the report prints.
type errRunDirty struct{ errors, mismatches int }

func (e *errRunDirty) Error() string {
	return fmt.Sprintf("run saw %d errors and %d verify mismatches", e.errors, e.mismatches)
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pipeschedbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		targets   = fs.String("targets", "", "comma-separated pipeschedd base URLs (required)")
		verify    = fs.String("verify", "", "reference base URL; byte-compare every response against it")
		duration  = fs.Duration("duration", 10*time.Second, "run length when -requests is 0")
		requests  = fs.Int("requests", 0, "exact request count (0 = run for -duration); fixes the key sequence")
		rate      = fs.Float64("rate", 0, "arrival rate in requests/second (0 = closed loop)")
		rateFinal = fs.Float64("rate-final", 0, "ramp the rate linearly to this value over -duration (0 = constant)")
		workers   = fs.Int("workers", 16, "concurrent request loops")
		keys      = fs.Int("keys", 256, "distinct instances in the key universe")
		zipfS     = fs.Float64("zipf-s", 1.1, "Zipf skew exponent (> 1; larger = hotter head)")
		zipfV     = fs.Float64("zipf-v", 1, "Zipf value offset (>= 1)")
		seed      = fs.Int64("seed", 1, "seed for the instance universe and key sequence")
		family    = fs.String("family", "E1", "workload family E1..E4")
		stages    = fs.Int("stages", 8, "stages per generated instance")
		procs     = fs.Int("procs", 8, "processors per generated instance")
		objective = fs.String("objective", "", "solve objective (default min-latency)")
		batch     = fs.Int("batch", 0, "instances per request: > 1 drives /v1/batch with groups sharing a platform (0 or 1 = per-instance /v1/solve)")
		bound     = fs.Float64("bound", 1e6, "solve bound sent with every request")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		scenario  = fs.String("scenario", "", "scenario file (scripts/scenarios/*.json): run its phases in order, one report each")
		chaos     = fs.String("chaos", "", "fault schedule file: inject client-side latency/drops/statuses under a seeded script (injected faults are reported, never counted as errors)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *targets == "" {
		return cli.Usagef("-targets is required")
	}
	fam, err := parseFamily(*family)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if *zipfS <= 1 || *zipfV < 1 {
		return cli.Usagef("-zipf-s must be > 1 and -zipf-v >= 1")
	}
	if *requests < 0 || *keys <= 0 || *workers <= 0 {
		return cli.Usagef("-requests, -keys and -workers must be positive")
	}
	if *batch < 0 {
		return cli.Usagef("-batch must be non-negative")
	}

	cfg := loadgen.Config{
		Targets:      splitTargets(*targets),
		VerifyTarget: strings.TrimRight(*verify, "/"),
		Workers:      *workers,
		Requests:     *requests,
		Duration:     *duration,
		Rate:         *rate,
		FinalRate:    *rateFinal,
		Keys:         *keys,
		ZipfS:        *zipfS,
		ZipfV:        *zipfV,
		Seed:         *seed,
		Family:       fam,
		Stages:       *stages,
		Processors:   *procs,
		Objective:    *objective,
		Batch:        *batch,
		Bound:        *bound,
		Timeout:      *timeout,
	}
	if *chaos != "" {
		sched, err := faultinject.LoadSchedule(*chaos)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		cfg.Chaos = sched
	}

	if *scenario != "" {
		sc, err := loadgen.LoadScenario(*scenario)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		reports, err := loadgen.RunScenario(ctx, cfg, sc)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(reports); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "scenario  %s (%d phases)\n", sc.Name, len(sc.Phases))
			for _, pr := range reports {
				fmt.Fprintf(out, "\n-- phase %s\n", pr.Phase)
				printReport(out, pr.Report)
			}
		}
		dirty := errRunDirty{}
		for _, pr := range reports {
			dirty.errors += pr.Report.Errors
			dirty.mismatches += pr.Report.Mismatches
		}
		if dirty.errors > 0 || dirty.mismatches > 0 {
			return &dirty
		}
		return nil
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(out, rep)
	}
	if rep.Errors > 0 || rep.Mismatches > 0 {
		return &errRunDirty{errors: rep.Errors, mismatches: rep.Mismatches}
	}
	return nil
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	return out
}

func parseFamily(s string) (workload.Family, error) {
	for _, f := range workload.Families() {
		if strings.EqualFold(f.String(), s) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown family %q (want E1..E4)", s)
}

func printReport(out io.Writer, rep *loadgen.Report) {
	fmt.Fprintf(out, "targets   %d\n", rep.Targets)
	fmt.Fprintf(out, "sent      %d in %.2fs (%.0f req/s)\n", rep.Sent, rep.ElapsedSeconds, rep.QPS)
	fmt.Fprintf(out, "errors    %d    mismatches %d    injected %d\n", rep.Errors, rep.Mismatches, rep.Injected)
	fmt.Fprintf(out, "tiers     %s\n", countMap(rep.Tiers))
	fmt.Fprintf(out, "statuses  %s\n", countMap(rep.Statuses))
	l := rep.Latency
	fmt.Fprintf(out, "latency   mean %.3fms  p50 %.3fms  p90 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		l.MeanMS, l.P50MS, l.P90MS, l.P95MS, l.P99MS, l.MaxMS)
}

// countMap renders a count map with deterministic key order.
func countMap(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
