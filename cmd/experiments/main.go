// Command experiments regenerates the paper's evaluation: the
// latency-versus-period trade-off curves of Figures 2–7 and the
// failure-threshold Table 1, for the four workload families E1–E4.
//
// Each figure is written as a gnuplot-style .dat file, a .csv file and an
// ASCII rendering (.txt, also printed to stdout). Tables are written as
// .csv and .txt.
//
// Examples:
//
//	experiments -all -out results              # everything, paper-scale (50 trials)
//	experiments -fig 2a -fig 6b -trials 10     # two figures, quick
//	experiments -table 1 -out results          # the four Table-1 blocks
//	experiments -list                          # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pipesched/internal/cli"
	"pipesched/internal/experiments"
	"pipesched/internal/workload"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and exit code, for tests.
// Exit codes follow the shared internal/cli contract: misuse (unknown
// flags, figure or table ids) exits 2 with a usage pointer, runtime
// failures exit 1.
func realMain(args []string, out, errOut io.Writer) int {
	return cli.ExitCode("experiments", run(args, out, errOut), errOut)
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var figs stringList
	var tables stringList
	var (
		all      = fs.Bool("all", false, "run every figure and table")
		trials   = fs.Int("trials", 0, "instances per point (0 = paper's 50)")
		points   = fs.Int("points", 0, "sweep grid size (0 = default 25)")
		outDir   = fs.String("out", "", "directory for .dat/.csv/.txt outputs (omit to print only)")
		workers  = fs.Int("workers", 0, "worker goroutines per sweep (0 = GOMAXPROCS)")
		list     = fs.Bool("list", false, "list available experiment ids and exit")
		ablation = fs.Bool("ablation", false, "run the H5/H6 vs X7/X8 latency-constrained ablation (E2, n=40, p=10 and p=100)")
	)
	fs.Var(&figs, "fig", "figure id (2a..7b); repeatable")
	fs.Var(&tables, "table", "table id (only 1 exists); repeatable")
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}

	if *list {
		fmt.Fprintln(out, "figures:")
		for _, spec := range experiments.PaperFigures() {
			fmt.Fprintf(out, "  %-7s %s\n", spec.ID, spec.Title)
		}
		fmt.Fprintln(out, "tables:")
		fmt.Fprintln(out, "  1       failure thresholds, all four families (Table 1)")
		return nil
	}

	var specs []experiments.CurveSpec
	if *all {
		specs = experiments.PaperFigures()
	} else {
		for _, id := range figs {
			spec, ok := experiments.FigureSpec(id)
			if !ok {
				return cli.Usagef("unknown figure %q (try -list)", id)
			}
			specs = append(specs, spec)
		}
	}
	runTables := *all
	for _, id := range tables {
		if id == "1" || strings.EqualFold(id, "table1") {
			runTables = true
			continue
		}
		return cli.Usagef("unknown table %q (only Table 1 exists; use -table 1)", id)
	}
	if len(specs) == 0 && !runTables && !*ablation {
		return cli.Usagef("nothing to run: give -all, -fig, -table or -ablation (see -list)")
	}

	for _, spec := range specs {
		if *trials > 0 {
			spec.Trials = *trials
		}
		if *points > 0 {
			spec.Points = *points
		}
		spec.Concurrency = *workers
		effPoints := spec.Points
		if effPoints <= 0 {
			effPoints = experiments.DefaultPoints
		}
		fmt.Fprintf(out, "running %s (%s; %d trials, %d points)...\n", spec.ID, spec.Title, spec.Trials, effPoints)
		curve := experiments.TradeoffCurve(spec)
		ascii := experiments.RenderASCII(curve)
		fmt.Fprintln(out, ascii)
		if *outDir != "" {
			if err := writeCurve(*outDir, curve, ascii); err != nil {
				return err
			}
		}
	}

	if *ablation {
		for _, procs := range []int{10, 100} {
			spec := experiments.AblationSpec(workload.E2, 40, procs, 0, 30000+int64(procs))
			if *trials > 0 {
				spec.Trials = *trials
			}
			if *points > 0 {
				spec.Points = *points
			}
			spec.Concurrency = *workers
			fmt.Fprintf(out, "running %s (%d trials)...\n", spec.ID, max(spec.Trials, 1))
			curve := experiments.AblationCurve(spec)
			ascii := experiments.RenderASCII(curve)
			fmt.Fprintln(out, ascii)
			fmt.Fprintln(out, "mean achieved-period ratio vs H5 (lower is better):")
			for hid, ratio := range experiments.AblationSummary(curve) {
				fmt.Fprintf(out, "  %s: %.4f\n", hid, ratio)
			}
			fmt.Fprintln(out)
			if *outDir != "" {
				if err := writeCurve(*outDir, curve, ascii); err != nil {
					return err
				}
			}
		}
	}

	if runTables {
		for _, tspec := range experiments.PaperTables() {
			if *trials > 0 {
				tspec.Trials = *trials
			}
			tspec.Concurrency = *workers
			fmt.Fprintf(out, "running table 1 block %s (%d trials)...\n", tspec.Family, tspec.Trials)
			tbl := experiments.FailureThresholds(tspec)
			ascii := experiments.RenderTableASCII(tbl)
			fmt.Fprintln(out, ascii)
			if *outDir != "" {
				if err := writeTable(*outDir, tbl, ascii); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCurve(dir string, curve experiments.Curve, ascii string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dat, err := os.Create(filepath.Join(dir, curve.Spec.ID+".dat"))
	if err != nil {
		return err
	}
	defer dat.Close()
	if err := experiments.WriteDAT(dat, curve); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, curve.Spec.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := experiments.WriteCSV(csv, curve); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, curve.Spec.ID+".txt"), []byte(ascii), 0o644)
}

func writeTable(dir string, tbl experiments.ThresholdTable, ascii string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := fmt.Sprintf("table1_%s", tbl.Spec.Family)
	csv, err := os.Create(filepath.Join(dir, base+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := experiments.WriteTableCSV(csv, tbl); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, base+".txt"), []byte(ascii), 0o644)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
