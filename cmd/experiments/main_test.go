package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	runErr := run(args, &out, &errOut)
	return out.String(), runErr
}

func TestListExperiments(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2a", "fig7b", "tables:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestSingleFigureToDirectory(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-fig", "2a", "-trials", "3", "-points", "4", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig2a") || !strings.Contains(out, "Sp mono, P fix") {
		t.Errorf("figure output wrong:\n%s", out)
	}
	for _, name := range []string{"fig2a.dat", "fig2a.csv", "fig2a.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
	// The .dat file carries all six series.
	data, err := os.ReadFile(filepath.Join(dir, "fig2a.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(string(data), "# series"); c != 6 {
		t.Errorf("%d series blocks in .dat, want 6", c)
	}
}

func TestTableRun(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-table", "1", "-trials", "3", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Failure thresholds") {
		t.Errorf("table output wrong:\n%s", out)
	}
	for _, fam := range []string{"E1", "E2", "E3", "E4"} {
		for _, ext := range []string{".csv", ".txt"} {
			name := "table1_" + fam + ext
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("%s not written: %v", name, err)
			}
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},              // nothing selected
		{"-fig", "9z"},  // unknown figure
		{"-table", "2"}, // unknown table
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestExitCodes pins the misuse contract: unknown flags or experiment ids
// exit 2 with a usage pointer on stderr; -h and success exit 0.
func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"help", []string{"-h"}, 0},
		{"unknown-flag", []string{"-bogus"}, 2},
		{"nothing-to-run", []string{}, 2},
		{"unknown-figure", []string{"-fig", "9z"}, 2},
		{"unknown-table", []string{"-table", "2"}, 2},
		{"positional-args", []string{"-list", "stray"}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != tc.want {
				t.Fatalf("exit code %d, want %d\nstderr: %s", got, tc.want, errOut.String())
			}
			if tc.want == 2 && !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("misuse exit printed no usage message:\n%s", errOut.String())
			}
		})
	}
}

func TestMultipleFigures(t *testing.T) {
	out, err := capture(t, []string{"-fig", "5a", "-fig", "5b", "-trials", "2", "-points", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig5a") || !strings.Contains(out, "fig5b") {
		t.Errorf("both figures not run:\n%s", out)
	}
}

func TestAblationRun(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-ablation", "-trials", "3", "-points", "4", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation_E2_n40_p10", "ablation_E2_n40_p100", "ratio vs H5", "X7", "X8"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	for _, name := range []string{"ablation_E2_n40_p10.dat", "ablation_E2_n40_p100.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}
