package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestListExperiments(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2a", "fig7b", "tables:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestSingleFigureToDirectory(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-fig", "2a", "-trials", "3", "-points", "4", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig2a") || !strings.Contains(out, "Sp mono, P fix") {
		t.Errorf("figure output wrong:\n%s", out)
	}
	for _, name := range []string{"fig2a.dat", "fig2a.csv", "fig2a.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
	// The .dat file carries all six series.
	data, err := os.ReadFile(filepath.Join(dir, "fig2a.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(string(data), "# series"); c != 6 {
		t.Errorf("%d series blocks in .dat, want 6", c)
	}
}

func TestTableRun(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-table", "1", "-trials", "3", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Failure thresholds") {
		t.Errorf("table output wrong:\n%s", out)
	}
	for _, fam := range []string{"E1", "E2", "E3", "E4"} {
		for _, ext := range []string{".csv", ".txt"} {
			name := "table1_" + fam + ext
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("%s not written: %v", name, err)
			}
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},              // nothing selected
		{"-fig", "9z"},  // unknown figure
		{"-table", "2"}, // unknown table
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestMultipleFigures(t *testing.T) {
	out, err := capture(t, []string{"-fig", "5a", "-fig", "5b", "-trials", "2", "-points", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig5a") || !strings.Contains(out, "fig5b") {
		t.Errorf("both figures not run:\n%s", out)
	}
}

func TestAblationRun(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-ablation", "-trials", "3", "-points", "4", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation_E2_n40_p10", "ablation_E2_n40_p100", "ratio vs H5", "X7", "X8"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	for _, name := range []string{"ablation_E2_n40_p10.dat", "ablation_E2_n40_p100.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}
