// Command pipesched solves one bi-criteria pipeline mapping problem and
// prints the resulting mapping and metrics.
//
// The instance comes either from a JSON file (-instance, format
// {"pipeline": {"works": [...], "deltas": [...]},
// "platform": {"speeds": [...], "bandwidth": b}}) or from the paper's
// random generators (-family E1..E4, -stages, -procs, -seed).
//
// Exactly one constraint must be given: -period P (minimise latency under
// a period bound, heuristics H1–H4) or -latency L (minimise period under a
// latency bound, heuristics H5–H6). -heuristic selects one heuristic by
// identifier, "best" (default) runs all applicable ones and keeps the best
// result, "all" prints every result, "portfolio" races all applicable
// heuristics plus the exact DP (platforms ≤ 14 processors) concurrently
// and reports the winner.
//
// Examples:
//
//	pipesched -family E1 -stages 10 -procs 10 -seed 7 -period 5
//	pipesched -instance app.json -latency 30 -heuristic H6 -simulate 200
//	pipesched -family E3 -stages 5 -procs 8 -period 120 -exact -pareto
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pipesched"
	"pipesched/internal/cli"
	"pipesched/internal/workload"
)

// portfolioName labels a portfolio run with its winning solver.
func portfolioName(out pipesched.PortfolioOutcome, err error) string {
	if err != nil || out.Solver == "" {
		return "portfolio"
	}
	return "portfolio→" + out.Solver
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable streams and exit code, for tests.
// Exit codes follow the shared internal/cli contract: misuse (unknown
// flags, -heuristic or -family values, missing constraints) exits 2 with
// a usage pointer, runtime failures exit 1.
func realMain(args []string, out, errOut io.Writer) int {
	return cli.ExitCode("pipesched", run(args, out, errOut), errOut)
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pipesched", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		instPath  = fs.String("instance", "", "JSON instance file (overrides the generator flags)")
		family    = fs.String("family", "E1", "workload family E1..E4 for generated instances")
		stages    = fs.Int("stages", 10, "generated pipeline stages")
		procs     = fs.Int("procs", 10, "generated platform processors")
		seed      = fs.Int64("seed", 1, "generator seed")
		period    = fs.Float64("period", 0, "period bound (minimise latency); exclusive with -latency")
		latency   = fs.Float64("latency", 0, "latency bound (minimise period); exclusive with -period")
		heuristic = fs.String("heuristic", "best", "H1..H6, \"best\", \"all\" or \"portfolio\" (race heuristics + exact DP)")
		simulate  = fs.Int("simulate", 0, "additionally simulate N data sets through the chosen mapping")
		gantt     = fs.Int("gantt", 0, "print an ASCII Gantt chart of the first N data sets")
		exactFlag = fs.Bool("exact", false, "also compute the exact optimum (≤ 14 processors)")
		pareto    = fs.Bool("pareto", false, "also print the exact Pareto front (≤ 14 processors)")
		sweep     = fs.Bool("sweep", false, "also print the heuristic trade-off frontier (any platform size)")
	)
	if err := fs.Parse(args); err != nil {
		return cli.WrapParse(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if (*period > 0) == (*latency > 0) {
		return cli.Usagef("give exactly one of -period or -latency")
	}

	in, err := loadInstance(*instPath, *family, *stages, *procs, *seed)
	if err != nil {
		return err
	}
	ev := in.Evaluator()
	fmt.Fprintf(out, "pipeline: %v\n", in.App)
	fmt.Fprintf(out, "platform: %v\n", in.Plat)
	_, optLat := pipesched.OptimalLatency(ev)
	fmt.Fprintf(out, "optimal latency (Lemma 1): %.4g   period lower bound: %.4g\n\n",
		optLat, pipesched.PeriodLowerBound(ev))

	var chosen *pipesched.Result
	report := func(name string, res pipesched.Result, err error) {
		if err != nil {
			fmt.Fprintf(out, "%-16s FAILED: %v\n", name, err)
			return
		}
		fmt.Fprintf(out, "%-16s period=%-10.4g latency=%-10.4g %v\n",
			name, res.Metrics.Period, res.Metrics.Latency, res.Mapping)
		if chosen == nil {
			chosen = &res
		}
	}

	switch {
	case *period > 0:
		hs := pipesched.PeriodHeuristics()
		switch strings.ToLower(*heuristic) {
		case "best":
			res, err := pipesched.BestUnderPeriod(ev, *period)
			report("best(H1..H4)", res, err)
		case "portfolio":
			out, err := pipesched.PortfolioUnderPeriod(context.Background(), ev, *period)
			report(portfolioName(out, err), out.Result, err)
		case "all":
			for _, h := range hs {
				res, err := h.MinimizeLatency(ev, *period)
				report(h.ID()+" "+h.Name(), res, err)
			}
		default:
			h, err := findPeriodHeuristic(*heuristic)
			if err != nil {
				return err
			}
			res, err2 := h.MinimizeLatency(ev, *period)
			report(h.ID()+" "+h.Name(), res, err2)
		}
	default: // latency bound
		hs := pipesched.LatencyHeuristics()
		switch strings.ToLower(*heuristic) {
		case "best":
			res, err := pipesched.BestUnderLatency(ev, *latency)
			report("best(H5..H6)", res, err)
		case "portfolio":
			out, err := pipesched.PortfolioUnderLatency(context.Background(), ev, *latency)
			report(portfolioName(out, err), out.Result, err)
		case "all":
			for _, h := range hs {
				res, err := h.MinimizePeriod(ev, *latency)
				report(h.ID()+" "+h.Name(), res, err)
			}
		default:
			h, err := findLatencyHeuristic(*heuristic)
			if err != nil {
				return err
			}
			res, err2 := h.MinimizePeriod(ev, *latency)
			report(h.ID()+" "+h.Name(), res, err2)
		}
	}

	if *exactFlag {
		opt, err := pipesched.ExactMinPeriod(ev)
		if err != nil {
			fmt.Fprintf(out, "\nexact min period: unavailable (%v)\n", err)
		} else {
			fmt.Fprintf(out, "\nexact min period: %.4g (latency %.4g) %v\n",
				opt.Metrics.Period, opt.Metrics.Latency, opt.Mapping)
		}
	}
	if *pareto {
		front, err := pipesched.ExactParetoFront(ev)
		if err != nil {
			fmt.Fprintf(out, "\npareto front: unavailable (%v)\n", err)
		} else {
			fmt.Fprintf(out, "\nexact Pareto front (%d points):\n", len(front))
			for _, pt := range front {
				fmt.Fprintf(out, "  period=%-10.4g latency=%-10.4g %v\n",
					pt.Metrics.Period, pt.Metrics.Latency, pt.Mapping)
			}
		}
	}
	if *sweep {
		front := pipesched.HeuristicParetoSweep(ev, 15)
		fmt.Fprintf(out, "\nheuristic trade-off frontier (%d points):\n%s", len(front), pipesched.FormatTradeoff(front))
	}
	if *gantt > 0 && chosen != nil {
		tr, err := pipesched.SimulateTraced(ev, chosen.Mapping, pipesched.SimulationOptions{DataSets: *gantt})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nGantt chart of %d data sets:\n%s", *gantt, pipesched.Gantt(tr, 100, 0))
	}
	if *simulate > 0 && chosen != nil {
		rep, err := pipesched.Simulate(ev, chosen.Mapping, pipesched.SimulationOptions{DataSets: *simulate})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsimulation of %d data sets:\n", *simulate)
		fmt.Fprintf(out, "  steady-state period: %.6g (analytic %.6g)\n", rep.SteadyStatePeriod, chosen.Metrics.Period)
		fmt.Fprintf(out, "  max latency:         %.6g (analytic %.6g)\n", rep.MaxLatency, chosen.Metrics.Latency)
		fmt.Fprintf(out, "  makespan:            %.6g\n", rep.Makespan)
		for j, u := range rep.Utilization {
			fmt.Fprintf(out, "  interval %d utilization: %.1f%%\n", j+1, 100*u)
		}
	}
	return nil
}

func loadInstance(path, family string, stages, procs int, seed int64) (workload.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return workload.Instance{}, err
		}
		var in workload.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return workload.Instance{}, fmt.Errorf("parsing %s: %w", path, err)
		}
		return in, nil
	}
	fam, err := parseFamily(family)
	if err != nil {
		return workload.Instance{}, err
	}
	return workload.Generate(workload.Config{Family: fam, Stages: stages, Processors: procs, Seed: seed}), nil
}

func parseFamily(s string) (workload.Family, error) {
	for _, f := range workload.Families() {
		if strings.EqualFold(f.String(), s) {
			return f, nil
		}
	}
	return 0, cli.Usagef("unknown family %q (want E1..E4)", s)
}

func findPeriodHeuristic(id string) (pipesched.PeriodConstrained, error) {
	for _, h := range pipesched.PeriodHeuristics() {
		if strings.EqualFold(h.ID(), id) {
			return h, nil
		}
	}
	return nil, cli.Usagef("unknown period heuristic %q (want H1..H4, best, all, portfolio)", id)
}

func findLatencyHeuristic(id string) (pipesched.LatencyConstrained, error) {
	for _, h := range pipesched.LatencyHeuristics() {
		if strings.EqualFold(h.ID(), id) {
			return h, nil
		}
	}
	return nil, cli.Usagef("unknown latency heuristic %q (want H5, H6, best, all, portfolio)", id)
}
