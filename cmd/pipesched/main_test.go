package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipesched/internal/workload"
)

// capture runs run() with buffered streams and returns what it printed to
// stdout.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	var out, errOut bytes.Buffer
	runErr := run(args, &out, &errOut)
	return out.String(), runErr
}

func TestGeneratedInstancePeriodBound(t *testing.T) {
	out, err := capture(t, []string{"-family", "E1", "-stages", "10", "-procs", "10", "-seed", "7", "-period", "5", "-heuristic", "all"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimal latency", "H1 Sp mono, P fix", "H4 Sp bi, P fix", "period="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyBoundWithSimulation(t *testing.T) {
	out, err := capture(t, []string{"-family", "E2", "-stages", "8", "-procs", "6", "-seed", "3", "-latency", "100", "-heuristic", "best", "-simulate", "50"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"best(H5..H6)", "simulation of 50 data sets", "steady-state period"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSingleHeuristicSelection(t *testing.T) {
	out, err := capture(t, []string{"-family", "E1", "-stages", "5", "-procs", "5", "-period", "100", "-heuristic", "h2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "H2 3-Explo mono") {
		t.Errorf("H2 not selected:\n%s", out)
	}
	if strings.Contains(out, "H1 ") {
		t.Errorf("unrequested heuristic ran:\n%s", out)
	}
}

func TestExactAndPareto(t *testing.T) {
	out, err := capture(t, []string{"-family", "E4", "-stages", "5", "-procs", "4", "-period", "50", "-exact", "-pareto"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exact min period:", "exact Pareto front"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestInstanceFileRoundTrip(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E3, Stages: 6, Processors: 4, Seed: 2})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-instance", path, "-latency", "1e9"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "best(H5..H6)") {
		t.Errorf("instance file run failed:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                // no constraint
		{"-period", "1", "-latency", "1"}, // both constraints
		{"-period", "1", "-family", "E9"}, // bad family
		{"-period", "1", "-heuristic", "H9"},
		{"-latency", "1", "-heuristic", "H1"}, // H1 is period-constrained
		{"-instance", "/nonexistent/file.json", "-period", "1"},
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestExitCodes pins the contract satellite-fixed in PR 2: command-line
// misuse — unknown flags or unknown -heuristic/-family values — exits 2
// with a usage pointer on stderr, runtime failures exit 1, success and
// -h exit 0.
func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"-family", "E1", "-stages", "4", "-procs", "3", "-period", "1000"}, 0},
		{"help", []string{"-h"}, 0},
		{"unknown-flag", []string{"-bogus"}, 2},
		{"no-constraint", []string{}, 2},
		{"both-constraints", []string{"-period", "1", "-latency", "1"}, 2},
		{"unknown-heuristic", []string{"-period", "5", "-heuristic", "H9"}, 2},
		{"wrong-side-heuristic", []string{"-latency", "5", "-heuristic", "H1"}, 2},
		{"unknown-family", []string{"-period", "5", "-family", "E9"}, 2},
		{"positional-args", []string{"-period", "5", "stray"}, 2},
		{"runtime-failure", []string{"-instance", "/nonexistent/file.json", "-period", "1"}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := realMain(tc.args, &out, &errOut); got != tc.want {
				t.Fatalf("exit code %d, want %d\nstderr: %s", got, tc.want, errOut.String())
			}
			if tc.want == 2 && !strings.Contains(strings.ToLower(errOut.String()), "usage") {
				t.Fatalf("misuse exit printed no usage message:\n%s", errOut.String())
			}
		})
	}
}

func TestInfeasibleBoundReportsFailure(t *testing.T) {
	out, err := capture(t, []string{"-family", "E1", "-stages", "5", "-procs", "5", "-period", "0.0001", "-heuristic", "all"})
	if err != nil {
		t.Fatal(err) // per-heuristic failures are reported, not fatal
	}
	if !strings.Contains(out, "FAILED") {
		t.Errorf("impossible bound did not report failures:\n%s", out)
	}
}
