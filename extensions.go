package pipesched

import (
	"pipesched/internal/deal"
	"pipesched/internal/onetoone"
	"pipesched/internal/subhlok"
)

// This file exposes the baselines and extensions built around the paper's
// core problem: the one-to-one mapping class (Section 2), the
// identical-speed special case solved in polynomial time (Subhlok–Vondran,
// the related work the paper generalises), and the deal/farm skeleton
// nesting sketched in the paper's conclusion.

// One-to-one mappings (each stage on its own processor; requires n ≤ p).

// OneToOneMinPeriod returns the period-optimal one-to-one mapping (exact:
// bottleneck assignment via bisection + bipartite matching).
func OneToOneMinPeriod(ev *Evaluator) (*Mapping, Metrics, error) { return onetoone.MinPeriod(ev) }

// OneToOneMinLatency returns the latency-optimal one-to-one mapping
// (exact, by the rearrangement inequality).
func OneToOneMinLatency(ev *Evaluator) (*Mapping, Metrics, error) { return onetoone.MinLatency(ev) }

// OneToOneMinLatencyUnderPeriod returns the exact bi-criteria optimum on
// the one-to-one class: the minimum-latency assignment whose period stays
// under the bound, solved in polynomial time by the Hungarian algorithm —
// in contrast to the interval class, where the same question is NP-hard.
func OneToOneMinLatencyUnderPeriod(ev *Evaluator, maxPeriod float64) (*Mapping, Metrics, error) {
	return onetoone.MinLatencyUnderPeriod(ev, maxPeriod)
}

// Identical-speed platforms: exact polynomial algorithms. These return
// subhlok.ErrNotIdentical when processor speeds differ — that case is the
// paper's NP-hard problem, use the heuristics or the exponential exact
// solvers instead.

// IdenticalSpeedResult is an optimal mapping on an identical-speed
// platform.
type IdenticalSpeedResult = subhlok.Result

// IdenticalSpeedMinPeriod computes the optimal period in O(n²·p) time on
// platforms whose processors all share one speed.
func IdenticalSpeedMinPeriod(ev *Evaluator) (IdenticalSpeedResult, error) {
	return subhlok.MinPeriod(ev)
}

// IdenticalSpeedMinLatencyUnderPeriod computes the optimal latency under a
// period bound in O(n²·p) time on identical-speed platforms.
func IdenticalSpeedMinLatencyUnderPeriod(ev *Evaluator, maxPeriod float64) (IdenticalSpeedResult, error) {
	return subhlok.MinLatencyUnderPeriod(ev, maxPeriod)
}

// Deal (farm) skeleton nesting: replicate a bottleneck interval over
// several processors, dealing data sets round-robin.

// DealMapping is an interval mapping whose intervals may be replicated.
type DealMapping = deal.Mapping

// DealResult is the outcome of DealSplit.
type DealResult = deal.Result

// DealSplit drives the period under maxPeriod using both splitting and
// replication moves; it can push a single heavy stage below its
// cycle-time, which no plain interval mapping can.
func DealSplit(ev *Evaluator, maxPeriod float64) (DealResult, error) {
	return deal.DealSplit(ev, maxPeriod)
}

// DealPeriod evaluates the extended period of a replicated mapping.
func DealPeriod(ev *Evaluator, m *DealMapping) float64 { return deal.Period(ev, m) }

// DealLatency evaluates the extended latency of a replicated mapping.
func DealLatency(ev *Evaluator, m *DealMapping) float64 { return deal.Latency(ev, m) }
