// Package chains implements the chains-to-chains (1D partitioning)
// substrate the paper builds on (Section 1 and Section 3): partition an
// array a_1..a_n into at most p intervals of consecutive elements.
//
// In the homogeneous problem the goal is to minimise the largest interval
// sum (identical processors). The paper's heterogeneous generalisation,
// Hetero-1D-Partition, weights interval k by a prescribed value s_σ(k)
// (a processor speed) for some permutation σ and minimises
// max_k Σ_{i∈I_k} a_i / s_σ(k); Theorem 1 proves it NP-complete.
//
// The package provides exact solvers (dynamic programming for the
// homogeneous case; bitmask dynamic programming, exponential in p, for the
// heterogeneous case), probe-based bisection methods and polynomial
// heuristics, all of which the scheduling layers and the test-suite use as
// baselines and cross-checks.
package chains

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Partition is a solution to a 1D partitioning problem: Ends[k] is the
// (exclusive, 0-based) end of interval k, so interval k covers
// a[Ends[k-1]:Ends[k]] with Ends[-1] = 0. Proc[k], when non-nil, names the
// 0-based processor executing interval k in a heterogeneous solution.
type Partition struct {
	Ends       []int   // increasing, last element == n
	Proc       []int   // nil for homogeneous solutions; else len(Ends)
	Bottleneck float64 // the achieved objective value
}

// Intervals returns the number of intervals of the partition.
func (p Partition) Intervals() int { return len(p.Ends) }

// Bounds returns the half-open bounds [start, end) of interval k.
func (p Partition) Bounds(k int) (start, end int) {
	if k > 0 {
		start = p.Ends[k-1]
	}
	return start, p.Ends[k]
}

func (p Partition) String() string {
	return fmt.Sprintf("partition{ends: %v, proc: %v, bottleneck: %g}", p.Ends, p.Proc, p.Bottleneck)
}

var (
	errEmptyArray = errors.New("chains: empty array")
	errNoPart     = errors.New("chains: need at least one interval")
)

func validate(a []float64, p int) error {
	if len(a) == 0 {
		return errEmptyArray
	}
	if p < 1 {
		return errNoPart
	}
	for i, x := range a {
		if x < 0 || x != x {
			return fmt.Errorf("chains: a[%d] = %v is invalid (must be ≥ 0)", i, x)
		}
	}
	return nil
}

func prefixSums(a []float64) []float64 {
	pre := make([]float64, len(a)+1)
	for i, x := range a {
		pre[i+1] = pre[i] + x
	}
	return pre
}

// HomogeneousDP solves the homogeneous chains-to-chains problem exactly by
// dynamic programming in O(n²·p) time: partition a into at most p
// non-empty intervals minimising the largest interval sum.
func HomogeneousDP(a []float64, p int) (Partition, error) {
	if err := validate(a, p); err != nil {
		return Partition{}, err
	}
	n := len(a)
	if p > n {
		p = n // more intervals than elements is useless
	}
	pre := prefixSums(a)
	const inf = math.MaxFloat64
	// f[j][i] = min bottleneck for a[0:i] cut into exactly j intervals.
	f := make([][]float64, p+1)
	cut := make([][]int, p+1)
	for j := range f {
		f[j] = make([]float64, n+1)
		cut[j] = make([]int, n+1)
		for i := range f[j] {
			f[j][i] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= p; j++ {
		for i := j; i <= n; i++ {
			for k := j - 1; k < i; k++ {
				if f[j-1][k] == inf {
					continue
				}
				cand := pre[i] - pre[k]
				if f[j-1][k] > cand {
					cand = f[j-1][k]
				}
				if cand < f[j][i] {
					f[j][i] = cand
					cut[j][i] = k
				}
			}
		}
	}
	bestJ, best := 1, f[1][n]
	for j := 2; j <= p; j++ {
		if f[j][n] < best {
			best, bestJ = f[j][n], j
		}
	}
	ends := make([]int, bestJ)
	i := n
	for j := bestJ; j >= 1; j-- {
		ends[j-1] = i
		i = cut[j][i]
	}
	return Partition{Ends: ends, Bottleneck: best}, nil
}

// HomogeneousProbe reports whether a can be cut into at most p intervals
// whose sums do not exceed bound, using the classic greedy left-to-right
// filling (optimal for a fixed bound). It returns the partition when
// feasible.
func HomogeneousProbe(a []float64, p int, bound float64) (Partition, bool) {
	n := len(a)
	var ends []int
	cur := 0.0
	for i := 0; i < n; i++ {
		if a[i] > bound {
			return Partition{}, false
		}
		if cur+a[i] > bound {
			ends = append(ends, i)
			cur = 0
		}
		cur += a[i]
	}
	ends = append(ends, n)
	if len(ends) > p {
		return Partition{}, false
	}
	bott := 0.0
	start := 0
	for _, e := range ends {
		s := 0.0
		for i := start; i < e; i++ {
			s += a[i]
		}
		if s > bott {
			bott = s
		}
		start = e
	}
	return Partition{Ends: ends, Bottleneck: bott}, true
}

// HomogeneousBisect solves the homogeneous problem exactly by searching the
// O(n²) candidate bottleneck values (all interval sums) with the greedy
// probe, in O(n² log n + n²) time after sorting. It must agree with
// HomogeneousDP; having two independent exact algorithms lets the tests
// cross-validate them.
func HomogeneousBisect(a []float64, p int) (Partition, error) {
	if err := validate(a, p); err != nil {
		return Partition{}, err
	}
	n := len(a)
	pre := prefixSums(a)
	cands := make([]float64, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			cands = append(cands, pre[j]-pre[i])
		}
	}
	sort.Float64s(cands)
	lo, hi := 0, len(cands)-1 // probe(cands[hi]) is feasible: one interval per... not when p < needed; but whole-array sum is always feasible
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := HomogeneousProbe(a, p, cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	part, ok := HomogeneousProbe(a, p, cands[lo])
	if !ok {
		return Partition{}, fmt.Errorf("chains: internal error, final probe at %g failed", cands[lo])
	}
	return part, nil
}

// RecursiveBisection is the classic O(n log n · log p) heuristic for the
// homogeneous problem: split the chain at the point balancing the two
// halves, recursing with half the processors on each side. It is not
// optimal but is a standard fast baseline.
func RecursiveBisection(a []float64, p int) (Partition, error) {
	if err := validate(a, p); err != nil {
		return Partition{}, err
	}
	n := len(a)
	if p > n {
		p = n
	}
	pre := prefixSums(a)
	var ends []int
	var rec func(lo, hi, procs int)
	rec = func(lo, hi, procs int) {
		if procs <= 1 || hi-lo <= 1 {
			ends = append(ends, hi)
			return
		}
		left := procs / 2
		target := pre[lo] + (pre[hi]-pre[lo])*float64(left)/float64(procs)
		// Find the cut closest to target with at least one element
		// and at least procs-left elements remaining on each side.
		cutMin, cutMax := lo+1, hi-1
		if cutMax < cutMin {
			cutMax = cutMin
		}
		cut := sort.Search(hi-lo, func(i int) bool { return pre[lo+i] >= target })
		c := lo + cut
		if c < cutMin {
			c = cutMin
		}
		if c > cutMax {
			c = cutMax
		}
		// c or c-1 may be closer to the balance point.
		if c-1 >= cutMin && math.Abs(pre[c-1]-target) < math.Abs(pre[c]-target) {
			c--
		}
		rec(lo, c, left)
		rec(c, hi, procs-left)
	}
	rec(0, n, p)
	bott := 0.0
	start := 0
	for _, e := range ends {
		if s := pre[e] - pre[start]; s > bott {
			bott = s
		}
		start = e
	}
	return Partition{Ends: ends, Bottleneck: bott}, nil
}

// MaxProcsExact caps the platform sizes accepted by HeterogeneousExact;
// the bitmask dynamic program allocates O(2^p · n) state.
const MaxProcsExact = 16

// HeterogeneousExact solves Hetero-1D-Partition exactly: cut a into at
// most len(speeds) intervals and choose distinct speeds for them so that
// max_k (interval sum / speed) is minimised. The dynamic program runs in
// O(n² · p · 2^p) time and is intended for validation on small instances
// (p ≤ MaxProcsExact enforced).
func HeterogeneousExact(a []float64, speeds []float64) (Partition, error) {
	if err := validate(a, 1); err != nil {
		return Partition{}, err
	}
	p := len(speeds)
	if p == 0 {
		return Partition{}, errors.New("chains: no speeds")
	}
	if p > MaxProcsExact {
		return Partition{}, fmt.Errorf("chains: HeterogeneousExact limited to %d processors, got %d", MaxProcsExact, p)
	}
	for i, s := range speeds {
		if s <= 0 || s != s {
			return Partition{}, fmt.Errorf("chains: speed[%d] = %v invalid", i, s)
		}
	}
	n := len(a)
	pre := prefixSums(a)
	const inf = math.MaxFloat64
	size := 1 << p
	// f[S][i] = min bottleneck covering a[0:i] using exactly the
	// processors in S (one interval each, in chain order).
	f := make([][]float64, size)
	type choice struct{ prevEnd, proc int }
	back := make([][]choice, size)
	for S := range f {
		f[S] = make([]float64, n+1)
		back[S] = make([]choice, n+1)
		for i := range f[S] {
			f[S][i] = inf
		}
	}
	f[0][0] = 0
	for S := 1; S < size; S++ {
		for u := 0; u < p; u++ {
			bit := 1 << u
			if S&bit == 0 {
				continue
			}
			prev := S &^ bit
			for i := 1; i <= n; i++ {
				// Last interval [k, i) on processor u.
				for k := 0; k < i; k++ {
					if f[prev][k] == inf {
						continue
					}
					cand := (pre[i] - pre[k]) / speeds[u]
					if f[prev][k] > cand {
						cand = f[prev][k]
					}
					if cand < f[S][i] {
						f[S][i] = cand
						back[S][i] = choice{prevEnd: k, proc: u}
					}
				}
			}
		}
	}
	best := inf
	bestS := 0
	for S := 1; S < size; S++ {
		if f[S][n] < best {
			best, bestS = f[S][n], S
		}
	}
	if best == inf {
		return Partition{}, errors.New("chains: no feasible partition (internal error)")
	}
	var ends, procs []int
	S, i := bestS, n
	for i > 0 {
		c := back[S][i]
		ends = append(ends, i)
		procs = append(procs, c.proc)
		S &^= 1 << c.proc
		i = c.prevEnd
	}
	reverseInts(ends)
	reverseInts(procs)
	return Partition{Ends: ends, Proc: procs, Bottleneck: best}, nil
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// HeterogeneousProbe reports whether a can be cut into intervals executed
// by distinct speeds with bottleneck ≤ bound, using the fastest-first
// greedy: repeatedly give the fastest unused speed the longest prefix whose
// load does not exceed bound·speed. Greedy feasibility is sufficient but
// not necessary (the problem is NP-hard), so a false answer may be wrong;
// a true answer always comes with a witness partition.
func HeterogeneousProbe(a []float64, speeds []float64, bound float64) (Partition, bool) {
	order := speedOrder(speeds)
	n := len(a)
	var ends, procs []int
	i := 0
	for _, u := range order {
		if i == n {
			break
		}
		cap := bound * speeds[u]
		cur := 0.0
		j := i
		for j < n && cur+a[j] <= cap {
			cur += a[j]
			j++
		}
		if j == i {
			return Partition{}, false // fastest remaining cannot take a single element
		}
		ends = append(ends, j)
		procs = append(procs, u)
		i = j
	}
	if i < n {
		return Partition{}, false
	}
	bott := bottleneck(a, ends, procs, speeds)
	return Partition{Ends: ends, Proc: procs, Bottleneck: bott}, true
}

func bottleneck(a []float64, ends, procs []int, speeds []float64) float64 {
	bott, start := 0.0, 0
	for k, e := range ends {
		s := 0.0
		for i := start; i < e; i++ {
			s += a[i]
		}
		s /= speeds[procs[k]]
		if s > bott {
			bott = s
		}
		start = e
	}
	return bott
}

func speedOrder(speeds []float64) []int {
	order := make([]int, len(speeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if speeds[order[i]] != speeds[order[j]] {
			return speeds[order[i]] > speeds[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// HeterogeneousGreedy is the polynomial heuristic for Hetero-1D-Partition:
// binary search on the bottleneck bound with HeterogeneousProbe, refined by
// a final ordered dynamic program on the processor order the probe
// selected. It returns a feasible (generally sub-optimal) partition.
func HeterogeneousGreedy(a []float64, speeds []float64) (Partition, error) {
	if err := validate(a, 1); err != nil {
		return Partition{}, err
	}
	if len(speeds) == 0 {
		return Partition{}, errors.New("chains: no speeds")
	}
	total := 0.0
	for _, x := range a {
		total += x
	}
	maxSpeed := speeds[speedOrder(speeds)[0]]
	lo, hi := 0.0, total/maxSpeed // everything on the fastest is always feasible
	if hi == 0 {
		hi = 1
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if _, ok := HeterogeneousProbe(a, speeds, mid); ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	part, ok := HeterogeneousProbe(a, speeds, hi)
	if !ok {
		// Fall back to one interval on the fastest speed.
		u := speedOrder(speeds)[0]
		return Partition{Ends: []int{len(a)}, Proc: []int{u}, Bottleneck: total / speeds[u]}, nil
	}
	// Polish: the probe fixed a processor order; re-cut optimally for it.
	if polished, err := HeterogeneousOrderedDP(a, speeds, part.Proc); err == nil && polished.Bottleneck < part.Bottleneck {
		return polished, nil
	}
	return part, nil
}

// HeterogeneousOrderedDP solves the restricted problem in which the
// sequence of processors along the chain is fixed (order lists 0-based
// speed indices; every interval k must use order[k], unused tail entries
// are allowed to stay idle). It runs in O(n² · len(order)) and is optimal
// for the given order.
func HeterogeneousOrderedDP(a []float64, speeds []float64, order []int) (Partition, error) {
	if err := validate(a, 1); err != nil {
		return Partition{}, err
	}
	if len(order) == 0 {
		return Partition{}, errors.New("chains: empty processor order")
	}
	seen := make(map[int]bool)
	for _, u := range order {
		if u < 0 || u >= len(speeds) {
			return Partition{}, fmt.Errorf("chains: order entry %d outside speeds", u)
		}
		if seen[u] {
			return Partition{}, fmt.Errorf("chains: processor %d repeated in order", u)
		}
		seen[u] = true
	}
	n := len(a)
	m := len(order)
	pre := prefixSums(a)
	const inf = math.MaxFloat64
	f := make([][]float64, m+1)
	cut := make([][]int, m+1)
	for j := range f {
		f[j] = make([]float64, n+1)
		cut[j] = make([]int, n+1)
		for i := range f[j] {
			f[j][i] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= m; j++ {
		s := speeds[order[j-1]]
		for i := j; i <= n; i++ {
			for k := j - 1; k < i; k++ {
				if f[j-1][k] == inf {
					continue
				}
				cand := (pre[i] - pre[k]) / s
				if f[j-1][k] > cand {
					cand = f[j-1][k]
				}
				if cand < f[j][i] {
					f[j][i] = cand
					cut[j][i] = k
				}
			}
		}
	}
	bestJ, best := 0, inf
	for j := 1; j <= m && j <= n; j++ {
		if f[j][n] < best {
			best, bestJ = f[j][n], j
		}
	}
	if bestJ == 0 {
		return Partition{}, errors.New("chains: ordered DP found no partition (internal error)")
	}
	ends := make([]int, bestJ)
	procs := make([]int, bestJ)
	i := n
	for j := bestJ; j >= 1; j-- {
		ends[j-1] = i
		procs[j-1] = order[j-1]
		i = cut[j][i]
	}
	return Partition{Ends: ends, Proc: procs, Bottleneck: best}, nil
}

// Verify checks that part is a structurally valid partition of a with
// distinct processors (when Proc is set) and that its Bottleneck field
// matches the actual objective value for the given speeds (pass nil speeds
// for the homogeneous objective). It returns a descriptive error otherwise.
func Verify(a []float64, speeds []float64, part Partition) error {
	if len(part.Ends) == 0 {
		return errors.New("chains: partition has no interval")
	}
	prev := 0
	for k, e := range part.Ends {
		if e <= prev || e > len(a) {
			return fmt.Errorf("chains: interval %d has invalid end %d (prev %d, n %d)", k, e, prev, len(a))
		}
		prev = e
	}
	if prev != len(a) {
		return fmt.Errorf("chains: partition covers only %d of %d elements", prev, len(a))
	}
	var bott float64
	if part.Proc != nil {
		if speeds == nil {
			return errors.New("chains: partition names processors but no speeds given")
		}
		if len(part.Proc) != len(part.Ends) {
			return fmt.Errorf("chains: %d processor entries for %d intervals", len(part.Proc), len(part.Ends))
		}
		if len(part.Ends) > len(speeds) {
			return fmt.Errorf("chains: %d intervals but only %d speeds", len(part.Ends), len(speeds))
		}
		seen := make(map[int]bool)
		for _, u := range part.Proc {
			if u < 0 || u >= len(speeds) {
				return fmt.Errorf("chains: processor %d out of range", u)
			}
			if seen[u] {
				return fmt.Errorf("chains: processor %d used twice", u)
			}
			seen[u] = true
		}
		bott = bottleneck(a, part.Ends, part.Proc, speeds)
	} else {
		ones := make([]float64, len(part.Ends))
		procs := make([]int, len(part.Ends))
		for i := range ones {
			ones[i] = 1
			procs[i] = i
		}
		bott = bottleneck(a, part.Ends, procs, ones)
	}
	if math.Abs(bott-part.Bottleneck) > 1e-9*(1+bott) {
		return fmt.Errorf("chains: recorded bottleneck %g differs from actual %g", part.Bottleneck, bott)
	}
	return nil
}
