package chains

import "math"

// HomogeneousNicol solves the homogeneous chains-to-chains problem exactly
// using Nicol's parametric search (the classic algorithm the survey by
// Pinar and Aykanat [14] builds on): for each candidate position of the
// first interval's end, the greedy probe decides whether the implied
// bottleneck is feasible, and binary search over prefix sums narrows the
// first interval to the optimal cut. It runs in O(n + p²·log²n) after the
// prefix sums — asymptotically far below HomogeneousDP's O(n²·p) — and
// must return exactly the same bottleneck value, which the tests and the
// BenchmarkChains* ablation exploit.
func HomogeneousNicol(a []float64, p int) (Partition, error) {
	if err := validate(a, p); err != nil {
		return Partition{}, err
	}
	n := len(a)
	if p > n {
		p = n
	}
	pre := prefixSums(a)

	// probeRest reports whether a[start:] fits into `parts` intervals of
	// sum ≤ bound each (greedy, optimal for fixed bound).
	probeRest := func(start, parts int, bound float64) bool {
		i := start
		for k := 0; k < parts && i < n; k++ {
			// Largest j with pre[j] − pre[i] ≤ bound: binary search.
			lo, hi := i, n
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if pre[mid]-pre[i] <= bound {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			if lo == i {
				return false // a single element exceeds the bound
			}
			i = lo
		}
		return i == n
	}

	best := math.Inf(1)
	// Nicol's observation: in an optimal partition, interval k either
	// realises the bottleneck or stops one element short of doing so.
	// For each k the end of interval k is bisected to the smallest
	// position whose own sum already lets the suffix fit (candidate A:
	// interval k is the bottleneck); the search then pins interval k one
	// element shorter and recurses downstream (candidate B). maxPref
	// carries the loads of the intervals pinned so far, which bound the
	// bottleneck of every candidate built on top of them.
	start := 0
	maxPref := 0.0
	for k := 0; k < p && start < n; k++ {
		remaining := p - k - 1
		if remaining == 0 {
			// Last interval takes the whole suffix.
			if cand := math.Max(maxPref, pre[n]-pre[start]); cand < best {
				best = cand
			}
			break
		}
		// Smallest end j such that bounding by interval k's own sum
		// lets the suffix fit (j = n always qualifies: empty suffix).
		lo, hi := start+1, n
		for lo < hi {
			mid := (lo + hi) / 2
			if probeRest(mid, remaining, pre[mid]-pre[start]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		j := lo
		// Candidate A: interval k = [start, j) is the bottleneck.
		if cand := math.Max(maxPref, pre[j]-pre[start]); cand < best {
			best = cand
		}
		// Candidate B: pin interval k one element shorter (but never
		// empty) and continue searching downstream.
		end := j - 1
		if end == start {
			end = start + 1
		}
		if load := pre[end] - pre[start]; load > maxPref {
			maxPref = load
		}
		start = end
	}
	if math.IsInf(best, 1) {
		// Fallback: the whole array in one interval is always feasible.
		best = pre[n]
	}
	// Materialise a witness partition for the optimal bound.
	part, ok := HomogeneousProbe(a, p, best*(1+1e-15))
	if !ok {
		// Tiny float slack on pathological sums; widen gradually.
		for eps := 1e-12; ; eps *= 10 {
			if part, ok = HomogeneousProbe(a, p, best*(1+eps)); ok {
				break
			}
		}
	}
	return part, nil
}
