package chains

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randArray(r *rand.Rand, n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(1 + r.Intn(20))
	}
	return a
}

// bruteHomogeneous enumerates every partition into at most p intervals.
func bruteHomogeneous(a []float64, p int) float64 {
	n := len(a)
	best := math.MaxFloat64
	var rec func(start, left int, cur float64)
	rec = func(start, left int, cur float64) {
		if start == n {
			if cur < best {
				best = cur
			}
			return
		}
		if left == 0 {
			return
		}
		sum := 0.0
		for end := start + 1; end <= n; end++ {
			sum += a[end-1]
			m := cur
			if sum > m {
				m = sum
			}
			if m < best { // prune
				rec(end, left-1, m)
			}
		}
	}
	rec(0, p, 0)
	return best
}

// bruteHeterogeneous enumerates partitions and processor choices.
func bruteHeterogeneous(a []float64, speeds []float64) float64 {
	n := len(a)
	best := math.MaxFloat64
	var rec func(start int, used uint32, cur float64)
	rec = func(start int, used uint32, cur float64) {
		if start == n {
			if cur < best {
				best = cur
			}
			return
		}
		sum := 0.0
		for end := start + 1; end <= n; end++ {
			sum += a[end-1]
			for u := range speeds {
				if used&(1<<u) != 0 {
					continue
				}
				m := cur
				if v := sum / speeds[u]; v > m {
					m = v
				}
				if m < best {
					rec(end, used|1<<u, m)
				}
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestHomogeneousDPKnown(t *testing.T) {
	cases := []struct {
		a    []float64
		p    int
		want float64
	}{
		{[]float64{1, 2, 3, 4, 5}, 1, 15},
		{[]float64{1, 2, 3, 4, 5}, 2, 9},  // {1,2,3} | {4,5} → max 9... {1,2,3,4}|{5}=10; 9 optimal
		{[]float64{1, 2, 3, 4, 5}, 3, 6},  // {1,2,3}|{4}|{5} → 6
		{[]float64{1, 2, 3, 4, 5}, 5, 5},  // singletons
		{[]float64{1, 2, 3, 4, 5}, 10, 5}, // p > n clamps
		{[]float64{7}, 3, 7},
		{[]float64{5, 5, 5, 5}, 2, 10},
		{[]float64{0, 0, 9, 0}, 2, 9},
	}
	for _, c := range cases {
		got, err := HomogeneousDP(c.a, c.p)
		if err != nil {
			t.Fatalf("HomogeneousDP(%v, %d): %v", c.a, c.p, err)
		}
		if math.Abs(got.Bottleneck-c.want) > 1e-12 {
			t.Errorf("HomogeneousDP(%v, %d) = %g, want %g", c.a, c.p, got.Bottleneck, c.want)
		}
		if err := Verify(c.a, nil, got); err != nil {
			t.Errorf("Verify: %v", err)
		}
	}
}

func TestHomogeneousDPRejectsBadInput(t *testing.T) {
	if _, err := HomogeneousDP(nil, 2); err == nil {
		t.Error("empty array accepted")
	}
	if _, err := HomogeneousDP([]float64{1}, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := HomogeneousDP([]float64{-1}, 1); err == nil {
		t.Error("negative element accepted")
	}
	if _, err := HomogeneousDP([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN element accepted")
	}
}

func TestHomogeneousDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		p := 1 + r.Intn(4)
		a := randArray(r, n)
		got, err := HomogeneousDP(a, p)
		if err != nil {
			return false
		}
		want := bruteHomogeneous(a, p)
		return math.Abs(got.Bottleneck-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHomogeneousBisectAgreesWithDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		p := 1 + r.Intn(8)
		a := randArray(r, n)
		dp, err1 := HomogeneousDP(a, p)
		bs, err2 := HomogeneousBisect(a, p)
		if err1 != nil || err2 != nil {
			return false
		}
		if Verify(a, nil, bs) != nil {
			return false
		}
		return math.Abs(dp.Bottleneck-bs.Bottleneck) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHomogeneousProbe(t *testing.T) {
	// Optimum for p=2 is 8: {3,1,4} | {1,5}.
	a := []float64{3, 1, 4, 1, 5}
	if _, ok := HomogeneousProbe(a, 2, 7.99); ok {
		t.Error("probe accepted bound below optimum 8")
	}
	part, ok := HomogeneousProbe(a, 2, 8)
	if !ok {
		t.Fatal("probe rejected the optimal bound 8")
	}
	if part.Bottleneck > 8 {
		t.Errorf("probe bottleneck %g > bound", part.Bottleneck)
	}
	if err := Verify(a, nil, part); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// An element larger than the bound is infeasible regardless of p.
	if _, ok := HomogeneousProbe([]float64{10}, 5, 9); ok {
		t.Error("probe accepted an element above the bound")
	}
}

func TestRecursiveBisectionIsValidAndDecent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		p := 1 + r.Intn(8)
		a := randArray(r, n)
		rb, err := RecursiveBisection(a, p)
		if err != nil {
			return false
		}
		if Verify(a, nil, rb) != nil {
			return false
		}
		if rb.Intervals() > p {
			return false
		}
		opt, err := HomogeneousDP(a, p)
		if err != nil {
			return false
		}
		// Recursive bisection is within a small constant of optimal
		// on these well-behaved inputs; 2× is a safe envelope and a
		// violation indicates a structural bug rather than noise.
		return rb.Bottleneck >= opt.Bottleneck-1e-9 && rb.Bottleneck <= 2*opt.Bottleneck+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousExactKnown(t *testing.T) {
	// Tasks 4,4 with speeds {4,1}: best is both tasks on speed 4 → 2
	// (splitting puts one task on speed 1 → 4).
	part, err := HeterogeneousExact([]float64{4, 4}, []float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.Bottleneck-2) > 1e-12 {
		t.Errorf("bottleneck = %g, want 2", part.Bottleneck)
	}
	// Tasks 6,2 with speeds {3,1}: {6}/3=2, {2}/1=2 → 2 (together: 8/3≈2.67).
	part, err = HeterogeneousExact([]float64{6, 2}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.Bottleneck-2) > 1e-12 {
		t.Errorf("bottleneck = %g, want 2", part.Bottleneck)
	}
	if err := Verify([]float64{6, 2}, []float64{3, 1}, part); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestHeterogeneousExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		p := 1 + r.Intn(4)
		a := randArray(r, n)
		speeds := randArray(r, p)
		got, err := HeterogeneousExact(a, speeds)
		if err != nil {
			return false
		}
		if Verify(a, speeds, got) != nil {
			return false
		}
		want := bruteHeterogeneous(a, speeds)
		return math.Abs(got.Bottleneck-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousExactRejectsLargeP(t *testing.T) {
	speeds := make([]float64, MaxProcsExact+1)
	for i := range speeds {
		speeds[i] = 1
	}
	if _, err := HeterogeneousExact([]float64{1}, speeds); err == nil {
		t.Error("oversized p accepted")
	}
}

func TestHeterogeneousGreedyIsValidAndAboveOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		p := 1 + r.Intn(5)
		a := randArray(r, n)
		speeds := randArray(r, p)
		greedy, err := HeterogeneousGreedy(a, speeds)
		if err != nil {
			return false
		}
		if Verify(a, speeds, greedy) != nil {
			return false
		}
		opt, err := HeterogeneousExact(a, speeds)
		if err != nil {
			return false
		}
		return greedy.Bottleneck >= opt.Bottleneck-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousGreedySolvesEasyCases(t *testing.T) {
	// Homogeneous speeds: greedy + ordered-DP polish must find the
	// homogeneous optimum (ordered DP is exact once the order is fixed,
	// and any order works with equal speeds).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		p := 1 + r.Intn(5)
		a := randArray(r, n)
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = 3
		}
		greedy, err := HeterogeneousGreedy(a, speeds)
		if err != nil {
			return false
		}
		hom, err := HomogeneousDP(a, p)
		if err != nil {
			return false
		}
		return math.Abs(greedy.Bottleneck-hom.Bottleneck/3) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousOrderedDP(t *testing.T) {
	a := []float64{6, 2}
	speeds := []float64{3, 1}
	part, err := HeterogeneousOrderedDP(a, speeds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.Bottleneck-2) > 1e-12 {
		t.Errorf("ordered DP bottleneck = %g, want 2", part.Bottleneck)
	}
	// Reversed order: slow first. {6}/1=6 vs {6,2}/1=8; best is
	// {6}/1, {2}/3 → 6.
	part, err = HeterogeneousOrderedDP(a, speeds, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.Bottleneck-6) > 1e-12 {
		t.Errorf("reversed ordered DP bottleneck = %g, want 6", part.Bottleneck)
	}
}

func TestHeterogeneousOrderedDPValidation(t *testing.T) {
	a := []float64{1, 2}
	speeds := []float64{1, 2}
	if _, err := HeterogeneousOrderedDP(a, speeds, nil); err == nil {
		t.Error("empty order accepted")
	}
	if _, err := HeterogeneousOrderedDP(a, speeds, []int{0, 0}); err == nil {
		t.Error("repeated processor accepted")
	}
	if _, err := HeterogeneousOrderedDP(a, speeds, []int{5}); err == nil {
		t.Error("out-of-range processor accepted")
	}
}

// Ordered DP with the exact solution's own order must reproduce (or beat)
// the exact bottleneck — a strong consistency check between the two
// algorithms.
func TestOrderedDPConsistentWithExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		p := 1 + r.Intn(4)
		a := randArray(r, n)
		speeds := randArray(r, p)
		exact, err := HeterogeneousExact(a, speeds)
		if err != nil {
			return false
		}
		ordered, err := HeterogeneousOrderedDP(a, speeds, exact.Proc)
		if err != nil {
			return false
		}
		// Same order ⇒ ordered DP can only match or improve, and
		// exact is a lower bound for everything.
		return ordered.Bottleneck <= exact.Bottleneck+1e-9 &&
			ordered.Bottleneck >= exact.Bottleneck-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	a := []float64{1, 2, 3}
	good, err := HomogeneousDP(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Bottleneck += 1
	if Verify(a, nil, bad) == nil {
		t.Error("Verify accepted a wrong bottleneck")
	}
	if Verify(a, nil, Partition{Ends: []int{2}}) == nil {
		t.Error("Verify accepted incomplete coverage")
	}
	if Verify(a, nil, Partition{}) == nil {
		t.Error("Verify accepted empty partition")
	}
	if Verify(a, []float64{1, 1}, Partition{Ends: []int{1, 3}, Proc: []int{0, 0}, Bottleneck: 5}) == nil {
		t.Error("Verify accepted duplicated processor")
	}
}

func TestPartitionBounds(t *testing.T) {
	p := Partition{Ends: []int{2, 5, 6}}
	cases := []struct{ k, s, e int }{{0, 0, 2}, {1, 2, 5}, {2, 5, 6}}
	for _, c := range cases {
		s, e := p.Bounds(c.k)
		if s != c.s || e != c.e {
			t.Errorf("Bounds(%d) = (%d,%d), want (%d,%d)", c.k, s, e, c.s, c.e)
		}
	}
	if p.Intervals() != 3 {
		t.Errorf("Intervals() = %d", p.Intervals())
	}
}

func TestHomogeneousNicolAgreesWithDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		p := 1 + r.Intn(8)
		a := randArray(r, n)
		dp, err1 := HomogeneousDP(a, p)
		nic, err2 := HomogeneousNicol(a, p)
		if err1 != nil || err2 != nil {
			return false
		}
		if Verify(a, nil, nic) != nil {
			return false
		}
		return math.Abs(dp.Bottleneck-nic.Bottleneck) < 1e-9*(1+dp.Bottleneck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHomogeneousNicolEdgeCases(t *testing.T) {
	// Single element, p larger than n, uniform arrays, zero elements.
	cases := []struct {
		a    []float64
		p    int
		want float64
	}{
		{[]float64{7}, 3, 7},
		{[]float64{1, 1, 1, 1}, 10, 1},
		{[]float64{0, 0, 5, 0}, 2, 5},
		{[]float64{2, 2, 2, 2, 2, 2}, 3, 4},
	}
	for _, c := range cases {
		got, err := HomogeneousNicol(c.a, c.p)
		if err != nil {
			t.Fatalf("Nicol(%v, %d): %v", c.a, c.p, err)
		}
		if math.Abs(got.Bottleneck-c.want) > 1e-12 {
			t.Errorf("Nicol(%v, %d) = %g, want %g", c.a, c.p, got.Bottleneck, c.want)
		}
	}
	if _, err := HomogeneousNicol(nil, 1); err == nil {
		t.Error("empty array accepted")
	}
}
