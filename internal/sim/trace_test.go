package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func TestRunTracedAgreesWithRun(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randInstance(r, 8, 5)
		if ev.Pipeline().Stages() < 2 {
			return true
		}
		m := randMapping(r, ev)
		plain, err1 := Run(ev, m, Options{DataSets: 20})
		traced, err2 := RunTraced(ev, m, Options{DataSets: 20})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range plain.Completions {
			if math.Abs(plain.Completions[i]-traced.Report.Completions[i]) > 1e-9 {
				return false
			}
			if math.Abs(plain.Latencies[i]-traced.Report.Latencies[i]) > 1e-9 {
				return false
			}
		}
		return math.Abs(plain.Makespan-traced.Report.Makespan) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTraceValidatesOnRandomMappings(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randInstance(r, 8, 5)
		if ev.Pipeline().Stages() < 2 {
			return true
		}
		m := randMapping(r, ev)
		tr, err := RunTraced(ev, m, Options{DataSets: 15})
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTraceEventCount(t *testing.T) {
	app := pipeline.MustNew([]float64{2, 2, 2}, []float64{1, 1, 1, 1})
	plat := platform.MustNew([]float64{1, 1, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{
		{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2}, {Start: 3, End: 3, Proc: 3},
	})
	const k = 4
	tr, err := RunTraced(ev, m, Options{DataSets: k})
	if err != nil {
		t.Fatal(err)
	}
	// Per data set each of the 3 intervals records one receive, one
	// compute and one send (internal transfers appear once per endpoint:
	// sender-side send + receiver-side recv): 9 events.
	if want := k * 9; len(tr.Events) != want {
		t.Fatalf("%d events, want %d", len(tr.Events), want)
	}
	// Chronological order.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Start < tr.Events[i-1].Start-1e-12 {
			t.Fatal("events not sorted by start time")
		}
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	app := pipeline.MustNew([]float64{2, 2}, []float64{1, 1, 1})
	plat := platform.MustNew([]float64{1, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2}})
	tr, err := RunTraced(ev, m, Options{DataSets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("clean trace invalid: %v", err)
	}
	// Corrupt: make one computation start before its receive ends.
	bad := tr
	bad.Events = append([]Event(nil), tr.Events...)
	for i, e := range bad.Events {
		if e.Kind == OpComp {
			bad.Events[i].Start -= 10
			break
		}
	}
	if bad.Validate() == nil {
		t.Error("corrupted trace validated")
	}
	// Corrupt: reversed event.
	bad2 := tr
	bad2.Events = append([]Event(nil), tr.Events...)
	bad2.Events[0].End = bad2.Events[0].Start - 1
	if bad2.Validate() == nil {
		t.Error("backwards event validated")
	}
}

func TestGanttRendering(t *testing.T) {
	app := pipeline.MustNew([]float64{4, 4}, []float64{2, 2, 2})
	plat := platform.MustNew([]float64{2, 2}, 2)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2}})
	tr, err := RunTraced(ev, m, Options{DataSets: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt(60, 0)
	for _, want := range []string{"P1", "P2", "legend", "r", "s", "0"} {
		if !strings.Contains(g, want) {
			t.Errorf("Gantt missing %q:\n%s", want, g)
		}
	}
	// Small widths are clamped, not crashed.
	if g := tr.Gantt(1, 0); !strings.Contains(g, "P1") {
		t.Errorf("clamped Gantt broken:\n%s", g)
	}
	// Zero-length trace edge case.
	empty := Trace{}
	if out := empty.Gantt(40, 0); !strings.Contains(out, "empty") {
		t.Errorf("empty Gantt = %q", out)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRecv.String() != "recv" || OpComp.String() != "comp" || OpSend.String() != "send" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown OpKind renders empty")
	}
}
