package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// OpKind labels one operation of the execution model.
type OpKind int

const (
	// OpRecv is a receive: the transfer on the interval's input boundary.
	OpRecv OpKind = iota
	// OpComp is the interval's computation.
	OpComp
	// OpSend is a send: the transfer on the interval's output boundary.
	OpSend
)

func (k OpKind) String() string {
	switch k {
	case OpRecv:
		return "recv"
	case OpComp:
		return "comp"
	case OpSend:
		return "send"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Event is one operation instance in a traced simulation.
type Event struct {
	Interval int // 0-based interval index
	Proc     int // 1-based processor id
	DataSet  int // 0-based data set number
	Kind     OpKind
	Start    float64
	End      float64
}

// Trace is a chronologically sorted event log of a simulation run.
type Trace struct {
	Events []Event
	Report Report
}

// RunTraced simulates like Run but additionally records every operation.
// Intended for small DataSets counts (the trace holds 3·intervals·K
// events).
func RunTraced(ev *mapping.Evaluator, m *mapping.Mapping, opt Options) (Trace, error) {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return Trace{}, errors.New("sim: only comm-homogeneous platforms are simulated")
	}
	k := opt.DataSets
	if k < 1 {
		return Trace{}, fmt.Errorf("sim: DataSets = %d, want ≥ 1", k)
	}
	app, plat := ev.Pipeline(), ev.Platform()
	ivs := m.Intervals()
	nIv := len(ivs)
	b := plat.Bandwidth()

	xferDur := make([]float64, nIv+1)
	compDur := make([]float64, nIv)
	xferDur[0] = app.Delta(0) / b
	for j, iv := range ivs {
		compDur[j] = app.IntervalWork(iv.Start, iv.End) / plat.Speed(iv.Proc)
		xferDur[j+1] = app.Delta(iv.End) / b
	}

	trace := Trace{Events: make([]Event, 0, 3*nIv*k)}
	prevXferEnd := make([]float64, nIv+1)
	rep := Report{Completions: make([]float64, k), Latencies: make([]float64, k)}
	for t := 0; t < k; t++ {
		start0 := 0.0
		if nIv > 0 && t > 0 {
			start0 = prevXferEnd[1]
		}
		cur := make([]float64, nIv+1)
		cur[0] = start0 + xferDur[0]
		trace.Events = append(trace.Events, Event{
			Interval: 0, Proc: ivs[0].Proc, DataSet: t, Kind: OpRecv,
			Start: start0, End: cur[0],
		})
		for j := 0; j < nIv; j++ {
			recvEnd := cur[j]
			compEnd := recvEnd + compDur[j]
			trace.Events = append(trace.Events, Event{
				Interval: j, Proc: ivs[j].Proc, DataSet: t, Kind: OpComp,
				Start: recvEnd, End: compEnd,
			})
			sendStart := compEnd
			if j+1 < nIv && t > 0 {
				if prev := prevXferEnd[j+2]; prev > sendStart {
					sendStart = prev
				}
			}
			cur[j+1] = sendStart + xferDur[j+1]
			trace.Events = append(trace.Events, Event{
				Interval: j, Proc: ivs[j].Proc, DataSet: t, Kind: OpSend,
				Start: sendStart, End: cur[j+1],
			})
			if j+1 < nIv {
				// The same transfer is the downstream interval's
				// receive — record it from the receiver's side too.
				trace.Events = append(trace.Events, Event{
					Interval: j + 1, Proc: ivs[j+1].Proc, DataSet: t, Kind: OpRecv,
					Start: sendStart, End: cur[j+1],
				})
			}
		}
		rep.Completions[t] = cur[nIv]
		rep.Latencies[t] = cur[nIv] - start0
		if rep.Latencies[t] > rep.MaxLatency {
			rep.MaxLatency = rep.Latencies[t]
		}
		prevXferEnd = cur
	}
	rep.Makespan = rep.Completions[k-1]
	if k >= 2 {
		warm := k / 2
		if warm == k-1 {
			warm = k - 2
		}
		rep.SteadyStatePeriod = (rep.Completions[k-1] - rep.Completions[warm]) / float64(k-1-warm)
	} else {
		rep.SteadyStatePeriod = rep.Completions[0]
	}
	sort.SliceStable(trace.Events, func(i, j int) bool {
		if trace.Events[i].Start != trace.Events[j].Start {
			return trace.Events[i].Start < trace.Events[j].Start
		}
		return trace.Events[i].Interval < trace.Events[j].Interval
	})
	trace.Report = rep
	return trace, nil
}

// Validate checks the structural invariants of the trace: per-processor
// operations never overlap (the one-port model plus sequential compute),
// every computation is preceded by its receive, and every data set's
// operations are ordered along the pipeline.
func (tr Trace) Validate() error {
	// Per (interval, dataset): recv.End ≤ comp.Start, comp.End ≤ send.Start.
	type key struct{ iv, ds int }
	ops := make(map[key]map[OpKind]Event)
	for _, e := range tr.Events {
		if e.End < e.Start {
			return fmt.Errorf("sim: event %+v runs backwards", e)
		}
		k := key{e.Interval, e.DataSet}
		if ops[k] == nil {
			ops[k] = make(map[OpKind]Event, 3)
		}
		ops[k][e.Kind] = e
	}
	const eps = 1e-9
	for k, m := range ops {
		recv, okR := m[OpRecv]
		comp, okC := m[OpComp]
		send, okS := m[OpSend]
		if !okR || !okC || !okS {
			return fmt.Errorf("sim: interval %d data set %d missing operations", k.iv, k.ds)
		}
		if recv.End > comp.Start+eps || comp.End > send.Start+eps {
			return fmt.Errorf("sim: interval %d data set %d operations out of order", k.iv, k.ds)
		}
	}
	// Per processor: no two operations overlap. Receives and sends of
	// the same transfer are shared between two processors, so overlap is
	// only checked within one processor's own op list.
	byProc := make(map[int][]Event)
	for _, e := range tr.Events {
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	for proc, evs := range byProc {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-eps {
				return fmt.Errorf("sim: processor %d operations overlap: %+v then %+v", proc, evs[i-1], evs[i])
			}
		}
	}
	return nil
}

// Gantt renders the first maxTime time units of the trace as an ASCII
// Gantt chart, one row per enrolled processor: r/c/s cells mark receive,
// compute and send activity, digits tag which data set a compute serves
// (mod 10). width is the chart width in character cells.
func (tr Trace) Gantt(width int, maxTime float64) string {
	if width < 20 {
		width = 20
	}
	if maxTime <= 0 {
		maxTime = tr.Report.Makespan
	}
	if maxTime <= 0 {
		return "(empty trace)\n"
	}
	procs := make([]int, 0, 8)
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if !seen[e.Proc] {
			seen[e.Proc] = true
			procs = append(procs, e.Proc)
		}
	}
	sort.Ints(procs)
	rows := make(map[int][]byte, len(procs))
	for _, p := range procs {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / maxTime
	for _, e := range tr.Events {
		if e.Start >= maxTime {
			continue
		}
		from := int(math.Floor(e.Start * scale))
		to := int(math.Ceil(e.End * scale))
		if to > width {
			to = width
		}
		if to == from {
			to = from + 1
		}
		var glyph byte
		switch e.Kind {
		case OpRecv:
			glyph = 'r'
		case OpComp:
			glyph = byte('0' + e.DataSet%10)
		default:
			glyph = 's'
		}
		row := rows[e.Proc]
		for c := from; c < to && c < width; c++ {
			row[c] = glyph
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.4g (one cell = %.4g)\n", maxTime, maxTime/float64(width))
	for _, p := range procs {
		fmt.Fprintf(&b, "P%-3d |%s|\n", p, rows[p])
	}
	b.WriteString("legend: r=receive, s=send, digit=compute (data set mod 10), .=idle\n")
	return b.String()
}
