package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func randInstance(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 1 + r.Intn(maxP)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

func randMapping(r *rand.Rand, ev *mapping.Evaluator) *mapping.Mapping {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	// Random number of intervals, random cuts, random distinct processors.
	m := 1 + r.Intn(min(n, p))
	cuts := map[int]bool{}
	for len(cuts) < m-1 {
		cuts[1+r.Intn(n-1)] = true // cut after stage c → c in [1, n-1]
	}
	procs := r.Perm(p)
	var ivs []mapping.Interval
	start, pi := 1, 0
	for k := 1; k <= n; k++ {
		if cuts[k] || k == n {
			ivs = append(ivs, mapping.Interval{Start: start, End: k, Proc: procs[pi] + 1})
			pi++
			start = k + 1
		}
	}
	return mapping.MustNew(app, plat, ivs)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSingleIntervalSimulation(t *testing.T) {
	app := pipeline.MustNew([]float64{4, 6, 2}, []float64{10, 20, 30, 40})
	plat := platform.MustNew([]float64{4}, 10)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.SingleProcessor(app, plat, 1)
	// Cycle = 1 + 3 + 4 = 8.
	rep, err := Run(ev, m, Options{DataSets: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Latencies[0]-8) > 1e-9 {
		t.Errorf("first latency %g, want 8", rep.Latencies[0])
	}
	if math.Abs(rep.SteadyStatePeriod-8) > 1e-9 {
		t.Errorf("steady-state period %g, want 8", rep.SteadyStatePeriod)
	}
	// Completions are strictly increasing and evenly spaced by 8.
	for i := 1; i < len(rep.Completions); i++ {
		if gap := rep.Completions[i] - rep.Completions[i-1]; math.Abs(gap-8) > 1e-9 {
			t.Errorf("gap %d = %g, want 8", i, gap)
		}
	}
	// A lone processor is 100% busy.
	if math.Abs(rep.Utilization[0]-1) > 1e-9 {
		t.Errorf("utilization %g, want 1", rep.Utilization[0])
	}
}

func TestTwoIntervalHandComputed(t *testing.T) {
	// w = {6, 4}, δ = {2, 8, 4}, speeds {2, 2}, b = 2.
	// Interval 1 = S1 on P1: in 1, comp 3, out 4 → cycle 8.
	// Interval 2 = S2 on P2: in 4, comp 2, out 2 → cycle 8.
	// Latency = 1 + 3 + 4 + 2 + 2 = 12.
	app := pipeline.MustNew([]float64{6, 4}, []float64{2, 8, 4})
	plat := platform.MustNew([]float64{2, 2}, 2)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2}})
	if got := ev.Period(m); math.Abs(got-8) > 1e-12 {
		t.Fatalf("analytic period %g, want 8", got)
	}
	if got := ev.Latency(m); math.Abs(got-12) > 1e-12 {
		t.Fatalf("analytic latency %g, want 12", got)
	}
	rep, err := Run(ev, m, Options{DataSets: 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Latencies[0]-12) > 1e-9 {
		t.Errorf("simulated first latency %g, want 12", rep.Latencies[0])
	}
	if math.Abs(rep.SteadyStatePeriod-8) > 1e-9 {
		t.Errorf("simulated period %g, want 8", rep.SteadyStatePeriod)
	}
}

// Core validation: on random mappings, the simulated steady-state period
// equals equation (1) and the first-data-set latency equals equation (2).
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randInstance(r, 10, 6)
		if ev.Pipeline().Stages() < 2 {
			return true
		}
		m := randMapping(r, ev)
		return ValidateModel(ev, m, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The heuristics' output mappings must also simulate to their reported
// metrics (integration across heuristics + sim).
func TestHeuristicMappingsSimulateCorrectly(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		ev := randInstance(r, 12, 8)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		bound := ev.Period(single) * (0.3 + 0.5*r.Float64())
		for _, h := range heuristics.PeriodHeuristics() {
			res, err := h.MinimizeLatency(ev, bound)
			if err != nil {
				continue
			}
			if err := ValidateModel(ev, res.Mapping, 1e-9); err != nil {
				t.Errorf("%s: %v", h.ID(), err)
			}
		}
	}
}

// Exact-solver mappings simulate correctly too.
func TestExactMappingsSimulateCorrectly(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		ev := randInstance(r, 7, 5)
		res, err := exact.MinPeriod(ev)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateModel(ev, res.Mapping, 1e-9); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// Latencies are non-decreasing over data sets only in the bottleneck-bound
// regime; but the max latency is always ≥ the first latency, and every
// latency is ≥ the analytic latency of an empty pipeline... the weakest
// universal invariants: all latencies ≥ latency(0) - ε is NOT universal;
// instead assert: completions strictly increase, all latencies ≥ equation
// (2) value (queueing can only add delay), and max gap ≥ steady period.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randInstance(r, 8, 5)
		if ev.Pipeline().Stages() < 2 {
			return true
		}
		m := randMapping(r, ev)
		rep, err := Run(ev, m, Options{DataSets: 60})
		if err != nil {
			return false
		}
		analytic := ev.Latency(m)
		for i, l := range rep.Latencies {
			if l < analytic-1e-9 {
				return false
			}
			if i > 0 && rep.Completions[i] <= rep.Completions[i-1] {
				return false
			}
		}
		if rep.MaxLatency < rep.Latencies[0] {
			return false
		}
		for _, u := range rep.Utilization {
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	app := pipeline.MustNew([]float64{1}, []float64{0, 0})
	plat := platform.MustNew([]float64{1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.SingleProcessor(app, plat, 1)
	if _, err := Run(ev, m, Options{DataSets: 0}); err == nil {
		t.Error("DataSets=0 accepted")
	}
	het, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	evHet := mapping.NewEvaluator(app, het)
	mHet := mapping.SingleProcessor(app, het, 1)
	if _, err := Run(evHet, mHet, Options{DataSets: 1}); err == nil {
		t.Error("heterogeneous platform accepted")
	}
}

func TestWarmupOption(t *testing.T) {
	app := pipeline.MustNew([]float64{5, 5}, []float64{1, 1, 1})
	plat := platform.MustNew([]float64{1, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{{Start: 1, End: 1, Proc: 1}, {Start: 2, End: 2, Proc: 2}})
	for _, warm := range []int{1, 5, 100} { // 100 > DataSets: clamped
		rep, err := Run(ev, m, Options{DataSets: 30, Warmup: warm})
		if err != nil {
			t.Fatalf("warmup %d: %v", warm, err)
		}
		if math.Abs(rep.SteadyStatePeriod-ev.Period(m)) > 1e-9 {
			t.Errorf("warmup %d: period %g, want %g", warm, rep.SteadyStatePeriod, ev.Period(m))
		}
	}
}

// A slow middle interval throttles the whole pipeline: the steady-state
// period equals its cycle-time and the fast neighbours idle (utilization
// strictly below 1).
func TestBottleneckThrottling(t *testing.T) {
	app := pipeline.MustNew([]float64{1, 100, 1}, []float64{1, 1, 1, 1})
	plat := platform.MustNew([]float64{10, 1, 10}, 10)
	ev := mapping.NewEvaluator(app, plat)
	m := mapping.MustNew(app, plat, []mapping.Interval{
		{Start: 1, End: 1, Proc: 1},
		{Start: 2, End: 2, Proc: 2},
		{Start: 3, End: 3, Proc: 3},
	})
	rep, err := Run(ev, m, Options{DataSets: 200})
	if err != nil {
		t.Fatal(err)
	}
	want := ev.Period(m) // 0.1 + 100 + 0.1 = 100.2
	if math.Abs(rep.SteadyStatePeriod-want) > 1e-6 {
		t.Errorf("period %g, want %g", rep.SteadyStatePeriod, want)
	}
	if rep.Utilization[1] < 0.99 {
		t.Errorf("bottleneck utilization %g, want ≈ 1", rep.Utilization[1])
	}
	if rep.Utilization[0] > 0.1 || rep.Utilization[2] > 0.1 {
		t.Errorf("neighbour utilizations %v, want tiny", rep.Utilization)
	}
}
