// Package sim is a discrete-event simulator for mapped pipeline workflows
// under the paper's execution model: each enrolled processor serially
// performs, for every data set, a receive, a computation and a send; the
// one-port model serialises a processor's communications, and transfers
// are blocking rendezvous that occupy both endpoints for δ/b time units.
//
// The simulator exists to validate the analytic cost model: on any mapping
// the measured steady-state period must equal equation (1) and the first
// data set's response time must equal equation (2). The paper asserts both
// by construction; the test-suite asserts them against this independent
// implementation.
package sim

import (
	"errors"
	"fmt"
	"math"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// Options configures a simulation run.
type Options struct {
	// DataSets is the number of data sets pushed through the pipeline
	// (must be ≥ 1).
	DataSets int
	// Warmup is the number of initial data sets excluded from the
	// steady-state period measurement (defaults to min(DataSets/2,
	// 2·intervals), which always covers the pipeline fill).
	Warmup int
}

// Report summarises one simulation run.
type Report struct {
	// Completions[t] is the absolute time at which data set t left the
	// pipeline (its output reached the outside world).
	Completions []float64
	// Latencies[t] is the response time of data set t: completion minus
	// the instant its input started entering the pipeline.
	Latencies []float64
	// MaxLatency is the largest response time over all data sets — the
	// paper's latency definition.
	MaxLatency float64
	// SteadyStatePeriod is the mean inter-completion gap after warmup.
	SteadyStatePeriod float64
	// MaxGap is the largest inter-completion gap after warmup.
	MaxGap float64
	// Makespan is the completion time of the last data set.
	Makespan float64
	// Utilization[j] is the fraction of the makespan interval during
	// which the processor of interval j was busy (receiving, computing
	// or sending).
	Utilization []float64
}

// Run simulates opt.DataSets data sets through m on the evaluator's
// pipeline and platform.
func Run(ev *mapping.Evaluator, m *mapping.Mapping, opt Options) (Report, error) {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return Report{}, errors.New("sim: only comm-homogeneous platforms are simulated")
	}
	k := opt.DataSets
	if k < 1 {
		return Report{}, fmt.Errorf("sim: DataSets = %d, want ≥ 1", k)
	}
	app, plat := ev.Pipeline(), ev.Platform()
	ivs := m.Intervals()
	nIv := len(ivs)
	b := plat.Bandwidth()

	// Durations: xferDur[j] is the transfer on boundary j (0 = outside →
	// interval 1, nIv = interval nIv → outside); compDur[j] is interval
	// j's computation (0-based).
	xferDur := make([]float64, nIv+1)
	compDur := make([]float64, nIv)
	xferDur[0] = app.Delta(0) / b
	for j, iv := range ivs {
		compDur[j] = app.IntervalWork(iv.Start, iv.End) / plat.Speed(iv.Proc)
		xferDur[j+1] = app.Delta(iv.End) / b
	}

	// Event recurrence per data set t (see DESIGN.md and the package
	// comment): the transfer on boundary j starts when the upstream
	// interval finished computing data set t and the downstream interval
	// finished sending data set t-1.
	prevXferEnd := make([]float64, nIv+1) // boundary j's transfer end for t-1
	busy := make([]float64, nIv)

	report := Report{
		Completions: make([]float64, k),
		Latencies:   make([]float64, k),
	}
	for t := 0; t < k; t++ {
		// Boundary 0: outside world always ready; interval 1 (if any)
		// must have finished its previous send (= previous transfer on
		// boundary 1).
		start0 := 0.0
		if nIv > 0 && t > 0 {
			start0 = prevXferEnd[1]
		}
		injection := start0
		inEnd := start0 + xferDur[0]
		curXferEnd := make([]float64, nIv+1)
		curXferEnd[0] = inEnd
		for j := 0; j < nIv; j++ {
			recvEnd := curXferEnd[j]
			compEnd := recvEnd + compDur[j]
			busy[j] += xferDur[j] + compDur[j] // receive + compute
			sendStart := compEnd
			if j+1 < nIv && t > 0 {
				// Downstream interval's previous op is its send
				// of data set t-1 on boundary j+2.
				if prev := prevXferEnd[j+2]; prev > sendStart {
					sendStart = prev
				}
			}
			curXferEnd[j+1] = sendStart + xferDur[j+1]
			busy[j] += xferDur[j+1] // send occupies the sender
		}
		report.Completions[t] = curXferEnd[nIv]
		report.Latencies[t] = curXferEnd[nIv] - injection
		if report.Latencies[t] > report.MaxLatency {
			report.MaxLatency = report.Latencies[t]
		}
		prevXferEnd = curXferEnd
	}
	report.Makespan = report.Completions[k-1]

	warm := opt.Warmup
	if warm <= 0 {
		warm = 2 * nIv
		if half := k / 2; warm > half {
			warm = half
		}
	}
	if warm >= k {
		warm = k - 1
	}
	if k-1 > warm {
		report.SteadyStatePeriod = (report.Completions[k-1] - report.Completions[warm]) / float64(k-1-warm)
	} else if k >= 2 {
		report.SteadyStatePeriod = report.Completions[k-1] - report.Completions[k-2]
	} else {
		report.SteadyStatePeriod = report.Completions[0]
	}
	for t := warm + 1; t < k; t++ {
		if gap := report.Completions[t] - report.Completions[t-1]; gap > report.MaxGap {
			report.MaxGap = gap
		}
	}
	if report.Makespan > 0 {
		report.Utilization = make([]float64, nIv)
		for j := range busy {
			report.Utilization[j] = busy[j] / report.Makespan
			if report.Utilization[j] > 1 {
				// Rounding can push a fully busy processor a hair
				// above 1; clamp but scream on real violations.
				if report.Utilization[j] > 1+1e-9 {
					return Report{}, fmt.Errorf("sim: interval %d utilization %v > 1 (model bug)", j, report.Utilization[j])
				}
				report.Utilization[j] = 1
			}
		}
	}
	return report, nil
}

// ValidateModel runs a simulation long enough to reach steady state and
// compares the measured metrics with the analytic formulas of the paper,
// returning a descriptive error if either disagrees beyond tol (relative).
// It is the bridge the tests and examples use to demonstrate that
// equations (1) and (2) describe the simulated system.
func ValidateModel(ev *mapping.Evaluator, m *mapping.Mapping, tol float64) error {
	k := 20*m.Size() + 50
	rep, err := Run(ev, m, Options{DataSets: k})
	if err != nil {
		return err
	}
	wantPeriod := ev.Period(m)
	wantLatency := ev.Latency(m)
	if rel(rep.SteadyStatePeriod, wantPeriod) > tol {
		return fmt.Errorf("sim: steady-state period %g vs analytic %g", rep.SteadyStatePeriod, wantPeriod)
	}
	// The first data set flows through an empty pipeline: its response
	// time is exactly equation (2).
	if rel(rep.Latencies[0], wantLatency) > tol {
		return fmt.Errorf("sim: first data set latency %g vs analytic %g", rep.Latencies[0], wantLatency)
	}
	return nil
}

func rel(a, b float64) float64 { return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b))) }
