package experiments

import (
	"math"
	"strings"
	"testing"

	"pipesched/internal/workload"
)

func TestAblationCurveShape(t *testing.T) {
	spec := AblationSpec(workload.E2, 10, 10, 5, 1)
	spec.Points = 6
	c := AblationCurve(spec)
	if len(c.Series) != 4 {
		t.Fatalf("%d series, want 4 (H5, H6, X7, X8)", len(c.Series))
	}
	wantIDs := []string{"H5", "H6", "X7", "X8"}
	for i, s := range c.Series {
		if s.HID != wantIDs[i] {
			t.Errorf("series %d = %s, want %s", i, s.HID, wantIDs[i])
		}
		if len(s.X) != 6 {
			t.Errorf("%s: %d points", s.HID, len(s.X))
		}
	}
	// All four share the failure pattern (same threshold: the optimal
	// latency).
	for k := range c.Series[0].Successes {
		n := c.Series[0].Successes[k]
		for _, s := range c.Series[1:] {
			if s.Successes[k] != n {
				t.Errorf("point %d: success mismatch %s=%d vs H5=%d", k, s.HID, s.Successes[k], n)
			}
		}
	}
}

func TestAblationSummary(t *testing.T) {
	spec := AblationSpec(workload.E1, 10, 10, 5, 2)
	spec.Points = 6
	c := AblationCurve(spec)
	sum := AblationSummary(c)
	for _, hid := range []string{"H6", "X7", "X8"} {
		v, ok := sum[hid]
		if !ok {
			t.Fatalf("summary missing %s", hid)
		}
		if math.IsNaN(v) || v <= 0 || v > 3 {
			t.Errorf("%s ratio %g implausible", hid, v)
		}
	}
	if _, ok := sum["H5"]; ok {
		t.Error("baseline H5 appears in its own summary")
	}
}

func TestAblationRendersThroughStandardPipeline(t *testing.T) {
	spec := AblationSpec(workload.E4, 8, 8, 3, 3)
	spec.Points = 4
	c := AblationCurve(spec)
	out := RenderASCII(c)
	for _, want := range []string{"X7", "X8", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
