package experiments

import (
	"fmt"
	"math"

	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/stats"
	"pipesched/internal/workload"
)

// AblationCurve compares the paper's latency-constrained heuristics
// (H5, H6) with the library's 3-Exploration extensions (X7, X8) on the
// same latency sweep — the ablation DESIGN.md §6 calls out: what does the
// richer 3-way move set buy once a latency budget limits the search?
//
// The returned curve uses the same axes as the paper figures (achieved
// period on x, latency budget on y), so it renders and exports through
// the same WriteDAT/WriteCSV/RenderASCII machinery.
func AblationCurve(spec CurveSpec) Curve {
	spec = normalize(spec)
	instances := workload.GenerateSet(spec.Family, spec.Stages, spec.Processors, spec.Trials, spec.BaseSeed)
	evs := make([]*mapping.Evaluator, len(instances))
	for i, in := range instances {
		evs[i] = in.Evaluator()
	}
	// Latency grid anchors as in TradeoffCurve.
	var latLoW, latHiW stats.Welford
	anchors := parMap(spec.Concurrency, evs, func(ev *mapping.Evaluator) [2]float64 {
		_, optLat := ev.OptimalLatency()
		deep, err := heuristics.SpMonoP{}.MinimizeLatency(ev, 0)
		latHi := deep.Metrics.Latency
		if err != nil {
			if e, ok := err.(*heuristics.InfeasibleError); ok {
				latHi = e.Best.Metrics.Latency
			}
		}
		return [2]float64{optLat, latHi}
	})
	for _, a := range anchors {
		latLoW.Add(a[0])
		latHiW.Add(a[1])
	}
	hi := latHiW.Mean()
	if hi <= latLoW.Mean() {
		hi = latLoW.Mean() * 1.5
	}
	grid := linspace(latLoW.Mean(), hi, spec.Points)
	curve := Curve{Spec: spec, LatencyGrid: grid}
	all := append(heuristics.LatencyHeuristics(), heuristics.ExtensionLatencyHeuristics()...)
	for _, h := range all {
		curve.Series = append(curve.Series, sweepLatency(spec, evs, h, grid))
	}
	return curve
}

// AblationSpec builds the default ablation configuration for a family and
// platform size.
func AblationSpec(fam workload.Family, stages, processors, trials int, seed int64) CurveSpec {
	return CurveSpec{
		ID:     fmt.Sprintf("ablation_%s_n%d_p%d", fam, stages, processors),
		Title:  fmt.Sprintf("latency-constrained ablation (H5/H6 vs X7/X8) — %s, %d stages, p=%d", fam, stages, processors),
		Family: fam, Stages: stages, Processors: processors,
		Trials: trials, BaseSeed: seed,
	}
}

// AblationSummary condenses an ablation curve into mean period ratios of
// each extension against H5 over the grid points where both succeeded;
// values below 1 mean the extension found better periods.
func AblationSummary(c Curve) map[string]float64 {
	var base Series
	for _, s := range c.Series {
		if s.HID == "H5" {
			base = s
		}
	}
	out := make(map[string]float64)
	for _, s := range c.Series {
		if s.HID == "H5" {
			continue
		}
		var ratios []float64
		for k := range s.X {
			if math.IsNaN(s.X[k]) || math.IsNaN(base.X[k]) || base.X[k] == 0 {
				continue
			}
			ratios = append(ratios, s.X[k]/base.X[k])
		}
		if len(ratios) > 0 {
			out[s.HID] = stats.Mean(ratios)
		}
	}
	return out
}
