package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pipesched/internal/workload"
)

// quickSpec returns a spec small enough for unit tests but large enough to
// exercise every code path.
func quickSpec() CurveSpec {
	return CurveSpec{
		ID:     "test",
		Title:  "test curve",
		Family: workload.E1, Stages: 10, Processors: 10,
		Trials: 6, Points: 8, BaseSeed: 1,
	}
}

func TestTradeoffCurveShape(t *testing.T) {
	c := TradeoffCurve(quickSpec())
	if len(c.Series) != 6 {
		t.Fatalf("%d series, want 6", len(c.Series))
	}
	wantIDs := []string{"H1", "H2", "H3", "H4", "H5", "H6"}
	for i, s := range c.Series {
		if s.HID != wantIDs[i] {
			t.Errorf("series %d = %s, want %s", i, s.HID, wantIDs[i])
		}
		if len(s.X) != 8 || len(s.Y) != 8 || len(s.Successes) != 8 {
			t.Errorf("%s: lengths %d/%d/%d, want 8", s.HID, len(s.X), len(s.Y), len(s.Successes))
		}
		for k := range s.X {
			if math.IsNaN(s.X[k]) != math.IsNaN(s.Y[k]) {
				t.Errorf("%s point %d: NaN mismatch", s.HID, k)
			}
			if s.Successes[k] > 6 || s.Successes[k] < 0 {
				t.Errorf("%s point %d: %d successes of 6 trials", s.HID, k, s.Successes[k])
			}
			if (s.Successes[k] == 0) != math.IsNaN(s.X[k]) {
				t.Errorf("%s point %d: successes=%d but X NaN=%v", s.HID, k, s.Successes[k], math.IsNaN(s.X[k]))
			}
		}
	}
	if len(c.PeriodGrid) != 8 || len(c.LatencyGrid) != 8 {
		t.Errorf("grid sizes %d/%d", len(c.PeriodGrid), len(c.LatencyGrid))
	}
	// Grids are increasing.
	for i := 1; i < len(c.PeriodGrid); i++ {
		if c.PeriodGrid[i] <= c.PeriodGrid[i-1] {
			t.Fatalf("period grid not increasing: %v", c.PeriodGrid)
		}
	}
}

// At the largest swept period every period-constrained heuristic succeeds
// on every instance (the grid tops out at the mean single-processor
// period, and per-instance periods concentrate near it... not exactly —
// so assert the weaker, always-true property: success counts are
// non-decreasing along the period grid).
func TestSuccessMonotoneAlongGrid(t *testing.T) {
	c := TradeoffCurve(quickSpec())
	for _, s := range c.Series[:4] { // H1..H4: period-constrained
		for k := 1; k < len(s.Successes); k++ {
			if s.Successes[k] < s.Successes[k-1] {
				t.Errorf("%s: successes decreased along grid: %v", s.HID, s.Successes)
			}
		}
	}
	for _, s := range c.Series[4:] { // H5, H6: latency-constrained
		for k := 1; k < len(s.Successes); k++ {
			if s.Successes[k] < s.Successes[k-1] {
				t.Errorf("%s: successes decreased along latency grid: %v", s.HID, s.Successes)
			}
		}
	}
}

// Averaged achieved latencies of the splitter heuristics decrease (weakly)
// as the period constraint loosens, *conditioned on the same success set*;
// with varying success sets the average can wiggle, so assert only the
// H5/H6 structural identity: their success pattern is identical (same
// failure threshold, proved in the heuristics package).
func TestH5H6SameSuccessPattern(t *testing.T) {
	c := TradeoffCurve(quickSpec())
	h5, h6 := c.Series[4], c.Series[5]
	for k := range h5.Successes {
		if h5.Successes[k] != h6.Successes[k] {
			t.Errorf("point %d: H5 %d successes, H6 %d", k, h5.Successes[k], h6.Successes[k])
		}
	}
}

// The deepest point of the H1 curve must not report a latency below the
// optimal-latency mean of its successful instances; sanity-check against
// gross aggregation bugs by requiring all plotted values positive and
// finite.
func TestCurveValuesSane(t *testing.T) {
	c := TradeoffCurve(quickSpec())
	for _, s := range c.Series {
		for k := range s.X {
			if math.IsNaN(s.X[k]) {
				continue
			}
			if s.X[k] <= 0 || s.Y[k] <= 0 || math.IsInf(s.X[k], 0) || math.IsInf(s.Y[k], 0) {
				t.Errorf("%s point %d: (%g, %g)", s.HID, k, s.X[k], s.Y[k])
			}
		}
	}
}

func TestTradeoffCurveDeterministic(t *testing.T) {
	a := TradeoffCurve(quickSpec())
	b := TradeoffCurve(quickSpec())
	for i := range a.Series {
		for k := range a.Series[i].X {
			ax, bx := a.Series[i].X[k], b.Series[i].X[k]
			if math.IsNaN(ax) && math.IsNaN(bx) {
				continue
			}
			if ax != bx || a.Series[i].Y[k] != b.Series[i].Y[k] {
				t.Fatalf("series %d point %d differs between runs", i, k)
			}
		}
	}
}

func TestFailureThresholds(t *testing.T) {
	tbl := FailureThresholds(ThresholdSpec{
		Family: workload.E1, Stages: []int{5, 10}, Processors: 10,
		Trials: 6, BaseSeed: 3,
	})
	if len(tbl.HIDs) != 6 {
		t.Fatalf("HIDs = %v", tbl.HIDs)
	}
	for _, hid := range tbl.HIDs {
		vals := tbl.Values[hid]
		if len(vals) != 2 {
			t.Fatalf("%s: %d values", hid, len(vals))
		}
		for _, v := range vals {
			if v <= 0 || math.IsNaN(v) {
				t.Errorf("%s: threshold %g", hid, v)
			}
		}
	}
	// The paper's observation: H5 and H6 coincide exactly.
	for i := range tbl.Values["H5"] {
		if tbl.Values["H5"][i] != tbl.Values["H6"][i] {
			t.Errorf("H5/H6 thresholds differ at index %d", i)
		}
	}
	// H1's threshold (min achievable period) is the smallest among the
	// mono/3-explo splitters in the paper's Table 1; assert the weaker
	// invariant that H1 ≤ H2 (3-Explo mono is never better than plain
	// splitting at pure period chasing on these sizes — in the paper H2
	// has the largest thresholds). Allow float slack.
	for i := range tbl.Values["H1"] {
		if tbl.Values["H1"][i] > tbl.Values["H2"][i]*1.5+1e-9 {
			t.Errorf("H1 threshold %g wildly above H2 %g at index %d",
				tbl.Values["H1"][i], tbl.Values["H2"][i], i)
		}
	}
}

func TestPaperFiguresRegistry(t *testing.T) {
	figs := PaperFigures()
	if len(figs) != 12 {
		t.Fatalf("%d paper figures, want 12", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		seen[f.ID] = true
		if f.Trials != workload.PaperTrials {
			t.Errorf("%s: %d trials", f.ID, f.Trials)
		}
	}
	for _, id := range []string{"fig2a", "2a", "fig7b", "7b"} {
		if _, ok := FigureSpec(id); !ok {
			t.Errorf("FigureSpec(%q) not found", id)
		}
	}
	if _, ok := FigureSpec("fig9z"); ok {
		t.Error("FigureSpec accepted a bogus id")
	}
	if len(PaperTables()) != 4 {
		t.Errorf("PaperTables = %d entries, want 4", len(PaperTables()))
	}
}

func TestWriteDATAndCSV(t *testing.T) {
	c := TradeoffCurve(CurveSpec{
		ID: "mini", Title: "mini", Family: workload.E1,
		Stages: 5, Processors: 5, Trials: 3, Points: 4, BaseSeed: 9,
	})
	var dat bytes.Buffer
	if err := WriteDAT(&dat, c); err != nil {
		t.Fatal(err)
	}
	out := dat.String()
	for _, want := range []string{"# mini", "# series 0: Sp mono, P fix (H1)", "# series 5: Sp bi, L fix (H6)"} {
		if !strings.Contains(out, want) {
			t.Errorf("DAT output missing %q", want)
		}
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "figure,heuristic,name,period,latency,successes" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Error("CSV has no data rows")
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "mini,H") {
			t.Errorf("CSV row %q", l)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	c := TradeoffCurve(CurveSpec{
		ID: "mini", Title: "mini", Family: workload.E4,
		Stages: 5, Processors: 5, Trials: 3, Points: 4, BaseSeed: 11,
	})
	out := RenderASCII(c)
	for _, want := range []string{"mini", "Period", "Latency", "H1 Sp mono, P fix"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII plot missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTableASCIIAndCSV(t *testing.T) {
	tbl := FailureThresholds(ThresholdSpec{
		Family: workload.E4, Stages: []int{5}, Processors: 5, Trials: 3, BaseSeed: 17,
	})
	out := RenderTableASCII(tbl)
	for _, want := range []string{"E4", "H1", "H6", "n=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WriteTableCSV(&csv, tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "E4,H1") {
		t.Errorf("table CSV:\n%s", csv.String())
	}
}

func TestParMapOrderAndConcurrency(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := parMap(7, in, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// workers < 1 clamps to serial but still completes.
	out = parMap(0, in[:5], func(x int) int { return -x })
	if out[3] != -3 {
		t.Fatal("clamped worker pool broken")
	}
}

func TestLinspace(t *testing.T) {
	g := linspace(2, 4, 5)
	want := []float64{2, 2.5, 3, 3.5, 4}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("linspace = %v", g)
		}
	}
	if g := linspace(3, 3, 5); len(g) != 1 || g[0] != 3 {
		t.Errorf("degenerate linspace = %v", g)
	}
	if g := linspace(5, 1, 5); len(g) != 1 {
		t.Errorf("reversed linspace = %v", g)
	}
}
