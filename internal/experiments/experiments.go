// Package experiments reproduces the paper's evaluation (Section 5):
// latency-versus-period trade-off curves for the six heuristics over the
// four workload families E1–E4 (Figures 2–7) and the failure-threshold
// table (Table 1). Runs fan out over instances with a bounded worker pool
// and are fully reproducible from the base seed.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/portfolio"
	"pipesched/internal/stats"
	"pipesched/internal/workload"
)

// CurveSpec describes one trade-off figure: a workload family at a given
// size, swept over a grid of constraint values and averaged over Trials
// random instances.
type CurveSpec struct {
	ID         string // e.g. "fig2a"
	Title      string // e.g. "(E1) homogeneous comms, 10 stages, p=10"
	Family     workload.Family
	Stages     int
	Processors int
	Trials     int   // instances averaged per grid point (paper: 50)
	Points     int   // sweep grid size (0 → DefaultPoints)
	BaseSeed   int64 // instance i uses BaseSeed+i
	// Concurrency bounds the worker pool (0 → GOMAXPROCS).
	Concurrency int
}

// DefaultPoints is the sweep grid size when CurveSpec.Points is zero.
const DefaultPoints = 25

// Series is the aggregated curve of one heuristic: point k plots
// (X[k], Y[k]) and was averaged over Successes[k] of the spec's Trials
// instances. Grid points where every instance failed carry NaN
// coordinates and Successes == 0.
type Series struct {
	Name      string // heuristic display name (paper's plot label)
	HID       string // heuristic identifier H1..H6
	X, Y      []float64
	Successes []int
}

// Curve is a fully computed figure.
type Curve struct {
	Spec   CurveSpec
	Series []Series
	// PeriodGrid and LatencyGrid record the swept constraint values
	// (periods for H1–H4, latencies for H5–H6).
	PeriodGrid  []float64
	LatencyGrid []float64
}

// TradeoffCurve runs the full sweep for one figure.
//
// Period-constrained heuristics sweep a period grid anchored between the
// mean period lower bound and the mean single-processor period, plotting
// (target period, mean achieved latency over successful instances).
// Latency-constrained heuristics sweep a latency grid anchored between the
// mean optimal latency and the mean latency that unconstrained splitting
// reaches, plotting (mean achieved period, target latency). Averaging over
// successes only mirrors the paper, which reports failures separately in
// Table 1.
func TradeoffCurve(spec CurveSpec) Curve {
	spec = normalize(spec)
	instances := workload.GenerateSet(spec.Family, spec.Stages, spec.Processors, spec.Trials, spec.BaseSeed)
	evs := make([]*mapping.Evaluator, len(instances))
	for i, in := range instances {
		evs[i] = in.Evaluator()
	}

	// Grid anchors, averaged over the instance set.
	var lbW, p0W, latLoW, latHiW stats.Welford
	type anchor struct{ lb, p0, latLo, latHi float64 }
	anchors := parMap(spec.Concurrency, evs, func(ev *mapping.Evaluator) anchor {
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		_, optLat := ev.OptimalLatency()
		// The latency the plain splitter reaches when told to chase an
		// impossible period: the far end of the latency axis.
		deep, err := heuristics.SpMonoP{}.MinimizeLatency(ev, 0)
		latHi := deep.Metrics.Latency
		if err != nil {
			var inf *heuristics.InfeasibleError
			if e, ok := err.(*heuristics.InfeasibleError); ok {
				inf = e
				latHi = inf.Best.Metrics.Latency
			}
		}
		return anchor{
			lb:    lowerbound.Period(ev),
			p0:    ev.Period(single),
			latLo: optLat,
			latHi: latHi,
		}
	})
	for _, a := range anchors {
		lbW.Add(a.lb)
		p0W.Add(a.p0)
		latLoW.Add(a.latLo)
		latHiW.Add(a.latHi)
	}
	periodGrid := linspace(lbW.Mean(), p0W.Mean(), spec.Points)
	latHi := latHiW.Mean()
	if latHi <= latLoW.Mean() {
		latHi = latLoW.Mean() * 1.5 // degenerate: splitting never helped
	}
	latencyGrid := linspace(latLoW.Mean(), latHi, spec.Points)

	curve := Curve{Spec: spec, PeriodGrid: periodGrid, LatencyGrid: latencyGrid}
	for _, h := range heuristics.PeriodHeuristics() {
		curve.Series = append(curve.Series, sweepPeriod(spec, evs, h, periodGrid))
	}
	for _, h := range heuristics.LatencyHeuristics() {
		curve.Series = append(curve.Series, sweepLatency(spec, evs, h, latencyGrid))
	}
	return curve
}

func normalize(spec CurveSpec) CurveSpec {
	if spec.Points <= 0 {
		spec.Points = DefaultPoints
	}
	if spec.Trials <= 0 {
		spec.Trials = workload.PaperTrials
	}
	if spec.Concurrency <= 0 {
		spec.Concurrency = runtime.GOMAXPROCS(0)
	}
	return spec
}

func sweepPeriod(spec CurveSpec, evs []*mapping.Evaluator, h heuristics.PeriodConstrained, grid []float64) Series {
	s := Series{
		Name:      h.Name(),
		HID:       h.ID(),
		X:         make([]float64, len(grid)),
		Y:         make([]float64, len(grid)),
		Successes: make([]int, len(grid)),
	}
	// One task per instance: each returns the achieved latency per grid
	// point (NaN on failure). Sweeping inside the task keeps results
	// independent of scheduling order.
	rows := parMap(spec.Concurrency, evs, func(ev *mapping.Evaluator) []float64 {
		row := make([]float64, len(grid))
		for k, target := range grid {
			res, err := h.MinimizeLatency(ev, target)
			if err != nil {
				row[k] = math.NaN()
				continue
			}
			row[k] = res.Metrics.Latency
		}
		return row
	})
	for k, target := range grid {
		var acc stats.Welford
		for _, row := range rows {
			if !math.IsNaN(row[k]) {
				acc.Add(row[k])
			}
		}
		s.Successes[k] = acc.N()
		if acc.N() == 0 {
			s.X[k], s.Y[k] = math.NaN(), math.NaN()
			continue
		}
		s.X[k], s.Y[k] = target, acc.Mean()
	}
	return s
}

func sweepLatency(spec CurveSpec, evs []*mapping.Evaluator, h heuristics.LatencyConstrained, grid []float64) Series {
	s := Series{
		Name:      h.Name(),
		HID:       h.ID(),
		X:         make([]float64, len(grid)),
		Y:         make([]float64, len(grid)),
		Successes: make([]int, len(grid)),
	}
	rows := parMap(spec.Concurrency, evs, func(ev *mapping.Evaluator) []float64 {
		row := make([]float64, len(grid))
		for k, target := range grid {
			res, err := h.MinimizePeriod(ev, target)
			if err != nil {
				row[k] = math.NaN()
				continue
			}
			row[k] = res.Metrics.Period
		}
		return row
	})
	for k, target := range grid {
		var acc stats.Welford
		for _, row := range rows {
			if !math.IsNaN(row[k]) {
				acc.Add(row[k])
			}
		}
		s.Successes[k] = acc.N()
		if acc.N() == 0 {
			s.X[k], s.Y[k] = math.NaN(), math.NaN()
			continue
		}
		s.X[k], s.Y[k] = acc.Mean(), target
	}
	return s
}

// parMap applies fn to every element of in through a portfolio.Map worker
// pool — bounded per call, not shared across calls — and returns the
// results in input order.
func parMap[T, R any](workers int, in []T, fn func(T) R) []R {
	if workers < 1 {
		workers = 1
	}
	out, _ := portfolio.Map(context.Background(), workers, in, func(_ context.Context, v T) R {
		return fn(v)
	})
	return out
}

func linspace(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// ThresholdSpec describes one failure-threshold table (the paper's Table 1
// is four of these, one per family, with p = 10).
type ThresholdSpec struct {
	Family      workload.Family
	Stages      []int // paper: 5, 10, 20, 40
	Processors  int
	Trials      int
	BaseSeed    int64
	Concurrency int
}

// ThresholdTable holds mean failure thresholds: Values[hid][i] is the mean
// threshold of heuristic hid at Stages[i]. For H1–H4 the threshold is the
// smallest period the heuristic can reach (it fails below it); for H5–H6
// it is the optimal latency (they fail below it), hence H5 and H6 always
// coincide — the equality the paper remarks on.
type ThresholdTable struct {
	Spec   ThresholdSpec
	HIDs   []string // row order: H1..H6
	Names  map[string]string
	Values map[string][]float64
}

// FailureThresholds computes the table.
func FailureThresholds(spec ThresholdSpec) ThresholdTable {
	if spec.Trials <= 0 {
		spec.Trials = workload.PaperTrials
	}
	if spec.Concurrency <= 0 {
		spec.Concurrency = runtime.GOMAXPROCS(0)
	}
	tbl := ThresholdTable{
		Spec:   spec,
		Names:  make(map[string]string),
		Values: make(map[string][]float64),
	}
	for _, h := range heuristics.PeriodHeuristics() {
		tbl.HIDs = append(tbl.HIDs, h.ID())
		tbl.Names[h.ID()] = h.Name()
		tbl.Values[h.ID()] = make([]float64, len(spec.Stages))
	}
	for _, h := range heuristics.LatencyHeuristics() {
		tbl.HIDs = append(tbl.HIDs, h.ID())
		tbl.Names[h.ID()] = h.Name()
		tbl.Values[h.ID()] = make([]float64, len(spec.Stages))
	}
	for si, n := range spec.Stages {
		instances := workload.GenerateSet(spec.Family, n, spec.Processors, spec.Trials, spec.BaseSeed)
		type row struct{ vals map[string]float64 }
		rows := parMap(spec.Concurrency, instances, func(in workload.Instance) row {
			ev := in.Evaluator()
			vals := make(map[string]float64, 6)
			for _, h := range heuristics.PeriodHeuristics() {
				v, err := heuristics.MinAchievablePeriod(ev, h)
				if err != nil {
					// Generated workloads are comm-homogeneous, so every
					// paper heuristic supports them; a failure here is a
					// harness bug, like an invalid workload.Config.
					panic(err)
				}
				vals[h.ID()] = v
			}
			lt := heuristics.LatencyFailureThreshold(ev)
			for _, h := range heuristics.LatencyHeuristics() {
				vals[h.ID()] = lt
			}
			return row{vals: vals}
		})
		for _, hid := range tbl.HIDs {
			var acc stats.Welford
			for _, r := range rows {
				acc.Add(r.vals[hid])
			}
			tbl.Values[hid][si] = acc.Mean()
		}
	}
	return tbl
}

// PaperFigures returns the specs of every trade-off figure in the paper's
// evaluation, keyed exactly as DESIGN.md's experiment index.
func PaperFigures() []CurveSpec {
	mk := func(id string, fam workload.Family, n, p int, seed int64) CurveSpec {
		return CurveSpec{
			ID:     id,
			Title:  fmt.Sprintf("(%s) %s — %d stages, p=%d", fam, fam.Description(), n, p),
			Family: fam, Stages: n, Processors: p,
			Trials: workload.PaperTrials, BaseSeed: seed,
		}
	}
	return []CurveSpec{
		mk("fig2a", workload.E1, 10, 10, 1000),
		mk("fig2b", workload.E1, 40, 10, 2000),
		mk("fig3a", workload.E2, 10, 10, 3000),
		mk("fig3b", workload.E2, 40, 10, 4000),
		mk("fig4a", workload.E3, 5, 10, 5000),
		mk("fig4b", workload.E3, 20, 10, 6000),
		mk("fig5a", workload.E4, 5, 10, 7000),
		mk("fig5b", workload.E4, 20, 10, 8000),
		mk("fig6a", workload.E1, 40, 100, 9000),
		mk("fig6b", workload.E2, 40, 100, 10000),
		mk("fig7a", workload.E3, 10, 100, 11000),
		mk("fig7b", workload.E4, 40, 100, 12000),
	}
}

// FigureSpec looks a paper figure up by identifier ("fig2a", or the short
// form "2a").
func FigureSpec(id string) (CurveSpec, bool) {
	for _, spec := range PaperFigures() {
		if spec.ID == id || spec.ID == "fig"+id {
			return spec, true
		}
	}
	return CurveSpec{}, false
}

// PaperTables returns the four Table-1 specs (one per family, p = 10).
func PaperTables() []ThresholdSpec {
	var out []ThresholdSpec
	for i, fam := range workload.Families() {
		out = append(out, ThresholdSpec{
			Family:     fam,
			Stages:     workload.PaperStages(),
			Processors: 10,
			Trials:     workload.PaperTrials,
			BaseSeed:   int64(20000 + 1000*i),
		})
	}
	return out
}
