package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pipesched/internal/textplot"
)

// WriteDAT emits a curve in gnuplot-friendly format: one indexed block per
// series ("period latency successes" columns), blocks separated by two
// blank lines, grid points where every instance failed omitted.
func WriteDAT(w io.Writer, c Curve) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n# columns: x(period) y(latency) successes\n", c.Spec.ID, c.Spec.Title); err != nil {
		return err
	}
	for bi, s := range c.Series {
		if bi > 0 {
			if _, err := fmt.Fprint(w, "\n\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# series %d: %s (%s)\n", bi, s.Name, s.HID); err != nil {
			return err
		}
		for k := range s.X {
			if math.IsNaN(s.X[k]) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%.6g %.6g %d\n", s.X[k], s.Y[k], s.Successes[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits a curve as CSV with one row per (series, grid point).
func WriteCSV(w io.Writer, c Curve) error {
	if _, err := fmt.Fprintln(w, "figure,heuristic,name,period,latency,successes"); err != nil {
		return err
	}
	for _, s := range c.Series {
		for k := range s.X {
			if math.IsNaN(s.X[k]) {
				continue
			}
			_, err := fmt.Fprintf(w, "%s,%s,%q,%.6g,%.6g,%d\n",
				c.Spec.ID, s.HID, s.Name, s.X[k], s.Y[k], s.Successes[k])
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderASCII draws the curve as a terminal plot mirroring the paper's
// figures: period on the x-axis, latency on the y-axis, one marker per
// heuristic.
func RenderASCII(c Curve) string {
	p := textplot.New(fmt.Sprintf("%s: %s", c.Spec.ID, c.Spec.Title), "Period", "Latency", 72, 24)
	for _, s := range c.Series {
		p.Add(textplot.Series{Name: fmt.Sprintf("%s %s", s.HID, s.Name), X: s.X, Y: s.Y})
	}
	return p.Render()
}

// WriteTableCSV emits a threshold table as CSV (one row per heuristic, one
// column per stage count).
func WriteTableCSV(w io.Writer, t ThresholdTable) error {
	if _, err := fmt.Fprintf(w, "family,heuristic,name"); err != nil {
		return err
	}
	for _, n := range t.Spec.Stages {
		if _, err := fmt.Fprintf(w, ",n=%d", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, hid := range t.HIDs {
		if _, err := fmt.Fprintf(w, "%s,%s,%q", t.Spec.Family, hid, t.Names[hid]); err != nil {
			return err
		}
		for i := range t.Spec.Stages {
			if _, err := fmt.Fprintf(w, ",%.4g", t.Values[hid][i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderTableASCII draws a threshold table in the layout of the paper's
// Table 1.
func RenderTableASCII(t ThresholdTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure thresholds — %s (%s), p=%d, %d trials\n",
		t.Spec.Family, t.Spec.Family.Description(), t.Spec.Processors, t.Spec.Trials)
	fmt.Fprintf(&b, "%-6s %-16s", "heur.", "name")
	for _, n := range t.Spec.Stages {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("n=%d", n))
	}
	b.WriteString("\n")
	for _, hid := range t.HIDs {
		fmt.Fprintf(&b, "%-6s %-16s", hid, t.Names[hid])
		for i := range t.Spec.Stages {
			fmt.Fprintf(&b, " %9.3g", t.Values[hid][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
