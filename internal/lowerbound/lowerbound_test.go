package lowerbound

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/exact"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/workload"
)

// Validity: the bound never exceeds the exact minimum period.
func TestPeriodBoundIsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		p := 1 + r.Intn(4)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(20))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(30))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		ev := mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
		opt, err := exact.MinPeriod(ev)
		if err != nil {
			return false
		}
		return Period(ev) <= opt.Metrics.Period*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Tightness on degenerate instances where the exact optimum is known.
func TestPeriodBoundTightCases(t *testing.T) {
	// Uniform work, equal speeds, zero comms: bound = exact = W/(p·s)
	// when n is a multiple of p.
	app := pipeline.MustNew([]float64{6, 6, 6, 6}, make([]float64, 5))
	plat := platform.MustNew([]float64{3, 3}, 10)
	ev := mapping.NewEvaluator(app, plat)
	opt, err := exact.MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	lb := Period(ev)
	if math.Abs(lb-opt.Metrics.Period) > 1e-9 {
		t.Errorf("lb = %g, exact = %g (should be tight here)", lb, opt.Metrics.Period)
	}
	// Single processor: bound must include the full cycle's comm terms
	// δ_0/b + W/s + δ_n/b? The bound only guarantees δ_0/b + w_1/s +
	// min δ/b — check it is still within the exact value.
	app2 := pipeline.MustNew([]float64{8}, []float64{20, 30})
	plat2 := platform.MustNew([]float64{4}, 10)
	ev2 := mapping.NewEvaluator(app2, plat2)
	opt2, err := exact.MinPeriod(ev2)
	if err != nil {
		t.Fatal(err)
	}
	lb2 := Period(ev2)
	// One stage, one processor: first-interval bound is exact:
	// 2 + 2 + 3 = 7.
	if math.Abs(lb2-opt2.Metrics.Period) > 1e-9 {
		t.Errorf("single-stage lb = %g, exact = %g", lb2, opt2.Metrics.Period)
	}
}

// Each constituent bound must be respected: construct instances where a
// specific bound dominates.
func TestPeriodBoundComponents(t *testing.T) {
	// Heavy single stage dominates: w = {1, 100, 1}, fast procs.
	app := pipeline.MustNew([]float64{1, 100, 1}, make([]float64, 4))
	plat := platform.MustNew([]float64{10, 10, 10}, 10)
	ev := mapping.NewEvaluator(app, plat)
	if lb := Period(ev); lb < 10-1e-9 { // 100/10
		t.Errorf("heavy-stage bound: %g, want ≥ 10", lb)
	}
	// Communication-in dominates: huge δ_0.
	app2 := pipeline.MustNew([]float64{1}, []float64{1000, 0})
	plat2 := platform.MustNew([]float64{20}, 10)
	ev2 := mapping.NewEvaluator(app2, plat2)
	if lb := Period(ev2); lb < 100-1e-9 { // 1000/10
		t.Errorf("comm bound: %g, want ≥ 100", lb)
	}
	// Total-work bound dominates: many equal stages, many equal procs.
	app3, err := pipeline.Uniform(12, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	plat3 := platform.MustNew([]float64{2, 2, 2, 2}, 10)
	ev3 := mapping.NewEvaluator(app3, plat3)
	if lb := Period(ev3); lb < 60.0/8.0-1e-9 {
		t.Errorf("work bound: %g, want ≥ 7.5", lb)
	}
}

func TestLatencyBoundIsExactOptimum(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E2, Stages: 10, Processors: 5, Seed: 4})
	ev := in.Evaluator()
	_, opt := ev.OptimalLatency()
	if got := Latency(ev); got != opt {
		t.Errorf("Latency bound = %g, want %g", got, opt)
	}
}

// On paper-sized workloads the bound must stay positive and below the
// single-processor period (which is an upper bound on the optimum).
func TestPeriodBoundOnPaperWorkloads(t *testing.T) {
	for _, fam := range workload.Families() {
		for seed := int64(0); seed < 10; seed++ {
			in := workload.Generate(workload.Config{Family: fam, Stages: 20, Processors: 10, Seed: seed})
			ev := in.Evaluator()
			lb := Period(ev)
			if lb <= 0 {
				t.Fatalf("%s: non-positive bound", fam)
			}
			single := mapping.SingleProcessor(in.App, in.Plat, in.Plat.Fastest())
			if ub := ev.Period(single); lb > ub*(1+1e-9) {
				t.Fatalf("%s seed %d: bound %g exceeds single-proc period %g", fam, seed, lb, ub)
			}
		}
	}
}

func TestPeriodBoundHeterogeneousFallback(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{2, 4}, [][]float64{{0, 8}, {8, 0}})
	if err != nil {
		t.Fatal(err)
	}
	app := pipeline.MustNew([]float64{6, 6}, []float64{1, 1, 1})
	ev := mapping.NewEvaluator(app, plat)
	lb := Period(ev)
	// Compute-only: max(12/6, 6/4, chains{6,6}/4 = 6/4) = 2.
	if math.Abs(lb-2) > 1e-9 {
		t.Errorf("heterogeneous fallback bound = %g, want 2", lb)
	}
}
