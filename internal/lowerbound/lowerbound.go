// Package lowerbound computes polynomial lower bounds on the period and
// latency of any interval mapping. The experiment harness uses them to
// anchor sweep grids, and the tests use them to sandwich heuristic
// results (lower bound ≤ heuristic ≤ trivial upper bound).
package lowerbound

import (
	"pipesched/internal/chains"
	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// Period returns a valid lower bound on the period of every interval
// mapping of the evaluator's pipeline onto its platform. It is the
// maximum of four independently valid bounds:
//
//  1. total work over total platform speed (perfect load balance);
//  2. the heaviest single stage on the fastest processor;
//  3. the first interval's incompressible cycle terms: δ_0/b + w_1/s_max
//     plus the smallest possible outgoing communication;
//  4. the optimal homogeneous chains-to-chains bottleneck at speed s_max
//     (interval structure must be respected even ignoring communication).
//
// Bound 4 dominates 1 and 2 on most instances but all are kept: they are
// cheap, and each is individually exercised by the tests.
func Period(ev *mapping.Evaluator) float64 {
	app, plat := ev.Pipeline(), ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		// Conservative fallback: communications can be free on some
		// links, so only the computation bounds apply.
		return computeOnlyBound(ev)
	}
	b := plat.Bandwidth()
	n := app.Stages()
	sMax := plat.MaxSpeed()

	lb := app.TotalWork() / plat.TotalSpeed()
	if v := app.MaxWork() / sMax; v > lb {
		lb = v
	}

	// First interval: contains stage 1, pays δ_0 in and some δ_e out.
	minOut := app.Delta(1)
	for k := 2; k <= n; k++ {
		if d := app.Delta(k); d < minOut {
			minOut = d
		}
	}
	if v := app.Delta(0)/b + app.Work(1)/sMax + minOut/b; v > lb {
		lb = v
	}
	// Last interval mirrors the first.
	minIn := app.Delta(0)
	for k := 1; k < n; k++ {
		if d := app.Delta(k); d < minIn {
			minIn = d
		}
	}
	if v := minIn/b + app.Work(n)/sMax + app.Delta(n)/b; v > lb {
		lb = v
	}

	// Chains relaxation: any interval mapping induces a partition into
	// at most p intervals; the heaviest one runs at speed ≤ s_max.
	part, err := chains.HomogeneousDP(app.Works(), plat.Processors())
	if err == nil {
		if v := part.Bottleneck / sMax; v > lb {
			lb = v
		}
	}
	return lb
}

func computeOnlyBound(ev *mapping.Evaluator) float64 {
	app, plat := ev.Pipeline(), ev.Platform()
	lb := app.TotalWork() / plat.TotalSpeed()
	if v := app.MaxWork() / plat.MaxSpeed(); v > lb {
		lb = v
	}
	part, err := chains.HomogeneousDP(app.Works(), plat.Processors())
	if err == nil {
		if v := part.Bottleneck / plat.MaxSpeed(); v > lb {
			lb = v
		}
	}
	return lb
}

// Latency returns the exact minimum latency (Lemma 1: the whole pipeline
// on the fastest processor); provided here for symmetry with Period so
// harness code can treat both criteria uniformly.
func Latency(ev *mapping.Evaluator) float64 {
	_, l := ev.OptimalLatency()
	return l
}
