package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestParseScheduleRejects(t *testing.T) {
	for name, src := range map[string]string{
		"bad-prob":      `{"rules":[{"drop_prob":1.5}]}`,
		"neg-prob":      `{"rules":[{"drop_prob":-0.1}]}`,
		"bad-status":    `{"rules":[{"status":42,"status_prob":0.5}]}`,
		"neg-latency":   `{"rules":[{"latency_ms":-1}]}`,
		"on-gt-period":  `{"rules":[{"period_ms":100,"on_ms":200}]}`,
		"end-lt-start":  `{"rules":[{"start_ms":100,"end_ms":50}]}`,
		"unknown-field": `{"rules":[{"nope":1}]}`,
		"not-json":      `{`,
	} {
		if _, err := ParseSchedule([]byte(src)); err == nil {
			t.Errorf("%s: ParseSchedule accepted %s", name, src)
		}
	}
	if _, err := ParseSchedule([]byte(`{"seed":7,"rules":[{"name":"x","latency_ms":5}]}`)); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestTransportDropIsInjectedError: a full drop fails every request with
// an error detectable as injected — including through the *url.Error
// wrapping http.Client applies.
func TestTransportDropIsInjectedError(t *testing.T) {
	ts := okServer(t)
	client := &http.Client{Transport: NewTransport(nil, &Schedule{Seed: 1, Rules: []Rule{{Name: "part", DropProb: 1}}})}
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if !Injected(err) {
		t.Fatalf("drop not detectable as injected: %v", err)
	}
	var uerr *url.Error
	if !errors.As(err, &uerr) {
		t.Fatalf("client error is not a url.Error: %T", err)
	}
}

// TestTransportPartition: a partition rule drops deterministically — no
// probability draw — counts separately from probabilistic drops, and
// flaps with the period/on window, which is exactly the churn shape the
// membership e2e phase injects.
func TestTransportPartition(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, &Schedule{Seed: 1, Rules: []Rule{{Name: "split", Partition: true}}})
	client := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		if _, err := client.Get(ts.URL); err == nil {
			t.Fatal("partitioned request succeeded")
		} else if !Injected(err) {
			t.Fatalf("partition not detectable as injected: %v", err)
		}
	}
	st := tr.Stats()
	if st.Partitioned != 3 || st.Dropped != 0 || st.Passed != 0 {
		t.Fatalf("stats %+v, want 3 partitioned and nothing else", st)
	}

	// Partition composes with the flapping window: outside the on-window
	// the request passes untouched.
	if _, err := ParseSchedule([]byte(`{"rules":[{"name":"churn","period_ms":100,"on_ms":30,"partition":true}]}`)); err != nil {
		t.Fatalf("churn schedule rejected: %v", err)
	}
	r := Rule{Partition: true, PeriodMS: 100, OnMS: 30}
	if !r.activeAt(10, "h") {
		t.Fatal("partition inactive inside the on-window")
	}
	if r.activeAt(60, "h") {
		t.Fatal("partition active outside the on-window")
	}

	// Partition is exclusive with the probabilistic outcomes — it already
	// decides the fate of every matched request.
	if _, err := ParseSchedule([]byte(`{"rules":[{"name":"x","partition":true,"drop_prob":0.5}]}`)); err == nil {
		t.Fatal("schedule mixing partition with drop_prob accepted")
	}
}

// TestTransportStatusInjection: a synthesized status carries the marker
// header and never reaches the upstream.
func TestTransportStatusInjection(t *testing.T) {
	upstream := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		upstream++
	}))
	defer ts.Close()
	tr := NewTransport(nil, &Schedule{Seed: 1, Rules: []Rule{{Name: "burst", Status: 500, StatusProb: 1}}})
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want injected 500", resp.StatusCode)
	}
	if resp.Header.Get(Header) == "" {
		t.Fatal("synthesized response missing the injected marker header")
	}
	if upstream != 0 {
		t.Fatalf("upstream saw %d requests for an injected status", upstream)
	}
	if st := tr.Stats(); st.Statuses != 1 || st.Passed != 0 {
		t.Fatalf("stats %+v, want 1 synthesized status", st)
	}
}

// TestTransportLatency: injected latency delays the round trip but the
// response is the upstream's own.
func TestTransportLatency(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, &Schedule{Seed: 1, Rules: []Rule{{Name: "slow", LatencyMS: 80}}})
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("body %q", b)
	}
	if took := time.Since(start); took < 80*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 80ms injected latency", took)
	}
	if st := tr.Stats(); st.Delayed != 1 || st.DelayedMS < 80 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTransportLatencyRespectsContext: a cancelled caller never waits
// out an injected delay.
func TestTransportLatencyRespectsContext(t *testing.T) {
	ts := okServer(t)
	tr := NewTransport(nil, &Schedule{Seed: 1, Rules: []Rule{{Name: "glacial", LatencyMS: 10_000}}})
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("glacial request succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancelled request still took %v", took)
	}
}

// TestRuleHostAndWindowMatching: host filters and time windows bound a
// rule's blast radius.
func TestRuleHostAndWindowMatching(t *testing.T) {
	r := Rule{Hosts: []string{"a:1"}, StartMS: 100, EndMS: 200}
	for _, tc := range []struct {
		elapsed int64
		host    string
		want    bool
	}{
		{150, "a:1", true},
		{150, "A:1", true}, // case-insensitive
		{150, "b:2", false},
		{50, "a:1", false},
		{200, "a:1", false}, // end exclusive
	} {
		if got := r.activeAt(tc.elapsed, tc.host); got != tc.want {
			t.Errorf("activeAt(%d, %q) = %v, want %v", tc.elapsed, tc.host, got, tc.want)
		}
	}
}

// TestRuleFlapping: a period/on pair gates activity to the duty cycle.
func TestRuleFlapping(t *testing.T) {
	r := Rule{PeriodMS: 100, OnMS: 30}
	for _, tc := range []struct {
		elapsed int64
		want    bool
	}{{0, true}, {29, true}, {30, false}, {99, false}, {100, true}, {129, true}, {130, false}} {
		if got := r.activeAt(tc.elapsed, "x"); got != tc.want {
			t.Errorf("flapping activeAt(%d) = %v, want %v", tc.elapsed, got, tc.want)
		}
	}
}

// TestTransportDeterminism: the same seed injects the same fault
// sequence.
func TestTransportDeterminism(t *testing.T) {
	ts := okServer(t)
	outcomes := func(seed int64) string {
		tr := NewTransport(nil, &Schedule{Seed: seed, Rules: []Rule{{Name: "half", DropProb: 0.5}}})
		client := &http.Client{Transport: tr}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if _, err := client.Get(ts.URL); err != nil {
				b.WriteByte('d')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Fatalf("same seed, different fault sequences:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "d") || !strings.Contains(a, ".") {
		t.Fatalf("half-drop produced a degenerate sequence %s", a)
	}
	if c := outcomes(8); c == a {
		t.Fatal("different seeds produced identical fault sequences — rng not seeded")
	}
}

// TestProxyRelaysAndInjects: the reverse proxy passes clean traffic
// through byte-for-byte and turns injected drops into marked 502s.
func TestProxyRelaysAndInjects(t *testing.T) {
	ts := okServer(t)

	clean, err := NewProxy(ts.URL, &Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(clean)
	defer front.Close()
	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(b) != "ok" {
		t.Fatalf("clean proxy: status %d body %q", resp.StatusCode, b)
	}

	dropping, err := NewProxy(ts.URL, &Schedule{Seed: 3, Rules: []Rule{{Name: "part", DropProb: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(dropping)
	defer front2.Close()
	resp, err = http.Get(front2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dropped request surfaced status %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get(Header) == "" {
		t.Fatal("injected-drop 502 missing the marker header")
	}
	if st := dropping.Stats(); st.Dropped != 1 {
		t.Fatalf("proxy stats %+v, want 1 drop", st)
	}
}

func TestNewProxyRejectsBadTarget(t *testing.T) {
	for _, target := range []string{"", "not a url at all \x00", "no-scheme"} {
		if _, err := NewProxy(target, nil); err == nil {
			t.Errorf("NewProxy accepted %q", target)
		}
	}
}
