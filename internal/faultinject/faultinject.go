// Package faultinject is the chaos half of the fleet's robustness
// story: a fault-injecting http.RoundTripper and reverse proxy driven by
// seeded, scriptable schedules. The serving stack's core guarantee —
// deterministic solvers make every node byte-identical — means a chaos
// run can assert exact correctness, not just liveness: inject arbitrary
// latency, drops, 5xx bursts, partitions and flapping between peers, and
// every body a client receives must still match the single-node
// reference bit for bit.
//
// # Schedules
//
// A Schedule is a seed plus an ordered rule list. Each Rule matches a
// set of hosts (empty = all) inside an activity window, optionally
// flapping with a period/duty cycle, and applies some combination of
// added latency, probabilistic drops, and probabilistic synthesized
// status codes. Probabilities draw from a rand.Rand seeded by the
// schedule, so a chaos run is reproducible end to end. The JSON form is
// what scripts/scenario files and the -chaos flags consume:
//
//	{
//	  "seed": 42,
//	  "rules": [
//	    {"name": "slow-node2", "hosts": ["127.0.0.1:7002"],
//	     "latency_ms": 80, "jitter_ms": 40},
//	    {"name": "flap", "period_ms": 2000, "on_ms": 600, "drop_prob": 1},
//	    {"name": "5xx-burst", "start_ms": 1000, "end_ms": 3000,
//	     "status": 500, "status_prob": 0.5},
//	    {"name": "churn", "hosts": ["127.0.0.1:7003"],
//	     "period_ms": 4000, "on_ms": 1500, "partition": true}
//	  ]
//	}
//
// partition is the deterministic form of drop_prob 1: every matched
// request fails, no RNG draw is consumed, so flapping a partition (the
// churn rule above) leaves the seeded stream to the probabilistic rules.
//
// # Injection points
//
// Transport wraps any http.RoundTripper (the in-process chaos suite
// hands it to the peer client via ClusterConfig.Transport, and the load
// generator via its Chaos hook). NewProxy wraps a whole node behind a
// chaos reverse proxy — the cluster e2e script advertises the proxy URL
// in the peers file, so every forward to that node crosses the fault
// schedule while clients still reach the node directly.
//
// Injected faults are always distinguishable from real ones: transport
// errors wrap ErrInjected (Injected unwraps through url.Error), and
// synthesized responses carry the Header marker.
package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel behind every synthesized transport
// failure. errors.Is(err, ErrInjected) — or the Injected helper, which
// also unwraps url.Error — tells a chaos harness that a failure was
// scheduled, not real.
var ErrInjected = errors.New("faultinject: injected fault")

// Header marks a synthesized (injected) HTTP response, so a harness can
// separate scheduled 5xx bursts from a peer's own errors.
const Header = "X-Fault-Injected"

// Rule is one scripted fault. The zero value matches nothing harmful:
// all hosts, always active, no latency, no drops, no status injection.
type Rule struct {
	// Name labels the rule in stats and logs.
	Name string `json:"name,omitempty"`
	// Hosts restricts the rule to requests whose URL host (host:port)
	// matches one entry exactly; empty matches every host.
	Hosts []string `json:"hosts,omitempty"`
	// StartMS/EndMS bound the rule's activity window, measured from the
	// transport's start instant. EndMS 0 means no end.
	StartMS int64 `json:"start_ms,omitempty"`
	EndMS   int64 `json:"end_ms,omitempty"`
	// PeriodMS/OnMS make the rule flap: within each period of PeriodMS
	// the rule is active for the first OnMS milliseconds only.
	// PeriodMS 0 means continuously active.
	PeriodMS int64 `json:"period_ms,omitempty"`
	OnMS     int64 `json:"on_ms,omitempty"`
	// LatencyMS adds fixed latency to matched requests; JitterMS adds a
	// further uniform random [0, JitterMS) on top.
	LatencyMS int64 `json:"latency_ms,omitempty"`
	JitterMS  int64 `json:"jitter_ms,omitempty"`
	// DropProb is the probability a matched request fails with a
	// synthesized transport error (ErrInjected). 1 is a full partition
	// of the matched hosts.
	DropProb float64 `json:"drop_prob,omitempty"`
	// Partition deterministically fails every matched request with
	// ErrInjected — a network partition of the matched hosts for the
	// rule's activity window, with no RNG draw, so a churn script
	// (partition flapping under period_ms/on_ms) consumes no randomness
	// and leaves the seeded stream to the probabilistic rules.
	Partition bool `json:"partition,omitempty"`
	// Status (with StatusProb) synthesizes an HTTP response with that
	// code instead of performing the request — a scripted 5xx burst.
	Status     int     `json:"status,omitempty"`
	StatusProb float64 `json:"status_prob,omitempty"`
}

// validate rejects rules that cannot mean what they say.
func (r *Rule) validate() error {
	switch {
	case r.DropProb < 0 || r.DropProb > 1:
		return fmt.Errorf("faultinject: rule %q: drop_prob %v outside [0,1]", r.Name, r.DropProb)
	case r.StatusProb < 0 || r.StatusProb > 1:
		return fmt.Errorf("faultinject: rule %q: status_prob %v outside [0,1]", r.Name, r.StatusProb)
	case r.StatusProb > 0 && (r.Status < 100 || r.Status > 599):
		return fmt.Errorf("faultinject: rule %q: status %d is not an HTTP status", r.Name, r.Status)
	case r.LatencyMS < 0 || r.JitterMS < 0:
		return fmt.Errorf("faultinject: rule %q: negative latency", r.Name)
	case r.PeriodMS < 0 || r.OnMS < 0 || r.OnMS > r.PeriodMS:
		return fmt.Errorf("faultinject: rule %q: on_ms must sit inside period_ms", r.Name)
	case r.StartMS < 0 || r.EndMS < 0 || (r.EndMS > 0 && r.EndMS < r.StartMS):
		return fmt.Errorf("faultinject: rule %q: bad activity window", r.Name)
	case r.Partition && (r.DropProb > 0 || r.StatusProb > 0):
		return fmt.Errorf("faultinject: rule %q: partition already decides the outcome; drop_prob/status_prob cannot apply", r.Name)
	}
	return nil
}

// activeAt reports whether the rule applies at elapsed time since the
// transport started, for the given host.
func (r *Rule) activeAt(elapsedMS int64, host string) bool {
	if elapsedMS < r.StartMS || (r.EndMS > 0 && elapsedMS >= r.EndMS) {
		return false
	}
	if r.PeriodMS > 0 && (elapsedMS-r.StartMS)%r.PeriodMS >= r.OnMS {
		return false
	}
	if len(r.Hosts) == 0 {
		return true
	}
	for _, h := range r.Hosts {
		if strings.EqualFold(h, host) {
			return true
		}
	}
	return false
}

// Schedule is a reproducible chaos script: a seed and the rules it
// drives. The zero value injects nothing.
type Schedule struct {
	Seed  int64  `json:"seed,omitempty"`
	Rules []Rule `json:"rules,omitempty"`
}

// ParseSchedule decodes and validates the JSON form.
func ParseSchedule(data []byte) (*Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faultinject: parse schedule: %w", err)
	}
	for i := range s.Rules {
		if err := s.Rules[i].validate(); err != nil {
			return nil, err
		}
	}
	return &s, nil
}

// LoadSchedule reads and parses a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return ParseSchedule(data)
}

// Stats counts what a Transport actually injected — the ground truth a
// chaos test asserts against ("the schedule really fired").
type Stats struct {
	Requests    uint64 // requests seen
	Delayed     uint64 // requests given added latency
	Dropped     uint64 // requests failed with ErrInjected (probabilistic)
	Partitioned uint64 // requests failed by a deterministic partition rule
	Statuses    uint64 // requests answered with a synthesized status
	Passed      uint64 // requests forwarded untouched
	DelayedMS   uint64 // total injected latency, milliseconds
}

// Transport is a fault-injecting http.RoundTripper. It applies the
// first matching drop/status rule and the sum of matching latency rules
// to each request, then (unless dropped or answered synthetically)
// delegates to the wrapped transport. Safe for concurrent use.
type Transport struct {
	next  http.RoundTripper
	sched *Schedule
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	requests    atomic.Uint64
	delayed     atomic.Uint64
	dropped     atomic.Uint64
	partitioned atomic.Uint64
	statuses    atomic.Uint64
	passed      atomic.Uint64
	delayedMS   atomic.Uint64
}

// NewTransport wraps next (nil selects http.DefaultTransport) with the
// schedule's faults. The activity clock starts now.
func NewTransport(next http.RoundTripper, sched *Schedule) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if sched == nil {
		sched = &Schedule{}
	}
	seed := sched.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{
		next:  next,
		sched: sched,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// roll draws a uniform [0,1) variate from the seeded source.
func (t *Transport) roll() float64 {
	t.mu.Lock()
	f := t.rng.Float64()
	t.mu.Unlock()
	return f
}

// rollN draws a uniform [0,n) integer from the seeded source.
func (t *Transport) rollN(n int64) int64 {
	t.mu.Lock()
	v := t.rng.Int63n(n)
	t.mu.Unlock()
	return v
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	elapsed := time.Since(t.start).Milliseconds()
	host := req.URL.Host

	var delay time.Duration
	for i := range t.sched.Rules {
		r := &t.sched.Rules[i]
		if !r.activeAt(elapsed, host) {
			continue
		}
		if r.LatencyMS > 0 || r.JitterMS > 0 {
			d := r.LatencyMS
			if r.JitterMS > 0 {
				d += t.rollN(r.JitterMS)
			}
			delay += time.Duration(d) * time.Millisecond
		}
		if r.Partition {
			if err := t.sleep(req.Context(), delay); err != nil {
				return nil, err
			}
			t.partitioned.Add(1)
			return nil, fmt.Errorf("%w: rule %q partitioned %s", ErrInjected, r.Name, req.URL.Redacted())
		}
		if r.DropProb > 0 && t.roll() < r.DropProb {
			if err := t.sleep(req.Context(), delay); err != nil {
				return nil, err
			}
			t.dropped.Add(1)
			return nil, fmt.Errorf("%w: rule %q dropped %s", ErrInjected, r.Name, req.URL.Redacted())
		}
		if r.StatusProb > 0 && t.roll() < r.StatusProb {
			if err := t.sleep(req.Context(), delay); err != nil {
				return nil, err
			}
			t.statuses.Add(1)
			// The request body is consumed as a real server would.
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return synthesize(req, r.Status, r.Name), nil
		}
	}
	if delay > 0 {
		t.delayed.Add(1)
		t.delayedMS.Add(uint64(delay.Milliseconds()))
		if err := t.sleep(req.Context(), delay); err != nil {
			return nil, err
		}
	}
	t.passed.Add(1)
	return t.next.RoundTrip(req)
}

// sleep waits for d or the request context, whichever ends first — an
// injected delay must never outlive a cancelled caller.
func (t *Transport) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// synthesize builds an injected response for req.
func synthesize(req *http.Request, status int, rule string) *http.Response {
	body := fmt.Sprintf("faultinject: rule %q injected status %d\n", rule, status)
	h := make(http.Header, 2)
	h.Set(Header, rule)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Stats returns what has been injected so far.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.requests.Load(),
		Delayed:     t.delayed.Load(),
		Dropped:     t.dropped.Load(),
		Partitioned: t.partitioned.Load(),
		Statuses:    t.statuses.Load(),
		Passed:      t.passed.Load(),
		DelayedMS:   t.delayedMS.Load(),
	}
}

// Injected reports whether err is (or wraps, including through
// url.Error) an injected fault.
func Injected(err error) bool {
	return errors.Is(err, ErrInjected)
}

// Proxy is a chaos reverse proxy: everything sent to it is relayed to
// one target through a fault-injecting Transport. Advertise the proxy's
// URL in a fleet's peer list and every peer-to-peer exchange with that
// node crosses the schedule, while clients (and health checks) can still
// reach the node directly.
type Proxy struct {
	transport *Transport
	handler   http.Handler
}

// NewProxy builds a chaos proxy for target (a base URL) under sched.
func NewProxy(target string, sched *Schedule) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultinject: proxy target: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("faultinject: proxy target %q needs scheme and host", target)
	}
	t := NewTransport(nil, sched)
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.Transport = t
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		// An injected drop surfaces as a 502 carrying the marker header;
		// real upstream failures keep the stock 502 without it.
		if Injected(err) {
			w.Header().Set(Header, "drop")
		}
		w.WriteHeader(http.StatusBadGateway)
	}
	return &Proxy{transport: t, handler: rp}, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.handler.ServeHTTP(w, r)
}

// Stats returns the proxy transport's injection counters.
func (p *Proxy) Stats() Stats { return p.transport.Stats() }
