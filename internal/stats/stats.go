// Package stats provides the small set of descriptive statistics used by
// the experiment harness: means, extrema, standard deviations and
// quantiles, plus a streaming Welford accumulator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; it panics on empty input, which
// always indicates a harness bug (averaging a point with zero successful
// runs must be filtered out by the caller).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element of xs; panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input or
// q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || q != q {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Welford accumulates a running mean and variance in one pass without
// storing the samples. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples accumulated.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample seen; panics before the first sample.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		panic("stats: Welford.Min before any sample")
	}
	return w.min
}

// Max returns the largest sample seen; panics before the first sample.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		panic("stats: Welford.Max before any sample")
	}
	return w.max
}

// StdDev returns the running sample standard deviation (0 for n < 2).
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
