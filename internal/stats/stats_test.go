package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); !almost(got, 2.8) {
		t.Errorf("Mean = %g, want 2.8", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g, want 5", got)
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Mean":     func() { Mean(nil) },
		"Min":      func() { Min(nil) },
		"Max":      func() { Max(nil) },
		"Quantile": func() { Quantile(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of singleton = %g, want 0", got)
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if want := math.Sqrt(32.0 / 7.0); !almost(got, want) {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("Median singleton = %g", got)
	}
	if got := Median([]float64{1, 3}); !almost(got, 2) {
		t.Errorf("Median{1,3} = %g, want 2", got)
	}
}

func TestQuantileRejectsBadQ(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile sorted the caller's slice: %v", xs)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			w.Add(xs[i])
		}
		if w.N() != n {
			return false
		}
		return almost(w.Mean(), Mean(xs)) &&
			almost(w.StdDev(), StdDev(xs)) &&
			w.Min() == Min(xs) && w.Max() == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.StdDev() != 0 {
		t.Error("zero Welford not zeroed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Welford.Min before samples did not panic")
		}
	}()
	w.Min()
}
