// Package textplot renders small line/scatter plots as plain text, so that
// the experiment binaries can show the paper's latency-versus-period
// trade-off figures directly in a terminal without any plotting
// dependency. Data files for external plotting are emitted separately by
// the experiments package.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points. NaN coordinates are
// skipped.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycles through distinguishable glyphs, one per series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot is a configurable text plot. The zero value is not usable; create
// plots with New.
type Plot struct {
	title  string
	xlabel string
	ylabel string
	width  int
	height int
	series []Series
}

// New creates a plot of the given interior size in character cells
// (axes and legend are added around it). Sizes are clamped to [16,200]×[8,60].
func New(title, xlabel, ylabel string, width, height int) *Plot {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return &Plot{
		title:  title,
		xlabel: xlabel,
		ylabel: ylabel,
		width:  clamp(width, 16, 200),
		height: clamp(height, 8, 60),
	}
}

// Add appends a series; call order determines marker assignment.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

// Render draws the plot. Series beyond the marker palette reuse markers.
func (p *Plot) Render() string {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	count := 0
	for _, s := range p.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if bad(x) || bad(y) {
				continue
			}
			count++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	if count == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmin, xmax = xmin-1, xmax+1
	}
	if ymax == ymin {
		ymin, ymax = ymin-1, ymax+1
	}
	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	for si, s := range p.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if bad(x) || bad(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(p.width-1)))
			row := p.height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(p.height-1)))
			grid[row][col] = mark
		}
	}
	yLo, yHi := label(ymin), label(ymax)
	margin := len(yLo)
	if len(yHi) > margin {
		margin = len(yHi)
	}
	if l := len(p.ylabel); l > margin && l <= 14 {
		margin = l // make room for a reasonably short axis label
	}
	for r := 0; r < p.height; r++ {
		lab := strings.Repeat(" ", margin)
		switch r {
		case 0:
			lab = pad(yHi, margin)
		case p.height - 1:
			lab = pad(yLo, margin)
		case p.height / 2:
			if p.ylabel != "" {
				lab = pad(trunc(p.ylabel, margin), margin)
			}
		}
		fmt.Fprintf(&b, "%s |%s\n", lab, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", p.width))
	xLo, xHi := label(xmin), label(xmax)
	gap := p.width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xLo, strings.Repeat(" ", gap), xHi)
	if p.xlabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), center(p.xlabel, p.width))
	}
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func label(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func trunc(s string, w int) string {
	if len(s) <= w {
		return s
	}
	if w <= 1 {
		return s[:w]
	}
	return s[:w-1] + "."
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}
