package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := New("My Title", "xcol", "ycol", 40, 10)
	p.Add(Series{Name: "alpha", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}})
	p.Add(Series{Name: "beta", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}})
	out := p.Render()
	for _, want := range []string{"My Title", "xcol", "alpha", "beta", "* alpha", "+ beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Corner markers: min/max labels appear.
	if !strings.Contains(out, "0") || !strings.Contains(out, "4") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	// Marker characters are present in the canvas.
	if strings.Count(out, "*") < 3 { // 3 points + legend? legend has 1
		t.Errorf("series alpha markers missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	p := New("t", "", "", 30, 10)
	out := p.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot output %q", out)
	}
	p.Add(Series{Name: "nan only", X: []float64{math.NaN()}, Y: []float64{1}})
	if out := p.Render(); !strings.Contains(out, "(no data)") {
		t.Errorf("NaN-only plot output %q", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	p := New("", "", "", 30, 10)
	p.Add(Series{Name: "s", X: []float64{1, math.NaN(), 3}, Y: []float64{1, 2, 3}})
	out := p.Render()
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into output:\n%s", out)
	}
	if strings.Count(out, "*") != 3 { // 2 points + 1 legend marker
		t.Errorf("expected 2 plotted points + legend:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by zero.
	p := New("", "", "", 30, 10)
	p.Add(Series{Name: "flat", X: []float64{5, 5}, Y: []float64{7, 7}})
	out := p.Render()
	if !strings.Contains(out, "flat") {
		t.Errorf("constant series broke rendering:\n%s", out)
	}
}

func TestSizeClamping(t *testing.T) {
	p := New("", "", "", 1, 1)
	p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	out := p.Render()
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Errorf("clamped plot too small:\n%s", out)
	}
	p2 := New("", "", "", 10000, 10000)
	p2.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	for _, l := range strings.Split(p2.Render(), "\n") {
		if len(l) > 260 {
			t.Errorf("line of %d chars escaped clamping", len(l))
		}
	}
}

func TestManySeriesReuseMarkers(t *testing.T) {
	p := New("", "", "", 40, 10)
	for i := 0; i < 10; i++ {
		p.Add(Series{Name: "s", X: []float64{float64(i)}, Y: []float64{float64(i)}})
	}
	out := p.Render()
	if len(strings.Split(out, "\n")) < 15 {
		t.Errorf("legend rows missing:\n%s", out)
	}
}

func TestLabelFormatting(t *testing.T) {
	if got := label(3.0); got != "3" {
		t.Errorf("label(3.0) = %q", got)
	}
	if got := label(3.25); got != "3.25" {
		t.Errorf("label(3.25) = %q", got)
	}
	if got := label(3.10); got != "3.1" {
		t.Errorf("label(3.10) = %q", got)
	}
}

func TestHelpers(t *testing.T) {
	if got := pad("ab", 5); got != "   ab" {
		t.Errorf("pad = %q", got)
	}
	if got := pad("abcdef", 3); got != "abcdef" {
		t.Errorf("pad overflow = %q", got)
	}
	if got := trunc("abcdef", 4); got != "abc." {
		t.Errorf("trunc = %q", got)
	}
	if got := trunc("ab", 4); got != "ab" {
		t.Errorf("trunc short = %q", got)
	}
	if got := center("ab", 6); got != "  ab" {
		t.Errorf("center = %q", got)
	}
}
