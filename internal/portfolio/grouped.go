package portfolio

import (
	"context"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/workload"
)

// Grouped batch lane. Real batches are skewed: a sweep over one cluster
// submits many pipelines against a handful of platforms, and the naive
// lane rebuilds the platform-derived evaluator tables (reciprocal speed,
// class and link matrices) once per instance. SolveBatchGrouped groups
// the batch by platform identity first and constructs each group's
// evaluators through mapping.NewEvaluators, which computes those tables
// once per group and shares their backing arrays — structure-of-arrays
// across the batch instead of per-instance copies. The solve schedule,
// result order and every output bit are identical to SolveBatch; only
// construction work is deduplicated. Tests pin the equivalence.

// SolveBatchGrouped is SolveBatch with per-platform-group evaluator
// construction. Instances sharing a *platform.Platform pointer form a
// group; instances with equal-content but distinct platform objects fall
// into singleton groups, which is always correct, merely unshared (the
// service layer dedups platforms at decode time, so its batches arrive
// pointer-shared).
func SolveBatchGrouped(ctx context.Context, instances []workload.Instance, opts BatchOptions) (BatchReport, error) {
	evs := groupEvaluators(instances)
	workers, seqRace := batchWorkers(opts)
	rows, err := MapIndexed(ctx, workers, evs, func(ctx context.Context, i int, ev *mapping.Evaluator) *InstanceResult {
		r := solveOne(ctx, ev, i, opts, seqRace)
		return &r
	})
	return batchReport(ctx, rows, err)
}

// groupEvaluators builds one evaluator per instance, sharing the
// platform-derived tables within each pointer-identity group. Group
// discovery preserves first-appearance order and the returned slice is
// in input order, so downstream scheduling sees exactly what SolveBatch
// would.
func groupEvaluators(instances []workload.Instance) []*mapping.Evaluator {
	evs := make([]*mapping.Evaluator, len(instances))
	groups := make(map[*platform.Platform][]int, 4)
	order := make([]*platform.Platform, 0, 4)
	for i, in := range instances {
		if _, seen := groups[in.Plat]; !seen {
			order = append(order, in.Plat)
		}
		groups[in.Plat] = append(groups[in.Plat], i)
	}
	apps := make([]*pipeline.Pipeline, 0, len(instances))
	for _, plat := range order {
		idx := groups[plat]
		apps = apps[:0]
		for _, i := range idx {
			apps = append(apps, instances[i].App)
		}
		for j, ev := range mapping.NewEvaluators(apps, plat) {
			evs[idx[j]] = ev
		}
	}
	return evs
}
