package portfolio

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// ExactID is the solver identifier of the exact dynamic program in a
// portfolio outcome, alongside the heuristic identifiers H1..H6 (and the
// fully-heterogeneous lane's F1/F5/F6).
const ExactID = "DP"

// periodSolvers selects the period-constrained solver registry by
// platform capability: the paper's H1–H4 serve Communication Homogeneous
// platforms (unchanged member set, so comm-homogeneous races stay
// bit-identical to their history), while fully heterogeneous platforms
// race the fullhet lane (F1). Every returned solver Supports plat, so no
// race member can return ErrUnsupportedPlatform.
func periodSolvers(plat *platform.Platform) []heuristics.PeriodConstrained {
	if plat.Kind() == platform.CommHomogeneous {
		return heuristics.PeriodHeuristics()
	}
	return heuristics.FullHetPeriodHeuristics()
}

// latencySolvers is the latency-constrained twin of periodSolvers:
// H5–H6 on comm-homogeneous platforms, F5–F6 on fully heterogeneous
// ones.
func latencySolvers(plat *platform.Platform) []heuristics.LatencyConstrained {
	if plat.Kind() == platform.CommHomogeneous {
		return heuristics.LatencyHeuristics()
	}
	return heuristics.FullHetLatencyHeuristics()
}

// SolveOptions configure one portfolio race.
type SolveOptions struct {
	// Exact also races the exact DP when the platform is
	// exact.Eligible — comm-homogeneous with a compressed speed-class
	// state space within exact.MaxStates (it silently sits the race out
	// otherwise). Eligibility is keyed on the speed-class structure, not
	// the raw processor count: a 100-processor platform with few distinct
	// speeds races the DP, while 17 pairwise-distinct speeds do not. The
	// DP dominates every heuristic when it applies, at exponential cost.
	Exact bool
	// Serial runs the portfolio members one after the other on the
	// calling goroutine. This is the reference path: selection is shared,
	// so results are identical to the concurrent race — it exists for
	// benchmarks and cross-checking tests.
	Serial bool
}

// Outcome is the winning entry of a portfolio race.
type Outcome struct {
	Result heuristics.Result
	Solver string // winning solver: "H1".."H6" or ExactID
}

// attempt is one solver's finished run.
type attempt struct {
	id  string
	res heuristics.Result
	err error
}

// solver is one portfolio member, closed over its instance and bound.
type solver struct {
	id  string
	run func() (heuristics.Result, error)
}

// race runs every solver and returns the attempts in solver order. The
// concurrent path fans one goroutine out per member and drains them all;
// each attempt lands in its own slot, so the result is independent of
// scheduling order.
func race(solvers []solver, serial bool) []attempt {
	out := make([]attempt, len(solvers))
	if serial {
		for i, s := range solvers {
			res, err := s.run()
			out[i] = attempt{id: s.id, res: res, err: err}
		}
		return out
	}
	var wg sync.WaitGroup
	for i, s := range solvers {
		wg.Add(1)
		go func(i int, s solver) {
			defer wg.Done()
			res, err := s.run()
			out[i] = attempt{id: s.id, res: res, err: err}
		}(i, s)
	}
	wg.Wait()
	return out
}

func exactApplies(ev *mapping.Evaluator, opts SolveOptions) bool {
	return opts.Exact && exact.Eligible(ev.Platform())
}

// serialFallbackCells is the instance size (stages × processors) at or
// below which a concurrent race runs serially instead: the pooled
// solvers finish such instances in tens of microseconds, so goroutine
// fan-out and WaitGroup handoff cost as much as they save — the
// BENCH_4 PortfolioRace rows (140 cells) showed the parallel lane flat
// on time and heavier on allocations. Selection is shared between both
// paths, so the fallback cannot change any result, only remove overhead.
const serialFallbackCells = 256

// serialFallback reports whether the concurrent path should degrade to
// the serial one: small instances, or a single-processor host where
// there is no parallelism to win and every spawned lane is pure loss.
func serialFallback(ev *mapping.Evaluator) bool {
	return runtime.GOMAXPROCS(0) == 1 ||
		ev.Pipeline().Stages()*ev.Platform().Processors() <= serialFallbackCells
}

// UnderPeriod races the period-constrained solvers of the platform's
// capability lane (H1–H4 on comm-homogeneous platforms, F1 on fully
// heterogeneous ones, plus the exact DP when opts.Exact applies) and
// returns the feasible outcome with the
// smallest latency (ties: smallest period; further ties: portfolio order).
// found reports whether any member met the bound; when none did, closest is
// the *heuristics.InfeasibleError whose achieved period came closest to the
// bound (nil when no member produced one).
//
// The selection replays the serial scan of the original façade loop member
// by member, so the returned result is bit-identical to running the
// heuristics sequentially.
func UnderPeriod(ctx context.Context, ev *mapping.Evaluator, maxPeriod float64, opts SolveOptions) (out Outcome, found bool, closest error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, false, err
	}
	var solvers []solver
	for _, h := range periodSolvers(ev.Platform()) {
		h := h
		solvers = append(solvers, solver{id: h.ID(), run: func() (heuristics.Result, error) {
			return h.MinimizeLatency(ev, maxPeriod)
		}})
	}
	if exactApplies(ev, opts) {
		solvers = append(solvers, solver{id: ExactID, run: func() (heuristics.Result, error) {
			r, err := exact.MinLatencyUnderPeriod(ev, maxPeriod)
			return heuristics.Result{Mapping: r.Mapping, Metrics: r.Metrics}, err
		}})
	}
	return pickUnderPeriod(race(solvers, opts.Serial || serialFallback(ev)))
}

// pickUnderPeriod mirrors the serial selection of BestUnderPeriod: strict
// improvement on (latency, period) scanning attempts in portfolio order;
// among failures it remembers the infeasible run that came closest to the
// period bound.
func pickUnderPeriod(attempts []attempt) (out Outcome, found bool, closest error) {
	achieved := 0.0
	for _, a := range attempts {
		if a.err != nil {
			var inf *heuristics.InfeasibleError
			if errors.As(a.err, &inf) && (closest == nil || inf.Achieved < achieved) {
				closest, achieved = a.err, inf.Achieved
			}
			continue
		}
		if !found ||
			a.res.Metrics.Latency < out.Result.Metrics.Latency ||
			(a.res.Metrics.Latency == out.Result.Metrics.Latency && a.res.Metrics.Period < out.Result.Metrics.Period) {
			out, found = Outcome{Result: a.res, Solver: a.id}, true
		}
	}
	return out, found, closest
}

// UnderLatency races the latency-constrained solvers of the platform's
// capability lane (H5–H6 on comm-homogeneous platforms, F5–F6 on fully
// heterogeneous ones, plus the exact DP when opts.Exact applies) and
// returns the feasible outcome with
// the smallest period (ties: portfolio order). When no member met the
// bound, closest is the first failure in portfolio order — the error the
// serial loop would have reported.
func UnderLatency(ctx context.Context, ev *mapping.Evaluator, maxLatency float64, opts SolveOptions) (out Outcome, found bool, closest error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, false, err
	}
	var solvers []solver
	for _, h := range latencySolvers(ev.Platform()) {
		h := h
		solvers = append(solvers, solver{id: h.ID(), run: func() (heuristics.Result, error) {
			return h.MinimizePeriod(ev, maxLatency)
		}})
	}
	if exactApplies(ev, opts) {
		solvers = append(solvers, solver{id: ExactID, run: func() (heuristics.Result, error) {
			r, err := exact.MinPeriodUnderLatency(ev, maxLatency)
			return heuristics.Result{Mapping: r.Mapping, Metrics: r.Metrics}, err
		}})
	}
	return pickUnderLatency(race(solvers, opts.Serial || serialFallback(ev)))
}

// pickUnderLatency mirrors the serial selection of BestUnderLatency:
// strict improvement on the period scanning attempts in portfolio order;
// the remembered failure is the first one.
func pickUnderLatency(attempts []attempt) (out Outcome, found bool, closest error) {
	for _, a := range attempts {
		if a.err != nil {
			if closest == nil {
				closest = a.err
			}
			continue
		}
		if !found || a.res.Metrics.Period < out.Result.Metrics.Period {
			out, found = Outcome{Result: a.res, Solver: a.id}, true
		}
	}
	return out, found, closest
}
