package portfolio

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// ExactID is the solver identifier of the exact dynamic program in a
// portfolio outcome, alongside the heuristic identifiers H1..H6 (and the
// fully-heterogeneous lane's F1/F5/F6).
const ExactID = "DP"

// periodSolvers selects the period-constrained solver registry by
// platform capability: the paper's H1–H4 serve Communication Homogeneous
// platforms (unchanged member set, so comm-homogeneous races stay
// bit-identical to their history), while fully heterogeneous platforms
// race the fullhet lane (F1). Every returned solver Supports plat, so no
// race member can return ErrUnsupportedPlatform.
func periodSolvers(plat *platform.Platform) []heuristics.PeriodConstrained {
	if plat.Kind() == platform.CommHomogeneous {
		return heuristics.PeriodHeuristics()
	}
	return heuristics.FullHetPeriodHeuristics()
}

// latencySolvers is the latency-constrained twin of periodSolvers:
// H5–H6 on comm-homogeneous platforms, F5–F6 on fully heterogeneous
// ones.
func latencySolvers(plat *platform.Platform) []heuristics.LatencyConstrained {
	if plat.Kind() == platform.CommHomogeneous {
		return heuristics.LatencyHeuristics()
	}
	return heuristics.FullHetLatencyHeuristics()
}

// SolveOptions configure one portfolio race.
type SolveOptions struct {
	// Exact also races the exact DP when the platform is
	// exact.Eligible — comm-homogeneous with a compressed speed-class
	// state space within exact.MaxStates (it silently sits the race out
	// otherwise). Eligibility is keyed on the speed-class structure, not
	// the raw processor count: a 100-processor platform with few distinct
	// speeds races the DP, while 17 pairwise-distinct speeds do not. The
	// DP dominates every heuristic when it applies, at exponential cost.
	Exact bool
	// Serial runs the portfolio members one after the other on the
	// calling goroutine with mid-race cancellation disabled. This is the
	// reference path: selection is shared and no member is ever
	// abandoned, so it is the oracle the cancelling lanes are
	// property-tested against — it exists for benchmarks and
	// cross-checking tests.
	Serial bool
	// seqRace forces the sequential cancelling lane: members run one
	// after the other, later ones polling the incumbent the earlier ones
	// published. Batch workers set it — their pool already saturates the
	// host, so fanning each portfolio out would oversubscribe, but the
	// cancellation savings still apply.
	seqRace bool
}

// raceMode is the execution schedule of one portfolio race.
type raceMode int

const (
	// raceReference runs members sequentially without cancellation —
	// the oracle.
	raceReference raceMode = iota
	// raceSequential runs members sequentially, strongest lanes first,
	// with incumbent cancellation: later slow members abort once their
	// bound proves they cannot be selected. This is the default on
	// single-processor hosts and small instances, where fan-out buys
	// nothing but cancellation still cuts real work.
	raceSequential
	// raceConcurrent fans members out across goroutines, all polling the
	// shared incumbent.
	raceConcurrent
)

// raceModeFor picks the schedule: the explicit reference path wins, then
// the sequential fallbacks, then fan-out.
func raceModeFor(ev *mapping.Evaluator, opts SolveOptions) raceMode {
	switch {
	case opts.Serial:
		return raceReference
	case opts.seqRace || serialFallback(ev):
		return raceSequential
	default:
		return raceConcurrent
	}
}

// Outcome is the winning entry of a portfolio race.
type Outcome struct {
	Result heuristics.Result
	Solver string // winning solver: "H1".."H6" or ExactID
}

// attempt is one solver's finished run.
type attempt struct {
	id  string
	res heuristics.Result
	err error
}

// solver is one portfolio member, closed over its instance and bound.
// raced, when non-nil, is the cancellation-aware variant: it polls the
// race incumbent and aborts with heuristics.ErrRaceLost once its running
// bound proves defeat. Members without one (the DP, the fullhet lane) run
// to completion and only feed the incumbent.
type solver struct {
	id    string
	run   func() (heuristics.Result, error)
	raced func(inc *heuristics.Incumbent) (heuristics.Result, error)
}

// incPool recycles race incumbents so the cancelling lanes stay
// allocation-neutral against the reference path on pooled steady state.
var incPool = sync.Pool{New: func() any { return heuristics.NewIncumbent() }}

// race runs every solver and returns the attempts in solver order — each
// attempt lands in its own slot, so the result is independent of
// scheduling. The cancelling modes share an incumbent: every finished
// member offers its selection metric, and raced members abort once they
// provably cannot beat it. The sequential mode runs members in seqIndex
// order (strong incumbents first); the reference mode runs them in slice
// order with no incumbent, replaying the façade's historical sequence.
func race(solvers []solver, mode raceMode, hasExact bool, metric func(mapping.Metrics) float64) []attempt {
	out := make([]attempt, len(solvers))
	if mode == raceReference {
		for i, s := range solvers {
			res, err := s.run()
			out[i] = attempt{id: s.id, res: res, err: err}
		}
		return out
	}
	inc := incPool.Get().(*heuristics.Incumbent)
	inc.Reset()
	defer incPool.Put(inc)
	if mode == raceSequential {
		for k := range solvers {
			i := seqIndex(k, len(solvers), hasExact)
			out[i] = runRaced(&solvers[i], inc, metric)
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(len(solvers))
	for i := range solvers {
		go func(i int) {
			defer wg.Done()
			out[i] = runRaced(&solvers[i], inc, metric)
		}(i)
	}
	wg.Wait()
	return out
}

// runRaced executes one member against the shared incumbent: raced
// members poll it, every finished member offers its selection metric.
func runRaced(s *solver, inc *heuristics.Incumbent, metric func(mapping.Metrics) float64) attempt {
	var res heuristics.Result
	var err error
	if s.raced != nil {
		res, err = s.raced(inc)
	} else {
		res, err = s.run()
	}
	if err == nil {
		inc.Offer(metric(res.Metrics))
	}
	return attempt{id: s.id, res: res, err: err}
}

// seqIndex schedules the sequential cancelling lane: the first member
// (the cheap splitter) seeds the incumbent, then the exact DP — when
// present, always last in the solver slice — publishes the optimal value,
// so every expensive explorer that follows races against the best
// possible incumbent and aborts at the first provably-losing split.
func seqIndex(k, n int, hasExact bool) int {
	if !hasExact || n < 2 {
		return k
	}
	switch {
	case k == 0:
		return 0
	case k == 1:
		return n - 1
	default:
		return k - 1
	}
}

func exactApplies(ev *mapping.Evaluator, opts SolveOptions) bool {
	return opts.Exact && exact.Eligible(ev.Platform())
}

// serialFallbackCells is the instance size (stages × processors) at or
// below which a concurrent race runs serially instead: the pooled
// solvers finish such instances in tens of microseconds, so goroutine
// fan-out and WaitGroup handoff cost as much as they save — the
// BENCH_4 PortfolioRace rows (140 cells) showed the parallel lane flat
// on time and heavier on allocations. Selection is shared between both
// paths, so the fallback cannot change any result, only remove overhead.
const serialFallbackCells = 256

// serialFallback reports whether the concurrent path should degrade to
// the serial one: small instances, or a single-processor host where
// there is no parallelism to win and every spawned lane is pure loss.
func serialFallback(ev *mapping.Evaluator) bool {
	return runtime.GOMAXPROCS(0) == 1 ||
		ev.Pipeline().Stages()*ev.Platform().Processors() <= serialFallbackCells
}

// UnderPeriod races the period-constrained solvers of the platform's
// capability lane (H1–H4 on comm-homogeneous platforms, F1 on fully
// heterogeneous ones, plus the exact DP when opts.Exact applies) and
// returns the feasible outcome with the
// smallest latency (ties: smallest period; further ties: portfolio order).
// found reports whether any member met the bound; when none did, closest is
// the *heuristics.InfeasibleError whose achieved period came closest to the
// bound (nil when no member produced one). closest is unspecified when
// found: the cancelling lanes abandon provably-losing members before they
// can report a near-miss, so only the found outcome is pinned across
// schedules. An unmet bound disables cancellation entirely (aborts require
// a feasible incumbent), so the infeasibility report is itself
// schedule-independent.
//
// The selection replays the serial scan of the original façade loop member
// by member, so the returned result is bit-identical to running the
// heuristics sequentially.
func UnderPeriod(ctx context.Context, ev *mapping.Evaluator, maxPeriod float64, opts SolveOptions) (out Outcome, found bool, closest error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, false, err
	}
	var solvers []solver
	for _, h := range periodSolvers(ev.Platform()) {
		h := h
		s := solver{id: h.ID(), run: func() (heuristics.Result, error) {
			return h.MinimizeLatency(ev, maxPeriod)
		}}
		if r, ok := h.(heuristics.PeriodRacer); ok {
			s.raced = func(inc *heuristics.Incumbent) (heuristics.Result, error) {
				return r.MinimizeLatencyRaced(ev, maxPeriod, inc)
			}
		}
		solvers = append(solvers, s)
	}
	hasExact := exactApplies(ev, opts)
	if hasExact {
		solvers = append(solvers, solver{id: ExactID, run: func() (heuristics.Result, error) {
			r, err := exact.MinLatencyUnderPeriod(ev, maxPeriod)
			return heuristics.Result{Mapping: r.Mapping, Metrics: r.Metrics}, err
		}})
	}
	attempts := race(solvers, raceModeFor(ev, opts), hasExact,
		func(m mapping.Metrics) float64 { return m.Latency })
	return pickUnderPeriod(attempts)
}

// pickUnderPeriod mirrors the serial selection of BestUnderPeriod: strict
// improvement on (latency, period) scanning attempts in portfolio order;
// among failures it remembers the infeasible run that came closest to the
// period bound.
func pickUnderPeriod(attempts []attempt) (out Outcome, found bool, closest error) {
	achieved := 0.0
	for _, a := range attempts {
		if errors.Is(a.err, heuristics.ErrRaceLost) {
			continue // a cancelled member is just a lost race
		}
		if a.err != nil {
			var inf *heuristics.InfeasibleError
			if errors.As(a.err, &inf) && (closest == nil || inf.Achieved < achieved) {
				closest, achieved = a.err, inf.Achieved
			}
			continue
		}
		if !found ||
			a.res.Metrics.Latency < out.Result.Metrics.Latency ||
			(a.res.Metrics.Latency == out.Result.Metrics.Latency && a.res.Metrics.Period < out.Result.Metrics.Period) {
			out, found = Outcome{Result: a.res, Solver: a.id}, true
		}
	}
	return out, found, closest
}

// UnderLatency races the latency-constrained solvers of the platform's
// capability lane (H5–H6 on comm-homogeneous platforms, F5–F6 on fully
// heterogeneous ones, plus the exact DP when opts.Exact applies) and
// returns the feasible outcome with
// the smallest period (ties: portfolio order). When no member met the
// bound, closest is the first failure in portfolio order — the error the
// serial loop would have reported; as with UnderPeriod it is unspecified
// when found.
func UnderLatency(ctx context.Context, ev *mapping.Evaluator, maxLatency float64, opts SolveOptions) (out Outcome, found bool, closest error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, false, err
	}
	var solvers []solver
	for _, h := range latencySolvers(ev.Platform()) {
		h := h
		s := solver{id: h.ID(), run: func() (heuristics.Result, error) {
			return h.MinimizePeriod(ev, maxLatency)
		}}
		if r, ok := h.(heuristics.LatencyRacer); ok {
			s.raced = func(inc *heuristics.Incumbent) (heuristics.Result, error) {
				return r.MinimizePeriodRaced(ev, maxLatency, inc)
			}
		}
		solvers = append(solvers, s)
	}
	hasExact := exactApplies(ev, opts)
	if hasExact {
		solvers = append(solvers, solver{id: ExactID, run: func() (heuristics.Result, error) {
			r, err := exact.MinPeriodUnderLatency(ev, maxLatency)
			return heuristics.Result{Mapping: r.Mapping, Metrics: r.Metrics}, err
		}})
	}
	attempts := race(solvers, raceModeFor(ev, opts), hasExact,
		func(m mapping.Metrics) float64 { return m.Period })
	return pickUnderLatency(attempts)
}

// pickUnderLatency mirrors the serial selection of BestUnderLatency:
// strict improvement on the period scanning attempts in portfolio order;
// the remembered failure is the first one.
func pickUnderLatency(attempts []attempt) (out Outcome, found bool, closest error) {
	for _, a := range attempts {
		if errors.Is(a.err, heuristics.ErrRaceLost) {
			continue // a cancelled member is just a lost race
		}
		if a.err != nil {
			if closest == nil {
				closest = a.err
			}
			continue
		}
		if !found || a.res.Metrics.Period < out.Result.Metrics.Period {
			out, found = Outcome{Result: a.res, Solver: a.id}, true
		}
	}
	return out, found, closest
}
