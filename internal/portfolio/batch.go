package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/workload"
)

// Objective selects which of the paper's two antagonist problems a batch
// solves.
type Objective int

const (
	// MinimizeLatency minimises latency under a period bound
	// (heuristics H1–H4, exact MinLatencyUnderPeriod).
	MinimizeLatency Objective = iota
	// MinimizePeriod minimises period under a latency bound
	// (heuristics H5–H6, exact MinPeriodUnderLatency).
	MinimizePeriod
)

// String returns a short human-readable objective name.
func (o Objective) String() string {
	switch o {
	case MinimizeLatency:
		return "min-latency"
	case MinimizePeriod:
		return "min-period"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// BatchOptions configure one SolveBatch run.
type BatchOptions struct {
	// Objective picks the constrained problem; the zero value is
	// MinimizeLatency.
	Objective Objective
	// Bound is the constraint value: a maximum period under
	// MinimizeLatency, a maximum latency under MinimizePeriod.
	Bound float64
	// RelativeBound rescales Bound per instance: under MinimizeLatency
	// the bound becomes Bound × the instance's period lower bound, under
	// MinimizePeriod it becomes Bound × the instance's optimal latency.
	// Instances of very different magnitudes then share one meaningful
	// Bound (e.g. 2.0 = "twice the ideal").
	RelativeBound bool
	// Exact additionally races the exact DP on instances whose platform
	// is exact.Eligible (comm-homogeneous, compressed speed-class state
	// space within exact.MaxStates).
	Exact bool
	// Workers bounds the worker pool; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Serial runs everything sequentially on the calling goroutine
	// (one worker, serial portfolios). The reference path for
	// benchmarks and determinism cross-checks.
	Serial bool
}

// InstanceResult is the outcome of one batch element.
type InstanceResult struct {
	// Index is the instance's position in the input slice.
	Index int
	// Bound is the resolved absolute constraint the instance was solved
	// under (equal to BatchOptions.Bound unless RelativeBound).
	Bound float64
	// Outcome holds the winning mapping and solver when Err is nil.
	Outcome Outcome
	// Err captures the per-instance failure: every portfolio member
	// missed the bound, or the batch context was cancelled before the
	// instance started.
	Err error
}

// FrontPoint is one entry of a batch's cross-instance frontier.
type FrontPoint struct {
	Instance int // index into the batch's input slice
	Metrics  mapping.Metrics
}

// BatchReport is the aggregate outcome of a SolveBatch run.
type BatchReport struct {
	// Results holds one entry per input instance, in input order.
	Results []InstanceResult
	// Front is the non-dominated subset of the solved metrics across the
	// whole batch, sorted by increasing period: the batch-level
	// trade-off between the two criteria. Deterministic for a given
	// input regardless of worker count.
	Front []FrontPoint
	// Solved and Failed count the partition of Results by Err.
	Solved, Failed int
}

// resolveBound turns opts.Bound into the absolute constraint of one
// instance.
func resolveBound(ev *mapping.Evaluator, opts BatchOptions) float64 {
	if !opts.RelativeBound {
		return opts.Bound
	}
	if opts.Objective == MinimizePeriod {
		_, optLat := ev.OptimalLatency()
		return opts.Bound * optLat
	}
	return opts.Bound * lowerbound.Period(ev)
}

// solveOne runs one instance's portfolio race. seqRace forces the
// instance's own portfolio onto the sequential cancelling lane: when the
// batch level already keeps every core busy, racing each portfolio on top
// would oversubscribe the CPU by the portfolio size, but the incumbent
// cancellation still trims losing members (results are identical either
// way).
func solveOne(ctx context.Context, ev *mapping.Evaluator, index int, opts BatchOptions, seqRace bool) InstanceResult {
	if err := ctx.Err(); err != nil {
		// Popped after cancellation: report the cancellation itself, not
		// a bogus infeasibility.
		return InstanceResult{Index: index, Err: context.Cause(ctx)}
	}
	bound := resolveBound(ev, opts)
	sopts := SolveOptions{Exact: opts.Exact, Serial: opts.Serial, seqRace: seqRace}
	var (
		out     Outcome
		found   bool
		closest error
	)
	if opts.Objective == MinimizePeriod {
		out, found, closest = UnderLatency(ctx, ev, bound, sopts)
	} else {
		out, found, closest = UnderPeriod(ctx, ev, bound, sopts)
	}
	r := InstanceResult{Index: index, Bound: bound}
	if !found {
		// The race can also come back empty because the context fell
		// between our entry check and the solver's: report that as the
		// cancellation it is, not as infeasibility.
		if cerr := ctx.Err(); cerr != nil && errors.Is(closest, cerr) {
			r.Err = context.Cause(ctx)
			return r
		}
		r.Err = fmt.Errorf("portfolio: instance %d: no solver satisfied %s bound %g: %w",
			index, opts.Objective, bound, closest)
		return r
	}
	r.Outcome = out
	return r
}

// SolveBatch solves every instance under opts on a bounded worker pool and
// aggregates the outcomes. Results are reported per instance — one
// element's failure never aborts the batch — and the report carries the
// non-dominated frontier of all solved metrics.
//
// Cancelling ctx stops the batch promptly: instances not yet started are
// marked with ctx's error and SolveBatch returns it. Instances already
// running finish (individual solvers are not interruptible), so the
// returned report is always complete and in input order.
//
// For a fixed input and options the report is identical whatever the
// worker count, including Serial: scheduling never influences results.
func SolveBatch(ctx context.Context, instances []workload.Instance, opts BatchOptions) (BatchReport, error) {
	workers, seqRace := batchWorkers(opts)
	rows, err := MapIndexed(ctx, workers, instances, func(ctx context.Context, i int, in workload.Instance) *InstanceResult {
		r := solveOne(ctx, in.Evaluator(), i, opts, seqRace)
		return &r
	})
	return batchReport(ctx, rows, err)
}

// batchWorkers resolves the worker count and the intra-instance race
// lane. With several batch workers the cores are already saturated;
// racing each instance's portfolio on top would oversubscribe by the
// portfolio size for no gain, so multi-worker batches keep each
// portfolio on the sequential cancelling lane instead.
func batchWorkers(opts BatchOptions) (workers int, seqRace bool) {
	workers = opts.Workers
	if opts.Serial {
		workers = 1
	} else if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers, workers > 1
}

// batchReport aggregates per-instance rows into the final report.
func batchReport(ctx context.Context, rows []*InstanceResult, err error) (BatchReport, error) {
	report := BatchReport{Results: make([]InstanceResult, len(rows))}
	for i, row := range rows {
		if row == nil { // never started: the context fell first
			report.Results[i] = InstanceResult{Index: i, Err: context.Cause(ctx)}
		} else {
			report.Results[i] = *row
		}
		if report.Results[i].Err != nil {
			report.Failed++
		} else {
			report.Solved++
		}
	}
	report.Front = nonDominated(report.Results)
	return report, err
}

// nonDominated extracts the batch-level frontier from the solved results
// with the shared mapping.Frontier dominance filter.
func nonDominated(results []InstanceResult) []FrontPoint {
	var pts []FrontPoint
	for _, r := range results {
		if r.Err == nil {
			pts = append(pts, FrontPoint{Instance: r.Index, Metrics: r.Outcome.Result.Metrics})
		}
	}
	metrics := make([]mapping.Metrics, len(pts))
	for i, pt := range pts {
		metrics[i] = pt.Metrics
	}
	var front []FrontPoint
	for _, i := range mapping.Frontier(metrics) {
		front = append(front, pts[i])
	}
	return front
}
