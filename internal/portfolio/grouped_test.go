package portfolio

import (
	"context"
	"math"
	"testing"

	"pipesched/internal/workload"
)

// sharedPlatformBatch builds a skewed batch: many pipelines over a
// handful of shared platform objects — the shape the grouped lane is for.
func sharedPlatformBatch(n int) []workload.Instance {
	instances := workload.GenerateSet(workload.E2, 10, 8, n, 515)
	platforms := []int{0, 1, 2}
	for i := range instances {
		instances[i].Plat = instances[platforms[i%len(platforms)]].Plat
	}
	return instances
}

// TestSolveBatchGroupedBitIdentical pins the grouped lane to the naive
// one: identical per-instance bounds, winners, metrics, errors and
// frontier, for both objectives, with and without the exact DP, across
// worker counts. Grouping may only deduplicate construction work, never
// influence a single output bit.
func TestSolveBatchGroupedBitIdentical(t *testing.T) {
	instances := sharedPlatformBatch(48)
	// A tail of singleton platforms exercises the ungrouped fallback in
	// the same batch.
	instances = append(instances, workload.GenerateSet(workload.E3, 8, 6, 8, 99)...)
	for _, objective := range []Objective{MinimizeLatency, MinimizePeriod} {
		for _, exact := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				opts := BatchOptions{
					Objective:     objective,
					Bound:         1.3,
					RelativeBound: true,
					Exact:         exact,
					Workers:       workers,
				}
				ref, err := SolveBatch(context.Background(), instances, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SolveBatchGrouped(context.Background(), instances, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Solved != ref.Solved || got.Failed != ref.Failed {
					t.Fatalf("%v exact=%v w=%d: grouped solved/failed %d/%d, naive %d/%d",
						objective, exact, workers, got.Solved, got.Failed, ref.Solved, ref.Failed)
				}
				for i := range ref.Results {
					r, g := ref.Results[i], got.Results[i]
					if g.Index != r.Index || math.Float64bits(g.Bound) != math.Float64bits(r.Bound) {
						t.Fatalf("%v exact=%v w=%d instance %d: bound %g != %g",
							objective, exact, workers, i, g.Bound, r.Bound)
					}
					if (g.Err == nil) != (r.Err == nil) {
						t.Fatalf("%v exact=%v w=%d instance %d: err %v != %v",
							objective, exact, workers, i, g.Err, r.Err)
					}
					if r.Err == nil && (g.Outcome.Solver != r.Outcome.Solver || !sameResult(g.Outcome.Result, r.Outcome.Result)) {
						t.Fatalf("%v exact=%v w=%d instance %d: outcome (%q %+v) != (%q %+v)",
							objective, exact, workers, i,
							g.Outcome.Solver, g.Outcome.Result.Metrics, r.Outcome.Solver, r.Outcome.Result.Metrics)
					}
				}
				if len(got.Front) != len(ref.Front) {
					t.Fatalf("%v exact=%v w=%d: front sizes %d != %d",
						objective, exact, workers, len(got.Front), len(ref.Front))
				}
				for i := range ref.Front {
					if got.Front[i] != ref.Front[i] {
						t.Fatalf("%v exact=%v w=%d: front[%d] %+v != %+v",
							objective, exact, workers, i, got.Front[i], ref.Front[i])
					}
				}
			}
		}
	}
}
