package portfolio

import (
	"context"
	"math"
	"runtime"
	"testing"

	"pipesched/internal/lowerbound"
	"pipesched/internal/workload"
)

// TestRaceModesBitIdentical is the cancellation soundness property,
// stated over all three race schedules: the reference lane (sequential,
// no cancellation), the sequential cancelling lane and the concurrent
// cancelling lane must select the identical winner — same solver, same
// metrics bits, same intervals — on randomized instances, across
// objectives and bound tightness. Cancellation may only abort members
// that were going to lose anyway, so the selected outcome can never
// depend on which lane ran. The -race CI lane runs this test with the
// detector on, which doubles as the data-race audit of the shared
// incumbent. closest is compared only on full failure: when any member
// meets the bound, near-miss reporting from cancelled members is
// documented as unspecified.
func TestRaceModesBitIdentical(t *testing.T) {
	// Force real concurrency even on single-processor hosts: the
	// concurrent lane is otherwise folded into the sequential one by the
	// serial fallback.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ctx := context.Background()
	// 30×9 sits above the serial-fallback cell count (so the concurrent
	// lane really fans out) while keeping the DP's compressed state space
	// small enough that the full mode × bound × seed matrix stays fast.
	for seed := int64(0); seed < 8; seed++ {
		in := workload.Generate(workload.Config{
			Family: workload.E2, Stages: 30, Processors: 9, Seed: 7000 + seed,
		})
		ev := in.Evaluator()
		check := func(label string, run func(opts SolveOptions) (Outcome, bool, error)) {
			ref, refFound, refClosest := run(SolveOptions{Exact: true, Serial: true})
			for lane, opts := range map[string]SolveOptions{
				"sequential": {Exact: true, seqRace: true},
				"concurrent": {Exact: true},
			} {
				got, found, closest := run(opts)
				if found != refFound {
					t.Fatalf("seed %d %s %s: found %v != reference %v", seed, label, lane, found, refFound)
				}
				if !found {
					if (closest == nil) != (refClosest == nil) ||
						(closest != nil && closest.Error() != refClosest.Error()) {
						t.Fatalf("seed %d %s %s: closest %v != reference %v", seed, label, lane, closest, refClosest)
					}
					continue
				}
				if got.Solver != ref.Solver ||
					math.Float64bits(got.Result.Metrics.Period) != math.Float64bits(ref.Result.Metrics.Period) ||
					math.Float64bits(got.Result.Metrics.Latency) != math.Float64bits(ref.Result.Metrics.Latency) ||
					!sameResult(got.Result, ref.Result) {
					t.Fatalf("seed %d %s %s: outcome (%q %+v) != reference (%q %+v)",
						seed, label, lane, got.Solver, got.Result.Metrics, ref.Solver, ref.Result.Metrics)
				}
			}
		}
		lb := lowerbound.Period(ev)
		for _, factor := range []float64{0.9, 1.05, 1.3, 2.0} {
			bound := lb * factor
			check("period", func(opts SolveOptions) (Outcome, bool, error) {
				return UnderPeriod(ctx, ev, bound, opts)
			})
		}
		optLat := ev.OptimalLatencyValue()
		for _, factor := range []float64{0.9, 1.1, 1.6} {
			budget := optLat * factor
			check("latency", func(opts SolveOptions) (Outcome, bool, error) {
				return UnderLatency(ctx, ev, budget, opts)
			})
		}
	}
}
