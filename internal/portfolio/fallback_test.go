package portfolio

// Regression tests for the small-instance serial fallback: the parallel
// entry points must never do worse than the serial reference on
// instances too small to amortise goroutine fan-out. "Never worse" is
// pinned structurally (the fallback routes small instances onto the
// identical serial path, so allocations cannot exceed serial) and
// semantically (results stay bit-identical on both sides of the
// threshold).

import (
	"context"
	"runtime"
	"testing"

	"pipesched/internal/lowerbound"
	"pipesched/internal/workload"
)

func TestSerialFallbackThreshold(t *testing.T) {
	// The BENCH_4 PortfolioRace instance (14 stages × 10 processors =
	// 140 cells) is exactly the shape that measured flat: it must fall
	// back.
	small := workload.Generate(workload.Config{Family: workload.E2, Stages: 14, Processors: 10, Seed: 47}).Evaluator()
	if !serialFallback(small) {
		t.Errorf("%d-cell instance did not take the serial fallback", small.Pipeline().Stages()*small.Platform().Processors())
	}
	large := workload.Generate(workload.Config{Family: workload.E2, Stages: 30, Processors: 40, Seed: 53}).Evaluator()
	if runtime.GOMAXPROCS(0) > 1 && serialFallback(large) {
		t.Errorf("%d-cell instance fell back to serial on a %d-way host", large.Pipeline().Stages()*large.Platform().Processors(), runtime.GOMAXPROCS(0))
	}
}

// TestFallbackIdenticalAcrossThreshold pins bit-identical outcomes for
// the parallel entry point on both sides of the fallback threshold, in
// both objectives.
func TestFallbackIdenticalAcrossThreshold(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name          string
		stages, procs int
		seed          int64
		exact         bool
	}{
		{"below-threshold", 14, 10, 47, true},
		{"above-threshold", 30, 40, 53, false}, // heuristics only: keep the big one fast
	} {
		t.Run(tc.name, func(t *testing.T) {
			ev := workload.Generate(workload.Config{Family: workload.E2, Stages: tc.stages, Processors: tc.procs, Seed: tc.seed}).Evaluator()
			bound := lowerbound.Period(ev) * 1.5
			ser, sfound, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: tc.exact, Serial: true})
			par, pfound, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: tc.exact})
			if sfound != pfound {
				t.Fatalf("found: serial %v, parallel %v", sfound, pfound)
			}
			if sfound && (ser.Solver != par.Solver || ser.Result.Metrics != par.Result.Metrics) {
				t.Fatalf("serial (%s %+v) != parallel (%s %+v)", ser.Solver, ser.Result.Metrics, par.Solver, par.Result.Metrics)
			}
			latBound := ser.Result.Metrics.Latency * 1.2
			serL, sf, _ := UnderLatency(ctx, ev, latBound, SolveOptions{Exact: tc.exact, Serial: true})
			parL, pf, _ := UnderLatency(ctx, ev, latBound, SolveOptions{Exact: tc.exact})
			if sf != pf || (sf && (serL.Solver != parL.Solver || serL.Result.Metrics != parL.Result.Metrics)) {
				t.Fatalf("UnderLatency diverged: serial (%v %s) parallel (%v %s)", sf, serL.Solver, pf, parL.Solver)
			}
		})
	}
}

// TestParallelRaceNeverAllocatesMoreThanSerial is the regression the
// BENCH_4 snapshot motivated: the parallel entry point on the flat
// 140-cell instance used to cost 31 allocs against 20 serial. With the
// fallback it takes the identical serial path, so its allocation count
// can never exceed the serial one again.
func TestParallelRaceNeverAllocatesMoreThanSerial(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := workload.Generate(workload.Config{Family: workload.E2, Stages: 14, Processors: 10, Seed: 47}).Evaluator()
	bound := lowerbound.Period(ev) * 1.5
	ctx := context.Background()
	measure := func(serial bool) float64 {
		run := func() {
			if _, found, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true, Serial: serial}); !found {
				t.Fatal("infeasible bound")
			}
		}
		run() // warm the pools
		return testing.AllocsPerRun(50, run)
	}
	ser, par := measure(true), measure(false)
	if par > ser {
		t.Errorf("parallel path allocates more than serial on a fallback-sized instance: %.1f vs %.1f", par, ser)
	}
}

// TestMapInlineSingleWorker pins the inline lane: one worker must keep
// Map's ordering and cancellation contract without goroutine fan-out.
func TestMapInlineSingleWorker(t *testing.T) {
	in := []int{10, 20, 30, 40}
	out, err := Map(context.Background(), 1, in, func(_ context.Context, v int) int { return v + 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != in[i]+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Cancellation mid-walk: elements after the cancel stay zero.
	ctx, cancel := context.WithCancel(context.Background())
	out, err = MapIndexed(ctx, 1, in, func(_ context.Context, i, v int) int {
		if i == 1 {
			cancel()
		}
		return v + 1
	})
	if err == nil {
		t.Fatal("cancelled Map returned nil error")
	}
	if out[0] != 11 || out[1] != 21 {
		t.Fatalf("pre-cancel elements lost: %v", out)
	}
	if out[2] != 0 || out[3] != 0 {
		t.Fatalf("post-cancel elements ran: %v", out)
	}
}
