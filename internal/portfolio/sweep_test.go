package portfolio

import (
	"context"
	"math"
	"runtime"
	"testing"

	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/workload"
)

// naiveSweep is the reference sweep: fresh heuristic runs at every grid
// point, serial, exactly as the pre-warm-start implementation dispatched
// them. ParetoSweep must reproduce its frontier bit for bit.
func naiveSweep(ev *mapping.Evaluator, points int) []TradeoffPoint {
	if points < 2 {
		points = 2
	}
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	lo := lowerbound.Period(ev)
	hi := ev.Period(single)
	var raw []TradeoffPoint
	add := func(res heuristics.Result, err error) {
		if err != nil || res.Mapping == nil {
			return
		}
		raw = append(raw, TradeoffPoint{Metrics: res.Metrics, Mapping: res.Mapping})
	}
	for i := 0; i < points; i++ {
		bound := lo + (hi-lo)*float64(i)/float64(points-1)
		for _, h := range heuristics.PeriodHeuristics() {
			add(h.MinimizeLatency(ev, bound))
		}
	}
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, pt := range raw {
		minLat = math.Min(minLat, pt.Metrics.Latency)
		maxLat = math.Max(maxLat, pt.Metrics.Latency)
	}
	if len(raw) > 0 && maxLat > minLat {
		for i := 0; i < points; i++ {
			budget := minLat + (maxLat-minLat)*float64(i)/float64(points-1)
			for _, h := range heuristics.LatencyHeuristics() {
				add(h.MinimizePeriod(ev, budget))
			}
		}
	}
	metrics := make([]mapping.Metrics, len(raw))
	for i, pt := range raw {
		metrics[i] = pt.Metrics
	}
	var front []TradeoffPoint
	for _, i := range mapping.Frontier(metrics) {
		front = append(front, raw[i])
	}
	return front
}

func sameFront(t *testing.T, label string, got, want []TradeoffPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frontier size %d != reference %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if math.Float64bits(g.Metrics.Period) != math.Float64bits(w.Metrics.Period) ||
			math.Float64bits(g.Metrics.Latency) != math.Float64bits(w.Metrics.Latency) {
			t.Fatalf("%s: point %d metrics %+v != reference %+v", label, i, g.Metrics, w.Metrics)
		}
		if g.Mapping.String() != w.Mapping.String() {
			t.Fatalf("%s: point %d mapping %v != reference %v", label, i, g.Mapping, w.Mapping)
		}
	}
}

// TestParetoSweepMatchesNaiveReference is the warm-start determinism
// property: across families, shapes and grid sizes, the trajectory-
// resumed sweep must return exactly the frontier of independent fresh
// runs, serial and parallel alike.
func TestParetoSweepMatchesNaiveReference(t *testing.T) {
	ctx := context.Background()
	for _, fam := range workload.Families() {
		for _, shape := range []struct{ n, p, points int }{
			{6, 4, 5}, {10, 8, 9}, {14, 12, 16},
		} {
			in := workload.Generate(workload.Config{
				Family: fam, Stages: shape.n, Processors: shape.p,
				Seed: 60000 + int64(shape.n),
			})
			ev := in.Evaluator()
			want := naiveSweep(ev, shape.points)
			got := ParetoSweep(ctx, ev, shape.points, 1)
			sameFront(t, fam.String()+"/serial", got, want)
			gotPar := ParetoSweep(ctx, ev, shape.points, 0)
			sameFront(t, fam.String()+"/parallel", gotPar, want)
		}
	}
}

// TestParetoSweepDegenerate pins the lo == hi grid (every bound equal)
// and the minimum grid size.
func TestParetoSweepDegenerate(t *testing.T) {
	// One processor: the single mapping is the whole frontier.
	ev := workload.Generate(workload.Config{Family: workload.E1, Stages: 4, Processors: 1, Seed: 1}).Evaluator()
	want := naiveSweep(ev, 2)
	got := ParetoSweep(context.Background(), ev, 0, 1) // points < 2 clamps to 2
	sameFront(t, "degenerate", got, want)
}

// TestParetoSweepCancelled: a dead context yields an empty (or truncated)
// frontier without panicking, matching the documented truncation
// semantics.
func TestParetoSweepCancelled(t *testing.T) {
	ev := workload.Generate(workload.Config{Family: workload.E2, Stages: 10, Processors: 8, Seed: 3}).Evaluator()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if front := ParetoSweep(ctx, ev, 8, 2); len(front) != 0 {
		t.Fatalf("pre-cancelled sweep returned %d points", len(front))
	}
}

// TestSweepersMatchFreshRuns drives the sweepers directly over monotone
// grids (including out-of-order probes, which must fall back to fresh
// solves) and demands bit-identical results and errors per bound.
func TestSweepersMatchFreshRuns(t *testing.T) {
	ev := workload.Generate(workload.Config{Family: workload.E2, Stages: 11, Processors: 9, Seed: 8}).Evaluator()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	p0 := ev.Period(single)
	factors := []float64{1.1, 0.9, 0.6, 0.4, 0.25, 0.12, 0.05, 0.3} // last one out of order
	for _, h := range heuristics.PeriodHeuristics() {
		sw := heuristics.NewPeriodSweeper(ev, h)
		for _, f := range factors {
			bound := p0 * f
			got, gotErr := sw.Solve(bound)
			want, wantErr := h.MinimizeLatency(ev, bound)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s bound %g: err %v != fresh %v", h.ID(), bound, gotErr, wantErr)
			}
			if gotErr != nil {
				got, want = gotErr.(*heuristics.InfeasibleError).Best, wantErr.(*heuristics.InfeasibleError).Best
			}
			if math.Float64bits(got.Metrics.Period) != math.Float64bits(want.Metrics.Period) ||
				math.Float64bits(got.Metrics.Latency) != math.Float64bits(want.Metrics.Latency) ||
				got.Mapping.String() != want.Mapping.String() {
				t.Fatalf("%s bound %g: sweeper %+v %v != fresh %+v %v", h.ID(), bound, got.Metrics, got.Mapping, want.Metrics, want.Mapping)
			}
		}
		sw.Close()
	}
	optLat := ev.OptimalLatencyValue()
	budgets := []float64{0.9, 1.0, 1.05, 1.3, 1.8, 2.6, 1.2} // last one out of order
	for _, h := range heuristics.LatencyHeuristics() {
		sw := heuristics.NewLatencySweeper(ev, h)
		for _, f := range budgets {
			budget := optLat * f
			got, gotErr := sw.Solve(budget)
			want, wantErr := h.MinimizePeriod(ev, budget)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s budget %g: err %v != fresh %v", h.ID(), budget, gotErr, wantErr)
			}
			if gotErr != nil {
				got, want = gotErr.(*heuristics.InfeasibleError).Best, wantErr.(*heuristics.InfeasibleError).Best
			}
			if math.Float64bits(got.Metrics.Period) != math.Float64bits(want.Metrics.Period) ||
				math.Float64bits(got.Metrics.Latency) != math.Float64bits(want.Metrics.Latency) ||
				got.Mapping.String() != want.Mapping.String() {
				t.Fatalf("%s budget %g: sweeper %+v != fresh %+v", h.ID(), budget, got.Metrics, want.Metrics)
			}
		}
		sw.Close()
	}
}

// TestSweepSerialFallbackThreshold is the BENCH_8 regression guard: the
// 30×40 sweep bench instance (1200 cells) lost time when fanned out, so
// the sweep lane carries its own serial-fallback threshold, well above
// the race lane's. The bench shape must fall under it, the paper-scale
// 40×100 sweep must not, and — threshold or no threshold — both modes
// must return the identical frontier.
func TestSweepSerialFallbackThreshold(t *testing.T) {
	bench := workload.Generate(workload.Config{Family: workload.E2, Stages: 30, Processors: 40, Seed: 53})
	if !sweepSerialFallback(bench.Evaluator()) {
		t.Errorf("30×40 bench instance (%d cells) must take the serial sweep lane", 30*40)
	}
	if sweepSerialCells <= serialFallbackCells {
		t.Errorf("sweep threshold %d must exceed the race threshold %d to be load-bearing",
			sweepSerialCells, serialFallbackCells)
	}
	if runtime.GOMAXPROCS(0) > 1 {
		paper := workload.Generate(workload.Config{Family: workload.E2, Stages: 40, Processors: 100, Seed: 53})
		if sweepSerialFallback(paper.Evaluator()) {
			t.Errorf("40×100 paper-scale sweep (%d cells) must keep its fan-out", 40*100)
		}
	}
	ctx := context.Background()
	ev := bench.Evaluator()
	want := ParetoSweep(ctx, ev, 10, 1)
	got := ParetoSweep(ctx, ev, 10, 0)
	sameFront(t, "bench-shape serial-vs-parallel", got, want)
}
