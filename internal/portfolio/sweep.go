package portfolio

import (
	"context"
	"math"

	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
)

// TradeoffPoint is one point of a heuristic trade-off frontier: a concrete
// mapping together with its metrics.
type TradeoffPoint struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// ParetoSweep traces an approximate Pareto frontier using only the paper's
// polynomial heuristics: it sweeps points period bounds between the period
// lower bound and the single-processor period, runs all four
// period-constrained heuristics plus both latency-constrained ones (fed
// with the latencies discovered so far), and returns the non-dominated
// results sorted by increasing period.
//
// Unlike the exact front this scales to large platforms (nothing
// exponential); the returned frontier is a superset-dominated
// approximation of the true front — every returned point is achievable,
// none dominates another, but better points may exist.
//
// The (grid point, heuristic) runs of each phase are independent, so they
// fan out over a workers-bounded pool (0 selects GOMAXPROCS); candidates
// are then aggregated in grid order, making the frontier identical to a
// serial sweep. Cancelling ctx stops dispatching new runs; candidates from
// runs that never started are simply absent, exactly as if the grid had
// been truncated.
func ParetoSweep(ctx context.Context, ev *mapping.Evaluator, points, workers int) []TradeoffPoint {
	if points < 2 {
		points = 2
	}
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	lo := lowerbound.Period(ev)
	hi := ev.Period(single)
	var raw []TradeoffPoint
	add := func(res heuristics.Result, err error) {
		if err != nil || res.Mapping == nil {
			return
		}
		raw = append(raw, TradeoffPoint{Metrics: res.Metrics, Mapping: res.Mapping})
	}
	type run struct {
		res heuristics.Result
		err error
	}
	type periodTask struct {
		bound float64
		h     heuristics.PeriodConstrained
	}
	var periodTasks []periodTask
	for i := 0; i < points; i++ {
		bound := lo + (hi-lo)*float64(i)/float64(points-1)
		for _, h := range heuristics.PeriodHeuristics() {
			periodTasks = append(periodTasks, periodTask{bound: bound, h: h})
		}
	}
	runs, _ := Map(ctx, workers, periodTasks, func(_ context.Context, t periodTask) run {
		res, err := t.h.MinimizeLatency(ev, t.bound)
		return run{res: res, err: err}
	})
	for _, r := range runs {
		add(r.res, r.err)
	}
	// Feed the latency range the period sweep discovered back through
	// the latency-constrained heuristics: they sometimes find better
	// periods at equal latency.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, pt := range raw {
		minLat = math.Min(minLat, pt.Metrics.Latency)
		maxLat = math.Max(maxLat, pt.Metrics.Latency)
	}
	if len(raw) > 0 && maxLat > minLat {
		type latencyTask struct {
			budget float64
			h      heuristics.LatencyConstrained
		}
		var latencyTasks []latencyTask
		for i := 0; i < points; i++ {
			budget := minLat + (maxLat-minLat)*float64(i)/float64(points-1)
			for _, h := range heuristics.LatencyHeuristics() {
				latencyTasks = append(latencyTasks, latencyTask{budget: budget, h: h})
			}
		}
		runs, _ := Map(ctx, workers, latencyTasks, func(_ context.Context, t latencyTask) run {
			res, err := t.h.MinimizePeriod(ev, t.budget)
			return run{res: res, err: err}
		})
		for _, r := range runs {
			add(r.res, r.err)
		}
	}
	// Dominance prune through the shared frontier filter.
	metrics := make([]mapping.Metrics, len(raw))
	for i, pt := range raw {
		metrics[i] = pt.Metrics
	}
	var front []TradeoffPoint
	for _, i := range mapping.Frontier(metrics) {
		front = append(front, raw[i])
	}
	return front
}
