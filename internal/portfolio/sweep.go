package portfolio

import (
	"context"
	"math"
	"runtime"

	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
)

// sweepSerialCells is the sweep lane's own serial-fallback size
// (stages × processors). It sits well above the race fallback
// (serialFallbackCells): a race fans out one goroutine per solver for
// one bound, so fan-out pays for itself quickly, while a sweep spawns
// one long-lived lane per heuristic that must amortise its goroutine,
// channel handoff and per-lane sweeper allocation over the whole grid —
// warm-started grid points are far cheaper than fresh solves, so the
// break-even instance is much larger. BENCH_8 showed the parallel sweep
// losing to serial on the 1200-cell bench instance (819µs vs 762µs);
// under this threshold that instance takes the serial lane, and the
// paper-scale 4000-cell sweep keeps its fan-out.
const sweepSerialCells = 2048

// sweepSerialFallback reports whether ParetoSweep should collapse to one
// lane. Like serialFallback, it can only remove scheduling overhead:
// candidates aggregate in grid order either way, so the frontier is
// identical.
func sweepSerialFallback(ev *mapping.Evaluator) bool {
	return runtime.GOMAXPROCS(0) == 1 ||
		ev.Pipeline().Stages()*ev.Platform().Processors() <= sweepSerialCells
}

// TradeoffPoint is one point of a heuristic trade-off frontier: a concrete
// mapping together with its metrics.
type TradeoffPoint struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// ParetoSweep traces an approximate Pareto frontier using only polynomial
// heuristics: it sweeps points period bounds between the period lower
// bound and the single-processor period, runs the platform's
// period-constrained lane (H1–H4 on comm-homogeneous platforms, F1 on
// fully heterogeneous ones) plus its latency-constrained lane (fed with
// the latencies discovered so far), and returns the non-dominated results
// sorted by increasing period.
//
// Unlike the exact front this scales to large platforms (nothing
// exponential); the returned frontier is a superset-dominated
// approximation of the true front — every returned point is achievable,
// none dominates another, but better points may exist.
//
// The sweep is warm-started: each heuristic owns one lane that walks the
// shared sorted bound grid monotonically on a single pooled engine
// (heuristics.PeriodSweeper / LatencySweeper), so adjacent grid points
// extend the splitting trajectory instead of recomputing its prefix,
// repeated results are reused without re-enumeration, and a lane stops as
// soon as its heuristic's failure threshold is crossed. Lanes fan out
// over a workers-bounded pool (0 selects GOMAXPROCS); every per-point
// result is bit-identical to a fresh run, and candidates are aggregated
// in grid order, so the frontier is identical to the historical
// point-by-point sweep. Cancelling ctx stops lanes between grid points;
// points never reached are simply absent, exactly as if the grid had
// been truncated.
func ParetoSweep(ctx context.Context, ev *mapping.Evaluator, points, workers int) []TradeoffPoint {
	if points < 2 {
		points = 2
	}
	// Small instances (and single-processor hosts) take the inline
	// single-lane path: the per-point solves are microseconds, so lane
	// goroutines and channel handoff would cost more than they overlap.
	// Candidates aggregate in grid order either way — the frontier is
	// bit-identical to the fanned-out sweep.
	if sweepSerialFallback(ev) {
		workers = 1
	}
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	lo := lowerbound.Period(ev)
	hi := ev.Period(single)

	type cell struct {
		res heuristics.Result
		ok  bool
	}

	// Phase 1: period-constrained lanes, each walking the bound grid
	// loosest-first (trajectories only ever extend).
	periodRows, _ := Map(ctx, workers, periodSolvers(ev.Platform()), func(ctx context.Context, h heuristics.PeriodConstrained) []cell {
		sw := heuristics.NewPeriodSweeper(ev, h)
		defer sw.Close()
		row := make([]cell, points)
		for i := points - 1; i >= 0; i-- {
			if ctx.Err() != nil {
				break
			}
			bound := lo + (hi-lo)*float64(i)/float64(points-1)
			res, err := sw.Solve(bound)
			if err != nil {
				// Failure thresholds are monotone: every tighter bound
				// fails too, contributing nothing.
				break
			}
			if res.Mapping != nil {
				row[i] = cell{res: res, ok: true}
			}
		}
		return row
	})
	var raw []TradeoffPoint
	for i := 0; i < points; i++ {
		for _, row := range periodRows {
			if row != nil && row[i].ok {
				raw = append(raw, TradeoffPoint{Metrics: row[i].res.Metrics, Mapping: row[i].res.Mapping})
			}
		}
	}

	// Phase 2: feed the latency range the period sweep discovered back
	// through the latency-constrained heuristics — they sometimes find
	// better periods at equal latency. Budgets ascend, matching the
	// LatencySweeper warm-start contract.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	for _, pt := range raw {
		minLat = math.Min(minLat, pt.Metrics.Latency)
		maxLat = math.Max(maxLat, pt.Metrics.Latency)
	}
	if len(raw) > 0 && maxLat > minLat {
		latRows, _ := Map(ctx, workers, latencySolvers(ev.Platform()), func(ctx context.Context, h heuristics.LatencyConstrained) []cell {
			sw := heuristics.NewLatencySweeper(ev, h)
			defer sw.Close()
			row := make([]cell, points)
			for i := 0; i < points; i++ {
				if ctx.Err() != nil {
					break
				}
				budget := minLat + (maxLat-minLat)*float64(i)/float64(points-1)
				res, err := sw.Solve(budget)
				if err == nil && res.Mapping != nil {
					row[i] = cell{res: res, ok: true}
				}
			}
			return row
		})
		for i := 0; i < points; i++ {
			for _, row := range latRows {
				if row != nil && row[i].ok {
					raw = append(raw, TradeoffPoint{Metrics: row[i].res.Metrics, Mapping: row[i].res.Mapping})
				}
			}
		}
	}

	// Dominance prune through the shared frontier filter.
	metrics := make([]mapping.Metrics, len(raw))
	for i, pt := range raw {
		metrics[i] = pt.Metrics
	}
	var front []TradeoffPoint
	for _, i := range mapping.Frontier(metrics) {
		front = append(front, raw[i])
	}
	return front
}
