package portfolio

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// randFullHetEvaluator draws a seeded fully heterogeneous instance:
// integer works/deltas/speeds and a symmetric positive link-bandwidth
// matrix.
func randFullHetEvaluator(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 2 + r.Intn(maxP-1)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	links := make([][]float64, p)
	for u := range links {
		links[u] = make([]float64, p)
	}
	for u := 0; u < p; u++ {
		for v := u + 1; v < p; v++ {
			b := float64(1 + r.Intn(20))
			links[u][v], links[v][u] = b, b
		}
	}
	plat, err := platform.NewFullyHeterogeneous(speeds, links)
	if err != nil {
		panic(err)
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), plat)
}

// TestFullHetParallelMatchesSerial extends the portfolio determinism
// property to the fully heterogeneous lane: the concurrent race over
// F1 (period side) and F5/F6 (latency side) returns bit for bit what the
// serial reference run returns, for a spread of bounds around each
// instance's single-processor envelope.
func TestFullHetParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(61))
	for ii := 0; ii < 40; ii++ {
		ev := randFullHetEvaluator(r, 8, 5)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		l0 := ev.Latency(single)
		for _, factor := range []float64{0.3, 0.6, 1.0, 1.5} {
			bound := p0 * factor
			sOut, sFound, sErr := UnderPeriod(ctx, ev, bound, SolveOptions{Serial: true})
			pOut, pFound, pErr := UnderPeriod(ctx, ev, bound, SolveOptions{})
			if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
				t.Fatalf("instance %d bound %g: serial (%v, %q, %+v) != parallel (%v, %q, %+v)",
					ii, bound, sFound, sOut.Solver, sOut.Result.Metrics, pFound, pOut.Solver, pOut.Result.Metrics)
			}
			if (sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error()) {
				t.Fatalf("instance %d bound %g: serial err %v != parallel err %v", ii, bound, sErr, pErr)
			}
		}
		for _, factor := range []float64{0.9, 1.0, 1.4, 2.5} {
			bound := l0 * factor
			sOut, sFound, sErr := UnderLatency(ctx, ev, bound, SolveOptions{Serial: true})
			pOut, pFound, pErr := UnderLatency(ctx, ev, bound, SolveOptions{})
			if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
				t.Fatalf("instance %d latency bound %g: serial != parallel", ii, bound)
			}
			if (sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error()) {
				t.Fatalf("instance %d latency bound %g: serial err %v != parallel err %v", ii, bound, sErr, pErr)
			}
		}
	}
}

// TestFullHetPortfolioMatchesSplitFullyHet pins the period-side fullhet
// portfolio to the serial SplitFullyHet reference: with F1 the only
// period-constrained member, the race must return exactly its mapping and
// metrics (or exactly its infeasibility error), never a comm-homogeneous
// heuristic or the DP.
func TestFullHetPortfolioMatchesSplitFullyHet(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(62))
	for ii := 0; ii < 40; ii++ {
		ev := randFullHetEvaluator(r, 8, 5)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		for _, factor := range []float64{0.2, 0.5, 0.8, 1.0} {
			bound := p0 * factor
			ref, refErr := heuristics.SplitFullyHet(ev, bound)
			// Exact is requested but must sit the race out: the DP's
			// eligibility requires a comm-homogeneous platform.
			out, found, closest := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true})
			if refErr != nil {
				if found {
					t.Fatalf("instance %d bound %g: portfolio found %+v where reference is infeasible (%v)",
						ii, bound, out.Result.Metrics, refErr)
				}
				if closest == nil || closest.Error() != refErr.Error() {
					t.Fatalf("instance %d bound %g: closest error %v != reference %v", ii, bound, closest, refErr)
				}
				continue
			}
			if !found {
				t.Fatalf("instance %d bound %g: portfolio infeasible where reference succeeds", ii, bound)
			}
			if out.Solver != "F1" {
				t.Fatalf("instance %d bound %g: winner %q, want F1", ii, bound, out.Solver)
			}
			if !sameResult(out.Result, ref) {
				t.Fatalf("instance %d bound %g: portfolio %+v != serial SplitFullyHet %+v",
					ii, bound, out.Result.Metrics, ref.Metrics)
			}
		}
	}
}

// TestFullHetParetoSweep checks the heuristic frontier on fully
// heterogeneous platforms: every point is achievable (metrics re-evaluate
// on the instance), no point dominates another, periods ascend, and the
// fanned-out sweep is bit-identical to the single-lane one.
func TestFullHetParetoSweep(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(63))
	for ii := 0; ii < 20; ii++ {
		ev := randFullHetEvaluator(r, 8, 5)
		front := ParetoSweep(ctx, ev, 12, 0)
		if len(front) == 0 {
			t.Fatalf("instance %d: empty frontier", ii)
		}
		for i, pt := range front {
			if math.Abs(ev.Period(pt.Mapping)-pt.Metrics.Period) > 1e-9*(1+pt.Metrics.Period) ||
				math.Abs(ev.Latency(pt.Mapping)-pt.Metrics.Latency) > 1e-9*(1+pt.Metrics.Latency) {
				t.Fatalf("instance %d point %d: metrics %+v do not re-evaluate", ii, i, pt.Metrics)
			}
			if i > 0 {
				prev := front[i-1]
				if pt.Metrics.Period <= prev.Metrics.Period {
					t.Fatalf("instance %d: periods not strictly ascending at %d", ii, i)
				}
				if pt.Metrics.Latency >= prev.Metrics.Latency {
					t.Fatalf("instance %d: point %d dominated by %d", ii, i, i-1)
				}
			}
		}
		serial := ParetoSweep(ctx, ev, 12, 1)
		if len(serial) != len(front) {
			t.Fatalf("instance %d: fanned front has %d points, single-lane %d", ii, len(front), len(serial))
		}
		for i := range front {
			if math.Float64bits(front[i].Metrics.Period) != math.Float64bits(serial[i].Metrics.Period) ||
				math.Float64bits(front[i].Metrics.Latency) != math.Float64bits(serial[i].Metrics.Latency) ||
				front[i].Mapping.String() != serial[i].Mapping.String() {
				t.Fatalf("instance %d: fanned point %d != single-lane point", ii, i)
			}
		}
	}
}
