//go:build !race

package portfolio

// raceEnabled mirrors the heuristics package guard: allocation-count
// assertions are skipped under the race detector, where sync.Pool
// intentionally drops entries.
const raceEnabled = false
