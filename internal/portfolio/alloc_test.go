package portfolio

// Allocation-regression caps for the orchestration layer: a serial
// portfolio race (heuristics + exact DP) and a warm sweep grid point.
// The engines underneath are pooled and allocation-free in steady state,
// so the race budget is dominated by the portfolio's own closures,
// attempt slots and the winners' materialised mappings. ISSUE 4's
// acceptance bar is ≤ 50 allocs per race; the caps pin that down.

import (
	"context"
	"testing"

	"pipesched/internal/lowerbound"
	"pipesched/internal/workload"
)

func TestPortfolioRaceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := workload.Generate(workload.Config{Family: workload.E2, Stages: 14, Processors: 10, Seed: 47}).Evaluator()
	bound := lowerbound.Period(ev) * 1.5
	ctx := context.Background()
	run := func() {
		if _, found, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true, Serial: true}); !found {
			t.Fatal("infeasible bound")
		}
	}
	run() // warm the pools
	if got := testing.AllocsPerRun(50, run); got > 50 {
		t.Errorf("serial portfolio race: %.1f allocs/run, cap 50", got)
	}
}

func TestSweepPointAllocsEndToEnd(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	ev := workload.Generate(workload.Config{Family: workload.E2, Stages: 16, Processors: 12, Seed: 9}).Evaluator()
	const points = 12
	run := func() {
		if front := ParetoSweep(context.Background(), ev, points, 1); len(front) == 0 {
			t.Fatal("empty frontier")
		}
	}
	run()
	perSweep := testing.AllocsPerRun(30, run)
	// 6 lanes × (sweeper + row + materialised results) plus the frontier
	// filter: budget ~25 allocations per grid point end to end, versus
	// several hundred for the pre-pooling sweep.
	if cap := float64(25 * points); perSweep > cap {
		t.Errorf("ParetoSweep(%d points): %.1f allocs/run, cap %g", points, perSweep, cap)
	}
}
