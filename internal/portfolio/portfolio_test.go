package portfolio

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/workload"
)

// smallInstances draws seeded instances of every family, small enough for
// the exact DP (≤ 8 processors).
func smallInstances(t testing.TB, perFamily int) []workload.Instance {
	t.Helper()
	var out []workload.Instance
	for fi, fam := range workload.Families() {
		out = append(out, workload.GenerateSet(fam, 6, 5, perFamily, int64(5000+100*fi))...)
		out = append(out, workload.GenerateSet(fam, 8, 8, perFamily, int64(9000+100*fi))...)
	}
	return out
}

// sameResult compares two heuristic results bit for bit.
func sameResult(a, b heuristics.Result) bool {
	if math.Float64bits(a.Metrics.Period) != math.Float64bits(b.Metrics.Period) ||
		math.Float64bits(a.Metrics.Latency) != math.Float64bits(b.Metrics.Latency) {
		return false
	}
	switch {
	case a.Mapping == nil && b.Mapping == nil:
		return true
	case a.Mapping == nil || b.Mapping == nil:
		return false
	}
	return a.Mapping.String() == b.Mapping.String()
}

// TestParallelMatchesSerial is the determinism property: for every small
// instance and a spread of bounds, the concurrent portfolio race returns
// exactly — bitwise — what the serial reference run returns: same winning
// solver, same metrics, same mapping, same failure.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	for _, withExact := range []bool{false, true} {
		for ii, in := range smallInstances(t, 3) {
			ev := in.Evaluator()
			lb := exactMinPeriod(t, ev)
			for _, factor := range []float64{0.5, 1.0, 1.5, 3.0} {
				bound := lb * factor
				sOut, sFound, sErr := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: withExact, Serial: true})
				pOut, pFound, pErr := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: withExact})
				if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
					t.Fatalf("instance %d bound %g exact=%v: serial (%v, %q, %+v) != parallel (%v, %q, %+v)",
						ii, bound, withExact, sFound, sOut.Solver, sOut.Result.Metrics, pFound, pOut.Solver, pOut.Result.Metrics)
				}
				// closest is only specified when no member met the bound
				// (the cancelling lanes abandon losing members before they
				// can report a near-miss).
				if !sFound && ((sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error())) {
					t.Fatalf("instance %d bound %g: serial err %v != parallel err %v", ii, bound, sErr, pErr)
				}
			}
			_, optLat := ev.OptimalLatency()
			for _, factor := range []float64{0.9, 1.0, 1.4, 2.5} {
				bound := optLat * factor
				sOut, sFound, sErr := UnderLatency(ctx, ev, bound, SolveOptions{Exact: withExact, Serial: true})
				pOut, pFound, pErr := UnderLatency(ctx, ev, bound, SolveOptions{Exact: withExact})
				if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
					t.Fatalf("instance %d latency bound %g exact=%v: serial != parallel", ii, bound, withExact)
				}
				if !sFound && ((sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error())) {
					t.Fatalf("instance %d latency bound %g: serial err %v != parallel err %v", ii, bound, sErr, pErr)
				}
			}
		}
	}
}

func exactMinPeriod(t testing.TB, ev *mapping.Evaluator) float64 {
	t.Helper()
	opt, err := exact.MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Metrics.Period
}

// TestHeuristicsNeverBeatExact cross-checks every heuristic against the
// exact reference solvers on seeded small instances: no feasible heuristic
// result may be strictly better than the optimum, and the portfolio with
// the DP enabled must achieve exactly the optimum whenever the bound is
// feasible.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	const tol = 1e-9
	ctx := context.Background()
	for ii, in := range smallInstances(t, 3) {
		ev := in.Evaluator()
		lb := exactMinPeriod(t, ev)
		for _, factor := range []float64{1.0, 1.3, 2.0} {
			bound := lb * factor
			opt, err := exact.MinLatencyUnderPeriod(ev, bound)
			if err != nil {
				t.Fatalf("instance %d: exact infeasible at %g × its own optimum", ii, factor)
			}
			for _, h := range heuristics.PeriodHeuristics() {
				res, err := h.MinimizeLatency(ev, bound)
				if err != nil {
					continue // infeasible for the heuristic: fine
				}
				if res.Metrics.Latency < opt.Metrics.Latency*(1-tol) {
					t.Errorf("instance %d: %s beat the exact DP under period %g: %g < %g",
						ii, h.ID(), bound, res.Metrics.Latency, opt.Metrics.Latency)
				}
			}
			out, found, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true})
			if !found {
				t.Fatalf("instance %d: portfolio failed on a bound the DP satisfies", ii)
			}
			if math.Abs(out.Result.Metrics.Latency-opt.Metrics.Latency) > tol*opt.Metrics.Latency {
				t.Errorf("instance %d: portfolio latency %g != exact %g",
					ii, out.Result.Metrics.Latency, opt.Metrics.Latency)
			}
		}
		_, optLat := ev.OptimalLatency()
		for _, factor := range []float64{1.0, 1.5, 2.5} {
			bound := optLat * factor
			opt, err := exact.MinPeriodUnderLatency(ev, bound)
			if err != nil {
				t.Fatalf("instance %d: exact infeasible at latency %g ≥ optimum", ii, bound)
			}
			for _, h := range heuristics.LatencyHeuristics() {
				res, err := h.MinimizePeriod(ev, bound)
				if err != nil {
					continue
				}
				if res.Metrics.Period < opt.Metrics.Period*(1-tol) {
					t.Errorf("instance %d: %s beat the exact DP under latency %g: %g < %g",
						ii, h.ID(), bound, res.Metrics.Period, opt.Metrics.Period)
				}
			}
		}
	}
}

// TestSolveBatchMatchesSerialReference runs a ≥ 64-instance batch through
// the concurrent pool and through a plain serial loop and demands
// bit-identical reports: per-instance bounds, winners, metrics, errors and
// the aggregated frontier.
func TestSolveBatchMatchesSerialReference(t *testing.T) {
	instances := workload.GenerateSet(workload.E2, 10, 8, 64, 4242)
	instances = append(instances, workload.GenerateSet(workload.E3, 8, 6, 16, 777)...)
	for _, objective := range []Objective{MinimizeLatency, MinimizePeriod} {
		opts := BatchOptions{
			Objective:     objective,
			Bound:         1.4,
			RelativeBound: true,
			Exact:         true,
		}
		serialOpts := opts
		serialOpts.Serial = true
		ref, err := SolveBatch(context.Background(), instances, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveBatch(context.Background(), instances, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Solved != ref.Solved || got.Failed != ref.Failed {
			t.Fatalf("%v: parallel solved/failed %d/%d, serial %d/%d",
				objective, got.Solved, got.Failed, ref.Solved, ref.Failed)
		}
		for i := range ref.Results {
			r, g := ref.Results[i], got.Results[i]
			if g.Index != r.Index || math.Float64bits(g.Bound) != math.Float64bits(r.Bound) {
				t.Fatalf("%v instance %d: bound %g != %g", objective, i, g.Bound, r.Bound)
			}
			if (g.Err == nil) != (r.Err == nil) {
				t.Fatalf("%v instance %d: err %v != %v", objective, i, g.Err, r.Err)
			}
			if r.Err == nil && (g.Outcome.Solver != r.Outcome.Solver || !sameResult(g.Outcome.Result, r.Outcome.Result)) {
				t.Fatalf("%v instance %d: outcome (%q %+v) != (%q %+v)", objective, i,
					g.Outcome.Solver, g.Outcome.Result.Metrics, r.Outcome.Solver, r.Outcome.Result.Metrics)
			}
		}
		if len(got.Front) != len(ref.Front) {
			t.Fatalf("%v: front sizes %d != %d", objective, len(got.Front), len(ref.Front))
		}
		for i := range ref.Front {
			if got.Front[i] != ref.Front[i] {
				t.Fatalf("%v: front[%d] %+v != %+v", objective, i, got.Front[i], ref.Front[i])
			}
		}
	}
}

// TestSolveBatchSharedEvaluator hammers one shared pipeline/platform pair
// from every batch worker at once — the -race exercise for the read-only
// contract of Evaluator, Pipeline and Platform.
func TestSolveBatchSharedEvaluator(t *testing.T) {
	base := workload.Generate(workload.Config{Family: workload.E2, Stages: 12, Processors: 10, Seed: 99})
	shared := make([]workload.Instance, 128)
	for i := range shared {
		shared[i] = base // same *Pipeline and *Platform in every element
	}
	report, err := SolveBatch(context.Background(), shared, BatchOptions{
		Bound:         1.5,
		RelativeBound: true,
		Workers:       4 * runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Solved != len(shared) {
		t.Fatalf("solved %d of %d identical instances", report.Solved, len(shared))
	}
	first := report.Results[0].Outcome
	for i, r := range report.Results {
		if r.Outcome.Solver != first.Solver || !sameResult(r.Outcome.Result, first.Result) {
			t.Fatalf("instance %d diverged from instance 0 on identical input", i)
		}
	}
}

// TestConcurrentRacesOnOneEvaluator runs many overlapping portfolio races
// against one evaluator; under -race this flags any hidden mutation.
func TestConcurrentRacesOnOneEvaluator(t *testing.T) {
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 10, Processors: 8, Seed: 7})
	ev := in.Evaluator()
	lb := exactMinPeriod(t, ev)
	bounds := make([]float64, 64)
	for i := range bounds {
		bounds[i] = lb * (1 + float64(i%8)/4)
	}
	outs, err := Map(context.Background(), 4*runtime.GOMAXPROCS(0), bounds, func(ctx context.Context, bound float64) string {
		out, found, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true})
		if !found {
			return ""
		}
		return out.Solver + out.Result.Mapping.String()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o != outs[i%8] { // same bound → same outcome
			t.Fatalf("bound %d: %q != %q", i, o, outs[i%8])
		}
	}
}

// TestSolveBatchCancellation proves prompt cancellation: a batch that
// would run far longer than the grace period returns almost immediately
// once the context is cancelled, with every unstarted instance carrying
// the cancellation error.
func TestSolveBatchCancellation(t *testing.T) {
	// Big enough that a full run takes many seconds on any machine.
	instances := workload.GenerateSet(workload.E2, 30, 60, 2048, 1234)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan BatchReport, 1)
	start := time.Now()
	go func() {
		report, _ := SolveBatch(ctx, instances, BatchOptions{Bound: 1.2, RelativeBound: true, Workers: 2})
		done <- report
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	var report BatchReport
	select {
	case report = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SolveBatch did not return within 30s of cancellation")
	}
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("SolveBatch took %v to honour cancellation", elapsed)
	}
	if len(report.Results) != len(instances) {
		t.Fatalf("report has %d results for %d instances", len(report.Results), len(instances))
	}
	cancelled := 0
	for _, r := range report.Results {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no instance recorded the cancellation — batch finished before cancel?")
	}
	if report.Failed < cancelled {
		t.Fatalf("Failed %d < cancelled %d", report.Failed, cancelled)
	}
}

// TestSolveBatchPreCancelled: a context dead on arrival yields a complete,
// fully failed report without starting work.
func TestSolveBatchPreCancelled(t *testing.T) {
	instances := workload.GenerateSet(workload.E1, 5, 5, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := SolveBatch(ctx, instances, BatchOptions{Bound: 100})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if report.Solved != 0 || report.Failed != len(instances) {
		t.Fatalf("solved %d failed %d", report.Solved, report.Failed)
	}
	for _, r := range report.Results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("instance %d: err = %v", r.Index, r.Err)
		}
	}
}

// TestMapOrderAndWorkerClamp pins the pool's contract: input order is
// preserved, worker counts are clamped sanely, empty input is fine.
func TestMapOrderAndWorkerClamp(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{-1, 0, 1, 7, 1000} {
		out, err := Map(context.Background(), workers, in, func(_ context.Context, x int) int { return x * x })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, x int) int { return x })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
}

// TestMapIndexed pins the index-passing variant used by SolveBatch.
func TestMapIndexed(t *testing.T) {
	in := []string{"a", "b", "c", "d"}
	out, err := MapIndexed(context.Background(), 2, in, func(_ context.Context, i int, s string) string {
		return s + string(rune('0'+i))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b1", "c2", "d3"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

// dupSpeedInstance builds an instance whose platform repeats few speeds
// over many processors — eligible for the exact DP under the class-keyed
// gate even though its processor count exceeds the legacy 14-proc limit.
func dupSpeedInstance(n, p, classes int, seed int64) workload.Instance {
	r := rand.New(rand.NewSource(seed))
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(classes))
	}
	return workload.Instance{
		App:  pipeline.MustNew(works, deltas),
		Plat: platform.MustNew(speeds, 10),
	}
}

// TestRaisedExactGateKeepsDeterminism is the regression guard for the
// class-keyed exact-eligibility rule: on platforms the old processor-count
// gate rejected (p > 14, few classes), the DP now joins the race — and the
// concurrent portfolio must still return bitwise what the serial reference
// returns, with the DP's optimum winning whenever the bound admits it.
func TestRaisedExactGateKeepsDeterminism(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 6; seed++ {
		in := dupSpeedInstance(7, 18, 3, 7000+seed)
		if !exact.Eligible(in.Plat) {
			t.Fatalf("seed %d: expected an Eligible few-class platform", seed)
		}
		ev := in.Evaluator()
		opt := exactMinPeriod(t, ev)
		for _, factor := range []float64{1.0, 1.3, 2.0} {
			bound := opt * factor
			sOut, sFound, sErr := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true, Serial: true})
			pOut, pFound, pErr := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true})
			if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
				t.Fatalf("seed %d bound %g: serial (%v, %q) != parallel (%v, %q)",
					seed, bound, sFound, sOut.Solver, pFound, pOut.Solver)
			}
			if (sErr == nil) != (pErr == nil) || (sErr != nil && sErr.Error() != pErr.Error()) {
				t.Fatalf("seed %d bound %g: serial err %v != parallel err %v", seed, bound, sErr, pErr)
			}
			if !sFound {
				t.Fatalf("seed %d: bound %g ≥ the DP optimum must be feasible", seed, bound)
			}
			// The DP races, so no winner can miss the exact optimum
			// latency under this bound.
			xr, err := exact.MinLatencyUnderPeriod(ev, bound)
			if err != nil {
				t.Fatal(err)
			}
			if sOut.Result.Metrics.Latency > xr.Metrics.Latency {
				t.Fatalf("seed %d bound %g: winner %q latency %v worse than DP %v",
					seed, bound, sOut.Solver, sOut.Result.Metrics.Latency, xr.Metrics.Latency)
			}
		}
		// At the exact optimum period the heuristics typically miss the
		// bound; the race must then be won by the DP itself, proving it
		// participates on these previously rejected platforms.
		tight, found, _ := UnderPeriod(ctx, ev, opt, SolveOptions{Exact: true, Serial: true})
		if !found {
			t.Fatalf("seed %d: DP-feasible bound reported infeasible", seed)
		}
		if tight.Result.Metrics.Period > opt*(1+1e-12) {
			t.Fatalf("seed %d: winner %q period %v exceeds optimum %v", seed, tight.Solver, tight.Result.Metrics.Period, opt)
		}
	}
}

// TestExactGateSitsOutIneligiblePlatforms pins the other side of the gate:
// many distinct speeds keep the DP out of the race, and the portfolio
// still behaves identically serial vs parallel.
func TestExactGateSitsOutIneligiblePlatforms(t *testing.T) {
	speeds := make([]float64, 17)
	for i := range speeds {
		speeds[i] = float64(i + 1) // 2^17 states: not Eligible
	}
	in := workload.Instance{
		App:  pipeline.MustNew([]float64{5, 9, 2, 7}, []float64{1, 2, 3, 4, 5}),
		Plat: platform.MustNew(speeds, 10),
	}
	if exact.Eligible(in.Plat) {
		t.Fatal("17 distinct speeds must not be Eligible")
	}
	ev := in.Evaluator()
	ctx := context.Background()
	single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
	bound := ev.Period(single)
	sOut, sFound, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true, Serial: true})
	pOut, pFound, _ := UnderPeriod(ctx, ev, bound, SolveOptions{Exact: true})
	if sFound != pFound || sOut.Solver != pOut.Solver || !sameResult(sOut.Result, pOut.Result) {
		t.Fatal("serial != parallel on an ineligible platform")
	}
	if sFound && sOut.Solver == ExactID {
		t.Fatal("the DP must sit out races on ineligible platforms")
	}
}
