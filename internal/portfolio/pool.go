// Package portfolio is the concurrent solving layer of the reproduction:
// it races the paper's solvers against each other on one instance
// (portfolio solving) and batch-solves slices of workload instances on a
// bounded, context-aware worker pool (batch solving).
//
// Everything here is pure orchestration. The heuristics and exact solvers
// stay deterministic and single-threaded; the portfolio only decides what
// runs where, then selects among finished runs with the exact tie-breaking
// rules of the original serial loops, so parallel results are bit-identical
// to serial ones.
package portfolio

import (
	"context"
	"runtime"
	"sync"
)

// Map applies fn to every element of in using at most workers goroutines
// and returns the results in input order. workers < 1 selects
// runtime.GOMAXPROCS(0).
//
// Map is context-aware: once ctx is cancelled no new element is started
// (elements already running finish — the solvers themselves are not
// interruptible) and Map returns ctx's error. Skipped elements keep the
// zero value of R, so callers distinguishing "ran" from "skipped" should
// make R a pointer type.
func Map[T, R any](ctx context.Context, workers int, in []T, fn func(context.Context, T) R) ([]R, error) {
	return MapIndexed(ctx, workers, in, func(ctx context.Context, _ int, v T) R {
		return fn(ctx, v)
	})
}

// MapIndexed is Map with the element's input position passed to fn, for
// callers whose work depends on position (e.g. sweep grids flattened into
// one task slice).
func MapIndexed[T, R any](ctx context.Context, workers int, in []T, fn func(context.Context, int, T) R) ([]R, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	if len(in) == 0 {
		return out, ctx.Err()
	}
	if workers == 1 {
		// Inline lane handoff: one worker needs no goroutine, no channel
		// and no WaitGroup — the single-lane path must never cost more
		// than a plain loop, so the serial fallback genuinely is serial.
		for i := range in {
			if ctx.Err() != nil {
				break
			}
			out[i] = fn(ctx, i, in[i])
		}
		return out, ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(ctx, i, in[i])
			}
		}()
	}
feed:
	for i := range in {
		// Poll cancellation first: the blocking select below picks
		// randomly among ready cases, so with idle workers it could keep
		// dispatching after the context died.
		select {
		case <-ctx.Done():
			break feed
		default:
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}
