package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/workload"
)

// TestWireKeysMatchObjectKeys pins the wire-level key functions to the
// object-level ones: the serving hot path computes keys from raw decoded
// slices, and those keys must be byte-identical to hashing the
// constructed pipeline/platform — otherwise a request could miss its own
// earlier result.
func TestWireKeysMatchObjectKeys(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E2, Stages: 7, Processors: 5, Seed: seed})
		works, deltas := in.App.Works(), in.App.Deltas()
		pw := &platformWire{Speeds: in.Plat.Speeds(), Bandwidth: in.Plat.Bandwidth()}
		for _, mode := range []string{"portfolio", "best", "H1"} {
			objKey := solveKey(portfolio.MinimizeLatency, mode, 12.5, in.App, in.Plat)
			wireKey := solveKeyWire(portfolio.MinimizeLatency, mode, 12.5, works, deltas, pw)
			if objKey != wireKey {
				t.Errorf("seed %d mode %s: wire solve key diverges from object key", seed, mode)
			}
		}
		if sweepKey(9, in.App, in.Plat) != sweepKeyWire(9, works, deltas, pw) {
			t.Errorf("seed %d: wire sweep key diverges from object key", seed)
		}
	}
}

// TestFullHetWireKeysMatchObjectKeys is the fully heterogeneous twin of
// TestWireKeysMatchObjectKeys, including the diagonal-normalisation rule:
// the constructor ignores diagonal link cells, so a request carrying
// garbage there must still hash to the constructed platform's key.
func TestFullHetWireKeysMatchObjectKeys(t *testing.T) {
	app := pipeline.MustNew([]float64{3, 1, 4, 1, 5}, []float64{2, 7, 1, 8, 2, 8})
	speeds := []float64{2, 3, 5}
	links := [][]float64{
		{0, 4, 9},
		{4, 0, 6},
		{9, 6, 0},
	}
	plat, err := platform.NewFullyHeterogeneous(speeds, links)
	if err != nil {
		t.Fatal(err)
	}
	dirtyDiag := [][]float64{
		{123, 4, 9},
		{4, -7, 6},
		{9, 6, math.NaN()},
	}
	for _, pw := range []*platformWire{
		{Kind: platform.FullyHeterogeneous.String(), Speeds: speeds, Links: links},
		{Kind: platform.FullyHeterogeneous.String(), Speeds: speeds, Links: dirtyDiag},
	} {
		for _, mode := range []string{"portfolio", "best", "F1"} {
			objKey := solveKey(portfolio.MinimizeLatency, mode, 12.5, app, plat)
			wireKey := solveKeyWire(portfolio.MinimizeLatency, mode, 12.5, app.Works(), app.Deltas(), pw)
			if objKey != wireKey {
				t.Errorf("mode %s: fullhet wire solve key diverges from object key", mode)
			}
		}
		if sweepKey(9, app, plat) != sweepKeyWire(9, app.Works(), app.Deltas(), pw) {
			t.Error("fullhet wire sweep key diverges from object key")
		}
	}
}

// TestCanonSeparatesLinkBandwidths is the cache-correctness regression
// the fullhet lane demands: two platforms identical except for a single
// link bandwidth must produce distinct canonical keys on both the object
// and the wire path, and the fullhet stream must never collide with a
// comm-homogeneous platform of the same speeds.
func TestCanonSeparatesLinkBandwidths(t *testing.T) {
	app := pipeline.MustNew([]float64{1, 2}, []float64{1, 1, 1})
	speeds := []float64{1, 2, 3}
	mkLinks := func(b01 float64) [][]float64 {
		return [][]float64{
			{0, b01, 5},
			{b01, 0, 7},
			{5, 7, 0},
		}
	}
	a, err := platform.NewFullyHeterogeneous(speeds, mkLinks(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := platform.NewFullyHeterogeneous(speeds, mkLinks(3))
	if err != nil {
		t.Fatal(err)
	}
	if solveKey(portfolio.MinimizeLatency, "portfolio", 10, app, a) ==
		solveKey(portfolio.MinimizeLatency, "portfolio", 10, app, b) {
		t.Error("object keys collide across a changed link bandwidth")
	}
	wa := &platformWire{Kind: platform.FullyHeterogeneous.String(), Speeds: speeds, Links: mkLinks(2)}
	wb := &platformWire{Kind: platform.FullyHeterogeneous.String(), Speeds: speeds, Links: mkLinks(3)}
	if solveKeyWire(portfolio.MinimizeLatency, "portfolio", 10, app.Works(), app.Deltas(), wa) ==
		solveKeyWire(portfolio.MinimizeLatency, "portfolio", 10, app.Works(), app.Deltas(), wb) {
		t.Error("wire keys collide across a changed link bandwidth")
	}
	if sweepKeyWire(9, app.Works(), app.Deltas(), wa) == sweepKeyWire(9, app.Works(), app.Deltas(), wb) {
		t.Error("wire sweep keys collide across a changed link bandwidth")
	}
	hom, err := platform.New(speeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if solveKey(portfolio.MinimizeLatency, "portfolio", 10, app, a) ==
		solveKey(portfolio.MinimizeLatency, "portfolio", 10, app, hom) {
		t.Error("fullhet key collides with a comm-homogeneous platform of the same speeds")
	}
}

// TestErrorJSONShape pins the hand-rendered error body byte-for-byte
// against encoding/json on a torture table: quotes, backslashes, HTML
// metacharacters, control bytes, multi-byte UTF-8, the JS line
// separators and invalid UTF-8 must all escape exactly as the encoder
// would, so clients observe no change from the pooled error path.
func TestErrorJSONShape(t *testing.T) {
	messages := []string{
		"plain message",
		`unknown platform kind "grid" (want "comm-homogeneous" or "fully-heterogeneous")`,
		"bound -1 is invalid (must be finite and > 0)",
		"tabs\tand\nnewlines\rand\\slashes",
		"html <script>&amp;</script> metacharacters",
		"control \x01\x02\x1f bytes",
		"unicode: périod λatency 周期",
		"js separators \u2028 and \u2029",
		"invalid utf-8: \xff\xfe tail",
		"",
	}
	for _, msg := range messages {
		want, err := json.Marshal(errorResponse{Error: msg})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		rec := httptest.NewRecorder()
		writeErrorBody(rec, http.StatusBadRequest, msg)
		if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
			t.Errorf("message %q:\n got %q\nwant %q", msg, got, want)
		}
		if rec.Code != http.StatusBadRequest {
			t.Errorf("message %q: status %d", msg, rec.Code)
		}
		if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(want)) {
			t.Errorf("message %q: Content-Length %q, want %d", msg, cl, len(want))
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("message %q: Content-Type %q", msg, ct)
		}
	}
}

// TestErrorShapeEndToEnd drives real invalid requests through the HTTP
// stack and asserts every error body is exactly one {"error": ...}
// object with a trailing newline, decodable into errorResponse, on both
// the 4xx and the 5xx-mapped paths.
func TestErrorShapeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	for name, body := range map[string][]byte{
		"bad-json":      []byte("{nope"),
		"bad-bound":     solveBody(t, in, map[string]any{"bound": -3.5}),
		"bad-mode":      solveBody(t, in, map[string]any{"bound": 1.0, "mode": "H99"}),
		"infeasible":    solveBody(t, in, map[string]any{"bound": 1e-9, "mode": "best"}),
		"unknown-kind":  []byte(`{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"grid","speeds":[1,2],"bandwidth":1},"bound":10}`),
		"het-exact":     []byte(`{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]},"bound":10,"mode":"exact"}`),
		"het-bad-links": []byte(`{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1]]},"bound":10}`),
		"trailing-data": append(solveBody(t, in, map[string]any{"bound": 1.0}), []byte(" {}")...),
	} {
		t.Run(name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/solve", body)
			if resp.StatusCode < 400 {
				t.Fatalf("status %d, want an error", resp.StatusCode)
			}
			if !bytes.HasSuffix(data, []byte("}\n")) {
				t.Fatalf("error body %q does not end in }\\n", data)
			}
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q not an error object (%v)", data, err)
			}
			// The body must be the canonical encoding of its own message.
			want, _ := json.Marshal(errorResponse{Error: er.Error})
			if !bytes.Equal(data, append(want, '\n')) {
				t.Fatalf("error body %q is not canonical (want %q)", data, append(want, '\n'))
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q", ct)
			}
		})
	}
}

// TestResponsesCarryContentLength pins the rendered-bytes contract: both
// hits and misses go out with an exact Content-Length (one write, no
// chunking) and a trailing newline.
func TestResponsesCarryContentLength(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"bound": 1e6})
	for _, pass := range []string{"miss", "hit"} {
		resp, data := post(t, ts, "/v1/solve", body)
		if got := resp.Header.Get("X-Cache"); got != pass {
			t.Fatalf("X-Cache %q, want %q", got, pass)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(data)) {
			t.Fatalf("%s: Content-Length %q for %d body bytes", pass, cl, len(data))
		}
		if !bytes.HasSuffix(data, []byte("\n")) {
			t.Fatalf("%s: body missing trailing newline", pass)
		}
	}
}

// TestMetricsConservation pins the /metrics consistency law the sharded
// rebuild must preserve: over any quiesced run of valid cacheable
// requests, hits + collapsed + misses equals the requests that reached
// the cache, and the endpoint counters account for every HTTP request.
func TestMetricsConservation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	const uniques, repeats = 5, 3
	valid := 0
	for u := 0; u < uniques; u++ {
		body := solveBody(t, in, map[string]any{"bound": 1e6 + float64(u)})
		for rep := 0; rep < repeats; rep++ {
			resp, data := post(t, ts, "/v1/solve", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			valid++
		}
	}
	// Two invalid requests: they hit the endpoint counters but never
	// reach the cache.
	post(t, ts, "/v1/solve", []byte("{bad"))
	post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": -1.0}))

	_, mbody := get(t, ts, "/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("bad /metrics body: %v\n%s", err, mbody)
	}
	if got := snap.Cache.Hits + snap.Cache.Misses + snap.Cache.Collapsed; got != uint64(valid) {
		t.Errorf("hits+misses+collapsed = %d, want %d (the cacheable requests)", got, valid)
	}
	if snap.Cache.Misses != uniques || snap.Cache.Hits != uniques*(repeats-1) {
		t.Errorf("cache = %+v, want %d misses and %d hits", snap.Cache, uniques, uniques*(repeats-1))
	}
	es := snap.Endpoints["solve"]
	if es.Requests != uint64(valid+2) || es.Errors != 2 {
		t.Errorf("solve endpoint = %+v, want %d requests, 2 errors", es, valid+2)
	}
	if snap.Cache.Shards < 1 {
		t.Errorf("snapshot reports %d shards", snap.Cache.Shards)
	}
	if fmt.Sprint(snap.Cache.HitRate) == "NaN" || snap.Cache.HitRate <= 0 {
		t.Errorf("hit rate %v", snap.Cache.HitRate)
	}
}

// TestStrictTopLevelDecodeStillEnforced pins the strictness contract
// after the wire rework: unknown top-level fields and trailing data are
// rejected on every wire-decoded endpoint.
func TestStrictTopLevelDecodeStillEnforced(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	for _, tc := range []struct {
		name, path string
		body       []byte
	}{
		{"solve-unknown", "/v1/solve", solveBody(t, in, map[string]any{"bound": 1.0, "bogus": 1})},
		{"sweep-unknown", "/v1/sweep", solveBody(t, in, map[string]any{"bogus": 1})},
		{"batch-unknown", "/v1/batch", []byte(`{"instances":[],"bound":1,"bogus":1}`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), "bogus") && !strings.Contains(string(data), "instances") {
				t.Fatalf("error does not name the offending field: %s", data)
			}
		})
	}
}

// TestBatchWireKeyMatchesObjectKey pins batchKeyWire to batchKey: the
// batch hot path computes its cache key from the pooled wire scratch,
// and a primed batch must hit the entry that an object-keyed writer (or
// an older build) stored. Worker count must not fragment the key on
// either path.
func TestBatchWireKeyMatchesObjectKey(t *testing.T) {
	var instances []workload.Instance
	var wires []instanceWire
	for seed := int64(1); seed <= 4; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E2, Stages: 6, Processors: 4, Seed: seed})
		instances = append(instances, in)
		wires = append(wires, instanceWire{
			Pipeline: pipelineWire{Works: in.App.Works(), Deltas: in.App.Deltas()},
			Platform: platformWire{Speeds: in.Plat.Speeds(), Bandwidth: in.Plat.Bandwidth()},
		})
	}
	app := pipeline.MustNew([]float64{3, 1, 4}, []float64{2, 7, 1, 8})
	speeds := []float64{2, 3, 5}
	links := [][]float64{
		{0, 4, 9},
		{4, 0, 6},
		{9, 6, 0},
	}
	fullhet, err := platform.NewFullyHeterogeneous(speeds, links)
	if err != nil {
		t.Fatal(err)
	}
	instances = append(instances, workload.Instance{App: app, Plat: fullhet})
	wires = append(wires, instanceWire{
		Pipeline: pipelineWire{Works: app.Works(), Deltas: app.Deltas()},
		Platform: platformWire{Kind: platform.FullyHeterogeneous.String(), Speeds: speeds, Links: links},
	})
	for _, opts := range []portfolio.BatchOptions{
		{Objective: portfolio.MinimizeLatency, Bound: 1.5},
		{Objective: portfolio.MinimizePeriod, Bound: 2, RelativeBound: true, Exact: true},
	} {
		if batchKey(opts, instances) != batchKeyWire(opts, wires) {
			t.Errorf("opts %+v: wire batch key diverges from object key", opts)
		}
		alt := opts
		alt.Workers = 7
		if batchKeyWire(alt, wires) != batchKeyWire(opts, wires) {
			t.Errorf("opts %+v: worker count fragments the batch key", opts)
		}
	}
	// Distinct instance order must produce a distinct key: a batch is an
	// ordered request, results are positional.
	swapped := append([]instanceWire(nil), wires...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	opts := portfolio.BatchOptions{Bound: 1.5}
	if batchKeyWire(opts, swapped) == batchKeyWire(opts, wires) {
		t.Error("reordering instances kept the batch key")
	}
}
