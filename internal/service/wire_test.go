package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pipesched/internal/portfolio"
	"pipesched/internal/workload"
)

// TestWireKeysMatchObjectKeys pins the wire-level key functions to the
// object-level ones: the serving hot path computes keys from raw decoded
// slices, and those keys must be byte-identical to hashing the
// constructed pipeline/platform — otherwise a request could miss its own
// earlier result.
func TestWireKeysMatchObjectKeys(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E2, Stages: 7, Processors: 5, Seed: seed})
		works, deltas := in.App.Works(), in.App.Deltas()
		speeds, bandwidth := in.Plat.Speeds(), in.Plat.Bandwidth()
		for _, mode := range []string{"portfolio", "best", "H1"} {
			objKey := solveKey(portfolio.MinimizeLatency, mode, 12.5, in.App, in.Plat)
			wireKey := solveKeyWire(portfolio.MinimizeLatency, mode, 12.5, works, deltas, speeds, bandwidth)
			if objKey != wireKey {
				t.Errorf("seed %d mode %s: wire solve key diverges from object key", seed, mode)
			}
		}
		if sweepKey(9, in.App, in.Plat) != sweepKeyWire(9, works, deltas, speeds, bandwidth) {
			t.Errorf("seed %d: wire sweep key diverges from object key", seed)
		}
	}
}

// TestErrorJSONShape pins the hand-rendered error body byte-for-byte
// against encoding/json on a torture table: quotes, backslashes, HTML
// metacharacters, control bytes, multi-byte UTF-8, the JS line
// separators and invalid UTF-8 must all escape exactly as the encoder
// would, so clients observe no change from the pooled error path.
func TestErrorJSONShape(t *testing.T) {
	messages := []string{
		"plain message",
		`platform kind "fully-heterogeneous" is not servable`,
		"bound -1 is invalid (must be finite and > 0)",
		"tabs\tand\nnewlines\rand\\slashes",
		"html <script>&amp;</script> metacharacters",
		"control \x01\x02\x1f bytes",
		"unicode: périod λatency 周期",
		"js separators \u2028 and \u2029",
		"invalid utf-8: \xff\xfe tail",
		"",
	}
	for _, msg := range messages {
		want, err := json.Marshal(errorResponse{Error: msg})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		rec := httptest.NewRecorder()
		writeErrorBody(rec, http.StatusBadRequest, msg)
		if got := rec.Body.Bytes(); !bytes.Equal(got, want) {
			t.Errorf("message %q:\n got %q\nwant %q", msg, got, want)
		}
		if rec.Code != http.StatusBadRequest {
			t.Errorf("message %q: status %d", msg, rec.Code)
		}
		if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(len(want)) {
			t.Errorf("message %q: Content-Length %q, want %d", msg, cl, len(want))
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("message %q: Content-Type %q", msg, ct)
		}
	}
}

// TestErrorShapeEndToEnd drives real invalid requests through the HTTP
// stack and asserts every error body is exactly one {"error": ...}
// object with a trailing newline, decodable into errorResponse, on both
// the 4xx and the 5xx-mapped paths.
func TestErrorShapeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	for name, body := range map[string][]byte{
		"bad-json":      []byte("{nope"),
		"bad-bound":     solveBody(t, in, map[string]any{"bound": -3.5}),
		"bad-mode":      solveBody(t, in, map[string]any{"bound": 1.0, "mode": "H99"}),
		"infeasible":    solveBody(t, in, map[string]any{"bound": 1e-9, "mode": "best"}),
		"het-platform":  []byte(`{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]},"bound":10}`),
		"trailing-data": append(solveBody(t, in, map[string]any{"bound": 1.0}), []byte(" {}")...),
	} {
		t.Run(name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/solve", body)
			if resp.StatusCode < 400 {
				t.Fatalf("status %d, want an error", resp.StatusCode)
			}
			if !bytes.HasSuffix(data, []byte("}\n")) {
				t.Fatalf("error body %q does not end in }\\n", data)
			}
			var er errorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q not an error object (%v)", data, err)
			}
			// The body must be the canonical encoding of its own message.
			want, _ := json.Marshal(errorResponse{Error: er.Error})
			if !bytes.Equal(data, append(want, '\n')) {
				t.Fatalf("error body %q is not canonical (want %q)", data, append(want, '\n'))
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q", ct)
			}
		})
	}
}

// TestResponsesCarryContentLength pins the rendered-bytes contract: both
// hits and misses go out with an exact Content-Length (one write, no
// chunking) and a trailing newline.
func TestResponsesCarryContentLength(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"bound": 1e6})
	for _, pass := range []string{"miss", "hit"} {
		resp, data := post(t, ts, "/v1/solve", body)
		if got := resp.Header.Get("X-Cache"); got != pass {
			t.Fatalf("X-Cache %q, want %q", got, pass)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(data)) {
			t.Fatalf("%s: Content-Length %q for %d body bytes", pass, cl, len(data))
		}
		if !bytes.HasSuffix(data, []byte("\n")) {
			t.Fatalf("%s: body missing trailing newline", pass)
		}
	}
}

// TestMetricsConservation pins the /metrics consistency law the sharded
// rebuild must preserve: over any quiesced run of valid cacheable
// requests, hits + collapsed + misses equals the requests that reached
// the cache, and the endpoint counters account for every HTTP request.
func TestMetricsConservation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	const uniques, repeats = 5, 3
	valid := 0
	for u := 0; u < uniques; u++ {
		body := solveBody(t, in, map[string]any{"bound": 1e6 + float64(u)})
		for rep := 0; rep < repeats; rep++ {
			resp, data := post(t, ts, "/v1/solve", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			valid++
		}
	}
	// Two invalid requests: they hit the endpoint counters but never
	// reach the cache.
	post(t, ts, "/v1/solve", []byte("{bad"))
	post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": -1.0}))

	_, mbody := get(t, ts, "/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("bad /metrics body: %v\n%s", err, mbody)
	}
	if got := snap.Cache.Hits + snap.Cache.Misses + snap.Cache.Collapsed; got != uint64(valid) {
		t.Errorf("hits+misses+collapsed = %d, want %d (the cacheable requests)", got, valid)
	}
	if snap.Cache.Misses != uniques || snap.Cache.Hits != uniques*(repeats-1) {
		t.Errorf("cache = %+v, want %d misses and %d hits", snap.Cache, uniques, uniques*(repeats-1))
	}
	es := snap.Endpoints["solve"]
	if es.Requests != uint64(valid+2) || es.Errors != 2 {
		t.Errorf("solve endpoint = %+v, want %d requests, 2 errors", es, valid+2)
	}
	if snap.Cache.Shards < 1 {
		t.Errorf("snapshot reports %d shards", snap.Cache.Shards)
	}
	if fmt.Sprint(snap.Cache.HitRate) == "NaN" || snap.Cache.HitRate <= 0 {
		t.Errorf("hit rate %v", snap.Cache.HitRate)
	}
}

// TestStrictTopLevelDecodeStillEnforced pins the strictness contract
// after the wire rework: unknown top-level fields and trailing data are
// rejected on every wire-decoded endpoint.
func TestStrictTopLevelDecodeStillEnforced(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	for _, tc := range []struct {
		name, path string
		body       []byte
	}{
		{"solve-unknown", "/v1/solve", solveBody(t, in, map[string]any{"bound": 1.0, "bogus": 1})},
		{"sweep-unknown", "/v1/sweep", solveBody(t, in, map[string]any{"bogus": 1})},
		{"batch-unknown", "/v1/batch", []byte(`{"instances":[],"bound":1,"bogus":1}`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), "bogus") && !strings.Contains(string(data), "instances") {
				t.Fatalf("error does not name the offending field: %s", data)
			}
		})
	}
}
