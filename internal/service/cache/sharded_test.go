package cache

// Cross-implementation property tests: the sharded cache must be
// behaviourally identical to the single-shard Cache, which stays in the
// package as the test oracle. Sequential traffic is compared op by op
// (value, source, error and final stats all equal); concurrent traffic —
// where interleavings legitimately differ between two instances — is
// checked against the invariants that hold for every interleaving:
// returned values are always the key's value, every observed outcome is
// counted exactly once (hits+misses+collapsed conservation), and the
// entry count respects the capacity bound. Run under -race, this doubles
// as the data-race hammer for the shard routing.

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// val is the deterministic value of a key: compute functions in these
// tests always return val(k), so any returned value is checkable.
func val(k Key) int { return int(k[0])*31 + int(k[1]) }

// keyAt builds a key whose shard (for any power-of-two shard count up to
// 256) is chosen by its first byte.
func keyAt(shardByte, salt byte) Key {
	var k Key
	k[0] = shardByte
	k[1] = salt
	return k
}

func TestCeilPow2(t *testing.T) {
	for _, tc := range []struct{ in, max, want int }{
		{0, 128, 1}, {1, 128, 1}, {2, 128, 2}, {3, 128, 4},
		{5, 128, 8}, {8, 128, 8}, {9, 128, 16}, {1000, 128, 128},
	} {
		if got := ceilPow2(tc.in, tc.max); got != tc.want {
			t.Errorf("ceilPow2(%d, %d) = %d, want %d", tc.in, tc.max, got, tc.want)
		}
	}
}

func TestShardedRouting(t *testing.T) {
	s := NewSharded[int](64, 5) // rounds up to 8 shards
	if got := s.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8 (5 rounded up)", got)
	}
	if d := DefaultShards(); d&(d-1) != 0 || d < 1 || d > 128 {
		t.Fatalf("DefaultShards() = %d, want a power of two in [1,128]", d)
	}
	// Identical keys must always route identically (the collapse
	// guarantee depends on it); distinct low bytes must spread.
	k := keyAt(3, 9)
	if s.shard(k) != s.shard(k) {
		t.Fatal("same key routed to different shards")
	}
	seen := map[*Cache[int]]bool{}
	for b := byte(0); b < 8; b++ {
		seen[s.shard(keyAt(b, 0))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 distinct low bytes landed on %d shards, want 8", len(seen))
	}
}

// oracleSet mirrors a Sharded cache with independent single-shard Cache
// oracles, routed by the same key bits.
type oracleSet struct {
	mask    uint64
	oracles []*Cache[int]
}

func newOracleSet(perShard, shards int) *oracleSet {
	o := &oracleSet{mask: uint64(shards - 1), oracles: make([]*Cache[int], shards)}
	for i := range o.oracles {
		o.oracles[i] = New[int](perShard)
	}
	return o
}

func (o *oracleSet) route(k Key) *Cache[int] {
	return o.oracles[binary.LittleEndian.Uint64(k[:8])&o.mask]
}

func (o *oracleSet) stats() Stats {
	var agg Stats
	for _, c := range o.oracles {
		s := c.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Collapsed += s.Collapsed
		agg.Evictions += s.Evictions
		agg.Entries += s.Entries
	}
	return agg
}

// TestShardedMatchesOracleSequential drives one deterministic randomized
// op stream — Get, Do and eviction pressure — through a sharded cache and
// the per-shard oracles, asserting every single operation observes the
// identical outcome and the final counters agree shard by shard.
func TestShardedMatchesOracleSequential(t *testing.T) {
	const (
		shards   = 4
		perShard = 8
		ops      = 20000
	)
	s := NewSharded[int](shards*perShard, shards)
	o := newOracleSet(perShard, shards)
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	for i := 0; i < ops; i++ {
		// 64 distinct keys over 4 shards, 16 per shard vs capacity 8:
		// constant eviction churn on every shard.
		k := keyAt(byte(rng.Intn(shards)), byte(rng.Intn(16)))
		if rng.Intn(10) < 3 { // 30% bare Gets
			gv, gok := s.Get(k)
			wv, wok := o.route(k).Get(k)
			if gv != wv || gok != wok {
				t.Fatalf("op %d: Get(%v) = (%d,%v), oracle (%d,%v)", i, k[:2], gv, gok, wv, wok)
			}
			continue
		}
		fn := func() (int, error) { return val(k), nil }
		gv, gsrc, gerr := s.Do(ctx, k, fn)
		wv, wsrc, werr := o.route(k).Do(ctx, k, fn)
		if gv != wv || gsrc != wsrc || (gerr == nil) != (werr == nil) {
			t.Fatalf("op %d: Do(%v) = (%d,%v,%v), oracle (%d,%v,%v)", i, k[:2], gv, gsrc, gerr, wv, wsrc, werr)
		}
	}
	for i, shard := range s.shards {
		ss, os := shard.Stats(), o.oracles[i].Stats()
		if ss != os {
			t.Errorf("shard %d stats %+v, oracle %+v", i, ss, os)
		}
	}
	if agg, want := s.Stats(), o.stats(); agg != want {
		t.Errorf("aggregate stats %+v, oracle %+v", agg, want)
	}
	if agg := s.Stats(); agg.Evictions == 0 {
		t.Error("traffic produced no evictions; the property run is not exercising LRU bounds")
	}
}

// TestSingleShardIsTheOracle pins the degenerate case exactly: one shard
// must behave indistinguishably from the legacy cache on eviction-order
// sensitive traffic.
func TestSingleShardIsTheOracle(t *testing.T) {
	s := NewSharded[int](3, 1)
	c := New[int](3)
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for i := 0; i < 5000; i++ {
		k := keyAt(byte(rng.Intn(9)), 0)
		fn := func() (int, error) { return val(k), nil }
		gv, gsrc, _ := s.Do(ctx, k, fn)
		wv, wsrc, _ := c.Do(ctx, k, fn)
		if gv != wv || gsrc != wsrc {
			t.Fatalf("op %d: (%d,%v) vs oracle (%d,%v)", i, gv, gsrc, wv, wsrc)
		}
	}
	if ss, cs := s.Stats(), c.Stats(); ss != cs {
		t.Fatalf("stats diverged: %+v vs %+v", ss, cs)
	}
}

// TestShardedMatchesOracleConcurrent hammers both implementations with
// randomized concurrent Get/Do/evict traffic and asserts the invariants
// that hold under every interleaving: values are never conflated across
// keys, every Do outcome is counted exactly once (hits + misses +
// collapsed = Do calls, the conservation law /metrics relies on), Get
// hits are counted exactly once, and storage respects the bound.
func TestShardedMatchesOracleConcurrent(t *testing.T) {
	type target struct {
		name string
		get  func(Key) (int, bool)
		do   func(context.Context, Key, func() (int, error)) (int, Source, error)
		stat func() Stats
		cap  int
	}
	sh := NewSharded[int](64, 8)
	legacy := New[int](64)
	for _, tgt := range []target{
		{"sharded", sh.Get, sh.Do, sh.Stats, 64},
		{"legacy-oracle", legacy.Get, legacy.Do, legacy.Stats, 64},
	} {
		t.Run(tgt.name, func(t *testing.T) {
			const (
				workers = 8
				perG    = 3000
			)
			var getHits, doHits, doMisses, doCollapsed atomic.Uint64
			ctx := context.Background()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perG; i++ {
						k := keyAt(byte(rng.Intn(16)), byte(rng.Intn(8)))
						if rng.Intn(10) < 3 {
							if v, ok := tgt.get(k); ok {
								if v != val(k) {
									t.Errorf("Get(%v) returned %d, want %d", k[:2], v, val(k))
									return
								}
								getHits.Add(1)
							}
							continue
						}
						slow := rng.Intn(50) == 0
						v, src, err := tgt.do(ctx, k, func() (int, error) {
							if slow {
								time.Sleep(100 * time.Microsecond) // widen the collapse window
							}
							return val(k), nil
						})
						if err != nil {
							t.Errorf("Do(%v): %v", k[:2], err)
							return
						}
						if v != val(k) {
							t.Errorf("Do(%v) returned %d, want %d", k[:2], v, val(k))
							return
						}
						switch src {
						case Hit:
							doHits.Add(1)
						case Computed:
							doMisses.Add(1)
						case Collapsed:
							doCollapsed.Add(1)
						}
					}
				}(int64(100 + w))
			}
			wg.Wait()
			// All waiters have returned and every leader stores before
			// releasing its waiters, so the counters are quiescent.
			s := tgt.stat()
			wantHits := getHits.Load() + doHits.Load()
			if s.Hits != wantHits || s.Misses != doMisses.Load() || s.Collapsed != doCollapsed.Load() {
				t.Errorf("stats %+v; observed hits=%d misses=%d collapsed=%d",
					s, wantHits, doMisses.Load(), doCollapsed.Load())
			}
			if total := s.Hits + s.Misses + s.Collapsed; total != doHits.Load()+doMisses.Load()+doCollapsed.Load()+getHits.Load() {
				t.Errorf("conservation violated: counted %d, observed %d outcomes", total, doHits.Load()+doMisses.Load()+doCollapsed.Load()+getHits.Load())
			}
			if s.Entries > tgt.cap {
				t.Errorf("%d entries exceed capacity %d", s.Entries, tgt.cap)
			}
		})
	}
}

// TestShardedCollapse proves the singleflight guarantee survives
// sharding: identical keys land on one shard, so concurrent identical
// calls still collapse to exactly one execution.
func TestShardedCollapse(t *testing.T) {
	const n = 8
	s := NewSharded[int](16, 4)
	var executions atomic.Int64
	release := make(chan struct{})
	k := keyAt(5, 1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.Do(context.Background(), k, func() (int, error) {
				executions.Add(1)
				<-release
				return val(k), nil
			})
			if err != nil || v != val(k) {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Misses == 1 && st.Collapsed == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never converged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("%d executions, want 1", got)
	}
}

func TestShardedZeroCapacity(t *testing.T) {
	s := NewSharded[int](-1, 4)
	calls := 0
	for i := 0; i < 2; i++ {
		_, src, err := s.Do(context.Background(), keyAt(1, 1), func() (int, error) { calls++; return 1, nil })
		if err != nil || src != Computed {
			t.Fatalf("Do %d = (%v, %v), want Computed", i, src, err)
		}
	}
	if calls != 2 || s.Len() != 0 {
		t.Fatalf("calls = %d, Len = %d; want 2 recomputes, no storage", calls, s.Len())
	}
}

func TestShardedPurge(t *testing.T) {
	s := NewSharded[int](32, 4)
	for b := byte(0); b < 12; b++ {
		k := keyAt(b, 0)
		s.Do(context.Background(), k, func() (int, error) { return val(k), nil })
	}
	if n := s.Len(); n != 12 {
		t.Fatalf("Len = %d, want 12", n)
	}
	if n := s.Purge(); n != 12 {
		t.Fatalf("Purge dropped %d, want 12", n)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Purge", s.Len())
	}
}

func TestShardedCapacityRoundsUpToShardGranularity(t *testing.T) {
	// Capacity 10 over 4 shards → 3 per shard → effective bound 12.
	s := NewSharded[int](10, 4)
	for shard := byte(0); shard < 4; shard++ {
		for salt := byte(0); salt < 5; salt++ {
			k := keyAt(shard, salt)
			s.Do(context.Background(), k, func() (int, error) { return val(k), nil })
		}
	}
	if n := s.Len(); n != 12 {
		t.Fatalf("Len = %d after overfilling every shard, want 12 (4 shards x 3)", n)
	}
	if st := s.Stats(); st.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8 (20 inserts - 12 kept)", st.Evictions)
	}
}

func ExampleSharded() {
	s := NewSharded[string](1024, 0) // 0 shards selects DefaultShards()
	k := Key{1, 2, 3}
	v, src, _ := s.Do(context.Background(), k, func() (string, error) { return "solved", nil })
	fmt.Println(v, src)
	v, src, _ = s.Do(context.Background(), k, func() (string, error) { return "never runs", nil })
	fmt.Println(v, src)
	// Output:
	// solved miss
	// solved hit
}
