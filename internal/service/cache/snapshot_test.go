package cache

import (
	"context"
	"testing"
)

func TestPutThenGet(t *testing.T) {
	c := New[int](4)
	c.Put(key(1), 10)
	if v, ok := c.Get(key(1)); !ok || v != 10 {
		t.Fatalf("Get after Put = (%d, %v), want (10, true)", v, ok)
	}
	// Put refreshes an existing entry in place.
	c.Put(key(1), 11)
	if v, _ := c.Get(key(1)); v != 11 {
		t.Fatalf("refreshed value = %d, want 11", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	// Do must see a Put entry as a plain hit, not recompute.
	v, src, err := c.Do(context.Background(), key(1), func() (int, error) {
		t.Fatal("compute ran although Put installed the entry")
		return 0, nil
	})
	if err != nil || v != 11 || src != Hit {
		t.Fatalf("Do after Put = (%d, %v, %v), want (11, Hit, nil)", v, src, err)
	}
}

func TestPutRespectsLRUBound(t *testing.T) {
	c := New[int](2)
	c.Put(key(1), 1)
	c.Put(key(2), 2)
	c.Put(key(3), 3) // evicts key 1, the least recently used
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("eviction skipped the oldest entry")
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("key 2 evicted prematurely")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutPromotes(t *testing.T) {
	c := New[int](2)
	c.Put(key(1), 1)
	c.Put(key(2), 2)
	c.Put(key(1), 10) // promotes key 1 to most recently used
	c.Put(key(3), 3)  // must now evict key 2
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("promoted entry evicted")
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("unpromoted entry survived")
	}
}

func TestPutZeroCapacityIsNoop(t *testing.T) {
	c := New[int](0)
	c.Put(key(1), 1)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("zero-capacity cache stored a Put entry")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestSnapshotMRUOrder(t *testing.T) {
	c := New[int](8)
	for b := byte(1); b <= 4; b++ {
		c.Put(key(b), int(b))
	}
	c.Get(key(2)) // promote 2 to the front

	snap := c.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("full snapshot has %d entries, want 4", len(snap))
	}
	if snap[0].Key != key(2) || snap[0].Val != 2 {
		t.Fatalf("snapshot head = %v, want the promoted entry", snap[0])
	}
	// A bounded snapshot keeps the hottest prefix.
	head := c.Snapshot(2)
	if len(head) != 2 || head[0].Key != key(2) || head[1].Key != key(4) {
		t.Fatalf("bounded snapshot = %v, want [key2 key4]", head)
	}
}

func TestSnapshotEmptyAndOverBound(t *testing.T) {
	c := New[int](4)
	if snap := c.Snapshot(0); len(snap) != 0 {
		t.Fatalf("empty cache snapshot has %d entries", len(snap))
	}
	c.Put(key(1), 1)
	if snap := c.Snapshot(100); len(snap) != 1 {
		t.Fatalf("over-bound snapshot has %d entries, want 1", len(snap))
	}
}

func TestShardedPutAndSnapshot(t *testing.T) {
	c := NewSharded[int](64, 4)
	for b := byte(1); b <= 32; b++ {
		c.Put(key(b), int(b))
	}
	for b := byte(1); b <= 32; b++ {
		if v, ok := c.Get(key(b)); !ok || v != int(b) {
			t.Fatalf("sharded Get(%d) = (%d, %v)", b, v, ok)
		}
	}
	full := c.Snapshot(0)
	if len(full) != 32 {
		t.Fatalf("full sharded snapshot has %d entries, want 32", len(full))
	}
	seen := map[Key]int{}
	for _, it := range full {
		seen[it.Key] = it.Val
	}
	for b := byte(1); b <= 32; b++ {
		if seen[key(b)] != int(b) {
			t.Fatalf("snapshot lost key %d", b)
		}
	}
	// A bounded sharded snapshot never exceeds its bound.
	if head := c.Snapshot(10); len(head) > 10 {
		t.Fatalf("bounded sharded snapshot has %d entries, want <= 10", len(head))
	} else if len(head) == 0 {
		t.Fatal("bounded sharded snapshot is empty")
	}
}

func TestShardedPutZeroCapacity(t *testing.T) {
	c := NewSharded[int](0, 4)
	c.Put(key(1), 1)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("zero-capacity sharded cache stored a Put entry")
	}
	if snap := c.Snapshot(0); len(snap) != 0 {
		t.Fatalf("zero-capacity snapshot has %d entries", len(snap))
	}
}
