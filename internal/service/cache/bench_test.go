package cache

// Contention benchmarks: the sharded cache against the legacy
// single-mutex oracle under RunParallel hit traffic — the serving hot
// path, where every request takes the cache lock at least once. Run
// across core counts to see the single mutex saturate:
//
//	go test -run '^$' -bench BenchmarkCache -benchmem -cpu 1,4,8 ./internal/service/cache

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchKeys builds a working set of distinct keys spread over the full
// shard space, pre-shuffled so consecutive accesses hop shards the way
// hashed traffic does.
func benchKeys(n int) []Key {
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, n)
	for i := range keys {
		rng.Read(keys[i][:])
	}
	return keys
}

type cacheUnderTest struct {
	name string
	get  func(Key) ([]byte, bool)
	do   func(context.Context, Key, func() ([]byte, error)) ([]byte, Source, error)
}

func contenders(capacity int) []cacheUnderTest {
	legacy := New[[]byte](capacity)
	sharded := NewSharded[[]byte](capacity, 0)
	return []cacheUnderTest{
		{"legacy", legacy.Get, legacy.Do},
		{"sharded", sharded.Get, sharded.Do},
	}
}

// BenchmarkCacheGetHitParallel is the pure lock-contention probe: every
// operation is a hit, so the entire cost is shard selection plus one
// mutex acquire and LRU promotion. On the legacy cache every core queues
// on the same mutex; on the sharded cache they spread across shards.
func BenchmarkCacheGetHitParallel(b *testing.B) {
	const working = 1024
	keys := benchKeys(working)
	body := []byte(`{"result":"cached"}`)
	for _, c := range contenders(working * 2) {
		b.Run(c.name, func(b *testing.B) {
			for _, k := range keys {
				k := k
				if _, _, err := c.do(context.Background(), k, func() ([]byte, error) { return body, nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := rand.Int()
				for pb.Next() {
					i++
					if _, ok := c.get(keys[i%working]); !ok {
						b.Error("unexpected miss")
						return
					}
				}
			})
		})
	}
}

// BenchmarkCacheDoHitParallel drives the same hit traffic through Do —
// the exact call the serving path makes — including the in-flight table
// check that rides under the same lock.
func BenchmarkCacheDoHitParallel(b *testing.B) {
	const working = 1024
	keys := benchKeys(working)
	body := []byte(`{"result":"cached"}`)
	ctx := context.Background()
	for _, c := range contenders(working * 2) {
		b.Run(c.name, func(b *testing.B) {
			fn := func() ([]byte, error) { return body, nil }
			for _, k := range keys {
				if _, _, err := c.do(ctx, k, fn); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := rand.Int()
				for pb.Next() {
					i++
					if _, src, err := c.do(ctx, keys[i%working], fn); err != nil || src != Hit {
						b.Errorf("Do = (%v, %v), want hit", src, err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkCacheChurnParallel mixes hits with misses and eviction churn:
// a working set twice the capacity, so every miss takes the insert path
// (store + LRU eviction) under the shard lock while other cores keep
// hitting. The miss fraction is reported so the two implementations can
// be confirmed to run the same mix.
func BenchmarkCacheChurnParallel(b *testing.B) {
	const working = 2048
	keys := benchKeys(working)
	body := []byte(`{"result":"cached"}`)
	ctx := context.Background()
	for _, c := range contenders(working / 2) {
		b.Run(c.name, func(b *testing.B) {
			fn := func() ([]byte, error) { return body, nil }
			var misses, total atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := rand.Int()
				for pb.Next() {
					i++
					_, src, err := c.do(ctx, keys[i%working], fn)
					if err != nil {
						b.Error(err)
						return
					}
					if src == Computed {
						misses.Add(1)
					}
					total.Add(1)
				}
			})
			b.StopTimer()
			if n := total.Load(); n > 0 {
				b.ReportMetric(float64(misses.Load())/float64(n), "miss/op")
			}
		})
	}
}
