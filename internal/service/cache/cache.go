// Package cache provides the result cache of the solver service: a
// bounded LRU keyed by canonical instance hashes, fronted by singleflight
// deduplication so that concurrent identical requests collapse to one
// underlying solve.
//
// The cache is value-agnostic; the service stores fully rendered response
// bodies, so a hit is a pure memory copy. All operations are safe for
// concurrent use.
package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Key is a canonical request digest (a SHA-256 sum). Equal keys must mean
// semantically identical requests: the caller's canonical encoding is the
// single source of that guarantee.
type Key [32]byte

// Source reports how a Do call obtained its value.
type Source int

const (
	// Computed: this call ran the compute function itself (a cache miss
	// with no identical call in flight).
	Computed Source = iota
	// Hit: the value was served from the stored LRU entry.
	Hit
	// Collapsed: an identical call was already in flight; this call
	// waited for its result instead of recomputing.
	Collapsed
)

func (s Source) String() string {
	switch s {
	case Computed:
		return "miss"
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	default:
		return "unknown"
	}
}

// Stats is a snapshot of the cache counters. Misses counts executions of
// the compute function — the number of underlying solves — so
// Hits+Collapsed over Hits+Collapsed+Misses is the effective dedup rate.
type Stats struct {
	Hits      uint64 // served from the stored entry
	Misses    uint64 // compute function executions
	Collapsed uint64 // waited on an in-flight identical call
	Evictions uint64 // entries dropped by the LRU bound
	Entries   int    // current stored entries
}

// call is one in-flight computation; waiters block on done.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// entry is one stored LRU element.
type entry[V any] struct {
	key Key
	val V
}

// Cache is a bounded LRU with singleflight deduplication. The zero value
// is not usable; construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*call[V]
	stats    Stats
}

// New returns a cache bounded to capacity entries. capacity <= 0 disables
// storage entirely but keeps singleflight deduplication: concurrent
// identical calls still collapse, repeated sequential calls recompute.
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*call[V]),
	}
}

// Get returns the stored value for k, promoting it to most recently used.
// It never waits on in-flight computations.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the cached value for k, or computes it with fn. Concurrent
// Do calls with the same key collapse: exactly one runs fn, the others
// wait for its outcome. Successful results are stored (subject to the LRU
// bound); errors are returned to every collapsed waiter but never cached,
// so the next call retries.
//
// fn runs on its own goroutine, detached from every caller: ctx bounds
// only this caller's wait. A caller whose context fires abandons the wait
// with ctx's error while the computation proceeds — its result still
// lands in the cache for the benefit of other waiters and later calls.
// fn should therefore not observe any single request's context. A panic
// in fn is contained: the computing goroutine converts it into an error
// delivered to every waiter, and the in-flight slot is always released.
func (c *Cache[V]) Do(ctx context.Context, k Key, fn func() (V, error)) (V, Source, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if cl, ok := c.inflight[k]; ok {
		c.stats.Collapsed++
		c.mu.Unlock()
		return c.wait(ctx, cl, Collapsed)
	}
	cl := &call[V]{done: make(chan struct{})}
	c.inflight[k] = cl
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				cl.err = fmt.Errorf("cache: compute panicked: %v", r)
			}
			c.mu.Lock()
			delete(c.inflight, k)
			if cl.err == nil && c.capacity > 0 {
				c.store(k, cl.val)
			}
			c.mu.Unlock()
			close(cl.done)
		}()
		cl.val, cl.err = fn()
	}()
	return c.wait(ctx, cl, Computed)
}

// wait parks one caller on an in-flight call, bounded by its context.
func (c *Cache[V]) wait(ctx context.Context, cl *call[V], src Source) (V, Source, error) {
	select {
	case <-cl.done:
		return cl.val, src, cl.err
	case <-ctx.Done():
		var zero V
		return zero, src, ctx.Err()
	}
}

// store inserts k under the LRU bound; the caller holds c.mu. A racing
// leader may have stored the key already (two Do calls that both missed
// before either registered in flight are impossible, but Get/Do
// interleavings keep this defensive): the existing entry is refreshed.
func (c *Cache[V]) store(k Key, v V) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry[V]{key: k, val: v})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Put stores v under k directly, bypassing singleflight: the peer tier
// of the clustered service uses it to install response bytes rendered
// elsewhere (a forwarded solve or an imported snapshot entry) as local
// second-tier hits. An existing entry is refreshed and promoted; with
// storage disabled (capacity <= 0) Put is a no-op, exactly as Do's store
// step would be.
func (c *Cache[V]) Put(k Key, v V) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(k, v)
}

// Item is one exported cache entry, as returned by Snapshot.
type Item[V any] struct {
	Key Key
	Val V
}

// Snapshot returns up to max stored entries, most recently used first —
// the hot set a joining peer should warm up with. max <= 0 returns every
// entry. The values are returned as stored; callers sharing them across
// goroutines rely on the service's convention of never mutating cached
// values.
func (c *Cache[V]) Snapshot(max int) []Item[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	if max > 0 && max < n {
		n = max
	}
	out := make([]Item[V], 0, n)
	for el := c.ll.Front(); el != nil && len(out) < n; el = el.Next() {
		e := el.Value.(*entry[V])
		out = append(out, Item[V]{Key: e.key, Val: e.val})
	}
	return out
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Purge drops every stored entry (in-flight computations are unaffected)
// and returns how many were dropped. Counters other than Entries persist.
func (c *Cache[V]) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
	return n
}
