package cache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestDoComputesThenHits(t *testing.T) {
	c := New[int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }

	v, src, err := c.Do(context.Background(), key(1), fn)
	if err != nil || v != 42 || src != Computed {
		t.Fatalf("first Do = (%d, %v, %v), want (42, Computed, nil)", v, src, err)
	}
	v, src, err = c.Do(context.Background(), key(1), fn)
	if err != nil || v != 42 || src != Hit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, Hit, nil)", v, src, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Collapsed != 0 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), key(1), func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, src, err := c.Do(context.Background(), key(1), func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || src != Computed {
		t.Fatalf("retry = (%d, %v, %v), want recompute", v, src, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	for b := byte(1); b <= 3; b++ {
		b := b
		if _, _, err := c.Do(context.Background(), key(b), func() (int, error) { return int(b), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: key 1 (oldest) must be gone, keys 2 and 3 present.
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for b := byte(2); b <= 3; b++ {
		if _, ok := c.Get(key(b)); !ok {
			t.Fatalf("entry %d evicted early", b)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", s)
	}
	// Touch key 2, insert key 4: key 3 is now the LRU victim.
	c.Get(key(2))
	if _, _, err := c.Do(context.Background(), key(4), func() (int, error) { return 4, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(3)); ok {
		t.Fatal("recency order ignored: untouched entry survived")
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestZeroCapacityKeepsSingleflight(t *testing.T) {
	c := New[int](0)
	calls := 0
	for i := 0; i < 2; i++ {
		_, src, err := c.Do(context.Background(), key(1), func() (int, error) { calls++; return 1, nil })
		if err != nil || src != Computed {
			t.Fatalf("Do %d = (%v, %v), want Computed", i, src, err)
		}
	}
	if calls != 2 || c.Len() != 0 {
		t.Fatalf("calls = %d, Len = %d; want 2 sequential recomputes and no storage", calls, c.Len())
	}
}

// TestSingleflightCollapse drives N concurrent Do calls with the same key
// into a compute function that blocks until every other call has
// registered as a waiter, proving the collapse is real concurrency and
// not sequential cache hits.
func TestSingleflightCollapse(t *testing.T) {
	const n = 8
	c := New[int](4)
	var executions atomic.Int64
	release := make(chan struct{})
	fn := func() (int, error) {
		executions.Add(1)
		<-release
		return 99, nil
	}

	var wg sync.WaitGroup
	sources := make([]Source, n)
	values := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, src, err := c.Do(context.Background(), key(7), fn)
			if err != nil {
				t.Errorf("Do %d: %v", i, err)
			}
			values[i], sources[i] = v, src
		}(i)
	}
	// Wait until the leader is in fn and all n-1 others are parked on it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Misses == 1 && s.Collapsed == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never converged: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("%d executions for %d concurrent identical calls, want 1", got, n)
	}
	computed, collapsed := 0, 0
	for i := 0; i < n; i++ {
		if values[i] != 99 {
			t.Fatalf("call %d got %d, want 99", i, values[i])
		}
		switch sources[i] {
		case Computed:
			computed++
		case Collapsed:
			collapsed++
		}
	}
	if computed != 1 || collapsed != n-1 {
		t.Fatalf("sources: %d computed, %d collapsed; want 1 and %d", computed, collapsed, n-1)
	}
}

func TestCollapsedWaiterHonorsContext(t *testing.T) {
	c := New[int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key(1), func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key(1), func() (int, error) { return 2, nil })
		errc <- err
	}()
	// The waiter must be parked on the in-flight call before we cancel.
	for c.Stats().Collapsed == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	close(release)
	// The leader's result still lands in the cache.
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader result never stored")
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok := c.Get(key(1)); !ok || v != 1 {
		t.Fatalf("Get = (%d, %v), want leader's 1", v, ok)
	}
}

// TestPanicInComputeDoesNotPoisonKey pins the panic-containment
// contract: a panicking compute function must deliver an error (not hang
// or crash waiters), release the in-flight slot so the key stays usable,
// and cache nothing.
func TestPanicInComputeDoesNotPoisonKey(t *testing.T) {
	c := New[int](4)
	_, src, err := c.Do(context.Background(), key(1), func() (int, error) { panic("solver exploded") })
	if err == nil || !strings.Contains(err.Error(), "solver exploded") {
		t.Fatalf("Do after panic = (%v, %v), want the panic as an error", src, err)
	}
	if c.Len() != 0 {
		t.Fatal("panicked computation was cached")
	}
	// The key must not be stuck: a fresh call recomputes normally.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, src, err := c.Do(context.Background(), key(1), func() (int, error) { return 5, nil })
		if err != nil || v != 5 || src != Computed {
			t.Errorf("retry after panic = (%d, %v, %v), want (5, Computed, nil)", v, src, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key poisoned: retry after panic hung")
	}
}

// TestLeaderTimeoutDoesNotAbortComputation pins the detached-compute
// contract: a caller abandoning its wait gets its own context error, but
// the computation finishes and the result lands in the cache.
func TestLeaderTimeoutDoesNotAbortComputation(t *testing.T) {
	c := New[int](4)
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel the leader's wait while fn is held.
		for c.Stats().Misses == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, err := c.Do(ctx, key(1), func() (int, error) {
		<-release
		return 7, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning leader got %v, want context.Canceled", err)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned computation never cached its result")
		}
		time.Sleep(time.Millisecond)
	}
	v, src, err := c.Do(context.Background(), key(1), func() (int, error) { return 0, nil })
	if err != nil || v != 7 || src != Hit {
		t.Fatalf("follow-up = (%d, %v, %v), want the abandoned leader's (7, Hit, nil)", v, src, err)
	}
}

func TestPurge(t *testing.T) {
	c := New[int](4)
	for b := byte(1); b <= 3; b++ {
		b := b
		c.Do(context.Background(), key(b), func() (int, error) { return int(b), nil })
	}
	if n := c.Purge(); n != 3 {
		t.Fatalf("Purge dropped %d, want 3", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Purge", c.Len())
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("entry survived Purge")
	}
}

func TestSourceString(t *testing.T) {
	for src, want := range map[Source]string{Computed: "miss", Hit: "hit", Collapsed: "collapsed", Source(9): "unknown"} {
		if got := src.String(); got != want {
			t.Errorf("Source(%d).String() = %q, want %q", int(src), got, want)
		}
	}
}
