package cache

import (
	"context"
	"encoding/binary"
	"runtime"
)

// Sharded is the multi-core result cache: the key space is split across a
// power-of-two number of independent shards selected by key bits, each a
// complete single-mutex Cache with its own LRU list, singleflight table
// and counters. Requests for distinct shards never contend on a lock, so
// throughput scales with cores instead of serialising on one mutex; keys
// are SHA-256 digests (uniformly distributed by construction), so shard
// occupancy stays balanced without any rehashing.
//
// Per shard, the semantics are exactly those of Cache — the single-shard
// implementation is the behavioural oracle, and property tests in this
// package drive identical traffic through both and assert identical
// hit/miss/collapse/eviction outcomes. Aggregate Stats are the sum over
// shards, so the hits+misses+collapsed conservation law carries over
// unchanged.
type Sharded[V any] struct {
	mask   uint64
	shards []*Cache[V]
}

// DefaultShards picks the shard count for NewSharded when the caller
// passes shards <= 0: the smallest power of two at or above
// runtime.GOMAXPROCS(0), clamped to [1, 128]. One shard per core is the
// contention sweet spot — more shards only dilute each LRU's capacity
// without removing any lock waits.
func DefaultShards() int {
	return ceilPow2(runtime.GOMAXPROCS(0), 128)
}

// ceilPow2 rounds n up to a power of two, clamped to [1, max].
func ceilPow2(n, max int) int {
	if n < 1 {
		n = 1
	}
	if n > max {
		n = max
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewSharded returns a cache of the given total capacity split across a
// power-of-two number of shards (shards is rounded up; <= 0 selects
// DefaultShards). Capacity is divided evenly with any remainder rounded
// up, so the effective bound is capacity rounded up to shard granularity.
// capacity <= 0 disables storage on every shard while keeping per-shard
// singleflight deduplication, exactly as in New.
func NewSharded[V any](capacity, shards int) *Sharded[V] {
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards, 1<<16)
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + shards - 1) / shards
	}
	s := &Sharded[V]{
		mask:   uint64(shards - 1),
		shards: make([]*Cache[V], shards),
	}
	for i := range s.shards {
		s.shards[i] = New[V](perShard)
	}
	return s
}

// shard routes k by its low key bits. SHA-256 output is uniform, so any
// fixed 64-bit window balances the shards.
func (s *Sharded[V]) shard(k Key) *Cache[V] {
	return s.shards[binary.LittleEndian.Uint64(k[:8])&s.mask]
}

// Shards returns the shard count.
func (s *Sharded[V]) Shards() int { return len(s.shards) }

// Get returns the stored value for k from its shard, promoting it to most
// recently used there. It never waits on in-flight computations.
func (s *Sharded[V]) Get(k Key) (V, bool) { return s.shard(k).Get(k) }

// Do returns the cached value for k, or computes it with fn, with
// singleflight collapse scoped to k's shard — identical keys always land
// on the same shard, so the collapse guarantee is global. See Cache.Do
// for the full contract (detached compute, error pass-through, panic
// containment).
func (s *Sharded[V]) Do(ctx context.Context, k Key, fn func() (V, error)) (V, Source, error) {
	return s.shard(k).Do(ctx, k, fn)
}

// Put stores v under k directly on k's shard, bypassing singleflight.
// See Cache.Put for the contract.
func (s *Sharded[V]) Put(k Key, v V) { s.shard(k).Put(k, v) }

// Snapshot returns up to max stored entries across shards, each shard's
// contribution most recently used first. The per-shard quota is
// max/shards rounded up, so the result is the union of every shard's hot
// prefix rather than a globally ordered hot set — an approximation that
// costs nothing and is exactly what cache warm-up wants (keys are
// SHA-256-uniform, so shard hot sets are statistically interchangeable).
// max <= 0 returns every entry.
func (s *Sharded[V]) Snapshot(max int) []Item[V] {
	per := 0 // 0 = unbounded, per Cache.Snapshot
	if max > 0 {
		per = (max + len(s.shards) - 1) / len(s.shards)
	}
	var out []Item[V]
	for _, c := range s.shards {
		out = append(out, c.Snapshot(per)...)
		if max > 0 && len(out) >= max {
			out = out[:max]
			break
		}
	}
	return out
}

// Len returns the total number of stored entries across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Stats returns the aggregate counters: the field-wise sum of every
// shard's snapshot. The counters obey the same conservation law as a
// single Cache — every Do call is exactly one of a hit, a miss or a
// collapse — because each call is counted once, on its shard.
func (s *Sharded[V]) Stats() Stats {
	var agg Stats
	for _, c := range s.shards {
		cs := c.Stats()
		agg.Hits += cs.Hits
		agg.Misses += cs.Misses
		agg.Collapsed += cs.Collapsed
		agg.Evictions += cs.Evictions
		agg.Entries += cs.Entries
	}
	return agg
}

// Purge drops every stored entry on every shard (in-flight computations
// are unaffected) and returns how many were dropped.
func (s *Sharded[V]) Purge() int {
	n := 0
	for _, c := range s.shards {
		n += c.Purge()
	}
	return n
}
