package service

// Allocation-regression caps for the serving hot path. The cache-hit
// serve is the high-QPS steady state — decode into pooled wire scratch,
// pooled canonical hash, sharded-cache lookup, one Write — and its
// budget pins the PR-5 rebuild: the naive pre-rework path measured 80
// allocs per hit, the pooled path 16. The caps leave a little headroom
// for Go-version drift in encoding/json without letting the old
// per-request costs (fresh hashers, constructed platforms, Welford
// mutexes) creep back in.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"pipesched/internal/workload"
)

// testWorkload is the shared instance of the alloc caps and the serving
// benchmarks.
func testWorkload() workload.Instance {
	return workload.Generate(workload.Config{Family: workload.E2, Stages: 10, Processors: 8, Seed: 31})
}

const (
	// serveHitAllocCap bounds allocations for one cache-hit /v1/solve.
	serveHitAllocCap = 24
	// errorRenderAllocCap bounds the pooled error-body render itself.
	errorRenderAllocCap = 4
)

func TestServeSolveHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	s := New(Options{})
	raw := benchmarkSolveBody(t)
	req := httptest.NewRequest("POST", "/v1/solve", nil)
	w, body := newBenchWriter(), &benchBody{}
	if st := serveOnce(s, w, req, body, raw); st != http.StatusOK { // prime the cache
		t.Fatalf("prime status %d", st)
	}
	run := func() {
		if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
	}
	run() // warm the pools
	if got := testing.AllocsPerRun(200, run); got > serveHitAllocCap {
		t.Errorf("cache-hit solve: %.1f allocs/run, cap %d", got, serveHitAllocCap)
	}
}

func TestWriteErrorBodyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool drops entries)")
	}
	w := newBenchWriter()
	run := func() {
		w.reset()
		writeErrorBody(w, http.StatusBadRequest, `bound "x" is invalid <and> rejected`)
	}
	run()
	if got := testing.AllocsPerRun(200, run); got > errorRenderAllocCap {
		t.Errorf("error render: %.1f allocs/run, cap %d", got, errorRenderAllocCap)
	}
}

// benchmarkSolveBody adapts the benchmark body builder to tests.
func benchmarkSolveBody(tb testing.TB) []byte {
	tb.Helper()
	in := testWorkload()
	app, err := in.App.MarshalJSON()
	if err != nil {
		tb.Fatal(err)
	}
	plat, err := in.Plat.MarshalJSON()
	if err != nil {
		tb.Fatal(err)
	}
	body := append([]byte(`{"pipeline":`), app...)
	body = append(body, `,"platform":`...)
	body = append(body, plat...)
	body = append(body, `,"bound":1e6}`...)
	return body
}
