package service

// End-to-end serving benchmarks: the full ServeHTTP path — decode,
// canonical hash, cache, render, write — without a network in the way.
// The request and the ResponseWriter are reused across iterations so the
// numbers isolate the server's own cost; ns/op and allocs/op here are
// what one request costs the daemon beyond the kernel and the wire.
//
// Run the parallel variants across core counts to see cache-shard and
// metrics contention:
//
//	go test -run '^$' -bench BenchmarkServe -benchmem -cpu 1,4,8 ./internal/service
import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"pipesched/internal/platform"
	"pipesched/internal/workload"
)

// benchBody is a replayable request body: Reset re-arms it with the same
// bytes, so one request value serves every iteration without a fresh
// io.NopCloser per call.
type benchBody struct {
	rd bytes.Reader
}

func (b *benchBody) Read(p []byte) (int, error) { return b.rd.Read(p) }
func (b *benchBody) Close() error               { return nil }

// benchWriter discards the response while satisfying http.ResponseWriter.
// The header map is allocated once and cleared per iteration: response
// headers are part of the serving cost, the recorder machinery is not.
type benchWriter struct {
	h      http.Header
	status int
}

func newBenchWriter() *benchWriter                 { return &benchWriter{h: make(http.Header, 8)} }
func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(code int)        { w.status = code }
func (w *benchWriter) reset() {
	clear(w.h)
	w.status = 0
}

// serveOnce drives one pre-built request through s, reusing w and body.
func serveOnce(s *Server, w *benchWriter, req *http.Request, body *benchBody, raw []byte) int {
	body.rd.Reset(raw)
	req.Body = body
	w.reset()
	s.ServeHTTP(w, req)
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.status
}

// solveBodyJSON renders a /v1/solve body for the shared bench instance.
func solveBodyJSON(b *testing.B, bound float64) []byte {
	b.Helper()
	in := testWorkload()
	app, err := in.App.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	plat, err := in.Plat.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	return fmt.Appendf(nil, `{"pipeline":%s,"platform":%s,"bound":%g}`, app, plat, bound)
}

// fullHetBodyJSON renders a /v1/solve body for the bench pipeline on a
// deterministic fully heterogeneous platform (same speeds, per-link
// bandwidths cycling 1..5).
func fullHetBodyJSON(b *testing.B, bound float64) []byte {
	b.Helper()
	in := testWorkload()
	app, err := in.App.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	speeds := in.Plat.Speeds()
	p := len(speeds)
	links := make([][]float64, p)
	for u := range links {
		links[u] = make([]float64, p)
	}
	for u := 0; u < p; u++ {
		for v := u + 1; v < p; v++ {
			bw := float64(1 + (u+v)%5)
			links[u][v], links[v][u] = bw, bw
		}
	}
	plat, err := platform.NewFullyHeterogeneous(speeds, links)
	if err != nil {
		b.Fatal(err)
	}
	pj, err := plat.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	return fmt.Appendf(nil, `{"pipeline":%s,"platform":%s,"bound":%g}`, app, pj, bound)
}

func BenchmarkServeSolve(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		s := New(Options{})
		raw := solveBodyJSON(b, 1e6)
		req := httptest.NewRequest("POST", "/v1/solve", nil)
		w, body := newBenchWriter(), &benchBody{}
		if st := serveOnce(s, w, req, body, raw); st != http.StatusOK { // prime the cache
			b.Fatalf("prime status %d", st)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
				b.Fatalf("status %d", st)
			}
		}
	})

	b.Run("hit-parallel", func(b *testing.B) {
		s := New(Options{})
		raw := solveBodyJSON(b, 1e6)
		req0 := httptest.NewRequest("POST", "/v1/solve", nil)
		w0, body0 := newBenchWriter(), &benchBody{}
		if st := serveOnce(s, w0, req0, body0, raw); st != http.StatusOK {
			b.Fatalf("prime status %d", st)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			req := httptest.NewRequest("POST", "/v1/solve", nil)
			w, body := newBenchWriter(), &benchBody{}
			for pb.Next() {
				if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
					b.Errorf("status %d", st)
					return
				}
			}
		})
	})

	b.Run("miss", func(b *testing.B) {
		// Capacity 1 with two alternating bodies: every request misses,
		// solves, stores and evicts — the full cold-path cost.
		s := New(Options{CacheEntries: 1})
		raws := [2][]byte{solveBodyJSON(b, 1e6), solveBodyJSON(b, 2e6)}
		req := httptest.NewRequest("POST", "/v1/solve", nil)
		w, body := newBenchWriter(), &benchBody{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := serveOnce(s, w, req, body, raws[i&1]); st != http.StatusOK {
				b.Fatalf("status %d", st)
			}
		}
	})

	b.Run("fullhet-hit", func(b *testing.B) {
		// The fullhet serving lane: decode + canonical hash now cover the
		// full link matrix, so a hit here prices the larger key stream.
		s := New(Options{})
		raw := fullHetBodyJSON(b, 1e6)
		req := httptest.NewRequest("POST", "/v1/solve", nil)
		w, body := newBenchWriter(), &benchBody{}
		if st := serveOnce(s, w, req, body, raw); st != http.StatusOK { // prime the cache
			b.Fatalf("prime status %d", st)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
				b.Fatalf("status %d", st)
			}
		}
	})

	b.Run("fullhet-miss", func(b *testing.B) {
		// Alternating fullhet bodies against capacity 1: every request
		// runs the F1 solve end to end.
		s := New(Options{CacheEntries: 1})
		raws := [2][]byte{fullHetBodyJSON(b, 1e6), fullHetBodyJSON(b, 2e6)}
		req := httptest.NewRequest("POST", "/v1/solve", nil)
		w, body := newBenchWriter(), &benchBody{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st := serveOnce(s, w, req, body, raws[i&1]); st != http.StatusOK {
				b.Fatalf("status %d", st)
			}
		}
	})

	b.Run("collapsed", func(b *testing.B) {
		// Storage disabled: identical concurrent requests collapse onto
		// one in-flight solve, sequential ones recompute. The collapse
		// fraction achieved is reported alongside the timings.
		s := New(Options{CacheEntries: -1})
		raw := solveBodyJSON(b, 1e6)
		var served atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			req := httptest.NewRequest("POST", "/v1/solve", nil)
			w, body := newBenchWriter(), &benchBody{}
			for pb.Next() {
				if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
					b.Errorf("status %d", st)
					return
				}
				served.Add(1)
			}
		})
		b.StopTimer()
		if n := served.Load(); n > 0 {
			cs := s.CacheStats()
			b.ReportMetric(float64(cs.Collapsed)/float64(n), "collapsed/op")
		}
	})
}

func BenchmarkServeBatch(b *testing.B) {
	s := New(Options{})
	instances := make([]workload.Instance, 4)
	for i := range instances {
		instances[i] = workload.Generate(workload.Config{Family: workload.E2, Stages: 8, Processors: 6, Seed: int64(200 + i)})
	}
	var buf bytes.Buffer
	buf.WriteString(`{"instances":[`)
	for i, in := range instances {
		if i > 0 {
			buf.WriteByte(',')
		}
		raw, err := in.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		buf.Write(raw)
	}
	buf.WriteString(`],"bound":1.5,"relative_bound":true}`)
	raw := buf.Bytes()
	req := httptest.NewRequest("POST", "/v1/batch", nil)
	w, body := newBenchWriter(), &benchBody{}
	if st := serveOnce(s, w, req, body, raw); st != http.StatusOK { // prime: cache hit thereafter
		b.Fatalf("prime status %d", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
			b.Fatalf("status %d", st)
		}
	}
}

func BenchmarkServeSweep(b *testing.B) {
	s := New(Options{})
	in := testWorkload()
	app, err := in.App.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	plat, err := in.Plat.MarshalJSON()
	if err != nil {
		b.Fatal(err)
	}
	raw := fmt.Appendf(nil, `{"pipeline":%s,"platform":%s,"points":8}`, app, plat)
	req := httptest.NewRequest("POST", "/v1/sweep", nil)
	w, body := newBenchWriter(), &benchBody{}
	if st := serveOnce(s, w, req, body, raw); st != http.StatusOK { // prime: cache hit thereafter
		b.Fatalf("prime status %d", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := serveOnce(s, w, req, body, raw); st != http.StatusOK {
			b.Fatalf("status %d", st)
		}
	}
}
