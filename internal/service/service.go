// Package service is the serving layer of the reproduction: a long-lived
// HTTP daemon exposing the paper's solvers — heuristics H1–H6, the exact
// DP and the concurrent portfolio/batch engine of internal/portfolio —
// over a JSON API.
//
// # Fully heterogeneous serving
//
// Every endpoint accepts both platform kinds and dispatches by
// capability: comm-homogeneous requests race the paper's H1–H6 (plus the
// exact DP where eligible), fully heterogeneous ones race the
// free-processor-choice F lane (F1 period-side, F5/F6 latency-side) —
// no servable input can reach a solver panic (a fuzz target pins this).
// The canonical cache key covers the platform kind and, on fully
// heterogeneous platforms, every per-link bandwidth, so two platforms
// differing in a single link can never share a cache entry. The one
// fullhet restriction is mode "exact": the DP's speed-class compression
// does not extend to per-link bandwidths, so that combination is a 400.
//
// Endpoints:
//
//	POST /v1/solve   one instance, period- or latency-constrained
//	POST /v1/batch   a slice of instances through the batch engine
//	POST /v1/sweep   the heuristic Pareto frontier of one instance
//	GET  /healthz    liveness
//	GET  /metrics    cache counters, in-flight gauge, per-endpoint latencies
//
// Every cacheable request is canonically hashed (see canon.go) into a
// sharded, bounded LRU with singleflight deduplication: concurrent
// identical requests collapse to one solve, repeated ones are served from
// memory. The hot path is built for high QPS: requests decode into pooled
// wire scratch, keys come from pooled hashers, the cache shards by key
// bits so cores do not serialise on one mutex, metrics record through
// lock-free atomics, and responses are cached as fully rendered bytes —
// a hit is one Write and a handful of allocations. The X-Cache response
// header reports hit, miss or collapsed.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/service/cache"
	"pipesched/internal/workload"
)

// Options configure a Server. The zero value is fully usable.
type Options struct {
	// CacheEntries bounds the result cache; 0 selects the default (1024)
	// and negative values disable storage while keeping singleflight
	// deduplication.
	CacheEntries int
	// CacheShards sets the result-cache shard count; values are rounded
	// up to a power of two. 0 auto-selects one shard per core
	// (cache.DefaultShards); negative values force a single shard.
	CacheShards int
	// Workers caps the batch engine's worker pool when a request does not
	// set its own; 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// RequestTimeout bounds every request without an explicit timeout_ms;
	// 0 means no server-side deadline.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown wait for in-flight
	// requests; 0 selects the default (15s).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies; 0 selects the default (8 MiB).
	MaxBodyBytes int64
	// Logger receives start/stop and per-request error lines; nil
	// discards them.
	Logger *log.Logger
	// Cluster enables peer-aware serving: consistent-hash ownership of
	// the canonical key space across a static fleet, with owner
	// forwarding, snapshot warm-up and local-solve degradation. nil (the
	// default) serves single-node with zero overhead on the hot path.
	Cluster *ClusterConfig
}

const (
	defaultCacheEntries = 1024
	defaultDrainTimeout = 15 * time.Second
	defaultMaxBody      = 8 << 20
	defaultSweepPoints  = 15
	// maxSweepPoints caps the sweep grid: points scales both memory and
	// solver work linearly, so an uncapped value in one small request
	// would be a denial-of-service lever.
	maxSweepPoints = 512
)

func (o Options) cacheEntries() int {
	switch {
	case o.CacheEntries == 0:
		return defaultCacheEntries
	case o.CacheEntries < 0:
		return 0
	default:
		return o.CacheEntries
	}
}

func (o Options) cacheShards() int {
	if o.CacheShards < 0 {
		return 1
	}
	return o.CacheShards
}

func (o Options) drain() time.Duration {
	if o.DrainTimeout <= 0 {
		return defaultDrainTimeout
	}
	return o.DrainTimeout
}

func (o Options) maxBody() int64 {
	if o.MaxBodyBytes <= 0 {
		return defaultMaxBody
	}
	return o.MaxBodyBytes
}

// Server is the HTTP solver service. It implements http.Handler; run it
// under any http.Server, or use Serve for listener-to-shutdown lifecycle.
type Server struct {
	opts    Options
	cache   *cache.Sharded[[]byte]
	intern  *evalIntern
	metrics *metricsRegistry
	mux     *http.ServeMux
	logger  *log.Logger
	// peers is the cluster router; nil in single-node mode, in which
	// case every peer hook in the handlers is one nil check.
	peers *peerRouter

	// solveHook, when non-nil, runs inside the singleflight leader just
	// before the underlying solve. Tests use it to hold requests in
	// flight deterministically.
	solveHook func()
}

// New builds a Server from opts.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts,
		cache:   cache.NewSharded[[]byte](opts.cacheEntries(), opts.cacheShards()),
		intern:  newEvalIntern(),
		metrics: newMetricsRegistry(),
		logger:  opts.Logger,
	}
	if s.logger == nil {
		s.logger = log.New(io.Discard, "", 0)
	}
	s.peers = newPeerRouter(opts.Cluster)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("solve", (*Server).handleSolve))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", (*Server).handleBatch))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", (*Server).handleSweep))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.peers != nil {
		mux.HandleFunc("GET "+cluster.SnapshotPath, s.handleSnapshot)
		mux.HandleFunc("GET "+cluster.MembersPath, s.handleMembers)
		mux.HandleFunc("POST "+cluster.JoinPath, s.handleJoin)
		mux.HandleFunc("GET "+cluster.DigestPath, s.handleDigest)
		mux.HandleFunc("POST "+cluster.FetchPath, s.handleFetch)
	}
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats returns a snapshot of the aggregated result-cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// Metrics returns the snapshot served by GET /metrics.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.metrics.snapshot(s.cache.Stats(), s.cache.Shards())
	snap.Solver.DP = exact.ReadStats()
	snap.Solver.InternHits, snap.Solver.InternMisses = s.intern.stats()
	snap.Cluster = s.peers.snapshot()
	return snap
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up
// to Options.DrainTimeout to finish, and Serve returns nil on a clean
// drain (or the drain deadline's error). The listener is always closed on
// return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.logger.Printf("pipeschedd: serving on %s", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logger.Printf("pipeschedd: shutdown requested, draining for up to %s", s.opts.drain())
	sctx, cancel := context.WithTimeout(context.Background(), s.opts.drain())
	defer cancel()
	err := hs.Shutdown(sctx)
	<-errc // hs.Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("service: drain incomplete: %w", err)
	}
	s.logger.Printf("pipeschedd: drained cleanly")
	return nil
}

// ---------------------------------------------------------- wire types --

// IntervalJSON is the wire form of one mapping interval.
type IntervalJSON struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Proc  int `json:"proc"`
}

func intervalsJSON(m *mapping.Mapping) []IntervalJSON {
	if m == nil {
		return nil
	}
	ivs := m.Intervals()
	out := make([]IntervalJSON, len(ivs))
	for i, iv := range ivs {
		out[i] = IntervalJSON{Start: iv.Start, End: iv.End, Proc: iv.Proc}
	}
	return out
}

// SolveRequest is the body of POST /v1/solve. (The serving path decodes
// through pooled wire scratch; this struct documents the schema and
// serves programmatic clients.)
type SolveRequest struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	// Platform: "comm-homogeneous" (default kind; speeds + one shared
	// bandwidth) or "fully-heterogeneous" (speeds + symmetric per-link
	// bandwidth matrix). The solver lane is selected by kind.
	Platform *platform.Platform `json:"platform"`
	// Objective: "min-latency" (default; Bound is a period bound, the
	// paper's H1–H4 side, F1 on fully heterogeneous platforms) or
	// "min-period" (Bound is a latency bound, H5–H6 or F5–F6).
	Objective string  `json:"objective,omitempty"`
	Bound     float64 `json:"bound"`
	// Mode: "portfolio" (default; the platform's heuristic lane + exact
	// DP raced), "best" (heuristics only), "exact" (DP only; requires a
	// comm-homogeneous exact.Eligible platform — compressed speed-class
	// state space within budget), or one heuristic identifier
	// "H1".."H6" (comm-homogeneous) / "F1", "F5", "F6" (fully
	// heterogeneous).
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	Objective string         `json:"objective"`
	Mode      string         `json:"mode"`
	Bound     float64        `json:"bound"`
	Solver    string         `json:"solver"`
	Period    float64        `json:"period"`
	Latency   float64        `json:"latency"`
	Intervals []IntervalJSON `json:"intervals"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Instances []workload.Instance `json:"instances"`
	Objective string              `json:"objective,omitempty"`
	Bound     float64             `json:"bound"`
	// RelativeBound rescales Bound per instance, as in
	// portfolio.BatchOptions.
	RelativeBound bool `json:"relative_bound,omitempty"`
	// Exact additionally races the exact DP where the platform fits.
	Exact     bool `json:"exact,omitempty"`
	Workers   int  `json:"workers,omitempty"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

// BatchResult is one instance's outcome in a BatchResponse.
type BatchResult struct {
	Index     int            `json:"index"`
	Bound     float64        `json:"bound"`
	Solver    string         `json:"solver,omitempty"`
	Period    float64        `json:"period,omitempty"`
	Latency   float64        `json:"latency,omitempty"`
	Intervals []IntervalJSON `json:"intervals,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// BatchFrontPoint is one entry of the batch-level non-dominated frontier.
type BatchFrontPoint struct {
	Instance int     `json:"instance"`
	Period   float64 `json:"period"`
	Latency  float64 `json:"latency"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	Solved  int               `json:"solved"`
	Failed  int               `json:"failed"`
	Results []BatchResult     `json:"results"`
	Front   []BatchFrontPoint `json:"front"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	Platform *platform.Platform `json:"platform"`
	// Points is the period-bound grid size (default 15, minimum 2).
	Points    int `json:"points,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SweepPoint is one frontier point of a SweepResponse.
type SweepPoint struct {
	Period    float64        `json:"period"`
	Latency   float64        `json:"latency"`
	Intervals []IntervalJSON `json:"intervals"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	Points []SweepPoint `json:"points"`
}

// errorResponse is the body of every non-2xx reply. The serving path
// renders it by hand (writeErrorBody) byte-identically to the encoder;
// the type remains the schema and the test oracle.
type errorResponse struct {
	Error string `json:"error"`
}

// ------------------------------------------------------------ plumbing --

// statusError is an error that knows its HTTP status.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

func badRequest(format string, a ...any) error {
	return &statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, a...)}
}

func infeasible(format string, a ...any) error {
	return &statusError{code: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, a...)}
}

// statusRecorder captures the response status for metrics. It lives in
// the pooled scratch and is re-armed per request.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) reset(inner http.ResponseWriter) {
	w.ResponseWriter = inner
	w.status = http.StatusOK
}

// instrument wraps a handler with the in-flight gauge, the pooled
// per-request scratch and the per-endpoint latency recorder. The
// endpoint's metrics slot is resolved once here, at mux-registration
// time, so the per-request path records straight into it.
func (s *Server) instrument(name string, h func(*Server, *scratch, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	em := s.metrics.slot(name)
	if em == nil {
		// Unknown endpoint names never reach the mux today; a detached
		// slot keeps a future registration mistake a silent no-op (as
		// the old map registry was) rather than a nil deref.
		em = newEndpointMetrics()
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		sc := scratchPool.Get().(*scratch)
		sc.rec.reset(w)
		start := time.Now()
		h(s, sc, &sc.rec, r)
		failed := sc.rec.status >= 400
		sc.rec.ResponseWriter = nil // no stale writer retained in the pool
		scratchPool.Put(sc)
		em.observe(time.Since(start), failed)
	}
}

// decodeJSON strictly decodes the request body into v: unknown top-level
// fields and trailing data are rejected, exactly as before the wire
// rework (sub-objects decoded from RawMessage stay lenient, matching the
// former custom-unmarshaler behaviour).
//
// In single-node mode the body is decoded streaming and the returned raw
// slice is nil — the hot path is unchanged. In peer mode the body is
// read fully first and returned verbatim, because a non-owner may need
// the exact original bytes to proxy to the key's owner.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) ([]byte, error) {
	limited := http.MaxBytesReader(w, r.Body, s.opts.maxBody())
	var (
		dec *json.Decoder
		raw []byte
	)
	if s.peers != nil {
		var err error
		if raw, err = io.ReadAll(limited); err != nil {
			return nil, badRequest("invalid request body: %v", err)
		}
		dec = json.NewDecoder(bytes.NewReader(raw))
	} else {
		dec = json.NewDecoder(limited)
	}
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return nil, badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return nil, badRequest("invalid request body: trailing data after the JSON object")
	}
	return raw, nil
}

// writeJSON renders a 200 with v as JSON (non-hot paths: health, metrics).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError maps err onto an HTTP status and renders the error body
// through the pooled encoder.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	var se *statusError
	switch {
	case errors.As(err, &se):
		code = se.code
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log's benefit.
		code = http.StatusServiceUnavailable
	}
	if code >= 500 {
		s.logger.Printf("pipeschedd: %s %s: %v", r.Method, r.URL.Path, err)
	}
	writeErrorBody(w, code, err.Error())
}

// requestContext derives the per-request deadline: an explicit timeout_ms
// wins, then Options.RequestTimeout, then no deadline.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.RequestTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// ----------------------------------------------------------- endpoints --

// parseObjective maps the wire objective onto the batch engine's enum.
func parseObjective(objective string) (portfolio.Objective, error) {
	switch strings.ToLower(objective) {
	case "", "min-latency":
		return portfolio.MinimizeLatency, nil
	case "min-period":
		return portfolio.MinimizePeriod, nil
	default:
		return 0, badRequest("unknown objective %q (want \"min-latency\" or \"min-period\")", objective)
	}
}

func validBound(bound float64) error {
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return badRequest("bound %v is invalid (must be finite and > 0)", bound)
	}
	return nil
}

// servableKind is the serving layer's single capability gate: a request
// may name any platform kind some solver lane supports — comm-homogeneous
// (the paper's H1–H6 plus the exact DP) or fully heterogeneous (the
// free-processor-choice F1/F5/F6 lane). An empty tag defaults to
// comm-homogeneous, as in platform.UnmarshalJSON. Both the wire-level
// check (before any platform object exists) and the object-level one
// (batch instances) route through here, so the two can never drift.
func servableKind(kind string) error {
	switch kind {
	case "", platform.CommHomogeneous.String(), platform.FullyHeterogeneous.String():
		return nil
	}
	return badRequest("unknown platform kind %q (want %q or %q)", kind, platform.CommHomogeneous, platform.FullyHeterogeneous)
}

// validPlatform is the object-level face of servableKind, applied to
// batch instances decoded through platform.UnmarshalJSON.
func validPlatform(plat *platform.Platform) error {
	return servableKind(plat.Kind().String())
}

// wireFullHet reports whether a (validated) wire kind tag names a fully
// heterogeneous platform.
func wireFullHet(kind string) bool {
	return kind == platform.FullyHeterogeneous.String()
}

// periodRegistry and latencyRegistry select the heuristic lane by
// platform capability, mirroring the portfolio's dispatch: the paper's
// H1–H4/H5–H6 on comm-homogeneous platforms, F1/F5–F6 on fully
// heterogeneous ones.
func periodRegistry(fullhet bool) []heuristics.PeriodConstrained {
	if fullhet {
		return heuristics.FullHetPeriodHeuristics()
	}
	return heuristics.PeriodHeuristics()
}

func latencyRegistry(fullhet bool) []heuristics.LatencyConstrained {
	if fullhet {
		return heuristics.FullHetLatencyHeuristics()
	}
	return heuristics.LatencyHeuristics()
}

// normalizeMode canonicalises and checks the solve mode against the
// objective and platform capability: H1–H4 exist only on the
// period-constrained side and H5–H6 only on the latency-constrained one,
// while fully heterogeneous platforms take the F lane (F1 period-side,
// F5/F6 latency-side) and cannot ask for the exact DP — its speed-class
// compression does not extend to per-link bandwidths.
func normalizeMode(mode string, objective portfolio.Objective, fullhet bool) (string, error) {
	m := strings.ToLower(mode)
	switch m {
	case "":
		return "portfolio", nil
	case "portfolio", "best":
		return m, nil
	case "exact":
		if fullhet {
			return "", badRequest("mode \"exact\" requires a comm-homogeneous platform (the DP's speed-class compression does not cover per-link bandwidths; use portfolio, best, or an F heuristic)")
		}
		return m, nil
	}
	id := strings.ToUpper(mode)
	if objective == portfolio.MinimizeLatency {
		for _, h := range periodRegistry(fullhet) {
			if h.ID() == id {
				return id, nil
			}
		}
		if fullhet {
			return "", badRequest("unknown mode %q for objective min-latency on a fully heterogeneous platform (want portfolio, best or F1)", mode)
		}
		return "", badRequest("unknown mode %q for objective min-latency (want portfolio, best, exact or H1..H4)", mode)
	}
	for _, h := range latencyRegistry(fullhet) {
		if h.ID() == id {
			return id, nil
		}
	}
	if fullhet {
		return "", badRequest("unknown mode %q for objective min-period on a fully heterogeneous platform (want portfolio, best, F5 or F6)", mode)
	}
	return "", badRequest("unknown mode %q for objective min-period (want portfolio, best, exact, H5 or H6)", mode)
}

// buildPlatform constructs the platform named by a (validated) wire
// description, dispatching on the kind tag.
func buildPlatform(pw *platformWire) (*platform.Platform, error) {
	if wireFullHet(pw.Kind) {
		return platform.NewFullyHeterogeneous(pw.Speeds, pw.Links)
	}
	return platform.New(pw.Speeds, pw.Bandwidth)
}

// buildBatchInstances constructs a batch's domain objects from the wire
// form, validating each element and deduplicating platforms by content:
// instances that spelled out the same platform get the same constructed
// object, so the grouped batch lane builds its shared evaluator tables
// once per distinct platform rather than once per instance.
func buildBatchInstances(wires []instanceWire) ([]workload.Instance, error) {
	instances := make([]workload.Instance, len(wires))
	plats := make(map[cache.Key]*platform.Platform, 4)
	for i := range wires {
		in := &wires[i]
		app, err := pipeline.New(in.Pipeline.Works, in.Pipeline.Deltas)
		if err != nil {
			return nil, badRequest("instance %d: invalid request body: %v", i, err)
		}
		pk := platformKeyWire(&in.Platform)
		plat, ok := plats[pk]
		if !ok {
			if plat, err = buildPlatform(&in.Platform); err != nil {
				return nil, badRequest("instance %d: invalid request body: %v", i, err)
			}
			plats[pk] = plat
		}
		instances[i] = workload.Instance{App: app, Plat: plat}
	}
	return instances, nil
}

func (s *Server) handleSolve(sc *scratch, w http.ResponseWriter, r *http.Request) {
	req := &sc.solve
	req.reset()
	raw, err := s.decodeJSON(w, r, req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.Pipeline.missing() || req.Platform.missing() {
		s.writeError(w, r, badRequest("both \"pipeline\" and \"platform\" are required"))
		return
	}
	if err := servableKind(req.Platform.Kind); err != nil {
		s.writeError(w, r, err)
		return
	}
	objective, err := parseObjective(req.Objective)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := validBound(req.Bound); err != nil {
		s.writeError(w, r, err)
		return
	}
	mode, err := normalizeMode(req.Mode, objective, wireFullHet(req.Platform.Kind))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	key := solveKeyWire(objective, mode, req.Bound, req.Pipeline.Works, req.Pipeline.Deltas, &req.Platform)
	// Hot path: a stored entry is served without building domain objects
	// or a request context — one lookup, one Write.
	if body, ok := s.cache.Get(key); ok {
		writeCached(w, body, cache.Hit)
		return
	}
	// Peer tier: a local miss on a key owned elsewhere proxies the raw
	// body to the owner and installs the answer locally; a failed forward
	// degrades to the local solve below.
	fellBack := false
	if s.peers != nil {
		body, tier, served, fb := s.peers.route(w, r, key, "/v1/solve", raw)
		if served {
			s.cache.Put(key, body)
			writeCachedTier(w, body, tier)
			return
		}
		fellBack = fb
	}
	// Miss: lease the instance's shared evaluator (validating and
	// constructing it on first sight). The intern table copies nothing
	// from the scratch — the constructors copy the wire slices — so the
	// detached solve below owns its inputs and the scratch can be pooled
	// the moment this handler returns.
	ev, err := s.intern.lease(req.Pipeline.Works, req.Pipeline.Deltas, &req.Platform)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	bound := req.Bound
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// The solve itself runs detached from this request's lifetime: ctx
	// bounds only the wait below, so one impatient or disconnecting
	// client can never poison collapsed waiters, and the finished result
	// still lands in the cache.
	solveCtx := context.WithoutCancel(ctx)
	body, src, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if s.solveHook != nil {
			s.solveHook()
		}
		resp, err := s.solveOne(solveCtx, objective, mode, ev, bound)
		if err != nil {
			return nil, err
		}
		return renderJSON(resp)
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if fellBack {
		writeCachedTier(w, body, tierFallback)
		return
	}
	writeCached(w, body, src)
}

// solveOne runs one instance through the selected mode. ev is the
// interned evaluator, so repeated instances hit warm tables downstream.
func (s *Server) solveOne(ctx context.Context, objective portfolio.Objective, mode string, ev *mapping.Evaluator, bound float64) (SolveResponse, error) {
	resp := SolveResponse{Objective: objective.String(), Mode: mode, Bound: bound}
	var res heuristics.Result
	switch mode {
	case "portfolio", "best":
		sopts := portfolio.SolveOptions{Exact: mode == "portfolio"}
		var (
			out     portfolio.Outcome
			found   bool
			closest error
		)
		if objective == portfolio.MinimizePeriod {
			out, found, closest = portfolio.UnderLatency(ctx, ev, bound, sopts)
		} else {
			out, found, closest = portfolio.UnderPeriod(ctx, ev, bound, sopts)
		}
		if !found {
			if err := ctx.Err(); err != nil {
				return resp, err
			}
			return resp, infeasible("no solver satisfied %s bound %g: %v", objective, bound, closest)
		}
		res, resp.Solver = out.Result, out.Solver
	case "exact":
		var (
			xr  exact.Result
			err error
		)
		if objective == portfolio.MinimizePeriod {
			xr, err = exact.MinPeriodUnderLatency(ev, bound)
		} else {
			xr, err = exact.MinLatencyUnderPeriod(ev, bound)
		}
		if err != nil {
			return resp, infeasible("exact solve failed: %v", err)
		}
		res, resp.Solver = heuristics.Result{Mapping: xr.Mapping, Metrics: xr.Metrics}, portfolio.ExactID
	default: // a single heuristic identifier, already validated
		var err error
		fullhet := ev.Platform().Kind() == platform.FullyHeterogeneous
		if objective == portfolio.MinimizePeriod {
			for _, h := range latencyRegistry(fullhet) {
				if h.ID() == mode {
					res, err = h.MinimizePeriod(ev, bound)
				}
			}
		} else {
			for _, h := range periodRegistry(fullhet) {
				if h.ID() == mode {
					res, err = h.MinimizeLatency(ev, bound)
				}
			}
		}
		if err != nil {
			return resp, infeasible("%s failed: %v", mode, err)
		}
		resp.Solver = mode
	}
	resp.Period = res.Metrics.Period
	resp.Latency = res.Metrics.Latency
	resp.Intervals = intervalsJSON(res.Mapping)
	return resp, nil
}

func (s *Server) handleBatch(sc *scratch, w http.ResponseWriter, r *http.Request) {
	// Batch bodies decode into pooled wire scratch like solve bodies: the
	// primed hot path goes body → canonical key → cached bytes without
	// constructing a single pipeline or platform. Domain objects are
	// built on the miss only, below, and own their data, so the detached
	// batch run never touches the scratch after the handler returns.
	// Batch requests stay node-local in peer mode: the canonical key of a
	// whole instance list is effectively unique per client, so forwarding
	// would add a hop for no expected hit, and the batch engine already
	// spreads the work across this node's cores.
	req := &sc.batch
	req.reset()
	if _, err := s.decodeJSON(w, r, req); err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(req.Instances) == 0 {
		s.writeError(w, r, badRequest("\"instances\" must hold at least one instance"))
		return
	}
	for i := range req.Instances {
		in := &req.Instances[i]
		if in.Pipeline.missing() || in.Platform.missing() {
			s.writeError(w, r, badRequest("instance %d: both \"pipeline\" and \"platform\" are required", i))
			return
		}
		if err := servableKind(in.Platform.Kind); err != nil {
			s.writeError(w, r, badRequest("instance %d: %v", i, err))
			return
		}
	}
	objective, err := parseObjective(req.Objective)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := validBound(req.Bound); err != nil {
		s.writeError(w, r, err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}
	opts := portfolio.BatchOptions{
		Objective:     objective,
		Bound:         req.Bound,
		RelativeBound: req.RelativeBound,
		Exact:         req.Exact,
		Workers:       workers,
	}
	key := batchKeyWire(opts, req.Instances)
	if body, ok := s.cache.Get(key); ok {
		writeCached(w, body, cache.Hit)
		return
	}
	// Miss: construct the domain objects, deduplicating platforms by
	// content so instances naming the same platform share one object —
	// the pointer identity the grouped batch lane groups its
	// evaluator-table construction by.
	instances, err := buildBatchInstances(req.Instances)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// Detached as in handleSolve: ctx bounds the wait, not the batch.
	solveCtx := context.WithoutCancel(ctx)
	body, src, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if s.solveHook != nil {
			s.solveHook()
		}
		report, err := portfolio.SolveBatchGrouped(solveCtx, instances, opts)
		if err != nil {
			// Cancelled mid-batch: the report is partial, never cache it.
			return nil, err
		}
		resp := BatchResponse{Solved: report.Solved, Failed: report.Failed}
		resp.Results = make([]BatchResult, len(report.Results))
		for i, res := range report.Results {
			br := BatchResult{Index: res.Index, Bound: res.Bound}
			if res.Err != nil {
				br.Error = res.Err.Error()
			} else {
				br.Solver = res.Outcome.Solver
				br.Period = res.Outcome.Result.Metrics.Period
				br.Latency = res.Outcome.Result.Metrics.Latency
				br.Intervals = intervalsJSON(res.Outcome.Result.Mapping)
			}
			resp.Results[i] = br
		}
		for _, pt := range report.Front {
			resp.Front = append(resp.Front, BatchFrontPoint{
				Instance: pt.Instance,
				Period:   pt.Metrics.Period,
				Latency:  pt.Metrics.Latency,
			})
		}
		return renderJSON(resp)
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeCached(w, body, src)
}

func (s *Server) handleSweep(sc *scratch, w http.ResponseWriter, r *http.Request) {
	req := &sc.sweep
	req.reset()
	raw, err := s.decodeJSON(w, r, req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.Pipeline.missing() || req.Platform.missing() {
		s.writeError(w, r, badRequest("both \"pipeline\" and \"platform\" are required"))
		return
	}
	if err := servableKind(req.Platform.Kind); err != nil {
		s.writeError(w, r, err)
		return
	}
	if req.Points < 0 || req.Points > maxSweepPoints {
		s.writeError(w, r, badRequest("points %d is invalid (must be in [0..%d]; 0 selects the default %d)", req.Points, maxSweepPoints, defaultSweepPoints))
		return
	}
	points := req.Points
	if points == 0 {
		points = defaultSweepPoints
	}
	key := sweepKeyWire(points, req.Pipeline.Works, req.Pipeline.Deltas, &req.Platform)
	if body, ok := s.cache.Get(key); ok {
		writeCached(w, body, cache.Hit)
		return
	}
	// Peer tier, as in handleSolve.
	fellBack := false
	if s.peers != nil {
		body, tier, served, fb := s.peers.route(w, r, key, "/v1/sweep", raw)
		if served {
			s.cache.Put(key, body)
			writeCachedTier(w, body, tier)
			return
		}
		fellBack = fb
	}
	ev, err := s.intern.lease(req.Pipeline.Works, req.Pipeline.Deltas, &req.Platform)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// Detached as in handleSolve: ctx bounds the wait, not the sweep.
	solveCtx := context.WithoutCancel(ctx)
	body, src, err := s.cache.Do(ctx, key, func() ([]byte, error) {
		if s.solveHook != nil {
			s.solveHook()
		}
		// solveCtx is never cancellable (WithoutCancel), so the sweep
		// always runs to completion and the frontier is never truncated;
		// a cancelled client merely abandons its wait in cache.Do.
		front := portfolio.ParetoSweep(solveCtx, ev, points, 0)
		resp := SweepResponse{Points: make([]SweepPoint, len(front))}
		for i, pt := range front {
			resp.Points[i] = SweepPoint{
				Period:    pt.Metrics.Period,
				Latency:   pt.Metrics.Latency,
				Intervals: intervalsJSON(pt.Mapping),
			}
		}
		return renderJSON(resp)
	})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if fellBack {
		writeCachedTier(w, body, tierFallback)
		return
	}
	writeCached(w, body, src)
}

// writeCached renders a cached (or just-rendered) response body with its
// cache disposition: three header slots and exactly one Write. Bodies are
// rendered with their trailing newline (renderJSON), so no second write
// is ever needed.
func writeCached(w http.ResponseWriter, body []byte, src cache.Source) {
	// cache.Source values coincide with the first three tier indices.
	writeCachedTier(w, body, int(src))
}

// writeCachedTier is writeCached with an explicit X-Cache tier index,
// covering the peer tiers (remote-hit, remote-miss, fallback) the
// single-node cache.Source enum cannot express.
func writeCachedTier(w http.ResponseWriter, body []byte, tier int) {
	h := w.Header()
	h["Content-Type"] = hdrJSON
	if tier >= 0 && tier < len(hdrXCacheVal) {
		h["X-Cache"] = hdrXCacheVal[tier]
	}
	setContentLength(h, len(body))
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Metrics())
}
