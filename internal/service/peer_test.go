package service

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/workload"
)

// newPeerTestServer builds a peer-aware node whose only peer is peerURL.
// The unstarted-server trick resolves this node's own address before the
// topology is built. Short forward/backoff windows keep failure tests in
// the millisecond range. Replicas is pinned to 1: these tests cover the
// single-owner forward semantics, and in a two-node fleet the default
// R=2 would put self in every key's replica set (no forwards at all).
func newPeerTestServer(t *testing.T, peerURL string, timeout, backoff time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	ts := httptest.NewUnstartedServer(nil)
	self := "http://" + ts.Listener.Addr().String()
	topo, err := cluster.NewTopology([]string{self, peerURL}, self)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Cluster: &ClusterConfig{
		Topology:       topo,
		Replicas:       1,
		ForwardTimeout: timeout,
		PeerBackoff:    backoff,
	}})
	ts.Config.Handler = s
	ts.Start()
	t.Cleanup(ts.Close)
	return s, ts
}

// deadPeerURL reserves a loopback port and closes it again: a peer
// address that refuses connections immediately.
func deadPeerURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

// peerOwnedBody probes from seedBase for an instance whose canonical key
// the peer owns, identified behaviourally by wantTier on a cold request
// ("fallback" against a dead peer, "remote-miss" against a live stub).
// Self-owned keys ("miss", or "hit" when a probe re-walks cached seeds)
// are skipped. Returns the body and the response that carried wantTier.
func peerOwnedBody(t *testing.T, ts *httptest.Server, wantTier string, seedBase int64) ([]byte, []byte) {
	t.Helper()
	for seed := seedBase; seed < seedBase+24; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
		body := solveBody(t, in, map[string]any{"bound": 1e6})
		resp, got := post(t, ts, "/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe solve: status %d: %s", resp.StatusCode, got)
		}
		switch tier := resp.Header.Get("X-Cache"); tier {
		case wantTier:
			return body, got
		case "miss", "hit":
			continue // self-owned (or already cached); try the next seed
		default:
			t.Fatalf("probe got tier %q, want %q or \"miss\"", tier, wantTier)
		}
	}
	t.Fatal("no peer-owned key in 24 seeds — suspicious ownership skew")
	return nil, nil
}

// TestPeerOwnerDownFallsBack: the owner refuses connections, so a
// peer-owned key degrades to a local solve — HTTP 200, tier "fallback",
// counted in metrics — and the solved bytes are installed locally, so
// the repeat is a plain hit.
func TestPeerOwnerDownFallsBack(t *testing.T) {
	s, ts := newPeerTestServer(t, deadPeerURL(t), 300*time.Millisecond, 50*time.Millisecond)

	body, first := peerOwnedBody(t, ts, "fallback", 500)
	c := s.Metrics().Cluster
	if c == nil || c.Fallbacks == 0 {
		t.Fatalf("fallback not counted: %+v", c)
	}
	if c.Forwarded != 0 {
		t.Fatalf("forward counted against a dead peer: %+v", c)
	}

	resp, second := post(t, ts, "/v1/solve", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat after fallback: status %d tier %q, want 200 \"hit\"", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("fallback solve and cached repeat returned different bytes")
	}
}

// TestPeerSlowOwnerHitsForwardTimeout: an owner that hangs past the
// forward timeout costs exactly one timeout, then stays marked down for
// the backoff window — the next peer-owned miss falls back immediately
// instead of waiting out another timeout.
func TestPeerSlowOwnerHitsForwardTimeout(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer func() { close(release); slow.Close() }()

	const timeout = 150 * time.Millisecond
	s, ts := newPeerTestServer(t, slow.URL, timeout, time.Minute)

	start := time.Now()
	_, _ = peerOwnedBody(t, ts, "fallback", 600)
	if s.Metrics().Cluster.Fallbacks == 0 {
		t.Fatal("slow owner did not register a fallback")
	}
	firstTook := time.Since(start)
	if firstTook < timeout {
		t.Fatalf("first peer-owned solve returned in %v — the forward timeout (%v) never fired", firstTook, timeout)
	}

	// The peer is now down: a second fresh peer-owned key must fall back
	// without paying the timeout again.
	start = time.Now()
	for seed := int64(900); seed < 924; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
		resp, _ := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 1e6}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d while peer down", resp.StatusCode)
		}
	}
	if took := time.Since(start); took > 24*timeout/2 {
		t.Fatalf("24 solves against a down peer took %v — forwards are still being attempted", took)
	}
}

// TestPeerForwardRelaysOwnerBytes: a live owner's response body is
// relayed verbatim, its cache disposition mapped to remote-hit /
// remote-miss, and the bytes installed locally as a second-tier hit.
func TestPeerForwardRelaysOwnerBytes(t *testing.T) {
	ownerBody := []byte(`{"relayed":"verbatim"}`)
	var mu sync.Mutex
	ownerTier := "miss"
	sawForwardHeader := false
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		tier := ownerTier
		sawForwardHeader = r.Header.Get(cluster.ForwardHeader) != ""
		mu.Unlock()
		w.Header().Set("X-Cache", tier)
		w.Write(ownerBody)
	}))
	defer owner.Close()

	s, ts := newPeerTestServer(t, owner.URL, time.Second, time.Minute)

	body, got := peerOwnedBody(t, ts, "remote-miss", 700)
	if !bytes.Equal(got, ownerBody) {
		t.Fatalf("forwarded body not relayed verbatim: %s", got)
	}
	mu.Lock()
	saw := sawForwardHeader
	mu.Unlock()
	if !saw {
		t.Fatal("forward did not carry the loop-prevention header")
	}
	c := s.Metrics().Cluster
	if c.Forwarded == 0 || c.RemoteMisses == 0 {
		t.Fatalf("forward not counted: %+v", c)
	}

	// Second-tier: the relayed bytes are now a local hit.
	resp, second := post(t, ts, "/v1/solve", body)
	if resp.Header.Get("X-Cache") != "hit" || !bytes.Equal(second, ownerBody) {
		t.Fatalf("relayed bytes not installed locally: tier %q body %s", resp.Header.Get("X-Cache"), second)
	}

	// An owner-side cache hit maps to remote-hit.
	mu.Lock()
	ownerTier = "hit"
	mu.Unlock()
	if _, _ = peerOwnedBody(t, ts, "remote-hit", 750); s.Metrics().Cluster.RemoteHits == 0 {
		t.Fatalf("remote hit not counted: %+v", s.Metrics().Cluster)
	}
}

// TestPeerForwardedRequestNeverReforwarded: a request already carrying
// the forward header is served locally even when a peer owns its key and
// that peer is unreachable — no second hop, no fallback accounting, no
// loop.
func TestPeerForwardedRequestNeverReforwarded(t *testing.T) {
	s, ts := newPeerTestServer(t, deadPeerURL(t), 300*time.Millisecond, time.Minute)

	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 1})
	body := solveBody(t, in, map[string]any{"bound": 1e6})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d", resp.StatusCode)
	}
	if tier := resp.Header.Get("X-Cache"); tier != "miss" {
		t.Fatalf("forwarded request served tier %q, want a plain local \"miss\"", tier)
	}
	c := s.Metrics().Cluster
	if c.OwnedForwards != 1 {
		t.Fatalf("owned_forwards = %d, want 1", c.OwnedForwards)
	}
	if c.Fallbacks != 0 || c.Forwarded != 0 {
		t.Fatalf("forwarded request triggered peer traffic: %+v", c)
	}
}

// TestPeerSnapshotEndpoint: the snapshot stream decodes under the peer
// codec and carries exactly the entries this node has cached.
func TestPeerSnapshotEndpoint(t *testing.T) {
	s, ts := newPeerTestServer(t, deadPeerURL(t), 300*time.Millisecond, time.Minute)

	var bodies [][]byte
	for seed := int64(0); seed < 3; seed++ {
		in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
		resp, b := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 1e6}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		bodies = append(bodies, b)
	}

	resp, raw := get(t, ts, cluster.SnapshotPath)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	entries, err := cluster.DecodeSnapshot(bytes.NewReader(raw), 16, 1<<20)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if len(entries) != len(bodies) {
		t.Fatalf("snapshot has %d entries, want %d", len(entries), len(bodies))
	}
	for _, e := range entries {
		found := false
		for _, b := range bodies {
			if bytes.Equal(e.Body, b) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("snapshot entry body not among served responses: %s", e.Body)
		}
	}
	if s.Metrics().Cluster.SnapshotsServed != 1 {
		t.Fatalf("snapshots_served = %d, want 1", s.Metrics().Cluster.SnapshotsServed)
	}
}

// TestSingleNodeHasNoClusterSurface: without a cluster config the
// snapshot route does not exist and metrics carry no cluster section —
// single-node deployments keep exactly the old surface.
func TestSingleNodeHasNoClusterSurface(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, _ := get(t, ts, cluster.SnapshotPath)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("snapshot endpoint exposed in single-node mode")
	}
	if s.Metrics().Cluster != nil {
		t.Fatal("metrics carry a cluster section in single-node mode")
	}
	if n, err := s.WarmFromPeers(context.Background()); n != 0 || err != nil {
		t.Fatalf("single-node WarmFromPeers = (%d, %v), want (0, nil)", n, err)
	}
}
