package service

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/service/cache"
	"pipesched/internal/workload"
)

// Canonical instance hashing. Every cacheable request is reduced to a
// deterministic wire form — a type-tagged byte stream over the exact
// float64 bit patterns of the instance — and digested with SHA-256 into a
// cache.Key. Two requests share a key if and only if they describe the
// same (pipeline, platform, objective, bound, mode) tuple, so the result
// cache can never conflate distinct problems.
//
// The encoding is versioned: bump canonVersion whenever a field is added,
// removed or reordered, so stale keys from older layouts can never alias
// new ones (irrelevant for the in-memory cache, vital the day keys are
// persisted or shared between replicas).
const canonVersion = 1

// canon accumulates the canonical wire form directly into a hash.
type canon struct {
	h   hash.Hash
	buf [8]byte
}

func newCanon(kind string) *canon {
	c := &canon{h: sha256.New()}
	c.u64(canonVersion)
	c.str(kind)
	return c
}

// u64 appends one little-endian 64-bit word.
func (c *canon) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[:], v)
	c.h.Write(c.buf[:])
}

// f64 appends the exact bit pattern of one float64. Bit-level identity is
// the right equality here: the solvers are deterministic functions of the
// input bits, so inputs differing only in, say, -0 vs +0 may legitimately
// be cached separately.
func (c *canon) f64(v float64) { c.u64(math.Float64bits(v)) }

// str appends a length-prefixed string.
func (c *canon) str(s string) {
	c.u64(uint64(len(s)))
	c.h.Write([]byte(s))
}

// floats appends a length-prefixed float64 slice.
func (c *canon) floats(xs []float64) {
	c.u64(uint64(len(xs)))
	for _, x := range xs {
		c.f64(x)
	}
}

// pipeline appends the full applicative description: stage works and
// communication sizes.
func (c *canon) pipeline(app *pipeline.Pipeline) {
	c.floats(app.Works())
	c.floats(app.Deltas())
}

// platform appends the full platform description, discriminated by kind.
func (c *canon) platform(plat *platform.Platform) {
	c.u64(uint64(plat.Kind()))
	c.floats(plat.Speeds())
	switch plat.Kind() {
	case platform.CommHomogeneous:
		c.f64(plat.Bandwidth())
	case platform.FullyHeterogeneous:
		p := plat.Processors()
		for u := 1; u <= p; u++ {
			for v := 1; v <= p; v++ {
				if u == v {
					c.f64(0)
				} else {
					c.f64(plat.LinkBandwidth(u, v))
				}
			}
		}
	}
}

func (c *canon) key() cache.Key {
	var k cache.Key
	copy(k[:], c.h.Sum(nil))
	return k
}

// solveKey digests one /v1/solve request. mode is already normalised by
// validation, so "H1" and "h1" hash identically.
func solveKey(objective portfolio.Objective, mode string, bound float64, app *pipeline.Pipeline, plat *platform.Platform) cache.Key {
	c := newCanon("solve")
	c.u64(uint64(objective))
	c.str(mode)
	c.f64(bound)
	c.pipeline(app)
	c.platform(plat)
	return c.key()
}

// sweepKey digests one /v1/sweep request.
func sweepKey(points int, app *pipeline.Pipeline, plat *platform.Platform) cache.Key {
	c := newCanon("sweep")
	c.u64(uint64(points))
	c.pipeline(app)
	c.platform(plat)
	return c.key()
}

// batchKey digests one /v1/batch request. Worker count is deliberately
// excluded: the batch engine guarantees results identical for any worker
// count, so scheduling knobs must not fragment the cache.
func batchKey(opts portfolio.BatchOptions, instances []workload.Instance) cache.Key {
	c := newCanon("batch")
	c.u64(uint64(opts.Objective))
	c.f64(opts.Bound)
	c.u64(boolBit(opts.RelativeBound))
	c.u64(boolBit(opts.Exact))
	c.u64(uint64(len(instances)))
	for _, in := range instances {
		c.pipeline(in.App)
		c.platform(in.Plat)
	}
	return c.key()
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
