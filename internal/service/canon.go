package service

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sync"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/service/cache"
	"pipesched/internal/workload"
)

// Canonical instance hashing. Every cacheable request is reduced to a
// deterministic wire form — a type-tagged byte stream over the exact
// float64 bit patterns of the instance — and digested with SHA-256 into a
// cache.Key. Two requests share a key if and only if they describe the
// same (pipeline, platform, objective, bound, mode) tuple, so the result
// cache can never conflate distinct problems.
//
// The hashers are pooled: a canon is leased per key computation, its
// SHA-256 state reset in place, and the digest lands in the caller's
// stack-allocated Key — hashing a request allocates nothing in steady
// state. The solve and sweep keys are computed directly from the decoded
// wire slices (works/deltas/speeds), so the serving hot path never has to
// materialise pipeline or platform objects just to ask the cache.
//
// The encoding is versioned: bump canonVersion whenever a field is added,
// removed or reordered, so stale keys from older layouts can never alias
// new ones (irrelevant for the in-memory cache, vital the day keys are
// persisted or shared between replicas). Version 2 added the fully
// heterogeneous platform arm (length-prefixed link-bandwidth rows).
const canonVersion = 2

// canon accumulates the canonical wire form directly into a hash.
type canon struct {
	h    hash.Hash
	buf  [8]byte
	sbuf [32]byte // string staging: avoids a []byte(s) heap copy per str
	sum  [32]byte // digest staging: Sum lands here, not in an escaping local
}

var canonPool = sync.Pool{New: func() any { return &canon{h: sha256.New()} }}

// newCanon leases a pooled hasher primed with the version and key kind.
// key() returns it to the pool.
func newCanon(kind string) *canon {
	c := canonPool.Get().(*canon)
	c.h.Reset()
	c.u64(canonVersion)
	c.str(kind)
	return c
}

// u64 appends one little-endian 64-bit word.
func (c *canon) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.buf[:], v)
	c.h.Write(c.buf[:])
}

// f64 appends the exact bit pattern of one float64. Bit-level identity is
// the right equality here: the solvers are deterministic functions of the
// input bits, so inputs differing only in, say, -0 vs +0 may legitimately
// be cached separately.
func (c *canon) f64(v float64) { c.u64(math.Float64bits(v)) }

// str appends a length-prefixed string. Short strings (every mode and
// kind tag is) stage through the inline buffer so the conversion to bytes
// never escapes to the heap.
func (c *canon) str(s string) {
	c.u64(uint64(len(s)))
	if len(s) <= len(c.sbuf) {
		n := copy(c.sbuf[:], s)
		c.h.Write(c.sbuf[:n])
		return
	}
	c.h.Write([]byte(s))
}

// floats appends a length-prefixed float64 slice.
func (c *canon) floats(xs []float64) {
	c.u64(uint64(len(xs)))
	for _, x := range xs {
		c.f64(x)
	}
}

// pipeline appends the full applicative description: stage works and
// communication sizes.
func (c *canon) pipeline(app *pipeline.Pipeline) {
	c.floats(app.Works())
	c.floats(app.Deltas())
}

// platform appends the full platform description, discriminated by kind.
func (c *canon) platform(plat *platform.Platform) {
	c.u64(uint64(plat.Kind()))
	c.floats(plat.Speeds())
	switch plat.Kind() {
	case platform.CommHomogeneous:
		c.f64(plat.Bandwidth())
	case platform.FullyHeterogeneous:
		p := plat.Processors()
		c.u64(uint64(p))
		for u := 1; u <= p; u++ {
			c.u64(uint64(p))
			for v := 1; v <= p; v++ {
				if u == v {
					c.f64(0)
				} else {
					c.f64(plat.LinkBandwidth(u, v))
				}
			}
		}
	}
}

// commHomogeneous appends a Communication Homogeneous platform from its
// raw wire slices — the byte stream is identical to platform() on the
// constructed object, so wire-computed and object-computed keys agree.
func (c *canon) commHomogeneous(speeds []float64, bandwidth float64) {
	c.u64(uint64(platform.CommHomogeneous))
	c.floats(speeds)
	c.f64(bandwidth)
}

// fullyHeterogeneous appends a fully heterogeneous platform from its raw
// wire slices, byte-identical to platform() on the constructed object.
// Diagonal cells hash as 0 no matter what the request put there: the
// constructor ignores them, so two requests differing only on the
// diagonal describe the same platform and must share a key. Every
// off-diagonal cell feeds the digest, so two platforms differing in one
// link bandwidth can never collide into one cache entry. Rows and cells
// are length-prefixed, so a malformed link matrix (rejected later by the
// constructor) cannot alias a valid platform's stream.
func (c *canon) fullyHeterogeneous(speeds []float64, links [][]float64) {
	c.u64(uint64(platform.FullyHeterogeneous))
	c.floats(speeds)
	c.u64(uint64(len(links)))
	for u, row := range links {
		c.u64(uint64(len(row)))
		for v, b := range row {
			if u == v {
				c.f64(0)
			} else {
				c.f64(b)
			}
		}
	}
}

// wirePlatform appends a platform from its raw wire fields, discriminated
// by the (already validated) kind tag. An empty tag defaults to
// comm-homogeneous, matching platform.UnmarshalJSON.
func (c *canon) wirePlatform(kind string, speeds []float64, bandwidth float64, links [][]float64) {
	if kind == platform.FullyHeterogeneous.String() {
		c.fullyHeterogeneous(speeds, links)
		return
	}
	c.commHomogeneous(speeds, bandwidth)
}

// key finalises the digest and returns the canon to the pool. The digest
// stages through the canon's own array: summing into a local would make
// it escape and cost the hot path an allocation per key.
func (c *canon) key() cache.Key {
	c.h.Sum(c.sum[:0])
	k := cache.Key(c.sum)
	canonPool.Put(c)
	return k
}

// solveKeyWire digests one /v1/solve request straight from its decoded
// wire form. mode is already normalised by validation, so "H1" and "h1"
// hash identically; the platform kind tag is already validated, so the
// stream is discriminated by a known kind before the cache is consulted.
func solveKeyWire(objective portfolio.Objective, mode string, bound float64, works, deltas []float64, plat *platformWire) cache.Key {
	c := newCanon("solve")
	c.u64(uint64(objective))
	c.str(mode)
	c.f64(bound)
	c.floats(works)
	c.floats(deltas)
	c.wirePlatform(plat.Kind, plat.Speeds, plat.Bandwidth, plat.Links)
	return c.key()
}

// sweepKeyWire digests one /v1/sweep request from its wire form.
func sweepKeyWire(points int, works, deltas []float64, plat *platformWire) cache.Key {
	c := newCanon("sweep")
	c.u64(uint64(points))
	c.floats(works)
	c.floats(deltas)
	c.wirePlatform(plat.Kind, plat.Speeds, plat.Bandwidth, plat.Links)
	return c.key()
}

// solveKey digests a solve request from constructed objects. It must
// produce the same key as solveKeyWire on the same instance; tests pin
// the equivalence.
func solveKey(objective portfolio.Objective, mode string, bound float64, app *pipeline.Pipeline, plat *platform.Platform) cache.Key {
	c := newCanon("solve")
	c.u64(uint64(objective))
	c.str(mode)
	c.f64(bound)
	c.pipeline(app)
	c.platform(plat)
	return c.key()
}

// sweepKey digests a sweep request from constructed objects; it matches
// sweepKeyWire exactly like solveKey matches solveKeyWire.
func sweepKey(points int, app *pipeline.Pipeline, plat *platform.Platform) cache.Key {
	c := newCanon("sweep")
	c.u64(uint64(points))
	c.pipeline(app)
	c.platform(plat)
	return c.key()
}

// batchKey digests one /v1/batch request. Worker count is deliberately
// excluded: the batch engine guarantees results identical for any worker
// count, so scheduling knobs must not fragment the cache.
func batchKey(opts portfolio.BatchOptions, instances []workload.Instance) cache.Key {
	c := newCanon("batch")
	c.u64(uint64(opts.Objective))
	c.f64(opts.Bound)
	c.u64(boolBit(opts.RelativeBound))
	c.u64(boolBit(opts.Exact))
	c.u64(uint64(len(instances)))
	for _, in := range instances {
		c.pipeline(in.App)
		c.platform(in.Plat)
	}
	return c.key()
}

// batchKeyWire digests one /v1/batch request straight from its decoded
// wire form. It must produce the same key as batchKey on the constructed
// objects; tests pin the equivalence, so the primed batch hot path can
// answer from the cache without materialising a single domain object.
func batchKeyWire(opts portfolio.BatchOptions, instances []instanceWire) cache.Key {
	c := newCanon("batch")
	c.u64(uint64(opts.Objective))
	c.f64(opts.Bound)
	c.u64(boolBit(opts.RelativeBound))
	c.u64(boolBit(opts.Exact))
	c.u64(uint64(len(instances)))
	for i := range instances {
		in := &instances[i]
		c.floats(in.Pipeline.Works)
		c.floats(in.Pipeline.Deltas)
		c.wirePlatform(in.Platform.Kind, in.Platform.Speeds, in.Platform.Bandwidth, in.Platform.Links)
	}
	return c.key()
}

// platformKeyWire digests a platform alone — the fingerprint the batch
// miss path dedups platforms by, so instances naming the same platform
// share one constructed object (and therefore one evaluator-table group
// in the grouped batch lane).
func platformKeyWire(pw *platformWire) cache.Key {
	c := newCanon("platform")
	c.wirePlatform(pw.Kind, pw.Speeds, pw.Bandwidth, pw.Links)
	return c.key()
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
