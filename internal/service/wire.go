package service

// Pooled request/response scratch for the serving hot path.
//
// Requests are decoded into reusable wire structs — raw works/deltas/
// speeds slices whose backing arrays survive between requests — instead
// of validated pipeline/platform objects, because the cache key only
// needs the raw numbers. The expensive constructors (prefix sums, speed
// orders, class tables) run on cache misses only, where a solve is about
// to dwarf them anyway. Responses render through pooled buffers; cached
// bodies carry their trailing newline so a hit is exactly one Write.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"unicode/utf8"
)

// pipelineWire is the raw JSON form of a pipeline.
type pipelineWire struct {
	Works  []float64 `json:"works"`
	Deltas []float64 `json:"deltas"`
}

func (pw *pipelineWire) reset() {
	pw.Works = pw.Works[:0]
	pw.Deltas = pw.Deltas[:0]
}

// platformWire is the raw JSON form of a platform.
type platformWire struct {
	Kind      string      `json:"kind"`
	Speeds    []float64   `json:"speeds"`
	Bandwidth float64     `json:"bandwidth"`
	Links     [][]float64 `json:"links"`
}

func (pw *platformWire) reset() {
	pw.Kind = ""
	pw.Speeds = pw.Speeds[:0]
	pw.Bandwidth = 0
	pw.Links = pw.Links[:0]
}

// solveWire is the top-level body of POST /v1/solve, decoded in one
// strict pass: the nested wire structs reuse their slice capacity across
// requests, so a warm decode allocates nothing for the numbers.
type solveWire struct {
	Pipeline  pipelineWire `json:"pipeline"`
	Platform  platformWire `json:"platform"`
	Objective string       `json:"objective"`
	Bound     float64      `json:"bound"`
	Mode      string       `json:"mode"`
	TimeoutMS int          `json:"timeout_ms"`
}

func (sw *solveWire) reset() {
	sw.Pipeline.reset()
	sw.Platform.reset()
	sw.Objective, sw.Mode = "", ""
	sw.Bound = 0
	sw.TimeoutMS = 0
}

// instanceWire is one element of a batch body: the same pipeline and
// platform wire pair as a solve body.
type instanceWire struct {
	Pipeline pipelineWire `json:"pipeline"`
	Platform platformWire `json:"platform"`
}

// batchWire is the top-level body of POST /v1/batch, decoded into pooled
// scratch like solveWire. encoding/json reuses both the instance slice
// and every nested number slice when capacity allows, so a warm decode
// of a batch allocates for none of the instance payloads — on the primed
// hot path the handler goes body → key → cached bytes without
// materialising a single pipeline or platform object. reset truncates
// every nested slice so a field absent from this request can never leak
// a previous request's numbers into the key.
type batchWire struct {
	Instances     []instanceWire `json:"instances"`
	Objective     string         `json:"objective"`
	Bound         float64        `json:"bound"`
	RelativeBound bool           `json:"relative_bound"`
	Exact         bool           `json:"exact"`
	Workers       int            `json:"workers"`
	TimeoutMS     int            `json:"timeout_ms"`
}

func (bw *batchWire) reset() {
	for i := range bw.Instances {
		bw.Instances[i].Pipeline.reset()
		bw.Instances[i].Platform.reset()
	}
	bw.Instances = bw.Instances[:0]
	bw.Objective = ""
	bw.Bound = 0
	bw.RelativeBound, bw.Exact = false, false
	bw.Workers, bw.TimeoutMS = 0, 0
}

// sweepWire is the top-level body of POST /v1/sweep.
type sweepWire struct {
	Pipeline  pipelineWire `json:"pipeline"`
	Platform  platformWire `json:"platform"`
	Points    int          `json:"points"`
	TimeoutMS int          `json:"timeout_ms"`
}

func (sw *sweepWire) reset() {
	sw.Pipeline.reset()
	sw.Platform.reset()
	sw.Points = 0
	sw.TimeoutMS = 0
}

// missing reports whether a decoded sub-object was absent, null or
// empty — the cases the nil-pointer check used to catch. (An explicitly
// empty works/speeds list is invalid anyway, so folding it into
// "missing" only changes the message, not the status.)
func (pw *pipelineWire) missing() bool { return len(pw.Works) == 0 }
func (pw *platformWire) missing() bool { return len(pw.Speeds) == 0 }

// scratch is one request's reusable state: the response-status recorder
// and the top-level wire bodies.
type scratch struct {
	rec   statusRecorder
	solve solveWire
	sweep sweepWire
	batch batchWire
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// bufPool holds render buffers for response bodies. Buffers are leased
// for one encode and released immediately, so the pool's steady-state
// footprint is one buffer per concurrent renderer.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// renderJSON encodes v through a pooled buffer into an exact-size body,
// trailing newline included — the bytes stored in the cache and written
// verbatim on every hit.
func renderJSON(v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	bufPool.Put(buf)
	return body, nil
}

// X-Cache tier indices. The first three coincide with cache.Source
// (miss, hit, collapsed); the rest are the peer tiers of clustered
// serving: remote-hit/remote-miss report a response proxied from a
// key replica (split by whether the replica itself had it cached),
// hedged-hit reports a proxied response won by a hedge attempt rather
// than the first replica, and fallback reports a local solve taken
// because every replica was unreachable.
const (
	tierMiss = iota
	tierHit
	tierCollapsed
	tierRemoteHit
	tierRemoteMiss
	tierFallback
	tierHedgedHit
)

// Static header values: assigning a shared slice into the header map
// avoids the per-request []string allocation of Header.Set. The slices
// are never mutated (net/http only reads them), and the keys are already
// in canonical MIME case.
var (
	hdrJSON      = []string{"application/json"}
	hdrXCacheVal = [...][]string{
		tierMiss:       {"miss"},
		tierHit:        {"hit"},
		tierCollapsed:  {"collapsed"},
		tierRemoteHit:  {"remote-hit"},
		tierRemoteMiss: {"remote-miss"},
		tierFallback:   {"fallback"},
		tierHedgedHit:  {"hedged-hit"},
	}
)

// appendJSONString appends the JSON string literal for s to buf with
// exactly encoding/json's escaping rules — short escapes for the common
// controls, \u00xx for the rest, HTML-unsafe characters and the JS line
// separators escaped, invalid UTF-8 replaced — so hand-rendered error
// bodies are byte-identical to encoder output. Pinned against
// json.Marshal by TestErrorJSONShape.
func appendJSONString(buf *bytes.Buffer, s string) {
	const hexDigits = "0123456789abcdef"
	buf.WriteByte('"')
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			switch {
			case b == '"':
				buf.WriteString(`\"`)
			case b == '\\':
				buf.WriteString(`\\`)
			case b == '\n':
				buf.WriteString(`\n`)
			case b == '\r':
				buf.WriteString(`\r`)
			case b == '\t':
				buf.WriteString(`\t`)
			case b < 0x20, b == '<', b == '>', b == '&':
				buf.WriteString(`\u00`)
				buf.WriteByte(hexDigits[b>>4])
				buf.WriteByte(hexDigits[b&0xf])
			default:
				buf.WriteByte(b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf.WriteString(`\ufffd`)
			i++
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf.WriteString(`\u202`)
			buf.WriteByte(hexDigits[r&0xf])
			i += size
			continue
		}
		buf.WriteString(s[i : i+size])
		i += size
	}
	buf.WriteByte('"')
}

// writeErrorBody renders {"error": msg} through a pooled buffer and
// writes it with the given status: the non-2xx path allocates one
// Content-Length string beyond the message itself.
func writeErrorBody(w http.ResponseWriter, code int, msg string) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"error":`)
	appendJSONString(buf, msg)
	buf.WriteString("}\n")
	h := w.Header()
	h["Content-Type"] = hdrJSON
	setContentLength(h, buf.Len())
	w.WriteHeader(code)
	w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// setContentLength sets Content-Length without the Header.Set slice
// allocation for the digits themselves.
func setContentLength(h http.Header, n int) {
	var digits [20]byte
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	h["Content-Length"] = []string{string(digits[i:])}
}
