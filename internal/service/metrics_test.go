package service

import (
	"math"
	"sync"
	"testing"
	"time"

	"pipesched/internal/service/cache"
	"pipesched/internal/stats"
)

// TestMetricsMatchWelfordOracle cross-checks the striped atomic moments
// against the streaming Welford accumulator the registry used to wrap in
// a mutex: same samples in, same mean/min/max/stddev out (to floating-
// point merge tolerance).
func TestMetricsMatchWelfordOracle(t *testing.T) {
	m := newMetricsRegistry()
	var w stats.Welford
	durations := []time.Duration{
		1500 * time.Microsecond, 3 * time.Millisecond, 250 * time.Microsecond,
		12 * time.Millisecond, 900 * time.Microsecond, 4200 * time.Microsecond,
	}
	for i, d := range durations {
		m.observe("solve", d, i == 2)
		w.Add(d.Seconds())
	}
	snap := m.snapshot(cache.Stats{}, 1)
	es, ok := snap.Endpoints["solve"]
	if !ok {
		t.Fatalf("no solve endpoint in %+v", snap.Endpoints)
	}
	if es.Requests != uint64(len(durations)) || es.Errors != 1 {
		t.Fatalf("requests/errors = %d/%d, want %d/1", es.Requests, es.Errors, len(durations))
	}
	const tol = 1e-9
	for _, chk := range []struct {
		name      string
		got, want float64
	}{
		{"mean", es.MeanMS, 1000 * w.Mean()},
		{"min", es.MinMS, 1000 * w.Min()},
		{"max", es.MaxMS, 1000 * w.Max()},
		{"stddev", es.StddevMS, 1000 * w.StdDev()},
	} {
		if math.Abs(chk.got-chk.want) > tol*math.Max(1, math.Abs(chk.want)) {
			t.Errorf("%s = %g ms, Welford oracle %g ms", chk.name, chk.got, chk.want)
		}
	}
	if es.P50MS <= 0 || es.P50MS > es.P99MS || es.P99MS > es.MaxMS+tol {
		t.Errorf("quantiles inconsistent: p50 %g, p99 %g, max %g", es.P50MS, es.P99MS, es.MaxMS)
	}
}

// TestMetricsConcurrentObserve hammers one endpoint slot from many
// goroutines under identical samples, so every aggregate is exactly
// predictable: lock-free recording must lose no observation.
func TestMetricsConcurrentObserve(t *testing.T) {
	const (
		workers = 8
		perG    = 2000
	)
	m := newMetricsRegistry()
	d := 2 * time.Millisecond
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.observe("sweep", d, w == 0 && i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	snap := m.snapshot(cache.Stats{}, 1)
	es := snap.Endpoints["sweep"]
	if es.Requests != workers*perG {
		t.Fatalf("lost observations: %d requests, want %d", es.Requests, workers*perG)
	}
	if es.Errors != perG/2 {
		t.Fatalf("errors = %d, want %d", es.Errors, perG/2)
	}
	wantMS := 1000 * d.Seconds()
	if math.Abs(es.MeanMS-wantMS) > 1e-6 || es.MinMS != wantMS || es.MaxMS != wantMS {
		t.Fatalf("identical samples: mean/min/max = %g/%g/%g, want all %g", es.MeanMS, es.MinMS, es.MaxMS, wantMS)
	}
	if es.StddevMS > 1e-6 {
		t.Fatalf("stddev %g for identical samples, want ~0", es.StddevMS)
	}
	if es.P50MS != wantMS || es.P99MS != wantMS {
		t.Fatalf("quantiles %g/%g, want %g", es.P50MS, es.P99MS, wantMS)
	}
}

// TestMetricsUnknownEndpointIgnored: the endpoint set is static; an
// unknown name must be a no-op, not a panic or a phantom slot.
func TestMetricsUnknownEndpointIgnored(t *testing.T) {
	m := newMetricsRegistry()
	m.observe("bogus", time.Millisecond, false)
	snap := m.snapshot(cache.Stats{}, 1)
	if len(snap.Endpoints) != 0 {
		t.Fatalf("unknown endpoint materialised: %+v", snap.Endpoints)
	}
}

// TestMetricsQuietEndpointsOmitted mirrors the lazy-map behaviour of the
// original registry: endpoints with no traffic do not appear.
func TestMetricsQuietEndpointsOmitted(t *testing.T) {
	m := newMetricsRegistry()
	m.observe("batch", time.Millisecond, false)
	snap := m.snapshot(cache.Stats{}, 1)
	if _, ok := snap.Endpoints["batch"]; !ok {
		t.Fatal("batch traffic not reported")
	}
	for _, quiet := range []string{"solve", "sweep"} {
		if _, ok := snap.Endpoints[quiet]; ok {
			t.Fatalf("%s appeared with no traffic", quiet)
		}
	}
}

// TestMetricsReservoirWraps fills one reservoir past capacity and checks
// the quantiles reflect only retained (recent) samples.
func TestMetricsReservoirWraps(t *testing.T) {
	em := newEndpointMetrics()
	// First reservoirSize samples at 1ms, then a full wrap at 5ms: after
	// the wrap every retained sample is 5ms.
	for i := 0; i < reservoirSize; i++ {
		em.observe(time.Millisecond, false)
	}
	for i := 0; i < reservoirSize; i++ {
		em.observe(5*time.Millisecond, false)
	}
	p50, _, p99 := em.quantiles()
	if p50 != 0.005 || p99 != 0.005 {
		t.Fatalf("post-wrap quantiles %g/%g s, want 0.005/0.005", p50, p99)
	}
}
