package service

import (
	"sync"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/service/cache"
)

// Evaluator interning. Two pointer-keyed caches downstream of the
// handlers make repeated instances cheap — mapping.Evaluator carries
// precomputed reciprocal tables, and the exact DP's arena pool skips
// rebinding its cost tables and transition lists entirely when it is
// re-acquired for the evaluator pointer it last served. Decoding every
// request into fresh objects defeated both: identical instances arrived
// as distinct pointers, so the cold path rebuilt tables that had been
// built microseconds earlier. The intern table closes that gap by
// mapping the canonical content of a (pipeline, platform) pair to one
// shared evaluator, giving every repeat of an instance — across solve
// misses, sweeps and batch elements — the same pointer and therefore
// warm tables all the way down. Evaluators are immutable after
// construction, so sharing one across concurrent solves is safe.

// internEntries bounds the intern table. Eviction is FIFO: the serving
// steady state is a small working set of platforms×pipelines, and a
// wrong eviction costs only one rebuild, never correctness.
const internEntries = 256

// instanceKeyWire digests just the (pipeline, platform) pair from its
// decoded wire form — the evaluator's identity, independent of the
// objective, mode and bound that key the result cache.
func instanceKeyWire(works, deltas []float64, plat *platformWire) cache.Key {
	c := newCanon("instance")
	c.floats(works)
	c.floats(deltas)
	c.wirePlatform(plat.Kind, plat.Speeds, plat.Bandwidth, plat.Links)
	return c.key()
}

// evalIntern is the bounded content→evaluator table.
type evalIntern struct {
	mu           sync.Mutex
	m            map[cache.Key]*mapping.Evaluator
	order        []cache.Key // insertion ring, oldest at next
	next         int
	hits, misses uint64
}

func newEvalIntern() *evalIntern {
	return &evalIntern{m: make(map[cache.Key]*mapping.Evaluator, internEntries)}
}

// lease returns the shared evaluator for the wire instance, constructing
// and validating it on first sight. Construction errors are reported as
// the same bad-request errors the handlers raised when they built the
// objects inline, and failed instances are never interned.
func (ei *evalIntern) lease(works, deltas []float64, pw *platformWire) (*mapping.Evaluator, error) {
	key := instanceKeyWire(works, deltas, pw)
	ei.mu.Lock()
	if ev, ok := ei.m[key]; ok {
		ei.hits++
		ei.mu.Unlock()
		return ev, nil
	}
	ei.mu.Unlock()
	// Build outside the lock: constructors copy the wire slices, so the
	// evaluator owns its data and the caller's scratch can be pooled.
	app, err := pipeline.New(works, deltas)
	if err != nil {
		return nil, badRequest("invalid request body: %v", err)
	}
	plat, err := buildPlatform(pw)
	if err != nil {
		return nil, badRequest("invalid request body: %v", err)
	}
	ev := mapping.NewEvaluator(app, plat)
	ei.mu.Lock()
	defer ei.mu.Unlock()
	ei.misses++
	if cur, ok := ei.m[key]; ok {
		// A concurrent request built it first; keep one canonical pointer
		// so the arena pool sees a single identity per instance.
		return cur, nil
	}
	if len(ei.order) < internEntries {
		ei.order = append(ei.order, key)
	} else {
		delete(ei.m, ei.order[ei.next])
		ei.order[ei.next] = key
		ei.next = (ei.next + 1) % internEntries
	}
	ei.m[key] = ev
	return ev, nil
}

// stats returns the cumulative hit/miss counters.
func (ei *evalIntern) stats() (hits, misses uint64) {
	ei.mu.Lock()
	defer ei.mu.Unlock()
	return ei.hits, ei.misses
}
