//go:build !race

package service

// raceEnabled mirrors the heuristics/portfolio package guard: allocation-
// count assertions are skipped under the race detector, where sync.Pool
// intentionally drops entries.
const raceEnabled = false
