package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzServeNoPanic is the serving layer's no-panic guarantee: whatever
// bytes arrive on any solver endpoint, the handler answers with an HTTP
// status — it never reaches a solver panic. The seed corpus walks every
// validation branch (both platform kinds, the fullhet mode gate,
// malformed link matrices, garbage) and `go test` replays it on every
// run; `go test -fuzz=FuzzServeNoPanic` explores from there.
func FuzzServeNoPanic(f *testing.F) {
	seeds := []struct {
		endpoint byte
		body     string
	}{
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"speeds":[1,2],"bandwidth":1},"bound":10}`},
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]},"bound":10}`},
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]},"bound":10,"mode":"exact"}`},
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1]]},"bound":10}`},
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"grid","speeds":[1,2],"bandwidth":1},"bound":10}`},
		{0, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,-1],[-1,0]]},"bound":10}`},
		{0, `{"pipeline":{"works":[-1],"deltas":[0,0]},"platform":{"speeds":[1],"bandwidth":1},"bound":1}`},
		{0, `{"bound":1e308,"mode":"F1","objective":"min-period"}`},
		{1, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]},"points":4}`},
		{1, `{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"speeds":[1,2],"bandwidth":1},"points":-1}`},
		{2, `{"instances":[{"pipeline":{"works":[1,2],"deltas":[1,1,1]},"platform":{"kind":"fully-heterogeneous","speeds":[1,2],"links":[[0,1],[1,0]]}}],"bound":10}`},
		{2, `{"instances":[],"bound":1}`},
		{2, `{nope`},
		{0, ``},
		{0, `[1,2,3]`},
		{0, "\xff\xfe{"},
	}
	for _, s := range seeds {
		f.Add(s.endpoint, []byte(s.body))
	}
	srv := New(Options{CacheEntries: 64})
	paths := []string{"/v1/solve", "/v1/sweep", "/v1/batch"}
	f.Fuzz(func(t *testing.T, endpoint byte, body []byte) {
		path := paths[int(endpoint)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		// A panic anywhere below fails the fuzz run; every input must
		// come back as a status code instead.
		srv.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("implausible status %d", rec.Code)
		}
	})
}
