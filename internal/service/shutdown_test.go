package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"pipesched/internal/workload"
)

// TestGracefulShutdownDrainsInFlight holds one request inside the solver,
// cancels the Serve context, and checks that (a) Serve waits for the
// request, (b) the request completes with a 200, and (c) new connections
// are refused once the listener is down.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Options{DrainTimeout: 10 * time.Second})
	inSolver := make(chan struct{})
	release := make(chan struct{})
	s.solveHook = func() {
		close(inSolver)
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 5, Processors: 3, Seed: 5})
	reqBody, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		err    error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		reqDone <- result{status: resp.StatusCode}
	}()

	select {
	case <-inSolver:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the solver")
	}

	// Trigger shutdown while the request is in flight.
	cancel()

	// Serve must NOT return while the request is still held.
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned (%v) with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the solver: the in-flight request completes normally.
	close(release)
	select {
	case r := <-reqDone:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request status %d, want 200", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after a clean drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after drain")
	}

	// The listener is down: new connections must fail.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeReturnsListenerError checks the non-shutdown exit path: closing
// the listener out from under Serve surfaces the accept error.
func TestServeReturnsListenerError(t *testing.T) {
	s := New(Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(context.Background(), ln) }()
	time.Sleep(50 * time.Millisecond)
	ln.Close()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("Serve returned nil after the listener died")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never noticed the dead listener")
	}
}
