package service

import (
	"sync"
	"sync/atomic"
	"time"

	"pipesched/internal/service/cache"
	"pipesched/internal/stats"
)

// metricsRegistry aggregates per-endpoint latency distributions (one
// streaming Welford accumulator each — no samples retained, so unbounded
// traffic costs constant memory) plus request and error counts. Cache
// counters live in the cache itself; the registry only snapshots them.
type metricsRegistry struct {
	start time.Time

	inFlight atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	latency  stats.Welford // seconds
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics),
	}
}

// observe records one finished request.
func (m *metricsRegistry) observe(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[endpoint]
	if em == nil {
		em = &endpointMetrics{}
		m.endpoints[endpoint] = em
	}
	em.requests++
	if failed {
		em.errors++
	}
	em.latency.Add(d.Seconds())
}

// EndpointSnapshot is the JSON form of one endpoint's latency summary.
type EndpointSnapshot struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
	StddevMS float64 `json:"stddev_ms"`
}

// CacheSnapshot is the JSON form of the cache counters.
type CacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Collapsed uint64  `json:"collapsed"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// MetricsSnapshot is the body served by GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Cache         CacheSnapshot               `json:"cache"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// snapshot renders the registry plus the given cache stats.
func (m *metricsRegistry) snapshot(cs cache.Stats) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Endpoints:     make(map[string]EndpointSnapshot),
		Cache: CacheSnapshot{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Collapsed: cs.Collapsed,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
		},
	}
	if total := cs.Hits + cs.Misses + cs.Collapsed; total > 0 {
		snap.Cache.HitRate = float64(cs.Hits+cs.Collapsed) / float64(total)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, em := range m.endpoints {
		es := EndpointSnapshot{Requests: em.requests, Errors: em.errors}
		if em.latency.N() > 0 {
			es.MeanMS = 1000 * em.latency.Mean()
			es.MinMS = 1000 * em.latency.Min()
			es.MaxMS = 1000 * em.latency.Max()
			es.StddevMS = 1000 * em.latency.StdDev()
		}
		snap.Endpoints[name] = es
	}
	return snap
}
