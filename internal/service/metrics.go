package service

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"time"

	"pipesched/internal/exact"
	"pipesched/internal/service/cache"
)

// Serving metrics, built for the request hot path: recording one finished
// request takes a handful of atomic operations and no locks, no maps and
// no allocations. The registry holds one fixed slot per endpoint (the
// endpoint set is static — solve, batch, sweep), each slot a set of
// cache-line-padded stripes of atomic moment accumulators plus a
// lock-free reservoir ring of recent latency samples. Stripes spread
// concurrent writers so heavy traffic does not serialise on one
// contended word; everything is merged only at GET /metrics scrape time,
// which is off the hot path by construction.
//
// The previous implementation — one mutex around a map of Welford
// accumulators — serialised every finished request against every other
// and against every scrape. The moment sums kept here (count, sum, sum
// of squares, min, max) reproduce the same mean/min/max/stddev snapshot
// fields; the reservoir adds tail quantiles the Welford form could not
// provide.

// metricStripes spreads concurrent observers; a small power of two is
// enough, since each observation touches one stripe for a few dozen ns.
const metricStripes = 8

// reservoirSize bounds the per-endpoint latency reservoir. Power of two,
// so the write cursor wraps with a mask.
const reservoirSize = 256

// latencyStripe is one padded stripe of moment accumulators. Sums are
// float64 bit patterns updated by CAS; min/max likewise. Padding keeps
// two stripes from sharing a cache line, which would reintroduce the
// very contention striping removes.
type latencyStripe struct {
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits, seconds
	sumSq atomic.Uint64 // float64 bits, seconds²
	min   atomic.Uint64 // float64 bits; math.Inf(1) when empty
	max   atomic.Uint64 // float64 bits; math.Inf(-1) when empty
	_     [24]byte      // pad the struct to 64 bytes
}

// addFloat atomically adds v to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// minFloat atomically lowers the float64 stored in a to v if smaller.
func minFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// maxFloat atomically raises the float64 stored in a to v if larger.
func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// endpointMetrics is one endpoint's slot: request/error counters, moment
// stripes and the latency reservoir.
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	stripes  [metricStripes]latencyStripe
	// reservoir is a wrapping ring of the most recent latency samples
	// (float64 seconds as bits). Writers claim slots with one atomic
	// increment; readers snapshot whatever is there. A torn read is
	// impossible (64-bit atomic), a stale one is harmless — the ring is
	// a statistical sample, not a ledger.
	cursor    atomic.Uint64
	reservoir [reservoirSize]atomic.Uint64
}

func newEndpointMetrics() *endpointMetrics {
	em := &endpointMetrics{}
	for i := range em.stripes {
		em.stripes[i].min.Store(math.Float64bits(math.Inf(1)))
		em.stripes[i].max.Store(math.Float64bits(math.Inf(-1)))
	}
	return em
}

// observe records one finished request: two counter increments, one
// striped moment update and one reservoir write — all atomic, no locks.
func (em *endpointMetrics) observe(d time.Duration, failed bool) {
	em.requests.Add(1)
	if failed {
		em.errors.Add(1)
	}
	sec := d.Seconds()
	// rand.Uint64 draws from the runtime's per-thread generator: cheap,
	// allocation-free, and uncorrelated with the request stream, so
	// concurrent observers scatter across stripes even when goroutines
	// are pinned.
	st := &em.stripes[rand.Uint64()&(metricStripes-1)]
	st.count.Add(1)
	addFloat(&st.sum, sec)
	addFloat(&st.sumSq, sec*sec)
	minFloat(&st.min, sec)
	maxFloat(&st.max, sec)
	slot := em.cursor.Add(1) - 1
	em.reservoir[slot&(reservoirSize-1)].Store(math.Float64bits(sec))
}

// merge folds every stripe into one moment set.
func (em *endpointMetrics) merge() (n uint64, sum, sumSq, min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for i := range em.stripes {
		st := &em.stripes[i]
		n += st.count.Load()
		sum += math.Float64frombits(st.sum.Load())
		sumSq += math.Float64frombits(st.sumSq.Load())
		min = math.Min(min, math.Float64frombits(st.min.Load()))
		max = math.Max(max, math.Float64frombits(st.max.Load()))
	}
	return n, sum, sumSq, min, max
}

// quantiles snapshots the reservoir and returns the p50/p95/p99 of the
// retained samples (zeros before the first request).
func (em *endpointMetrics) quantiles() (p50, p95, p99 float64) {
	filled := em.cursor.Load()
	if filled == 0 {
		return 0, 0, 0
	}
	if filled > reservoirSize {
		filled = reservoirSize
	}
	samples := make([]float64, filled)
	for i := range samples {
		samples[i] = math.Float64frombits(em.reservoir[i].Load())
	}
	sort.Float64s(samples)
	at := func(q float64) float64 {
		// Nearest-rank: ⌈q·n⌉ keeps p99 at the max for small samples
		// instead of dipping below it.
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		return samples[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}

// endpointNames is the static endpoint set; the slot order is the wire
// order of the /metrics map keys' slots (the JSON map itself is
// unordered).
var endpointNames = [...]string{"solve", "batch", "sweep"}

// metricsRegistry holds the per-endpoint slots plus the in-flight gauge.
// Cache counters live in the cache itself; the registry only snapshots
// them.
type metricsRegistry struct {
	start     time.Time
	inFlight  atomic.Int64
	endpoints [len(endpointNames)]*endpointMetrics
}

func newMetricsRegistry() *metricsRegistry {
	m := &metricsRegistry{start: time.Now()}
	for i := range m.endpoints {
		m.endpoints[i] = newEndpointMetrics()
	}
	return m
}

// slot maps an endpoint name onto its fixed slot. The set is static, so
// the lookup is a handful of pointer-free comparisons — no map, no hash.
func (m *metricsRegistry) slot(endpoint string) *endpointMetrics {
	for i, name := range endpointNames {
		if name == endpoint {
			return m.endpoints[i]
		}
	}
	return nil
}

// observe records one finished request on the endpoint's slot.
func (m *metricsRegistry) observe(endpoint string, d time.Duration, failed bool) {
	if em := m.slot(endpoint); em != nil {
		em.observe(d, failed)
	}
}

// EndpointSnapshot is the JSON form of one endpoint's latency summary.
type EndpointSnapshot struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	MinMS    float64 `json:"min_ms"`
	MaxMS    float64 `json:"max_ms"`
	StddevMS float64 `json:"stddev_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// CacheSnapshot is the JSON form of the cache counters.
type CacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Collapsed uint64  `json:"collapsed"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Shards    int     `json:"shards"`
	HitRate   float64 `json:"hit_rate"`
}

// SolverSnapshot is the JSON form of the solver-side counters: how often
// the exact DP ran serial, engaged the wave-parallel runner or answered
// from the saturated-bound memo (process-wide, since the DP's scheduler
// is package state), and how the evaluator intern table is doing. A
// production scrape showing parallel_runs stuck at zero on a large-state
// workload is the cue to lower exact.ParallelStateThreshold; intern
// misses dominating hits means the platform working set exceeds the
// intern capacity.
type SolverSnapshot struct {
	DP           exact.Stats `json:"dp"`
	InternHits   uint64      `json:"intern_hits"`
	InternMisses uint64      `json:"intern_misses"`
}

// MetricsSnapshot is the body served by GET /metrics. Cluster is present
// only in peer mode.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Cache         CacheSnapshot               `json:"cache"`
	Solver        SolverSnapshot              `json:"solver"`
	Cluster       *ClusterMetricsSnapshot     `json:"cluster,omitempty"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// snapshot merges every stripe and reservoir into the scrape view. Only
// endpoints that have seen traffic appear, matching the lazy-map
// behaviour of the original registry.
func (m *metricsRegistry) snapshot(cs cache.Stats, shards int) MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Endpoints:     make(map[string]EndpointSnapshot, len(endpointNames)),
		Cache: CacheSnapshot{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Collapsed: cs.Collapsed,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Shards:    shards,
		},
	}
	if total := cs.Hits + cs.Misses + cs.Collapsed; total > 0 {
		snap.Cache.HitRate = float64(cs.Hits+cs.Collapsed) / float64(total)
	}
	for i, name := range endpointNames {
		em := m.endpoints[i]
		requests := em.requests.Load()
		if requests == 0 {
			continue
		}
		es := EndpointSnapshot{Requests: requests, Errors: em.errors.Load()}
		if n, sum, sumSq, min, max := em.merge(); n > 0 {
			mean := sum / float64(n)
			es.MeanMS = 1000 * mean
			es.MinMS = 1000 * min
			es.MaxMS = 1000 * max
			if n > 1 {
				// Sample variance from raw moments; clamp the
				// cancellation error that can drive it a hair negative.
				varc := (sumSq - float64(n)*mean*mean) / float64(n-1)
				es.StddevMS = 1000 * math.Sqrt(math.Max(varc, 0))
			}
			p50, p95, p99 := em.quantiles()
			es.P50MS, es.P95MS, es.P99MS = 1000*p50, 1000*p95, 1000*p99
		}
		snap.Endpoints[name] = es
	}
	return snap
}
