package service

// Peer-aware serving: the glue between the HTTP handlers and
// internal/cluster. In cluster mode every canonical cache key has an
// ordered replica set of R owner daemons (rendezvous ranking over the
// key bytes); the request flow on each node becomes
//
//	local cache hit              -> X-Cache: hit        (second-tier hits included)
//	miss, self is a replica      -> solve locally       (miss/collapsed, as single-node)
//	miss, a replica is up        -> proxy to replicas   (remote-hit / remote-miss /
//	                                hedged-hit), install the bytes locally
//	                                as a second-tier hit
//	miss, all replicas down      -> solve locally       (fallback)
//
// Forwards are hedged: the first replica is tried immediately, and if it
// has neither answered nor failed within the hedge delay the next
// replica joins the race; the first usable answer wins and the losers
// are cancelled. Peer failure is never a client-visible error: transport
// failures and forward timeouts mark a replica down for a
// capped-exponential backoff window and the request degrades to the next
// replica or the local solve, which produces byte-identical bodies (the
// solvers are deterministic) at single-node latency. Responses proxied
// from a replica are its rendered bytes verbatim, so every tier serves
// exactly the same body for the same request.
//
// The topology is swappable at runtime (ReloadTopology): requests in
// flight finish under the epoch they started with, new requests route
// under the new view, and the reloading node pulls newly-owned keys from
// its peers' snapshots in the background.
//
// # Self-healing membership
//
// Every epoch carries an epoch-stamped membership view
// (cluster.Members). Three loops keep the fleet converged without
// operators editing peers files on every host:
//
//   - Join: a node booted from a seed list announces itself to every
//     peer it learned about (AnnounceSelf -> POST /v1/peer/join); the
//     receivers merge the view (equal epochs union, so concurrent joins
//     commute) and swap in the grown topology.
//   - Gossip: a periodic tick pulls one live peer's view
//     (GossipOnce -> GET /v1/peer/members) and adopts the merge, so a
//     join or an operator reload reaches nodes the initiator never
//     contacted. Operator reloads bump the epoch, and a higher epoch
//     wins wholesale — removal propagates; gossip alone never removes.
//   - Anti-entropy: a periodic sync round (SyncOnce) pulls each live
//     peer's bounded cache-key digest (GET /v1/peer/digest) and fetches
//     the entries this node replicates but does not hold
//     (POST /v1/peer/fetch), so a replica set converges digest-equal
//     within one round per peer even with zero client traffic. Inline
//     read-repair stays what it always was: relayed remote-hit bytes
//     install locally as second-tier hits.
//
// A node never adopts a view that excludes itself — it keeps its own
// epoch, counts the rejection, and every peer exchange carries a
// membership stamp (X-Pipesched-Membership) whose mismatches are
// counted on both sides, so a divergent fleet (nodes watching different
// peers files, a half-landed reload) is visible in /metrics before it
// misroutes.

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"sync/atomic"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/service/cache"
)

// DefaultReplicas is the replica-set size per key when ClusterConfig
// leaves Replicas zero: two owners, so one death costs no cache
// coverage.
const DefaultReplicas = 2

// ClusterConfig configures peer-aware serving. The Topology is built
// once by the caller (cluster.NewTopology validates the peer list), so
// Server construction stays infallible.
type ClusterConfig struct {
	// Topology is the fleet view: normalised peer list plus self index.
	// It is the initial epoch; ReloadTopology swaps in successors.
	Topology *cluster.Topology
	// Epoch is the membership epoch Topology represents: 0 for a fresh
	// static boot, the seed's epoch for a -join bootstrap. Operator
	// reloads bump it; gossip adopts higher ones.
	Epoch uint64
	// Replicas is the per-key replica-set size R; 0 selects
	// DefaultReplicas (2), and values beyond the fleet size clamp.
	Replicas int
	// ForwardTimeout bounds one replica-forward round trip; 0 selects
	// cluster.DefaultForwardTimeout (2s).
	ForwardTimeout time.Duration
	// HedgeAfter is how long the newest forward attempt may stay
	// unanswered before the next replica joins the race; 0 selects a
	// quarter of ForwardTimeout (a p95-ish bound for a healthy peer).
	// Negative disables hedging (each replica gets the full timeout).
	HedgeAfter time.Duration
	// PeerBackoff is the base down window after a peer failure; 0
	// selects cluster.DefaultBackoff (5s). Consecutive failures double
	// it up to MaxPeerBackoff.
	PeerBackoff time.Duration
	// MaxPeerBackoff caps the exponential window; 0 selects
	// cluster.DefaultMaxBackoff (60s).
	MaxPeerBackoff time.Duration
	// JitterSeed seeds the backoff jitter; 0 derives a per-node seed
	// from the advertise URL so a fleet never re-probes in lockstep.
	JitterSeed int64
	// SnapshotEntries bounds both the hot set served on
	// GET /v1/peer/snapshot and the entries accepted per peer during
	// warm-up and handoff; 0 selects the default (1024).
	SnapshotEntries int
	// Transport overrides the peer client's HTTP transport — the hook
	// the chaos suite uses to inject faults in-process. nil selects the
	// default pooled transport.
	Transport http.RoundTripper
}

const defaultSnapshotEntries = 1024

func (c *ClusterConfig) snapshotEntries() int {
	if c.SnapshotEntries <= 0 {
		return defaultSnapshotEntries
	}
	return c.SnapshotEntries
}

func (c *ClusterConfig) replicas() int {
	if c.Replicas <= 0 {
		return DefaultReplicas
	}
	return c.Replicas
}

func (c *ClusterConfig) hedgeAfter() time.Duration {
	if c.HedgeAfter == 0 {
		t := c.ForwardTimeout
		if t <= 0 {
			t = cluster.DefaultForwardTimeout
		}
		return t / 4
	}
	if c.HedgeAfter < 0 {
		// Disabled: each replica gets the full forward timeout before
		// the next one is tried.
		t := c.ForwardTimeout
		if t <= 0 {
			t = cluster.DefaultForwardTimeout
		}
		return t
	}
	return c.HedgeAfter
}

// peerEpoch is one immutable (topology, client, membership) triple.
// Swapping epochs atomically is what makes membership dynamic: a
// request loads the pointer once and routes consistently under that
// view even while a reload or gossip merge lands. The membership stamp
// is derived once here, so every exchange under this epoch stamps
// identically.
type peerEpoch struct {
	topo      *cluster.Topology
	client    *cluster.Client
	members   cluster.Members
	stamp     string
	installed time.Time
}

// peerRouter holds the cluster state of one Server: the current epoch,
// the routing parameters shared by all epochs, and the peer-tier
// counters.
type peerRouter struct {
	epoch           atomic.Pointer[peerEpoch]
	replicas        int
	hedgeAfter      time.Duration
	snapshotEntries int

	// selfURL is this node's normalised advertise URL — constant across
	// epochs, the anchor every membership install re-validates against.
	selfURL string

	// Client construction parameters, kept so epoch swaps can build a
	// health table sized to the new fleet.
	timeout    time.Duration
	backoff    time.Duration
	maxBackoff time.Duration
	jitterSeed int64
	transport  http.RoundTripper

	forwarded       atomic.Uint64 // requests proxied to a replica, any outcome
	remoteHits      atomic.Uint64 // proxied, replica had it cached
	remoteMisses    atomic.Uint64 // proxied, replica solved it
	hedgedHits      atomic.Uint64 // proxied, a hedge attempt won the race
	fallbacks       atomic.Uint64 // all replicas down or forwards failed; solved locally
	ownedForwards   atomic.Uint64 // forwarded requests served for peers
	snapshotsServed atomic.Uint64 // GET /v1/peer/snapshot responses
	warmedEntries   atomic.Uint64 // entries imported by WarmFromPeers
	reloads         atomic.Uint64 // topology epochs swapped in (operator or gossip)
	handoffEntries  atomic.Uint64 // entries imported by reload handoff

	gossipCursor    atomic.Uint64 // round-robin start for GossipOnce
	gossipExchanges atomic.Uint64 // membership views pulled by gossip
	gossipMerges    atomic.Uint64 // gossip pulls that changed our view
	joinsServed     atomic.Uint64 // POST /v1/peer/join requests handled
	syncRounds      atomic.Uint64 // anti-entropy rounds run
	syncPulled      atomic.Uint64 // entries installed by anti-entropy
	mismatches      atomic.Uint64 // peer exchanges with a foreign membership stamp
	rejected        atomic.Uint64 // remote views refused (self-excluding or invalid)
	lastMismatch    atomic.Int64  // unix-nano of the newest stamp mismatch; 0 = never
}

// noteMismatch records one membership-stamp disagreement.
func (p *peerRouter) noteMismatch() {
	p.mismatches.Add(1)
	p.lastMismatch.Store(time.Now().UnixNano())
}

// observeStamp folds an incoming peer exchange's membership stamp into
// the disagreement counters. An unstamped request (an older build, a
// bare curl) is not a disagreement.
func (p *peerRouter) observeStamp(r *http.Request) {
	if got := r.Header.Get(cluster.MembershipHeader); got != "" && got != p.epoch.Load().stamp {
		p.noteMismatch()
	}
}

// stampResponse marks a peer-exchange response with our membership
// stamp, so the calling peer can detect the disagreement on its side
// too. Client-facing responses never pass through here.
func (p *peerRouter) stampResponse(w http.ResponseWriter) {
	w.Header().Set(cluster.MembershipHeader, p.epoch.Load().stamp)
}

// newEpoch builds one immutable epoch around topo: the canonical
// membership view (epoch number + the topology's normalised sorted
// list), its stamp, and a peer client sized to the fleet and bound to
// that stamp.
func (p *peerRouter) newEpoch(topo *cluster.Topology, epochNum uint64) *peerEpoch {
	m := cluster.NewMembers(epochNum, topo.Peers())
	seed := p.jitterSeed
	if seed == 0 {
		// Derive a per-node seed from the advertise URL: distinct on
		// every node, stable across restarts.
		h := fnv.New64a()
		h.Write([]byte(topo.Peer(topo.Self())))
		seed = int64(h.Sum64())
	}
	client := cluster.NewClient(cluster.ClientConfig{
		Peers:      topo.Size(),
		Timeout:    p.timeout,
		Backoff:    p.backoff,
		MaxBackoff: p.maxBackoff,
		JitterSeed: seed,
		Transport:  p.transport,
		Stamp:      m.Stamp(),
		OnStampMismatch: func(int, string) {
			p.noteMismatch()
		},
	})
	return &peerEpoch{
		topo:      topo,
		client:    client,
		members:   m,
		stamp:     m.Stamp(),
		installed: time.Now(),
	}
}

// newPeerRouter builds the router, or nil when cfg is absent (single-node
// mode).
func newPeerRouter(cfg *ClusterConfig) *peerRouter {
	if cfg == nil || cfg.Topology == nil {
		return nil
	}
	p := &peerRouter{
		replicas:        cfg.replicas(),
		hedgeAfter:      cfg.hedgeAfter(),
		snapshotEntries: cfg.snapshotEntries(),
		selfURL:         cfg.Topology.Peer(cfg.Topology.Self()),
		timeout:         cfg.ForwardTimeout,
		backoff:         cfg.PeerBackoff,
		maxBackoff:      cfg.MaxPeerBackoff,
		jitterSeed:      cfg.JitterSeed,
		transport:       cfg.Transport,
	}
	p.epoch.Store(p.newEpoch(cfg.Topology, cfg.Epoch))
	return p
}

// isPeerForward reports whether r was already forwarded once by a peer.
func isPeerForward(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardHeader) != ""
}

// route decides how a locally-missed key is served. It returns
// served=true with a replica's body and tier when the request was
// successfully proxied; otherwise served=false and the caller solves
// locally, with fellBack=true when a forward was warranted but failed
// (the X-Cache tier the caller should then report is "fallback").
func (p *peerRouter) route(w http.ResponseWriter, r *http.Request, key cache.Key, path string, raw []byte) (body []byte, tier int, served, fellBack bool) {
	if isPeerForward(r) {
		// We are a replica being asked by a peer (or a topology
		// disagreement's second hop): always serve locally, never
		// forward again — loops are structurally impossible. The
		// exchange is peer-to-peer, so it carries membership stamps in
		// both directions; a client-facing response never does
		// (writeCachedTier sets only its three fixed headers, but the
		// stamp below lands on w only on this branch).
		p.ownedForwards.Add(1)
		p.observeStamp(r)
		p.stampResponse(w)
		return nil, 0, false, false
	}
	ep := p.epoch.Load()
	var ownerBuf [4]int
	owners := ep.topo.Owners(cluster.Key(key), p.replicas, ownerBuf[:0])
	candidates := owners[:0]
	for _, o := range owners {
		if o == ep.topo.Self() {
			// This node is in the key's replica set: the local solve IS
			// the authoritative copy, no forward needed.
			return nil, 0, false, false
		}
		if ep.client.Available(o) {
			candidates = append(candidates, o)
		}
	}
	if len(candidates) == 0 {
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	urls := make([]string, len(candidates))
	for i, o := range candidates {
		urls[i] = ep.topo.Peer(o)
	}
	res, err := ep.client.ForwardHedged(r.Context(), candidates, urls, path, raw, p.hedgeAfter)
	if err != nil || res.Status != http.StatusOK {
		// Transport failures marked the replicas down inside the client;
		// a non-200 from a live replica (e.g. its own 504 under load)
		// also degrades to the deterministic local solve rather than
		// relaying a status this node can do better than.
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	p.forwarded.Add(1)
	if res.Hedged {
		// A hedge attempt beat (or replaced) the first replica: the
		// client saw no slow-path stall, which is worth its own tier.
		p.hedgedHits.Add(1)
		return res.Body, tierHedgedHit, true, false
	}
	switch res.XCache {
	case "hit", "collapsed":
		p.remoteHits.Add(1)
		return res.Body, tierRemoteHit, true, false
	default:
		p.remoteMisses.Add(1)
		return res.Body, tierRemoteMiss, true, false
	}
}

// handleSnapshot streams this node's hot cache entries in the peer wire
// codec — the warm-up source for joining nodes and the handoff source
// for membership changes.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.peers.observeStamp(r)
	s.peers.stampResponse(w)
	items := s.cache.Snapshot(s.peers.snapshotEntries)
	entries := make([]cluster.Entry, len(items))
	for i, it := range items {
		entries[i] = cluster.Entry{Key: cluster.Key(it.Key), Body: it.Val}
	}
	s.peers.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeSnapshot(w, entries); err != nil {
		s.logger.Printf("pipeschedd: snapshot stream: %v", err)
	}
}

// handleMembers serves this node's membership view — the seed a joining
// node bootstraps from and the gossip pull every node runs periodically.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	p := s.peers
	p.observeStamp(r)
	p.stampResponse(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeMembers(w, p.epoch.Load().members); err != nil {
		s.logger.Printf("pipeschedd: members stream: %v", err)
	}
}

// handleJoin accepts a pushed membership view (a joining node's
// announce), merges it under the fleet rules, installs the merged view
// if it grew ours, and answers with the view now in force — so the
// joiner immediately learns about peers its seed knew and it did not.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	p := s.peers
	p.observeStamp(r)
	remote, err := cluster.DecodeMembers(http.MaxBytesReader(w, r.Body, s.opts.maxBody()), cluster.MaxMembers)
	if err != nil {
		p.stampResponse(w)
		writeErrorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	p.joinsServed.Add(1)
	now := s.adoptMembers(remote)
	// Stamp after the merge: the response carries the view it encodes.
	w.Header().Set(cluster.MembershipHeader, now.Stamp())
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeMembers(w, now); err != nil {
		s.logger.Printf("pipeschedd: join stream: %v", err)
	}
}

// handleDigest serves the bounded key digest of this node's cache — the
// anti-entropy comparison input. Keys only, no bodies: a sync round
// against a converged replica costs one small exchange per peer.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	p := s.peers
	p.observeStamp(r)
	p.stampResponse(w)
	items := s.cache.Snapshot(p.snapshotEntries)
	keys := make([]cluster.Key, len(items))
	for i, it := range items {
		keys[i] = cluster.Key(it.Key)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeDigest(w, keys); err != nil {
		s.logger.Printf("pipeschedd: digest stream: %v", err)
	}
}

// handleFetch answers an anti-entropy want-list: the subset of the
// requested keys this node holds, streamed as a snapshot. Keys we do
// not hold are simply absent — the puller treats the answer as best
// effort, exactly like warm-up.
func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	p := s.peers
	p.observeStamp(r)
	p.stampResponse(w)
	keys, err := cluster.DecodeDigest(http.MaxBytesReader(w, r.Body, s.opts.maxBody()), p.snapshotEntries)
	if err != nil {
		writeErrorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	entries := make([]cluster.Entry, 0, len(keys))
	for _, k := range keys {
		if body, ok := s.cache.Get(cache.Key(k)); ok {
			entries = append(entries, cluster.Entry{Key: k, Body: body})
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeSnapshot(w, entries); err != nil {
		s.logger.Printf("pipeschedd: fetch stream: %v", err)
	}
}

// WarmFromPeers pulls each peer's hot cache snapshot and installs the
// entries locally, returning how many were imported. It is the joining
// node's warm-up: correctness never depends on it (a cold node simply
// misses and forwards or solves), so failures are collected and
// reported, not fatal, and a partially warmed cache is strictly better
// than a cold one. In single-node mode it is a no-op.
func (s *Server) WarmFromPeers(ctx context.Context) (int, error) {
	if s.peers == nil {
		return 0, nil
	}
	p := s.peers
	ep := p.epoch.Load()
	imported := 0
	var errs []error
	for i := 0; i < ep.topo.Size(); i++ {
		if i == ep.topo.Self() {
			continue
		}
		entries, err := ep.client.FetchSnapshot(ctx, i, ep.topo.Peer(i), p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			s.cache.Put(cache.Key(e.Key), e.Body)
		}
		imported += len(entries)
	}
	p.warmedEntries.Add(uint64(imported))
	return imported, errors.Join(errs...)
}

// ReloadTopology swaps a new fleet view in atomically and performs the
// snapshot-driven key handoff: this node pulls its peers' hot entries
// and installs the keys whose replica set it just joined, so a
// membership change costs no cache coverage. Requests in flight finish
// under the epoch they started with; new requests route under topo
// immediately — correctness never waits for the handoff (an unhanded-off
// key simply misses and forwards or solves). The number of handed-off
// entries is returned; fetch failures are collected, not fatal. Calling
// it on a single-node server is an error: there is no peer surface to
// reload.
func (s *Server) ReloadTopology(ctx context.Context, topo *cluster.Topology) (int, error) {
	if s.peers == nil {
		return 0, errors.New("service: single-node server has no topology to reload")
	}
	p := s.peers
	// An operator reload bumps the membership epoch: it is the one
	// mechanism that may REMOVE peers, and removal must dominate the
	// equal-epoch union rule gossip merges use — a higher epoch wins
	// wholesale, so the shrunk view propagates instead of being
	// resurrected by the next exchange. A reload onto the peer list
	// already in force is a no-op — without this, a SIGHUP racing a
	// gossip adoption of the same view (both survivors of a shrink watch
	// the same file AND gossip with each other) would bump the epoch
	// twice for one operator decision. The CAS closes that race: if a
	// gossip install lands between the equality check and the swap, the
	// reload re-checks against the winner's view.
	var old, ep *peerEpoch
	for {
		old = p.epoch.Load()
		if cluster.NewMembers(old.members.Epoch, topo.Peers()).Equal(old.members) {
			return 0, nil
		}
		ep = p.newEpoch(topo, old.members.Epoch+1)
		if p.epoch.CompareAndSwap(old, ep) {
			break
		}
	}
	p.reloads.Add(1)

	// Handoff: for every peer's hot set, keep the keys this node now
	// replicates but did not before. The cache install is idempotent, so
	// the old-ownership filter only avoids redundant work, never
	// correctness.
	imported := 0
	var errs []error
	var newOwn, oldOwn []int
	for i := 0; i < topo.Size(); i++ {
		if i == topo.Self() {
			continue
		}
		entries, err := ep.client.FetchSnapshot(ctx, i, topo.Peer(i), p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			newOwn = topo.Owners(cluster.Key(e.Key), p.replicas, newOwn)
			if !containsInt(newOwn, topo.Self()) {
				continue
			}
			oldOwn = old.topo.Owners(cluster.Key(e.Key), p.replicas, oldOwn)
			if containsInt(oldOwn, old.topo.Self()) {
				continue
			}
			s.cache.Put(cache.Key(e.Key), e.Body)
			imported++
		}
	}
	p.handoffEntries.Add(uint64(imported))
	return imported, errors.Join(errs...)
}

// Topology returns the server's current fleet view, or nil in
// single-node mode.
func (s *Server) Topology() *cluster.Topology {
	if s.peers == nil {
		return nil
	}
	return s.peers.epoch.Load().topo
}

// Membership returns the server's current membership view (zero value
// in single-node mode).
func (s *Server) Membership() cluster.Members {
	if s.peers == nil {
		return cluster.Members{}
	}
	return s.peers.epoch.Load().members
}

// adoptMembers merges a remote membership view into the current epoch
// and installs the merged view if it differs, returning whichever view
// is in force afterwards. Installation is guarded twice: a view that
// excludes this node is never adopted (it is either an operator
// decommissioning us — then the operator stops the process — or a
// foreign fleet; adopting it would leave this node computing ownership
// none of its own requests can route under), and a view whose peer list
// fails topology validation cannot poison the swap — the old epoch
// simply stays. Both refusals count as rejections and keep the
// disagreement visible. Concurrent adopters CAS-race; the loser retries
// against the winner's epoch, so merges from gossip, join handling and
// announces interleave safely.
func (s *Server) adoptMembers(remote cluster.Members) cluster.Members {
	p := s.peers
	for {
		ep := p.epoch.Load()
		merged, changed := ep.members.Merge(remote)
		if !changed {
			return ep.members
		}
		if !merged.Contains(p.selfURL) {
			p.rejected.Add(1)
			p.noteMismatch()
			return ep.members
		}
		topo, err := cluster.NewTopology(merged.Peers, p.selfURL)
		if err != nil {
			p.rejected.Add(1)
			return ep.members
		}
		ne := p.newEpoch(topo, merged.Epoch)
		if p.epoch.CompareAndSwap(ep, ne) {
			p.reloads.Add(1)
			return ne.members
		}
		// Lost an install race; re-merge against the winner's view.
	}
}

// GossipOnce performs one membership exchange: it pulls the member list
// of the next live peer (round-robin across ticks) and adopts the
// merged view. changed reports whether our view moved. A gossip-driven
// install performs no snapshot handoff — the anti-entropy loop heals
// any coverage gap on its own cadence. No reachable peer is not an
// error; every reachable peer failing is.
func (s *Server) GossipOnce(ctx context.Context) (changed bool, err error) {
	if s.peers == nil {
		return false, nil
	}
	p := s.peers
	ep := p.epoch.Load()
	n := ep.topo.Size()
	if n < 2 {
		return false, nil
	}
	start := int(p.gossipCursor.Add(1) % uint64(n))
	var errs []error
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if i == ep.topo.Self() || !ep.client.Available(i) {
			continue
		}
		m, err := ep.client.FetchMembers(ctx, i, ep.topo.Peer(i))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		p.gossipExchanges.Add(1)
		before := ep.members
		if now := s.adoptMembers(m); !now.Equal(before) {
			p.gossipMerges.Add(1)
			return true, nil
		}
		return false, nil
	}
	return false, errors.Join(errs...)
}

// AnnounceSelf pushes this node's membership view to every peer in it
// (POST /v1/peer/join) and adopts each merged answer — the joining
// node's immediate propagation path after a seed-list bootstrap. The
// periodic gossip tick is the backstop for peers an announce could not
// reach; failures are collected, never fatal.
func (s *Server) AnnounceSelf(ctx context.Context) error {
	if s.peers == nil {
		return nil
	}
	p := s.peers
	ep := p.epoch.Load()
	var errs []error
	for i := 0; i < ep.topo.Size(); i++ {
		if i == ep.topo.Self() {
			continue
		}
		m, err := ep.client.Join(ctx, i, ep.topo.Peer(i), ep.members)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.adoptMembers(m)
	}
	return errors.Join(errs...)
}

// SyncOnce performs one replica anti-entropy round: for every live peer
// it pulls the bounded key digest of that peer's cache and fetches the
// entries this node replicates (self in the key's replica set) but does
// not hold, installing them locally. A replica set with zero client
// traffic therefore converges digest-equal within one round per
// direction. The number of installed entries is returned; per-peer
// failures are collected, never fatal — a missed round costs freshness,
// not correctness.
func (s *Server) SyncOnce(ctx context.Context) (int, error) {
	if s.peers == nil {
		return 0, nil
	}
	p := s.peers
	p.syncRounds.Add(1)
	ep := p.epoch.Load()
	pulled := 0
	var errs []error
	var own []int
	for i := 0; i < ep.topo.Size(); i++ {
		if i == ep.topo.Self() || !ep.client.Available(i) {
			continue
		}
		keys, err := ep.client.FetchDigest(ctx, i, ep.topo.Peer(i), p.snapshotEntries)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		want := keys[:0]
		for _, k := range keys {
			own = ep.topo.Owners(k, p.replicas, own)
			if !containsInt(own, ep.topo.Self()) {
				continue
			}
			if _, ok := s.cache.Get(cache.Key(k)); ok {
				continue
			}
			want = append(want, k)
		}
		if len(want) == 0 {
			continue
		}
		entries, err := ep.client.FetchEntries(ctx, i, ep.topo.Peer(i), want, p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			s.cache.Put(cache.Key(e.Key), e.Body)
		}
		pulled += len(entries)
	}
	p.syncPulled.Add(uint64(pulled))
	return pulled, errors.Join(errs...)
}

// RunSelfHealing runs the background membership-gossip and replica
// anti-entropy loops until ctx is cancelled. A non-positive interval
// disables the corresponding loop. The daemon spawns this; tests drive
// GossipOnce and SyncOnce directly for determinism. Each tick is
// bounded so one stuck peer cannot wedge the loop past the next tick.
func (s *Server) RunSelfHealing(ctx context.Context, gossipEvery, syncEvery time.Duration) {
	if s.peers == nil {
		return
	}
	var gossipC, syncC <-chan time.Time
	if gossipEvery > 0 {
		t := time.NewTicker(gossipEvery)
		defer t.Stop()
		gossipC = t.C
	}
	if syncEvery > 0 {
		t := time.NewTicker(syncEvery)
		defer t.Stop()
		syncC = t.C
	}
	if gossipC == nil && syncC == nil {
		return
	}
	tick := func(run func(context.Context) error) {
		tctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		if err := run(tctx); err != nil && ctx.Err() == nil {
			s.logger.Printf("pipeschedd: self-healing: %v", err)
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-gossipC:
			tick(func(c context.Context) error {
				_, err := s.GossipOnce(c)
				return err
			})
		case <-syncC:
			tick(func(c context.Context) error {
				_, err := s.SyncOnce(c)
				return err
			})
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ClusterMetricsSnapshot is the "cluster" section of GET /metrics,
// present only in peer mode.
type ClusterMetricsSnapshot struct {
	Peers           int    `json:"peers"`
	Self            int    `json:"self"`
	Replicas        int    `json:"replicas"`
	PeersDown       int    `json:"peers_down"`
	Forwarded       uint64 `json:"forwarded"`
	RemoteHits      uint64 `json:"remote_hits"`
	RemoteMisses    uint64 `json:"remote_misses"`
	HedgedHits      uint64 `json:"hedged_hits"`
	Fallbacks       uint64 `json:"fallbacks"`
	OwnedForwards   uint64 `json:"owned_forwards"`
	SnapshotsServed uint64 `json:"snapshots_served"`
	WarmedEntries   uint64 `json:"warmed_entries"`
	Reloads         uint64 `json:"reloads"`
	HandoffEntries  uint64 `json:"handoff_entries"`

	// Self-healing membership: the epoch-stamped view, its wire stamp,
	// and the disagreement/convergence observables. MembershipAgeSeconds
	// is how long the current view has been in force;
	// ConvergedForSeconds is the time since the last stamp mismatch was
	// observed (capped at the view's age) — a fleet that has gossiped
	// quietly for a while is converged.
	MembershipEpoch      uint64  `json:"membership_epoch"`
	MembershipHash       string  `json:"membership_hash"`
	MembershipMismatches uint64  `json:"membership_mismatches"`
	MembershipsRejected  uint64  `json:"memberships_rejected"`
	MembershipAgeSeconds float64 `json:"membership_age_seconds"`
	ConvergedForSeconds  float64 `json:"converged_for_seconds"`
	GossipExchanges      uint64  `json:"gossip_exchanges"`
	GossipMerges         uint64  `json:"gossip_merges"`
	JoinsServed          uint64  `json:"joins_served"`
	SyncRounds           uint64  `json:"sync_rounds"`
	SyncPulled           uint64  `json:"sync_pulled"`
}

// snapshot collects the peer-tier counters.
func (p *peerRouter) snapshot() *ClusterMetricsSnapshot {
	if p == nil {
		return nil
	}
	ep := p.epoch.Load()
	down := 0
	for i := 0; i < ep.topo.Size(); i++ {
		if i != ep.topo.Self() && !ep.client.Available(i) {
			down++
		}
	}
	now := time.Now()
	age := now.Sub(ep.installed).Seconds()
	converged := age
	if lm := p.lastMismatch.Load(); lm != 0 {
		if c := now.Sub(time.Unix(0, lm)).Seconds(); c < converged {
			converged = c
		}
	}
	if converged < 0 {
		converged = 0
	}
	return &ClusterMetricsSnapshot{
		Peers:           ep.topo.Size(),
		Self:            ep.topo.Self(),
		Replicas:        p.replicas,
		PeersDown:       down,
		Forwarded:       p.forwarded.Load(),
		RemoteHits:      p.remoteHits.Load(),
		RemoteMisses:    p.remoteMisses.Load(),
		HedgedHits:      p.hedgedHits.Load(),
		Fallbacks:       p.fallbacks.Load(),
		OwnedForwards:   p.ownedForwards.Load(),
		SnapshotsServed: p.snapshotsServed.Load(),
		WarmedEntries:   p.warmedEntries.Load(),
		Reloads:         p.reloads.Load(),
		HandoffEntries:  p.handoffEntries.Load(),

		MembershipEpoch:      ep.members.Epoch,
		MembershipHash:       ep.stamp,
		MembershipMismatches: p.mismatches.Load(),
		MembershipsRejected:  p.rejected.Load(),
		MembershipAgeSeconds: age,
		ConvergedForSeconds:  converged,
		GossipExchanges:      p.gossipExchanges.Load(),
		GossipMerges:         p.gossipMerges.Load(),
		JoinsServed:          p.joinsServed.Load(),
		SyncRounds:           p.syncRounds.Load(),
		SyncPulled:           p.syncPulled.Load(),
	}
}
