package service

// Peer-aware serving: the glue between the HTTP handlers and
// internal/cluster. In cluster mode every canonical cache key has an
// ordered replica set of R owner daemons (rendezvous ranking over the
// key bytes); the request flow on each node becomes
//
//	local cache hit              -> X-Cache: hit        (second-tier hits included)
//	miss, self is a replica      -> solve locally       (miss/collapsed, as single-node)
//	miss, a replica is up        -> proxy to replicas   (remote-hit / remote-miss /
//	                                hedged-hit), install the bytes locally
//	                                as a second-tier hit
//	miss, all replicas down      -> solve locally       (fallback)
//
// Forwards are hedged: the first replica is tried immediately, and if it
// has neither answered nor failed within the hedge delay the next
// replica joins the race; the first usable answer wins and the losers
// are cancelled. Peer failure is never a client-visible error: transport
// failures and forward timeouts mark a replica down for a
// capped-exponential backoff window and the request degrades to the next
// replica or the local solve, which produces byte-identical bodies (the
// solvers are deterministic) at single-node latency. Responses proxied
// from a replica are its rendered bytes verbatim, so every tier serves
// exactly the same body for the same request.
//
// The topology is swappable at runtime (ReloadTopology): requests in
// flight finish under the epoch they started with, new requests route
// under the new view, and the reloading node pulls newly-owned keys from
// its peers' snapshots in the background.

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"sync/atomic"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/service/cache"
)

// DefaultReplicas is the replica-set size per key when ClusterConfig
// leaves Replicas zero: two owners, so one death costs no cache
// coverage.
const DefaultReplicas = 2

// ClusterConfig configures peer-aware serving. The Topology is built
// once by the caller (cluster.NewTopology validates the peer list), so
// Server construction stays infallible.
type ClusterConfig struct {
	// Topology is the fleet view: normalised peer list plus self index.
	// It is the initial epoch; ReloadTopology swaps in successors.
	Topology *cluster.Topology
	// Replicas is the per-key replica-set size R; 0 selects
	// DefaultReplicas (2), and values beyond the fleet size clamp.
	Replicas int
	// ForwardTimeout bounds one replica-forward round trip; 0 selects
	// cluster.DefaultForwardTimeout (2s).
	ForwardTimeout time.Duration
	// HedgeAfter is how long the newest forward attempt may stay
	// unanswered before the next replica joins the race; 0 selects a
	// quarter of ForwardTimeout (a p95-ish bound for a healthy peer).
	// Negative disables hedging (each replica gets the full timeout).
	HedgeAfter time.Duration
	// PeerBackoff is the base down window after a peer failure; 0
	// selects cluster.DefaultBackoff (5s). Consecutive failures double
	// it up to MaxPeerBackoff.
	PeerBackoff time.Duration
	// MaxPeerBackoff caps the exponential window; 0 selects
	// cluster.DefaultMaxBackoff (60s).
	MaxPeerBackoff time.Duration
	// JitterSeed seeds the backoff jitter; 0 derives a per-node seed
	// from the advertise URL so a fleet never re-probes in lockstep.
	JitterSeed int64
	// SnapshotEntries bounds both the hot set served on
	// GET /v1/peer/snapshot and the entries accepted per peer during
	// warm-up and handoff; 0 selects the default (1024).
	SnapshotEntries int
	// Transport overrides the peer client's HTTP transport — the hook
	// the chaos suite uses to inject faults in-process. nil selects the
	// default pooled transport.
	Transport http.RoundTripper
}

const defaultSnapshotEntries = 1024

func (c *ClusterConfig) snapshotEntries() int {
	if c.SnapshotEntries <= 0 {
		return defaultSnapshotEntries
	}
	return c.SnapshotEntries
}

func (c *ClusterConfig) replicas() int {
	if c.Replicas <= 0 {
		return DefaultReplicas
	}
	return c.Replicas
}

func (c *ClusterConfig) hedgeAfter() time.Duration {
	if c.HedgeAfter == 0 {
		t := c.ForwardTimeout
		if t <= 0 {
			t = cluster.DefaultForwardTimeout
		}
		return t / 4
	}
	if c.HedgeAfter < 0 {
		// Disabled: each replica gets the full forward timeout before
		// the next one is tried.
		t := c.ForwardTimeout
		if t <= 0 {
			t = cluster.DefaultForwardTimeout
		}
		return t
	}
	return c.HedgeAfter
}

// peerEpoch is one immutable (topology, client) pair. Swapping epochs
// atomically is what makes membership dynamic: a request loads the
// pointer once and routes consistently under that view even while a
// reload lands.
type peerEpoch struct {
	topo   *cluster.Topology
	client *cluster.Client
}

// peerRouter holds the cluster state of one Server: the current epoch,
// the routing parameters shared by all epochs, and the peer-tier
// counters.
type peerRouter struct {
	epoch           atomic.Pointer[peerEpoch]
	replicas        int
	hedgeAfter      time.Duration
	snapshotEntries int

	// Client construction parameters, kept so ReloadTopology can build
	// a health table sized to the new fleet.
	timeout    time.Duration
	backoff    time.Duration
	maxBackoff time.Duration
	jitterSeed int64
	transport  http.RoundTripper

	forwarded       atomic.Uint64 // requests proxied to a replica, any outcome
	remoteHits      atomic.Uint64 // proxied, replica had it cached
	remoteMisses    atomic.Uint64 // proxied, replica solved it
	hedgedHits      atomic.Uint64 // proxied, a hedge attempt won the race
	fallbacks       atomic.Uint64 // all replicas down or forwards failed; solved locally
	ownedForwards   atomic.Uint64 // forwarded requests served for peers
	snapshotsServed atomic.Uint64 // GET /v1/peer/snapshot responses
	warmedEntries   atomic.Uint64 // entries imported by WarmFromPeers
	reloads         atomic.Uint64 // topology epochs swapped in
	handoffEntries  atomic.Uint64 // entries imported by reload handoff
}

// newClient builds a peer client sized to topo under this router's
// shared parameters.
func (p *peerRouter) newClient(topo *cluster.Topology) *cluster.Client {
	seed := p.jitterSeed
	if seed == 0 {
		// Derive a per-node seed from the advertise URL: distinct on
		// every node, stable across restarts.
		h := fnv.New64a()
		h.Write([]byte(topo.Peer(topo.Self())))
		seed = int64(h.Sum64())
	}
	return cluster.NewClient(cluster.ClientConfig{
		Peers:      topo.Size(),
		Timeout:    p.timeout,
		Backoff:    p.backoff,
		MaxBackoff: p.maxBackoff,
		JitterSeed: seed,
		Transport:  p.transport,
	})
}

// newPeerRouter builds the router, or nil when cfg is absent (single-node
// mode).
func newPeerRouter(cfg *ClusterConfig) *peerRouter {
	if cfg == nil || cfg.Topology == nil {
		return nil
	}
	p := &peerRouter{
		replicas:        cfg.replicas(),
		hedgeAfter:      cfg.hedgeAfter(),
		snapshotEntries: cfg.snapshotEntries(),
		timeout:         cfg.ForwardTimeout,
		backoff:         cfg.PeerBackoff,
		maxBackoff:      cfg.MaxPeerBackoff,
		jitterSeed:      cfg.JitterSeed,
		transport:       cfg.Transport,
	}
	p.epoch.Store(&peerEpoch{topo: cfg.Topology, client: p.newClient(cfg.Topology)})
	return p
}

// isPeerForward reports whether r was already forwarded once by a peer.
func isPeerForward(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardHeader) != ""
}

// route decides how a locally-missed key is served. It returns
// served=true with a replica's body and tier when the request was
// successfully proxied; otherwise served=false and the caller solves
// locally, with fellBack=true when a forward was warranted but failed
// (the X-Cache tier the caller should then report is "fallback").
func (p *peerRouter) route(r *http.Request, key cache.Key, path string, raw []byte) (body []byte, tier int, served, fellBack bool) {
	if isPeerForward(r) {
		// We are a replica being asked by a peer (or a topology
		// disagreement's second hop): always serve locally, never
		// forward again — loops are structurally impossible.
		p.ownedForwards.Add(1)
		return nil, 0, false, false
	}
	ep := p.epoch.Load()
	var ownerBuf [4]int
	owners := ep.topo.Owners(cluster.Key(key), p.replicas, ownerBuf[:0])
	candidates := owners[:0]
	for _, o := range owners {
		if o == ep.topo.Self() {
			// This node is in the key's replica set: the local solve IS
			// the authoritative copy, no forward needed.
			return nil, 0, false, false
		}
		if ep.client.Available(o) {
			candidates = append(candidates, o)
		}
	}
	if len(candidates) == 0 {
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	urls := make([]string, len(candidates))
	for i, o := range candidates {
		urls[i] = ep.topo.Peer(o)
	}
	res, err := ep.client.ForwardHedged(r.Context(), candidates, urls, path, raw, p.hedgeAfter)
	if err != nil || res.Status != http.StatusOK {
		// Transport failures marked the replicas down inside the client;
		// a non-200 from a live replica (e.g. its own 504 under load)
		// also degrades to the deterministic local solve rather than
		// relaying a status this node can do better than.
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	p.forwarded.Add(1)
	if res.Hedged {
		// A hedge attempt beat (or replaced) the first replica: the
		// client saw no slow-path stall, which is worth its own tier.
		p.hedgedHits.Add(1)
		return res.Body, tierHedgedHit, true, false
	}
	switch res.XCache {
	case "hit", "collapsed":
		p.remoteHits.Add(1)
		return res.Body, tierRemoteHit, true, false
	default:
		p.remoteMisses.Add(1)
		return res.Body, tierRemoteMiss, true, false
	}
}

// handleSnapshot streams this node's hot cache entries in the peer wire
// codec — the warm-up source for joining nodes and the handoff source
// for membership changes.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	items := s.cache.Snapshot(s.peers.snapshotEntries)
	entries := make([]cluster.Entry, len(items))
	for i, it := range items {
		entries[i] = cluster.Entry{Key: cluster.Key(it.Key), Body: it.Val}
	}
	s.peers.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeSnapshot(w, entries); err != nil {
		s.logger.Printf("pipeschedd: snapshot stream: %v", err)
	}
}

// WarmFromPeers pulls each peer's hot cache snapshot and installs the
// entries locally, returning how many were imported. It is the joining
// node's warm-up: correctness never depends on it (a cold node simply
// misses and forwards or solves), so failures are collected and
// reported, not fatal, and a partially warmed cache is strictly better
// than a cold one. In single-node mode it is a no-op.
func (s *Server) WarmFromPeers(ctx context.Context) (int, error) {
	if s.peers == nil {
		return 0, nil
	}
	p := s.peers
	ep := p.epoch.Load()
	imported := 0
	var errs []error
	for i := 0; i < ep.topo.Size(); i++ {
		if i == ep.topo.Self() {
			continue
		}
		entries, err := ep.client.FetchSnapshot(ctx, i, ep.topo.Peer(i), p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			s.cache.Put(cache.Key(e.Key), e.Body)
		}
		imported += len(entries)
	}
	p.warmedEntries.Add(uint64(imported))
	return imported, errors.Join(errs...)
}

// ReloadTopology swaps a new fleet view in atomically and performs the
// snapshot-driven key handoff: this node pulls its peers' hot entries
// and installs the keys whose replica set it just joined, so a
// membership change costs no cache coverage. Requests in flight finish
// under the epoch they started with; new requests route under topo
// immediately — correctness never waits for the handoff (an unhanded-off
// key simply misses and forwards or solves). The number of handed-off
// entries is returned; fetch failures are collected, not fatal. Calling
// it on a single-node server is an error: there is no peer surface to
// reload.
func (s *Server) ReloadTopology(ctx context.Context, topo *cluster.Topology) (int, error) {
	if s.peers == nil {
		return 0, errors.New("service: single-node server has no topology to reload")
	}
	p := s.peers
	old := p.epoch.Load()
	ep := &peerEpoch{topo: topo, client: p.newClient(topo)}
	p.epoch.Store(ep)
	p.reloads.Add(1)

	// Handoff: for every peer's hot set, keep the keys this node now
	// replicates but did not before. The cache install is idempotent, so
	// the old-ownership filter only avoids redundant work, never
	// correctness.
	imported := 0
	var errs []error
	var newOwn, oldOwn []int
	for i := 0; i < topo.Size(); i++ {
		if i == topo.Self() {
			continue
		}
		entries, err := ep.client.FetchSnapshot(ctx, i, topo.Peer(i), p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			newOwn = topo.Owners(cluster.Key(e.Key), p.replicas, newOwn)
			if !containsInt(newOwn, topo.Self()) {
				continue
			}
			oldOwn = old.topo.Owners(cluster.Key(e.Key), p.replicas, oldOwn)
			if containsInt(oldOwn, old.topo.Self()) {
				continue
			}
			s.cache.Put(cache.Key(e.Key), e.Body)
			imported++
		}
	}
	p.handoffEntries.Add(uint64(imported))
	return imported, errors.Join(errs...)
}

// Topology returns the server's current fleet view, or nil in
// single-node mode.
func (s *Server) Topology() *cluster.Topology {
	if s.peers == nil {
		return nil
	}
	return s.peers.epoch.Load().topo
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ClusterMetricsSnapshot is the "cluster" section of GET /metrics,
// present only in peer mode.
type ClusterMetricsSnapshot struct {
	Peers           int    `json:"peers"`
	Self            int    `json:"self"`
	Replicas        int    `json:"replicas"`
	PeersDown       int    `json:"peers_down"`
	Forwarded       uint64 `json:"forwarded"`
	RemoteHits      uint64 `json:"remote_hits"`
	RemoteMisses    uint64 `json:"remote_misses"`
	HedgedHits      uint64 `json:"hedged_hits"`
	Fallbacks       uint64 `json:"fallbacks"`
	OwnedForwards   uint64 `json:"owned_forwards"`
	SnapshotsServed uint64 `json:"snapshots_served"`
	WarmedEntries   uint64 `json:"warmed_entries"`
	Reloads         uint64 `json:"reloads"`
	HandoffEntries  uint64 `json:"handoff_entries"`
}

// snapshot collects the peer-tier counters.
func (p *peerRouter) snapshot() *ClusterMetricsSnapshot {
	if p == nil {
		return nil
	}
	ep := p.epoch.Load()
	down := 0
	for i := 0; i < ep.topo.Size(); i++ {
		if i != ep.topo.Self() && !ep.client.Available(i) {
			down++
		}
	}
	return &ClusterMetricsSnapshot{
		Peers:           ep.topo.Size(),
		Self:            ep.topo.Self(),
		Replicas:        p.replicas,
		PeersDown:       down,
		Forwarded:       p.forwarded.Load(),
		RemoteHits:      p.remoteHits.Load(),
		RemoteMisses:    p.remoteMisses.Load(),
		HedgedHits:      p.hedgedHits.Load(),
		Fallbacks:       p.fallbacks.Load(),
		OwnedForwards:   p.ownedForwards.Load(),
		SnapshotsServed: p.snapshotsServed.Load(),
		WarmedEntries:   p.warmedEntries.Load(),
		Reloads:         p.reloads.Load(),
		HandoffEntries:  p.handoffEntries.Load(),
	}
}
