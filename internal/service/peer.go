package service

// Peer-aware serving: the glue between the HTTP handlers and
// internal/cluster. In cluster mode every canonical cache key has one
// owner daemon (rendezvous hashing over the key bytes); the request flow
// on each node becomes
//
//	local cache hit            -> X-Cache: hit        (second-tier hits included)
//	miss, self owns the key    -> solve locally       (miss/collapsed, as single-node)
//	miss, peer owns, peer up   -> proxy to owner      (remote-hit / remote-miss),
//	                              install the bytes locally as a second-tier hit
//	miss, peer owns, peer down -> solve locally       (fallback)
//
// Peer failure is never a client-visible error: transport failures and
// forward timeouts mark the owner down for a backoff window and degrade
// to the local solve, which produces byte-identical bodies (the solvers
// are deterministic) at single-node latency. Responses proxied from the
// owner are the owner's rendered bytes verbatim, so every tier serves
// exactly the same body for the same request.

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/service/cache"
)

// ClusterConfig configures peer-aware serving. The Topology is built
// once by the caller (cluster.NewTopology validates the peer list), so
// Server construction stays infallible.
type ClusterConfig struct {
	// Topology is the fleet view: static peer list plus self index.
	Topology *cluster.Topology
	// ForwardTimeout bounds one owner-forward round trip; 0 selects
	// cluster.DefaultForwardTimeout (2s).
	ForwardTimeout time.Duration
	// PeerBackoff is how long a peer stays down after a transport
	// failure; 0 selects cluster.DefaultBackoff (5s).
	PeerBackoff time.Duration
	// SnapshotEntries bounds both the hot set served on
	// GET /v1/peer/snapshot and the entries accepted per peer during
	// warm-up; 0 selects the default (1024).
	SnapshotEntries int
}

const defaultSnapshotEntries = 1024

func (c *ClusterConfig) snapshotEntries() int {
	if c.SnapshotEntries <= 0 {
		return defaultSnapshotEntries
	}
	return c.SnapshotEntries
}

// peerRouter holds the cluster state of one Server: topology, the peer
// client with its health view, and the peer-tier counters.
type peerRouter struct {
	topo            *cluster.Topology
	client          *cluster.Client
	snapshotEntries int

	forwarded       atomic.Uint64 // requests proxied to an owner, any outcome
	remoteHits      atomic.Uint64 // proxied, owner had it cached
	remoteMisses    atomic.Uint64 // proxied, owner solved it
	fallbacks       atomic.Uint64 // owner down or forward failed; solved locally
	ownedForwards   atomic.Uint64 // forwarded requests served for peers
	snapshotsServed atomic.Uint64 // GET /v1/peer/snapshot responses
	warmedEntries   atomic.Uint64 // entries imported by WarmFromPeers
}

// newPeerRouter builds the router, or nil when cfg is absent (single-node
// mode).
func newPeerRouter(cfg *ClusterConfig) *peerRouter {
	if cfg == nil || cfg.Topology == nil {
		return nil
	}
	return &peerRouter{
		topo:            cfg.Topology,
		client:          cluster.NewClient(cfg.Topology.Size(), cfg.ForwardTimeout, cfg.PeerBackoff),
		snapshotEntries: cfg.snapshotEntries(),
	}
}

// isPeerForward reports whether r was already forwarded once by a peer.
func isPeerForward(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardHeader) != ""
}

// route decides how a locally-missed key is served. It returns
// served=true with the owner's body and tier when the request was
// successfully proxied; otherwise served=false and the caller solves
// locally, with fellBack=true when a forward was warranted but failed
// (the X-Cache tier the caller should then report is "fallback").
func (p *peerRouter) route(r *http.Request, key cache.Key, path string, raw []byte) (body []byte, tier int, served, fellBack bool) {
	if isPeerForward(r) {
		// We are the owner being asked by a peer (or a topology
		// disagreement's second hop): always serve locally, never
		// forward again — loops are structurally impossible.
		p.ownedForwards.Add(1)
		return nil, 0, false, false
	}
	owner := p.topo.Owner(cluster.Key(key))
	if owner == p.topo.Self() {
		return nil, 0, false, false
	}
	if !p.client.Available(owner) {
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	res, err := p.client.Forward(r.Context(), owner, p.topo.Peer(owner), path, raw)
	if err != nil || res.Status != http.StatusOK {
		// Transport failures marked the peer down inside Forward; a
		// non-200 from a live owner (e.g. its own 504 under load) also
		// degrades to the deterministic local solve rather than relaying
		// a status this node can do better than.
		p.fallbacks.Add(1)
		return nil, 0, false, true
	}
	p.forwarded.Add(1)
	switch res.XCache {
	case "hit", "collapsed":
		p.remoteHits.Add(1)
		return res.Body, tierRemoteHit, true, false
	default:
		p.remoteMisses.Add(1)
		return res.Body, tierRemoteMiss, true, false
	}
}

// handleSnapshot streams this node's hot cache entries in the peer wire
// codec — the warm-up source for joining nodes.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	items := s.cache.Snapshot(s.peers.snapshotEntries)
	entries := make([]cluster.Entry, len(items))
	for i, it := range items {
		entries[i] = cluster.Entry{Key: cluster.Key(it.Key), Body: it.Val}
	}
	s.peers.snapshotsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.EncodeSnapshot(w, entries); err != nil {
		s.logger.Printf("pipeschedd: snapshot stream: %v", err)
	}
}

// WarmFromPeers pulls each peer's hot cache snapshot and installs the
// entries locally, returning how many were imported. It is the joining
// node's warm-up: correctness never depends on it (a cold node simply
// misses and forwards or solves), so failures are collected and
// reported, not fatal, and a partially warmed cache is strictly better
// than a cold one. In single-node mode it is a no-op.
func (s *Server) WarmFromPeers(ctx context.Context) (int, error) {
	if s.peers == nil {
		return 0, nil
	}
	p := s.peers
	imported := 0
	var errs []error
	for i := 0; i < p.topo.Size(); i++ {
		if i == p.topo.Self() {
			continue
		}
		entries, err := p.client.FetchSnapshot(ctx, i, p.topo.Peer(i), p.snapshotEntries, int(s.opts.maxBody()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, e := range entries {
			s.cache.Put(cache.Key(e.Key), e.Body)
		}
		imported += len(entries)
	}
	p.warmedEntries.Add(uint64(imported))
	return imported, errors.Join(errs...)
}

// ClusterMetricsSnapshot is the "cluster" section of GET /metrics,
// present only in peer mode.
type ClusterMetricsSnapshot struct {
	Peers           int    `json:"peers"`
	Self            int    `json:"self"`
	PeersDown       int    `json:"peers_down"`
	Forwarded       uint64 `json:"forwarded"`
	RemoteHits      uint64 `json:"remote_hits"`
	RemoteMisses    uint64 `json:"remote_misses"`
	Fallbacks       uint64 `json:"fallbacks"`
	OwnedForwards   uint64 `json:"owned_forwards"`
	SnapshotsServed uint64 `json:"snapshots_served"`
	WarmedEntries   uint64 `json:"warmed_entries"`
}

// snapshot collects the peer-tier counters.
func (p *peerRouter) snapshot() *ClusterMetricsSnapshot {
	if p == nil {
		return nil
	}
	down := 0
	for i := 0; i < p.topo.Size(); i++ {
		if i != p.topo.Self() && !p.client.Available(i) {
			down++
		}
	}
	return &ClusterMetricsSnapshot{
		Peers:           p.topo.Size(),
		Self:            p.topo.Self(),
		PeersDown:       down,
		Forwarded:       p.forwarded.Load(),
		RemoteHits:      p.remoteHits.Load(),
		RemoteMisses:    p.remoteMisses.Load(),
		Fallbacks:       p.fallbacks.Load(),
		OwnedForwards:   p.ownedForwards.Load(),
		SnapshotsServed: p.snapshotsServed.Load(),
		WarmedEntries:   p.warmedEntries.Load(),
	}
}
