package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/portfolio"
	"pipesched/internal/workload"
)

// testInstance is a small deterministic instance every endpoint test
// shares; bounds below are generous enough for all solvers.
func testInstance(t *testing.T) workload.Instance {
	t.Helper()
	return workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 11})
}

func solveBody(t *testing.T, in workload.Instance, extra map[string]any) []byte {
	t.Helper()
	req := map[string]any{
		"pipeline": in.App,
		"platform": in.Plat,
	}
	for k, v := range extra {
		req[k] = v
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestSolveEndpointModes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	periodBound := 1e6 // loose: everything feasible

	for _, tc := range []struct {
		name  string
		extra map[string]any
	}{
		{"default-portfolio", map[string]any{"bound": periodBound}},
		{"best", map[string]any{"bound": periodBound, "mode": "best"}},
		{"exact", map[string]any{"bound": periodBound, "mode": "exact"}},
		{"single-heuristic", map[string]any{"bound": periodBound, "mode": "h2"}},
		{"latency-side", map[string]any{"bound": 1e6, "objective": "min-period", "mode": "portfolio"}},
		{"latency-heuristic", map[string]any{"bound": 1e6, "objective": "min-period", "mode": "H6"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/solve", solveBody(t, in, tc.extra))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var sr SolveResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatalf("bad body %s: %v", body, err)
			}
			if sr.Solver == "" || sr.Period <= 0 || sr.Latency <= 0 || len(sr.Intervals) == 0 {
				t.Fatalf("incomplete response: %+v", sr)
			}
			// The mapping must reconstruct and re-evaluate to the
			// reported metrics: the wire form is lossless.
			ivs := make([]mapping.Interval, len(sr.Intervals))
			for i, iv := range sr.Intervals {
				ivs[i] = mapping.Interval{Start: iv.Start, End: iv.End, Proc: iv.Proc}
			}
			m, err := mapping.New(in.App, in.Plat, ivs)
			if err != nil {
				t.Fatalf("returned intervals invalid: %v", err)
			}
			ev := mapping.NewEvaluator(in.App, in.Plat)
			if got := ev.Period(m); got != sr.Period {
				t.Errorf("re-evaluated period %g != reported %g", got, sr.Period)
			}
		})
	}
}

func TestSolveHeuristicModeMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	ev := mapping.NewEvaluator(in.App, in.Plat)
	out, found, _ := portfolio.UnderPeriod(context.Background(), ev, 50, portfolio.SolveOptions{Exact: true})
	if !found {
		t.Skip("bound infeasible for this seed")
	}
	resp, body := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 50.0}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solver != out.Solver || sr.Period != out.Result.Metrics.Period || sr.Latency != out.Result.Metrics.Latency {
		t.Errorf("served (%s, %g, %g) != direct portfolio (%s, %g, %g)",
			sr.Solver, sr.Period, sr.Latency, out.Solver, out.Result.Metrics.Period, out.Result.Metrics.Latency)
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	for _, tc := range []struct {
		name string
		body []byte
		want int
	}{
		{"not-json", []byte("{nope"), http.StatusBadRequest},
		{"unknown-field", solveBody(t, in, map[string]any{"bound": 1.0, "bogus": true}), http.StatusBadRequest},
		{"missing-platform", []byte(`{"pipeline":{"works":[1],"deltas":[0,0]},"bound":1}`), http.StatusBadRequest},
		{"zero-bound", solveBody(t, in, map[string]any{"bound": 0.0}), http.StatusBadRequest},
		{"bad-objective", solveBody(t, in, map[string]any{"bound": 1.0, "objective": "min-energy"}), http.StatusBadRequest},
		{"bad-mode", solveBody(t, in, map[string]any{"bound": 1.0, "mode": "H9"}), http.StatusBadRequest},
		{"wrong-side-heuristic", solveBody(t, in, map[string]any{"bound": 1.0, "objective": "min-period", "mode": "H1"}), http.StatusBadRequest},
		{"invalid-pipeline", []byte(`{"pipeline":{"works":[-1],"deltas":[0,0]},"platform":{"speeds":[1],"bandwidth":1},"bound":1}`), http.StatusBadRequest},
		{"infeasible", solveBody(t, in, map[string]any{"bound": 1e-9, "mode": "best"}), http.StatusUnprocessableEntity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/solve", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %s not an error object (%v)", body, err)
			}
		})
	}
}

// fullHetTestInstance is a small fully heterogeneous instance the fullhet
// endpoint tests share: three processors behind deliberately unequal
// links, so the free processor choice matters.
func fullHetTestInstance(t *testing.T) (*pipeline.Pipeline, *platform.Platform) {
	t.Helper()
	app := pipeline.MustNew([]float64{4, 2, 6, 1}, []float64{1, 3, 2, 5, 1})
	links := [][]float64{
		{0, 2, 9},
		{2, 0, 4},
		{9, 4, 0},
	}
	plat, err := platform.NewFullyHeterogeneous([]float64{3, 1, 2}, links)
	if err != nil {
		t.Fatal(err)
	}
	return app, plat
}

func fullHetBody(t *testing.T, app *pipeline.Pipeline, plat *platform.Platform, extra map[string]any) []byte {
	t.Helper()
	req := map[string]any{"pipeline": app, "platform": plat}
	for k, v := range extra {
		req[k] = v
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFullyHeterogeneousSolveServed pins the fullhet serving lane end to
// end: a fully heterogeneous /v1/solve comes back 200 with X-Cache miss,
// the winning solver is the fullhet portfolio's F1, the returned mapping
// is bit-identical to the serial SplitFullyHet reference, and the
// repeated request is a cache hit with the identical body.
func TestFullyHeterogeneousSolveServed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	app, plat := fullHetTestInstance(t)
	const bound = 1000.0
	body := fullHetBody(t, app, plat, map[string]any{"bound": bound})

	resp, data := post(t, ts, "/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("X-Cache %q, want miss", xc)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("bad body %s: %v", data, err)
	}
	ref, err := heuristics.SplitFullyHet(mapping.NewEvaluator(app, plat), bound)
	if err != nil {
		t.Fatalf("serial reference infeasible: %v", err)
	}
	if sr.Solver != "F1" {
		t.Errorf("solver %q, want F1", sr.Solver)
	}
	if sr.Period != ref.Metrics.Period || sr.Latency != ref.Metrics.Latency {
		t.Errorf("served metrics (%g, %g) != serial SplitFullyHet (%g, %g)",
			sr.Period, sr.Latency, ref.Metrics.Period, ref.Metrics.Latency)
	}
	refIvs := ref.Mapping.Intervals()
	if len(sr.Intervals) != len(refIvs) {
		t.Fatalf("served %d intervals, reference %d", len(sr.Intervals), len(refIvs))
	}
	for i, iv := range sr.Intervals {
		if iv.Start != refIvs[i].Start || iv.End != refIvs[i].End || iv.Proc != refIvs[i].Proc {
			t.Errorf("interval %d: served %+v != reference %+v", i, iv, refIvs[i])
		}
	}

	resp2, data2 := post(t, ts, "/v1/solve", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q, want 200 hit", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data, data2) {
		t.Error("cache hit body differs from the miss body")
	}
}

// TestFullyHeterogeneousLatencySideServed covers the min-period side of
// the fullhet lane (F5/F6 race) plus explicit F-heuristic modes.
func TestFullyHeterogeneousLatencySideServed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	app, plat := fullHetTestInstance(t)
	ev := mapping.NewEvaluator(app, plat)
	single := mapping.SingleProcessor(app, plat, plat.Fastest())
	latBound := ev.Latency(single) * 2

	out, found, _ := portfolio.UnderLatency(context.Background(), ev, latBound, portfolio.SolveOptions{Exact: true, Serial: true})
	if !found {
		t.Fatal("serial fullhet portfolio found no solution under a loose latency bound")
	}
	resp, data := post(t, ts, "/v1/solve", fullHetBody(t, app, plat,
		map[string]any{"bound": latBound, "objective": "min-period"}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, data)
	}
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solver != out.Solver || sr.Period != out.Result.Metrics.Period || sr.Latency != out.Result.Metrics.Latency {
		t.Errorf("served (%s, %g, %g) != serial portfolio (%s, %g, %g)",
			sr.Solver, sr.Period, sr.Latency, out.Solver, out.Result.Metrics.Period, out.Result.Metrics.Latency)
	}

	for _, mode := range []string{"F5", "f6"} {
		resp, data := post(t, ts, "/v1/solve", fullHetBody(t, app, plat,
			map[string]any{"bound": latBound, "objective": "min-period", "mode": mode}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d: %s", mode, resp.StatusCode, data)
		}
	}
}

// TestFullyHeterogeneousSweepAndBatchServed drives the remaining two
// endpoints: a fullhet sweep returns the frontier ParetoSweep computes
// directly, and a mixed batch solves its fullhet instance through F1
// while the comm-homogeneous one keeps its H/DP lane.
func TestFullyHeterogeneousSweepAndBatchServed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	app, plat := fullHetTestInstance(t)

	resp, data := post(t, ts, "/v1/sweep", fullHetBody(t, app, plat, map[string]any{"points": 8}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, data)
	}
	var sw SweepResponse
	if err := json.Unmarshal(data, &sw); err != nil {
		t.Fatal(err)
	}
	front := portfolio.ParetoSweep(context.Background(), mapping.NewEvaluator(app, plat), 8, 0)
	if len(sw.Points) != len(front) || len(front) == 0 {
		t.Fatalf("served %d sweep points, direct ParetoSweep %d", len(sw.Points), len(front))
	}
	for i, pt := range sw.Points {
		if pt.Period != front[i].Metrics.Period || pt.Latency != front[i].Metrics.Latency {
			t.Errorf("sweep point %d: served (%g, %g) != direct (%g, %g)",
				i, pt.Period, pt.Latency, front[i].Metrics.Period, front[i].Metrics.Latency)
		}
	}

	hom := testInstance(t)
	batch := map[string]any{
		"instances": []map[string]any{
			{"pipeline": app, "platform": plat},
			{"pipeline": hom.App, "platform": hom.Plat},
		},
		"bound": 1000.0,
	}
	bb, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, data = post(t, ts, "/v1/batch", bb)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Solved != 2 || br.Failed != 0 {
		t.Fatalf("batch solved/failed %d/%d: %s", br.Solved, br.Failed, data)
	}
	if br.Results[0].Solver != "F1" {
		t.Errorf("fullhet batch instance won by %q, want F1", br.Results[0].Solver)
	}
	if got := br.Results[1].Solver; got == "" || got[0] == 'F' {
		t.Errorf("comm-homogeneous batch instance won by %q, want an H/DP solver", got)
	}
}

func TestSweepPointsCapped(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	resp, body := post(t, ts, "/v1/sweep", solveBody(t, in, map[string]any{"points": 2000000000}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestLeaderTimeoutDoesNotPoisonCache pins the detached-solve contract at
// the HTTP level: a leader whose deadline fires gets its 504, but the
// solve completes and later identical requests are served from cache.
func TestLeaderTimeoutDoesNotPoisonCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := testInstance(t)
	release := make(chan struct{})
	s.solveHook = func() { <-release }

	resp, data := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 1e6, "timeout_ms": 1}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("impatient leader got %d, want 504: %s", resp.StatusCode, data)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for s.CacheStats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned solve never cached its result")
		}
		time.Sleep(time.Millisecond)
	}
	s.solveHook = nil
	// The exact same request body — timeout included — now hits.
	resp2, data2 := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 1e6, "timeout_ms": 1}))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up got %d, want 200: %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("follow-up X-Cache %q, want hit", got)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, _ := get(t, ts, "/v1/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

func TestRepeatedRequestIsCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"bound": 1e6})

	resp1, data1 := post(t, ts, "/v1/solve", body)
	resp2, data2 := post(t, ts, "/v1/solve", body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("cached body differs:\n%s\n%s", data1, data2)
	}
	cs := s.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 hit and 1 miss", cs)
	}

	// A semantically different request must not hit.
	resp3, _ := post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 2e6}))
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different bound served from cache (X-Cache = %q)", got)
	}
	// The /metrics endpoint reports the same counters.
	_, mbody := get(t, ts, "/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(mbody, &snap); err != nil {
		t.Fatalf("bad /metrics body %s: %v", mbody, err)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 2 {
		t.Fatalf("/metrics cache = %+v, want 1 hit, 2 misses", snap.Cache)
	}
	if snap.Endpoints["solve"].Requests != 3 {
		t.Fatalf("/metrics endpoints = %+v, want 3 solve requests", snap.Endpoints)
	}
	// The solver section reports the intern table: one build for the
	// instance, one re-lease by the second miss (the DP counters are
	// process-global, so only the per-server intern is asserted here).
	if snap.Solver.InternMisses != 1 || snap.Solver.InternHits != 1 {
		t.Fatalf("/metrics solver = %+v, want 1 intern miss and 1 hit", snap.Solver)
	}
}

// TestConcurrentIdenticalRequestsCollapse fires N identical solves while
// the singleflight leader is held inside the solver, then asserts exactly
// one underlying solve ran and every response carries the same body.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t, Options{})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"bound": 1e6})

	release := make(chan struct{})
	s.solveHook = func() { <-release }

	type reply struct {
		status int
		cache  string
		body   string
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts, "/v1/solve", body)
			replies[i] = reply{status: resp.StatusCode, cache: resp.Header.Get("X-Cache"), body: string(data)}
		}(i)
	}
	// Wait until one leader is inside the solver and the other n-1
	// requests are parked on its flight, then release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cs := s.CacheStats()
		if cs.Misses == 1 && cs.Collapsed == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never collapsed: %+v", cs)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	cs := s.CacheStats()
	if cs.Misses != 1 {
		t.Fatalf("%d underlying solves for %d concurrent identical requests, want 1 (stats %+v)", cs.Misses, n, cs)
	}
	misses, collapsed := 0, 0
	for i, rp := range replies {
		if rp.status != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, rp.status, rp.body)
		}
		if rp.body != replies[0].body {
			t.Fatalf("request %d body differs", i)
		}
		switch rp.cache {
		case "miss":
			misses++
		case "collapsed":
			collapsed++
		}
	}
	if misses != 1 || collapsed != n-1 {
		t.Fatalf("dispositions: %d miss, %d collapsed; want 1 and %d", misses, collapsed, n-1)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	instances := make([]workload.Instance, 5)
	for i := range instances {
		instances[i] = workload.Generate(workload.Config{Family: workload.E2, Stages: 5, Processors: 4, Seed: int64(100 + i)})
	}
	req := map[string]any{
		"instances":      instances,
		"bound":          1.5,
		"relative_bound": true,
		"exact":          true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts, "/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(instances) {
		t.Fatalf("%d results for %d instances", len(br.Results), len(instances))
	}
	if br.Solved+br.Failed != len(instances) {
		t.Fatalf("solved %d + failed %d != %d", br.Solved, br.Failed, len(instances))
	}
	// Cross-check against the engine directly: the service is a thin
	// wire layer and must not change outcomes.
	report, err := portfolio.SolveBatch(context.Background(), instances, portfolio.BatchOptions{
		Bound: 1.5, RelativeBound: true, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Solved != br.Solved || report.Failed != br.Failed {
		t.Fatalf("served %d/%d, engine %d/%d", br.Solved, br.Failed, report.Solved, report.Failed)
	}
	if len(br.Front) != len(report.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(br.Front), len(report.Front))
	}

	// Identical batch → cache hit.
	resp2, _ := post(t, ts, "/v1/batch", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat batch X-Cache = %q, want hit", got)
	}
	if cs := s.CacheStats(); cs.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 hit", cs)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"no-instances", `{"instances":[],"bound":1}`, http.StatusBadRequest},
		{"bad-bound", `{"instances":[{"pipeline":{"works":[1],"deltas":[0,0]},"platform":{"speeds":[1],"bandwidth":1}}],"bound":-1}`, http.StatusBadRequest},
		{"bad-instance", `{"instances":[{"pipeline":null,"platform":null}],"bound":1}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v1/batch", []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
		})
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"points": 8})
	resp, data := post(t, ts, "/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SweepResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) == 0 {
		t.Fatal("empty frontier")
	}
	// The frontier must match the façade sweep and be non-dominated by
	// construction: strictly increasing period, strictly decreasing
	// latency.
	ev := mapping.NewEvaluator(in.App, in.Plat)
	direct := portfolio.ParetoSweep(context.Background(), ev, 8, 0)
	if len(direct) != len(sr.Points) {
		t.Fatalf("served %d points, direct sweep %d", len(sr.Points), len(direct))
	}
	for i := 1; i < len(sr.Points); i++ {
		if sr.Points[i].Period <= sr.Points[i-1].Period || sr.Points[i].Latency >= sr.Points[i-1].Latency {
			t.Fatalf("frontier not strictly ordered at %d: %+v", i, sr.Points)
		}
	}
	// Repeat → hit.
	resp2, _ := post(t, ts, "/v1/sweep", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat sweep X-Cache = %q, want hit", got)
	}
}

func TestSolveTimeoutReturns504(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	in := testInstance(t)
	// Hold the solve long enough for the 1ms deadline to fire. The
	// collapsed waiter path returns the context error; the leader's
	// eventual result simply lands in the cache unobserved.
	release := make(chan struct{})
	defer close(release)
	s.solveHook = func() { <-release }
	body := solveBody(t, in, map[string]any{"bound": 1e6, "timeout_ms": 1})
	// First request becomes the leader; it blocks in the hook, but its
	// own Do call is past the ctx check — so fire a second request that
	// collapses onto it and times out. The leader goroutine must not use
	// the test helpers (no t.Fatal off the test goroutine).
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.CacheStats().Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, data := post(t, ts, "/v1/solve", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (%v)", body, err)
	}
}

func TestCacheDisabledStillCollapses(t *testing.T) {
	s, ts := newTestServer(t, Options{CacheEntries: -1})
	in := testInstance(t)
	body := solveBody(t, in, map[string]any{"bound": 1e6})
	post(t, ts, "/v1/solve", body)
	resp, _ := post(t, ts, "/v1/solve", body)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("storage disabled but X-Cache = %q", got)
	}
	if cs := s.CacheStats(); cs.Misses != 2 || cs.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 misses, 0 entries", cs)
	}
}

func TestCanonicalKeysDistinguishRequests(t *testing.T) {
	in := testInstance(t)
	base := solveKey(portfolio.MinimizeLatency, "portfolio", 10, in.App, in.Plat)
	for name, k := range map[string]any{
		"objective": solveKey(portfolio.MinimizePeriod, "portfolio", 10, in.App, in.Plat),
		"mode":      solveKey(portfolio.MinimizeLatency, "best", 10, in.App, in.Plat),
		"bound":     solveKey(portfolio.MinimizeLatency, "portfolio", 11, in.App, in.Plat),
		"endpoint":  sweepKey(10, in.App, in.Plat),
	} {
		if fmt.Sprint(k) == fmt.Sprint(base) {
			t.Errorf("key ignores %s", name)
		}
	}
	// Same request, separately marshalled → same key.
	again := solveKey(portfolio.MinimizeLatency, "portfolio", 10, in.App, in.Plat)
	if base != again {
		t.Error("identical requests produced different keys")
	}
	// Different instances → different keys.
	other := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: 12})
	if solveKey(portfolio.MinimizeLatency, "portfolio", 10, other.App, other.Plat) == base {
		t.Error("distinct instances share a key")
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := testInstance(t)
	post(t, ts, "/v1/solve", solveBody(t, in, map[string]any{"bound": 1e6}))
	post(t, ts, "/v1/solve", []byte("{bad")) // one error for the counter
	_, body := get(t, ts, "/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad metrics body: %v\n%s", err, body)
	}
	es, ok := snap.Endpoints["solve"]
	if !ok {
		t.Fatalf("no solve endpoint in %s", body)
	}
	if es.Requests != 2 || es.Errors != 1 {
		t.Fatalf("solve endpoint = %+v, want 2 requests, 1 error", es)
	}
	if es.MeanMS < 0 || es.MaxMS < es.MinMS {
		t.Fatalf("latency summary inconsistent: %+v", es)
	}
	if snap.UptimeSeconds <= 0 {
		t.Fatalf("uptime %g", snap.UptimeSeconds)
	}
	if !strings.Contains(string(body), "hit_rate") {
		t.Fatalf("no hit_rate in %s", body)
	}
}
