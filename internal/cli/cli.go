// Package cli holds the exit-code contract shared by every pipesched
// command: success and -h exit 0, command-line misuse (unknown flags or
// flag values) exits 2 with a usage pointer, runtime failures exit 1.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
)

// UsageError marks a misuse of the command line, as opposed to a runtime
// failure.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a *UsageError from a format string.
func Usagef(format string, a ...any) error {
	return &UsageError{Err: fmt.Errorf(format, a...)}
}

// WrapParse classifies a flag.FlagSet.Parse error: nil and flag.ErrHelp
// pass through untouched, anything else is command-line misuse.
func WrapParse(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &UsageError{Err: err}
}

// ExitCode maps a command's run error onto its exit code, printing
// diagnostics (and, for misuse, a usage pointer) to errOut.
func ExitCode(name string, err error, errOut io.Writer) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	}
	fmt.Fprintf(errOut, "%s: %v\n", name, err)
	var ue *UsageError
	if errors.As(err, &ue) {
		fmt.Fprintf(errOut, "run '%s -h' for usage\n", name)
		return 2
	}
	return 1
}
