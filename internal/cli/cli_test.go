package cli

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
)

func TestExitCode(t *testing.T) {
	for _, tc := range []struct {
		name     string
		err      error
		want     int
		wantHint bool
	}{
		{"nil", nil, 0, false},
		{"help", flag.ErrHelp, 0, false},
		{"wrapped-help", fmt.Errorf("x: %w", flag.ErrHelp), 0, false},
		{"usage", Usagef("unknown flag"), 2, true},
		{"wrapped-usage", fmt.Errorf("ctx: %w", Usagef("bad value")), 2, true},
		{"runtime", errors.New("file not found"), 1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var errOut bytes.Buffer
			if got := ExitCode("tool", tc.err, &errOut); got != tc.want {
				t.Fatalf("ExitCode = %d, want %d", got, tc.want)
			}
			hasHint := strings.Contains(errOut.String(), "run 'tool -h' for usage")
			if hasHint != tc.wantHint {
				t.Fatalf("usage hint present = %v, want %v:\n%s", hasHint, tc.wantHint, errOut.String())
			}
			if tc.err != nil && tc.want != 0 && !strings.Contains(errOut.String(), "tool: ") {
				t.Fatalf("diagnostic missing tool prefix:\n%s", errOut.String())
			}
		})
	}
}

func TestWrapParse(t *testing.T) {
	if WrapParse(nil) != nil {
		t.Fatal("WrapParse(nil) != nil")
	}
	if err := WrapParse(flag.ErrHelp); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("WrapParse(ErrHelp) = %v", err)
	}
	var ue *UsageError
	if err := WrapParse(errors.New("flag provided but not defined")); !errors.As(err, &ue) {
		t.Fatalf("WrapParse(parse error) = %T, want *UsageError", err)
	}
}

func TestUsageErrorUnwrap(t *testing.T) {
	base := errors.New("root cause")
	err := &UsageError{Err: base}
	if !errors.Is(err, base) {
		t.Fatal("UsageError does not unwrap to its cause")
	}
}
