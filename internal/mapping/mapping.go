// Package mapping represents interval mappings of a pipeline onto a
// platform and evaluates their period and latency according to equations
// (1) and (2) of the paper.
//
// An interval mapping partitions the stages [1..n] into m ≤ p intervals
// I_j = [d_j, e_j] of consecutive stages, with d_1 = 1, d_{j+1} = e_j + 1
// and e_m = n; interval I_j is executed by a dedicated processor alloc(j),
// and distinct intervals use distinct processors.
package mapping

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// Interval is one element of an interval mapping: stages [Start..End]
// (1-based, inclusive) run on processor Proc.
type Interval struct {
	Start int // d_j, first stage of the interval
	End   int // e_j, last stage of the interval
	Proc  int // alloc(j), 1-based processor identifier
}

// Stages returns the number of stages of the interval.
func (iv Interval) Stages() int { return iv.End - iv.Start + 1 }

func (iv Interval) String() string {
	if iv.Start == iv.End {
		return fmt.Sprintf("S%d→P%d", iv.Start, iv.Proc)
	}
	return fmt.Sprintf("S%d..S%d→P%d", iv.Start, iv.End, iv.Proc)
}

// Mapping is an ordered sequence of intervals covering [1..n].
// The zero value is an empty mapping, invalid for any pipeline.
type Mapping struct {
	intervals []Interval
}

// New validates ivs against the pipeline and platform and returns the
// mapping. The intervals must appear in pipeline order, cover [1..n]
// exactly, reference existing processors, and use each processor at most
// once.
func New(app *pipeline.Pipeline, plat *platform.Platform, ivs []Interval) (*Mapping, error) {
	n, p := app.Stages(), plat.Processors()
	if len(ivs) == 0 {
		return nil, fmt.Errorf("mapping: no interval for %d stages", n)
	}
	if len(ivs) > p {
		return nil, fmt.Errorf("mapping: %d intervals but only %d processors", len(ivs), p)
	}
	next := 1
	for j, iv := range ivs {
		if iv.Start != next {
			return nil, fmt.Errorf("mapping: interval %d starts at stage %d, want %d", j+1, iv.Start, next)
		}
		if iv.End < iv.Start {
			return nil, fmt.Errorf("mapping: interval %d is empty ([%d..%d])", j+1, iv.Start, iv.End)
		}
		if iv.End > n {
			return nil, fmt.Errorf("mapping: interval %d ends at stage %d beyond n=%d", j+1, iv.End, n)
		}
		if iv.Proc < 1 || iv.Proc > p {
			return nil, fmt.Errorf("mapping: interval %d uses processor %d outside [1..%d]", j+1, iv.Proc, p)
		}
		// Quadratic distinctness scan: the list is at most p intervals
		// long, so this beats a heap-allocated set on every real input.
		for _, prev := range ivs[:j] {
			if prev.Proc == iv.Proc {
				return nil, fmt.Errorf("mapping: processor %d assigned to more than one interval", iv.Proc)
			}
		}
		next = iv.End + 1
	}
	if next != n+1 {
		return nil, fmt.Errorf("mapping: stages %d..%d left unmapped", next, n)
	}
	return &Mapping{intervals: append([]Interval(nil), ivs...)}, nil
}

// MustNew is New but panics on error; intended for tests.
func MustNew(app *pipeline.Pipeline, plat *platform.Platform, ivs []Interval) *Mapping {
	m, err := New(app, plat, ivs)
	if err != nil {
		panic(err)
	}
	return m
}

// SingleProcessor maps the whole pipeline onto processor u. This is the
// latency-optimal mapping when u is the fastest processor (Lemma 1).
func SingleProcessor(app *pipeline.Pipeline, plat *platform.Platform, u int) *Mapping {
	m, err := New(app, plat, []Interval{{Start: 1, End: app.Stages(), Proc: u}})
	if err != nil {
		panic(err) // only reachable through an invalid u
	}
	return m
}

// Intervals returns a copy of the mapping's intervals in pipeline order.
func (m *Mapping) Intervals() []Interval { return append([]Interval(nil), m.intervals...) }

// Size returns the number of intervals (enrolled processors).
func (m *Mapping) Size() int { return len(m.intervals) }

// Interval returns the j-th interval, j in [0..Size()-1].
func (m *Mapping) Interval(j int) Interval { return m.intervals[j] }

// ProcessorOf returns the processor executing stage k. The intervals are
// sorted by construction, so the lookup binary-searches their end points.
func (m *Mapping) ProcessorOf(k int) int {
	ivs := m.intervals
	j := sort.Search(len(ivs), func(i int) bool { return ivs[i].End >= k })
	if j < len(ivs) && ivs[j].Start <= k {
		return ivs[j].Proc
	}
	panic(fmt.Sprintf("mapping: stage %d not covered", k))
}

// Processors returns the set of enrolled processors in pipeline order.
func (m *Mapping) Processors() []int {
	out := make([]int, len(m.intervals))
	for j, iv := range m.intervals {
		out[j] = iv.Proc
	}
	return out
}

func (m *Mapping) String() string {
	parts := make([]string, len(m.intervals))
	for j, iv := range m.intervals {
		parts[j] = iv.String()
	}
	return strings.Join(parts, " | ")
}

// Clone returns an independent copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	return &Mapping{intervals: append([]Interval(nil), m.intervals...)}
}

// Metrics bundles the two antagonist criteria of the paper for one mapping.
type Metrics struct {
	Period  float64 // T_period, equation (1)
	Latency float64 // T_latency, equation (2)
}

// Dominates reports whether a is at least as good as b on both criteria and
// strictly better on at least one (Pareto dominance, smaller is better).
func (a Metrics) Dominates(b Metrics) bool {
	if a.Period > b.Period || a.Latency > b.Latency {
		return false
	}
	return a.Period < b.Period || a.Latency < b.Latency
}

// Frontier returns the indices of the non-dominated entries of metrics,
// ordered by increasing period. Candidates are ranked by (period, latency,
// index) and kept on a strict latency improvement; the epsilon absorbs
// float noise between near-identical mappings. The one dominance filter
// shared by the façade sweep and the batch aggregator.
func Frontier(metrics []Metrics) []int {
	type candidate struct {
		period, latency float64
		index           int
	}
	order := make([]candidate, len(metrics))
	for i, m := range metrics {
		order[i] = candidate{period: m.Period, latency: m.Latency, index: i}
	}
	slices.SortFunc(order, func(a, b candidate) int {
		switch {
		case a.period != b.period:
			if a.period < b.period {
				return -1
			}
			return 1
		case a.latency != b.latency:
			if a.latency < b.latency {
				return -1
			}
			return 1
		default:
			return a.index - b.index
		}
	})
	var front []int
	best := math.Inf(1)
	for _, c := range order {
		if c.latency < best-1e-12 {
			front = append(front, c.index)
			best = c.latency
		}
	}
	return front
}

// Evaluator computes interval cycle-times, periods and latencies for one
// (pipeline, platform) pair. It pre-binds the pair so that the heuristics'
// inner loops evaluate candidate intervals in O(1) each; the divisions of
// the cost model (by bandwidths and speeds) are hoisted into reciprocal
// tables at construction, leaving only multiplications on the hot path.
type Evaluator struct {
	app  *pipeline.Pipeline
	plat *platform.Platform

	invSpeed      []float64   // invSpeed[u-1] = 1/s_u
	invClassSpeed []float64   // invClassSpeed[k] = 1/ClassSpeed(k)
	invBandwidth  float64     // 1/b on CommHomogeneous platforms
	invMinLink    float64     // 1/MinLinkBandwidth()
	invLinks      [][]float64 // reciprocal link matrix (FullyHeterogeneous)

	optLat  float64   // latency of the Lemma-1 optimal mapping, precomputed
	scratch sync.Pool // Scratch leases; see LeaseScratch
}

// NewEvaluator binds a pipeline and a platform.
func NewEvaluator(app *pipeline.Pipeline, plat *platform.Platform) *Evaluator {
	ev := &Evaluator{app: app, plat: plat}
	ev.bindPlatform()
	ev.optLat = ev.Latency(SingleProcessor(app, plat, plat.Fastest()))
	return ev
}

// bindPlatform fills the platform-derived reciprocal tables.
func (ev *Evaluator) bindPlatform() {
	plat := ev.plat
	ev.invSpeed = make([]float64, plat.Processors())
	for u := 1; u <= plat.Processors(); u++ {
		ev.invSpeed[u-1] = 1 / plat.Speed(u)
	}
	ev.invClassSpeed = make([]float64, plat.SpeedClasses())
	for k := range ev.invClassSpeed {
		// The representative's entry, so class and per-processor costs
		// agree bit for bit.
		ev.invClassSpeed[k] = ev.invSpeed[plat.ClassRepresentative(k)-1]
	}
	ev.invMinLink = 1 / plat.MinLinkBandwidth()
	if plat.Kind() == platform.CommHomogeneous {
		ev.invBandwidth = 1 / plat.Bandwidth()
	} else {
		p := plat.Processors()
		ev.invLinks = make([][]float64, p)
		for u := 1; u <= p; u++ {
			ev.invLinks[u-1] = make([]float64, p)
			for v := 1; v <= p; v++ {
				if u != v {
					ev.invLinks[u-1][v-1] = 1 / plat.LinkBandwidth(u, v)
				}
			}
		}
	}
}

// NewEvaluators binds many pipelines to one shared platform — the batch
// lane's structure-of-arrays constructor. The platform-derived reciprocal
// tables are computed once and their backing arrays shared across every
// returned evaluator: the tables are pure functions of the platform,
// immutable after construction, so sharing is safe under concurrency and
// every evaluator is bit-identical to NewEvaluator(apps[i], plat) — only
// the per-pipeline optimal latency is computed per element.
func NewEvaluators(apps []*pipeline.Pipeline, plat *platform.Platform) []*Evaluator {
	evs := make([]*Evaluator, len(apps))
	var tables *Evaluator
	for i, app := range apps {
		ev := &Evaluator{app: app, plat: plat}
		if tables == nil {
			ev.bindPlatform()
			tables = ev
		} else {
			ev.invSpeed = tables.invSpeed
			ev.invClassSpeed = tables.invClassSpeed
			ev.invBandwidth = tables.invBandwidth
			ev.invMinLink = tables.invMinLink
			ev.invLinks = tables.invLinks
		}
		ev.optLat = ev.Latency(SingleProcessor(app, plat, plat.Fastest()))
		evs[i] = ev
	}
	return evs
}

// Pipeline returns the bound application.
func (ev *Evaluator) Pipeline() *pipeline.Pipeline { return ev.app }

// Platform returns the bound platform.
func (ev *Evaluator) Platform() *platform.Platform { return ev.plat }

// invInBandwidth is the reciprocal bandwidth stage d's input crosses when
// the previous interval lives on processor prev (0 for the outside world)
// and the current one on cur. On homogeneous platforms every link has
// bandwidth b; the outside world is reached through a link of the same
// bandwidth.
func (ev *Evaluator) invInBandwidth(prev, cur int) float64 {
	if ev.plat.Kind() == platform.CommHomogeneous {
		return ev.invBandwidth
	}
	if prev == 0 || prev == cur {
		// Outside world: served by the slowest adjacent link, a
		// conservative choice consistent with Platform.Homogenize.
		return ev.invMinLink
	}
	return ev.invLinks[prev-1][cur-1]
}

// CycleParts returns the three terms of the cycle-time of interval
// [d..e] on processor u: input communication, computation, output
// communication. prev and next are the processors holding the neighbouring
// intervals (0 for the outside world); they matter only on fully
// heterogeneous platforms.
func (ev *Evaluator) CycleParts(d, e, u, prev, next int) (in, comp, out float64) {
	in = ev.app.Delta(d-1) * ev.invInBandwidth(prev, u)
	comp = ev.app.IntervalWork(d, e) * ev.invSpeed[u-1]
	out = ev.app.Delta(e) * ev.invInBandwidth(next, u)
	return in, comp, out
}

// ClassCycleParts is CycleParts for an anonymous processor of speed class
// k on a Communication Homogeneous platform, where the three terms depend
// on the processor only through its speed. It evaluates bit-identically to
// CycleParts(d, e, u, 0, 0) for every member u of the class — the property
// the class-compressed exact solvers rest on.
func (ev *Evaluator) ClassCycleParts(d, e, k int) (in, comp, out float64) {
	if ev.plat.Kind() != platform.CommHomogeneous {
		panic("mapping: ClassCycleParts is only defined on comm-homogeneous platforms")
	}
	in = ev.app.Delta(d-1) * ev.invBandwidth
	comp = ev.app.IntervalWork(d, e) * ev.invClassSpeed[k]
	out = ev.app.Delta(e) * ev.invBandwidth
	return in, comp, out
}

// ClassCycle returns the cycle-time of interval [d..e] on any processor of
// speed class k (Communication Homogeneous platforms only); it equals
// Cycle(d, e, u) bit for bit for every member u of the class.
func (ev *Evaluator) ClassCycle(d, e, k int) float64 {
	in, comp, out := ev.ClassCycleParts(d, e, k)
	return in + comp + out
}

// Cycle returns the cycle-time of interval [d..e] on processor u for a
// Communication Homogeneous platform:
//
//	δ_{d-1}/b + Σ_{i=d..e} w_i / s_u + δ_e/b.
//
// The period of a mapping is the maximum cycle over its intervals.
func (ev *Evaluator) Cycle(d, e, u int) float64 {
	in, comp, out := ev.CycleParts(d, e, u, 0, 0)
	if ev.plat.Kind() != platform.CommHomogeneous {
		panic("mapping: Cycle is only defined on comm-homogeneous platforms; use CycleParts with neighbour processors")
	}
	return in + comp + out
}

// Period evaluates equation (1) for m.
func (ev *Evaluator) Period(m *Mapping) float64 { return ev.PeriodOf(m.intervals) }

// PeriodOf evaluates equation (1) on a raw interval slice already in
// pipeline order. Engines score candidate mappings on reused scratch
// buffers through it, without materialising a Mapping; it is
// bit-identical to Period on the validated equivalent.
func (ev *Evaluator) PeriodOf(ivs []Interval) float64 {
	max := 0.0
	for j, iv := range ivs {
		prev, next := 0, 0
		if j > 0 {
			prev = ivs[j-1].Proc
		}
		if j < len(ivs)-1 {
			next = ivs[j+1].Proc
		}
		in, comp, out := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, next)
		if c := in + comp + out; c > max {
			max = c
		}
	}
	return max
}

// Latency evaluates equation (2) for m: data sets traverse all stages and
// only inter-processor communications are paid:
//
//	Σ_j ( δ_{d_j-1}/b + Σ_{i∈I_j} w_i / s_alloc(j) ) + δ_n/b.
func (ev *Evaluator) Latency(m *Mapping) float64 { return ev.LatencyOf(m.intervals) }

// LatencyOf evaluates equation (2) on a raw interval slice already in
// pipeline order; the scratch-buffer counterpart of Latency (see
// PeriodOf).
func (ev *Evaluator) LatencyOf(ivs []Interval) float64 {
	total := 0.0
	for j, iv := range ivs {
		prev := 0
		if j > 0 {
			prev = ivs[j-1].Proc
		}
		in, comp, _ := ev.CycleParts(iv.Start, iv.End, iv.Proc, prev, 0)
		total += in + comp
	}
	last := ivs[len(ivs)-1]
	_, _, out := ev.CycleParts(last.Start, last.End, last.Proc, 0, 0)
	return total + out
}

// Metrics evaluates both criteria at once.
func (ev *Evaluator) Metrics(m *Mapping) Metrics {
	return Metrics{Period: ev.Period(m), Latency: ev.Latency(m)}
}

// OptimalLatency returns the minimum achievable latency over all interval
// mappings together with the mapping realising it: everything on the
// fastest processor (Lemma 1 of the paper).
func (ev *Evaluator) OptimalLatency() (*Mapping, float64) {
	return SingleProcessor(ev.app, ev.plat, ev.plat.Fastest()), ev.optLat
}

// OptimalLatencyValue returns the Lemma-1 optimal latency without
// materialising its mapping. The value is precomputed at NewEvaluator, so
// hot paths (the bisection bracket of heuristic H4, sweep feasibility
// checks) read a field instead of building and scoring a mapping.
func (ev *Evaluator) OptimalLatencyValue() float64 { return ev.optLat }
