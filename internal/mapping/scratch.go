package mapping

// Scratch is a per-solve workspace leased from an Evaluator: reusable
// interval, cycle-time and processor buffers that heuristic engines own
// exclusively between LeaseScratch and Release. Leases come from a pool
// bound to the evaluator, so repeated solves against one instance —
// portfolio races, batch elements, sweep grid points, the service
// daemon's cache-miss path — reuse warm buffers instead of allocating,
// while concurrent races each hold their own lease and never share
// state.
//
// The exported slices are working storage, not results: engines re-slice
// and append to them freely and hand capacity back by storing the grown
// slices before Release. Anything that must outlive the lease (a
// *Mapping, a Result) has to be copied out first — New and MustNew
// already copy their interval argument, so materialising a mapping from
// Ivs is safe.
type Scratch struct {
	ev *Evaluator

	// Ivs holds the current interval list of a splitting engine.
	Ivs []Interval
	// Trial is a second interval buffer for engines that score whole
	// candidate mappings (the fully heterogeneous splitter re-evaluates
	// every trial under its link-aware cost model).
	Trial []Interval
	// Cycles holds one cycle-time per entry of Ivs.
	Cycles []float64
	// Comm holds per-boundary communication times (the splitting
	// engine's δ_k/b table, hoisted out of its candidate loop).
	Comm []float64
	// Procs holds a processor list (the engines' fastest-first free
	// list).
	Procs []int
}

// LeaseScratch takes a scratch workspace from the evaluator's pool. The
// caller owns it exclusively until Release; buffers keep the capacity
// they grew to in earlier leases.
func (ev *Evaluator) LeaseScratch() *Scratch {
	s, _ := ev.scratch.Get().(*Scratch)
	if s == nil {
		s = new(Scratch)
	}
	s.ev = ev
	return s
}

// Release returns the scratch to its evaluator's pool. The caller must
// not touch the workspace afterwards.
func (s *Scratch) Release() {
	ev := s.ev
	s.ev = nil
	ev.scratch.Put(s)
}
