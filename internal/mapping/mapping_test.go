package mapping

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func app3() *pipeline.Pipeline {
	// 3 stages: w = 4, 6, 2; δ = 10, 20, 30, 40.
	return pipeline.MustNew([]float64{4, 6, 2}, []float64{10, 20, 30, 40})
}

func plat3() *platform.Platform {
	// 3 processors of speeds 2, 1, 4; b = 10.
	return platform.MustNew([]float64{2, 1, 4}, 10)
}

func TestNewValidatesStructure(t *testing.T) {
	app, plat := app3(), plat3()
	valid := []Interval{{1, 2, 3}, {3, 3, 1}}
	if _, err := New(app, plat, valid); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := []struct {
		name string
		ivs  []Interval
	}{
		{"empty", nil},
		{"gap", []Interval{{1, 1, 1}, {3, 3, 2}}},
		{"overlap", []Interval{{1, 2, 1}, {2, 3, 2}}},
		{"starts late", []Interval{{2, 3, 1}}},
		{"ends early", []Interval{{1, 2, 1}}},
		{"beyond n", []Interval{{1, 4, 1}}},
		{"empty interval", []Interval{{1, 0, 1}, {1, 3, 2}}},
		{"processor reuse", []Interval{{1, 1, 2}, {2, 3, 2}}},
		{"processor out of range", []Interval{{1, 3, 4}}},
		{"processor zero", []Interval{{1, 3, 0}}},
		{"too many intervals", []Interval{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}}},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(app, plat, c.ivs); err == nil {
				t.Errorf("New(%v) succeeded, want error", c.ivs)
			}
		})
	}
}

func TestSingleProcessorMetrics(t *testing.T) {
	app, plat := app3(), plat3()
	ev := NewEvaluator(app, plat)
	m := SingleProcessor(app, plat, 3) // fastest, speed 4
	// Period = δ0/b + Σw/s + δ3/b = 10/10 + 12/4 + 40/10 = 1 + 3 + 4 = 8.
	if got := ev.Period(m); math.Abs(got-8) > 1e-12 {
		t.Errorf("Period = %g, want 8", got)
	}
	// Latency = same as period for a single interval.
	if got := ev.Latency(m); math.Abs(got-8) > 1e-12 {
		t.Errorf("Latency = %g, want 8", got)
	}
}

func TestTwoIntervalMetricsByHand(t *testing.T) {
	app, plat := app3(), plat3()
	ev := NewEvaluator(app, plat)
	// [1..2] on P3 (speed 4), [3..3] on P1 (speed 2).
	m := MustNew(app, plat, []Interval{{1, 2, 3}, {3, 3, 1}})
	// cycle1 = δ0/b + (4+6)/4 + δ2/b = 1 + 2.5 + 3 = 6.5
	// cycle2 = δ2/b + 2/2 + δ3/b = 3 + 1 + 4 = 8
	if got := ev.Period(m); math.Abs(got-8) > 1e-12 {
		t.Errorf("Period = %g, want 8", got)
	}
	// latency = (1 + 2.5) + (3 + 1) + δ3/b = 3.5 + 4 + 4 = 11.5
	if got := ev.Latency(m); math.Abs(got-11.5) > 1e-12 {
		t.Errorf("Latency = %g, want 11.5", got)
	}
}

func TestCycleMatchesPaperFormula(t *testing.T) {
	app, plat := app3(), plat3()
	ev := NewEvaluator(app, plat)
	// Interval [2..3] on P2 (speed 1): 20/10 + (6+2)/1 + 40/10 = 2+8+4 = 14.
	if got := ev.Cycle(2, 3, 2); math.Abs(got-14) > 1e-12 {
		t.Errorf("Cycle(2,3,2) = %g, want 14", got)
	}
}

func TestOptimalLatencyLemma1(t *testing.T) {
	app, plat := app3(), plat3()
	ev := NewEvaluator(app, plat)
	m, l := ev.OptimalLatency()
	if m.Size() != 1 || m.Interval(0).Proc != 3 {
		t.Errorf("OptimalLatency mapping = %v, want single interval on P3", m)
	}
	if math.Abs(l-8) > 1e-12 {
		t.Errorf("OptimalLatency = %g, want 8", l)
	}
}

// Lemma 1: the single-interval mapping on the fastest processor has minimum
// latency among all interval mappings. Verify exhaustively on random small
// instances.
func TestLemma1Exhaustive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		p := 1 + r.Intn(4)
		works := make([]float64, n)
		for i := range works {
			works[i] = 1 + 19*r.Float64()
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = 100 * r.Float64()
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		app := pipeline.MustNew(works, deltas)
		plat := platform.MustNew(speeds, 10)
		ev := NewEvaluator(app, plat)
		_, best := ev.OptimalLatency()
		ok := true
		enumerate(app, plat, func(m *Mapping) {
			if ev.Latency(m) < best-1e-9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// enumerate calls fn for every valid interval mapping of app onto plat
// (exponential; small instances only). It is shared with the evaluator
// consistency test below.
func enumerate(app *pipeline.Pipeline, plat *platform.Platform, fn func(*Mapping)) {
	n, p := app.Stages(), plat.Processors()
	var rec func(start int, used uint32, acc []Interval)
	rec = func(start int, used uint32, acc []Interval) {
		if start > n {
			m, err := New(app, plat, acc)
			if err != nil {
				panic(err)
			}
			fn(m)
			return
		}
		if len(acc) == p { // no processor left
			return
		}
		for end := start; end <= n; end++ {
			for u := 1; u <= p; u++ {
				if used&(1<<u) != 0 {
					continue
				}
				rec(end+1, used|1<<u, append(acc, Interval{start, end, u}))
			}
		}
	}
	rec(1, 0, nil)
}

// Invariant: latency ≥ the sum of all computation terms plus end-to-end
// communications paid, and latency ≥ period's computation share. More
// directly testable: latency ≥ δ_0/b + Σ w_i/s_max + δ_n/b (every mapping's
// latency is at least the optimal one), and period ≤ latency when only one
// interval exists.
func TestEvaluatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		p := 1 + r.Intn(5)
		works := make([]float64, n)
		for i := range works {
			works[i] = 0.01 + 10*r.Float64()
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = 20 * r.Float64()
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		app := pipeline.MustNew(works, deltas)
		plat := platform.MustNew(speeds, 10)
		ev := NewEvaluator(app, plat)
		_, optimal := ev.OptimalLatency()
		ok := true
		enumerate(app, plat, func(m *Mapping) {
			lat, per := ev.Latency(m), ev.Period(m)
			if lat < optimal-1e-9 {
				ok = false
			}
			if per <= 0 || lat <= 0 {
				ok = false
			}
			// The bottleneck interval's full cycle can exceed the
			// latency only through its output comm being counted
			// differently; but latency always ≥ any interval's
			// in+comp contribution.
			for _, iv := range m.Intervals() {
				in, comp, _ := ev.CycleParts(iv.Start, iv.End, iv.Proc, 0, 0)
				if lat < in+comp-1e-9 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMetricsDominates(t *testing.T) {
	a := Metrics{Period: 1, Latency: 5}
	cases := []struct {
		b    Metrics
		want bool
	}{
		{Metrics{2, 6}, true},
		{Metrics{1, 6}, true},
		{Metrics{2, 5}, true},
		{Metrics{1, 5}, false}, // equal: no strict improvement
		{Metrics{0.5, 6}, false} /* better period */, {Metrics{2, 4}, false},
	}
	for _, c := range cases {
		if got := a.Dominates(c.b); got != c.want {
			t.Errorf("(%v).Dominates(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestProcessorOfAndClone(t *testing.T) {
	app, plat := app3(), plat3()
	m := MustNew(app, plat, []Interval{{1, 1, 2}, {2, 3, 1}})
	if m.ProcessorOf(1) != 2 || m.ProcessorOf(2) != 1 || m.ProcessorOf(3) != 1 {
		t.Errorf("ProcessorOf wrong: %d %d %d", m.ProcessorOf(1), m.ProcessorOf(2), m.ProcessorOf(3))
	}
	c := m.Clone()
	if c.String() != m.String() {
		t.Error("Clone differs")
	}
	procs := m.Processors()
	if len(procs) != 2 || procs[0] != 2 || procs[1] != 1 {
		t.Errorf("Processors() = %v", procs)
	}
}

func TestZeroCommunicationReducesToChains(t *testing.T) {
	// With all δ = 0 the period is exactly the heterogeneous 1D
	// partitioning objective max_j load_j / s_j (Theorem 2 setting).
	app := pipeline.MustNew([]float64{3, 1, 4, 1, 5}, make([]float64, 6))
	plat := platform.MustNew([]float64{2, 1}, 1)
	ev := NewEvaluator(app, plat)
	m := MustNew(app, plat, []Interval{{1, 3, 1}, {4, 5, 2}})
	// loads: 8/2 = 4, 6/1 = 6 → period 6; latency 4+6 = 10.
	if got := ev.Period(m); math.Abs(got-6) > 1e-12 {
		t.Errorf("Period = %g, want 6", got)
	}
	if got := ev.Latency(m); math.Abs(got-10) > 1e-12 {
		t.Errorf("Latency = %g, want 10", got)
	}
}

func TestFullyHeterogeneousEvaluation(t *testing.T) {
	app := pipeline.MustNew([]float64{4, 6}, []float64{0, 30, 0})
	links := [][]float64{{0, 3}, {3, 0}}
	plat, err := platform.NewFullyHeterogeneous([]float64{2, 2}, links)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(app, plat)
	m := MustNew(app, plat, []Interval{{1, 1, 1}, {2, 2, 2}})
	// cycle1 = 0 + 4/2 + 30/3 = 12; cycle2 = 30/3 + 6/2 + 0 = 13.
	if got := ev.Period(m); math.Abs(got-13) > 1e-12 {
		t.Errorf("Period = %g, want 13", got)
	}
	// latency = (0 + 2) + (10 + 3) + 0 = 15.
	if got := ev.Latency(m); math.Abs(got-15) > 1e-12 {
		t.Errorf("Latency = %g, want 15", got)
	}
}

func TestCyclePanicsOnHeterogeneous(t *testing.T) {
	app := pipeline.MustNew([]float64{1}, []float64{0, 0})
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(app, plat)
	defer func() {
		if recover() == nil {
			t.Error("Cycle on heterogeneous platform did not panic")
		}
	}()
	ev.Cycle(1, 1, 1)
}

func TestStringFormat(t *testing.T) {
	app, plat := app3(), plat3()
	m := MustNew(app, plat, []Interval{{1, 2, 3}, {3, 3, 1}})
	s := m.String()
	if !strings.Contains(s, "S1..S2→P3") || !strings.Contains(s, "S3→P1") {
		t.Errorf("String() = %q", s)
	}
}

func TestFrontier(t *testing.T) {
	metrics := []Metrics{
		{Period: 4, Latency: 4},  // on the front
		{Period: 3, Latency: 9},  // on the front
		{Period: 3, Latency: 12}, // dominated by index 1
		{Period: 5, Latency: 4},  // dominated by index 0
		{Period: 8, Latency: 2},  // on the front
		{Period: 3, Latency: 9},  // exact duplicate of index 1: dropped, index 1 kept
	}
	got := Frontier(metrics)
	want := []int{1, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("Frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Frontier = %v, want %v", got, want)
		}
	}
	if Frontier(nil) != nil {
		t.Fatal("Frontier(nil) != nil")
	}
}

func TestClassCycleMatchesEveryMember(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, p := 1+r.Intn(8), 1+r.Intn(10)
		works := make([]float64, n)
		for i := range works {
			works[i] = 0.5 + r.Float64()*20
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = r.Float64() * 30
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(4)) // few classes, many members
		}
		ev := NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 7))
		for d := 1; d <= n; d++ {
			for e := d; e <= n; e++ {
				for u := 1; u <= p; u++ {
					k := ev.Platform().ClassOf(u)
					// Bit-identical, not merely close: the compressed
					// exact DP depends on exact equality.
					if ev.ClassCycle(d, e, k) != ev.Cycle(d, e, u) {
						return false
					}
					ci, cc, co := ev.ClassCycleParts(d, e, k)
					i2, c2, o2 := ev.CycleParts(d, e, u, 0, 0)
					if ci != i2 || cc != c2 || co != o2 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClassCyclePartsPanicsOnHeterogeneous(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)
	defer func() {
		if recover() == nil {
			t.Error("ClassCycleParts on a heterogeneous platform did not panic")
		}
	}()
	ev.ClassCycleParts(1, 1, 0)
}

func TestProcessorOfBinarySearchProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		works := make([]float64, n)
		for i := range works {
			works[i] = 1
		}
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 1 + r.Float64()
		}
		app := pipeline.MustNew(works, make([]float64, n+1))
		plat := platform.MustNew(speeds, 1)
		// Random interval partition of [1..n], random distinct processors.
		procs := rand.New(rand.NewSource(seed + 1)).Perm(n)
		var ivs []Interval
		start := 1
		for start <= n {
			end := start + r.Intn(n-start+1)
			ivs = append(ivs, Interval{Start: start, End: end, Proc: procs[len(ivs)] + 1})
			start = end + 1
		}
		m := MustNew(app, plat, ivs)
		for k := 1; k <= n; k++ {
			want := 0
			for _, iv := range ivs { // reference linear scan
				if iv.Start <= k && k <= iv.End {
					want = iv.Proc
				}
			}
			if m.ProcessorOf(k) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProcessorOfPanicsOutsideRange(t *testing.T) {
	app, plat := app3(), plat3()
	m := MustNew(app, plat, []Interval{{1, 3, 1}})
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ProcessorOf(%d) did not panic", k)
				}
			}()
			m.ProcessorOf(k)
		}()
	}
}

// PeriodOf/LatencyOf must agree bit for bit with the Mapping-based
// evaluation: they are the scratch-buffer path the heuristic engines
// score candidates through.
func TestPeriodOfLatencyOfMatchMapping(t *testing.T) {
	app := pipeline.MustNew([]float64{3, 5, 2, 8, 1}, []float64{2, 4, 1, 3, 2, 5})
	for _, plat := range []*platform.Platform{
		platform.MustNew([]float64{4, 2, 3}, 7),
		mustFullyHet(t),
	} {
		ev := NewEvaluator(app, plat)
		for _, ivs := range [][]Interval{
			{{Start: 1, End: 5, Proc: 1}},
			{{Start: 1, End: 2, Proc: 2}, {Start: 3, End: 5, Proc: 1}},
			{{Start: 1, End: 1, Proc: 3}, {Start: 2, End: 4, Proc: 1}, {Start: 5, End: 5, Proc: 2}},
		} {
			m := MustNew(app, plat, ivs)
			if got, want := ev.PeriodOf(ivs), ev.Period(m); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%v: PeriodOf = %v, Period = %v", ivs, got, want)
			}
			if got, want := ev.LatencyOf(ivs), ev.Latency(m); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%v: LatencyOf = %v, Latency = %v", ivs, got, want)
			}
		}
	}
}

func mustFullyHet(t *testing.T) *platform.Platform {
	t.Helper()
	plat, err := platform.NewFullyHeterogeneous([]float64{4, 2, 3}, [][]float64{
		{0, 5, 2},
		{5, 0, 7},
		{2, 7, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plat
}

// OptimalLatencyValue must equal the second return of OptimalLatency and
// the direct evaluation of the single-processor mapping.
func TestOptimalLatencyValue(t *testing.T) {
	app := pipeline.MustNew([]float64{3, 5, 2}, []float64{2, 4, 1, 3})
	plat := platform.MustNew([]float64{4, 2, 9}, 7)
	ev := NewEvaluator(app, plat)
	m, lat := ev.OptimalLatency()
	if math.Float64bits(lat) != math.Float64bits(ev.OptimalLatencyValue()) {
		t.Errorf("OptimalLatencyValue %v != OptimalLatency %v", ev.OptimalLatencyValue(), lat)
	}
	if math.Float64bits(lat) != math.Float64bits(ev.Latency(m)) {
		t.Errorf("cached optimal latency %v != evaluated %v", lat, ev.Latency(m))
	}
}

// A Scratch lease is exclusive while held, and concurrent leases never
// alias each other's buffers. (Capacity retention across leases is a
// sync.Pool property the allocation-regression tests pin down; under
// -race the pool intentionally drops entries, so it cannot be asserted
// here.)
func TestScratchLease(t *testing.T) {
	app := pipeline.MustNew([]float64{3, 5, 2}, []float64{2, 4, 1, 3})
	ev := NewEvaluator(app, platform.MustNew([]float64{4, 2, 9}, 7))
	s := ev.LeaseScratch()
	s.Ivs = append(s.Ivs[:0], Interval{Start: 1, End: 3, Proc: 1})
	s.Cycles = append(s.Cycles[:0], 1.5)
	s.Procs = append(s.Procs[:0], 2, 3)
	s.Release()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sc := ev.LeaseScratch()
				sc.Procs = append(sc.Procs[:0], w)
				if sc.Procs[0] != w {
					t.Errorf("scratch shared across concurrent leases")
				}
				sc.Release()
			}
		}(w)
	}
	wg.Wait()
}
