package workload

import (
	"fmt"
	"math/rand"

	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// Custom describes a user-defined workload family for studies outside the
// paper's four presets: uniform ranges for communication sizes, stage
// works and integer processor speeds, plus the link bandwidth.
type Custom struct {
	DeltaMin, DeltaMax float64
	WorkMin, WorkMax   float64
	SpeedMinimum       int
	SpeedMaximum       int
	LinkBandwidth      float64
}

// Validate checks range sanity.
func (c Custom) Validate() error {
	if c.DeltaMin < 0 || c.DeltaMax < c.DeltaMin {
		return fmt.Errorf("workload: invalid δ range [%g, %g]", c.DeltaMin, c.DeltaMax)
	}
	if c.WorkMin <= 0 || c.WorkMax < c.WorkMin {
		return fmt.Errorf("workload: invalid work range [%g, %g]", c.WorkMin, c.WorkMax)
	}
	if c.SpeedMinimum < 1 || c.SpeedMaximum < c.SpeedMinimum {
		return fmt.Errorf("workload: invalid speed range [%d, %d]", c.SpeedMinimum, c.SpeedMaximum)
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("workload: invalid bandwidth %g", c.LinkBandwidth)
	}
	return nil
}

// GenerateCustom draws one instance from a custom family.
func GenerateCustom(c Custom, stages, processors int, seed int64) (Instance, error) {
	if err := c.Validate(); err != nil {
		return Instance{}, err
	}
	if stages < 1 || processors < 1 {
		return Instance{}, fmt.Errorf("workload: %d stages, %d processors", stages, processors)
	}
	r := rand.New(rand.NewSource(seed))
	works := make([]float64, stages)
	for i := range works {
		works[i] = uniform(r, c.WorkMin, c.WorkMax)
	}
	deltas := make([]float64, stages+1)
	for i := range deltas {
		deltas[i] = uniform(r, c.DeltaMin, c.DeltaMax)
	}
	speeds := make([]float64, processors)
	for i := range speeds {
		speeds[i] = float64(c.SpeedMinimum + r.Intn(c.SpeedMaximum-c.SpeedMinimum+1))
	}
	app, err := pipeline.New(works, deltas)
	if err != nil {
		return Instance{}, err
	}
	plat, err := platform.New(speeds, c.LinkBandwidth)
	if err != nil {
		return Instance{}, err
	}
	return Instance{App: app, Plat: plat}, nil
}

// PaperFamily returns the Custom equivalent of a preset family, so that
// user studies can start from a paper setting and perturb it.
func PaperFamily(f Family) Custom {
	dMin, dMax, wMin, wMax := f.Ranges()
	return Custom{
		DeltaMin: dMin, DeltaMax: dMax,
		WorkMin: wMin, WorkMax: wMax,
		SpeedMinimum: SpeedMin, SpeedMaximum: SpeedMax,
		LinkBandwidth: Bandwidth,
	}
}
