package workload

import (
	"testing"

	"pipesched/internal/mapping"
)

func TestFamilyMetadata(t *testing.T) {
	if len(Families()) != 4 {
		t.Fatalf("Families() = %v", Families())
	}
	wantNames := map[Family]string{E1: "E1", E2: "E2", E3: "E3", E4: "E4"}
	for f, name := range wantNames {
		if f.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), name)
		}
		if f.Description() == "unknown family" {
			t.Errorf("%s has no description", name)
		}
	}
	if Family(0).String() == "E0" {
		t.Error("invalid family rendered as valid")
	}
}

func TestRangesMatchPaper(t *testing.T) {
	cases := []struct {
		f                      Family
		dMin, dMax, wMin, wMax float64
	}{
		{E1, 10, 10, 1, 20},
		{E2, 1, 100, 1, 20},
		{E3, 1, 20, 10, 1000},
		{E4, 1, 20, 0.01, 10},
	}
	for _, c := range cases {
		dMin, dMax, wMin, wMax := c.f.Ranges()
		if dMin != c.dMin || dMax != c.dMax || wMin != c.wMin || wMax != c.wMax {
			t.Errorf("%s ranges = (%g,%g,%g,%g), want (%g,%g,%g,%g)",
				c.f, dMin, dMax, wMin, wMax, c.dMin, c.dMax, c.wMin, c.wMax)
		}
	}
}

func TestRangesPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ranges on invalid family did not panic")
		}
	}()
	Family(9).Ranges()
}

func TestGenerateRespectsRanges(t *testing.T) {
	for _, f := range Families() {
		dMin, dMax, wMin, wMax := f.Ranges()
		for seed := int64(0); seed < 30; seed++ {
			in := Generate(Config{Family: f, Stages: 20, Processors: 10, Seed: seed})
			if in.App.Stages() != 20 {
				t.Fatalf("%s: %d stages", f, in.App.Stages())
			}
			if in.Plat.Processors() != 10 {
				t.Fatalf("%s: %d processors", f, in.Plat.Processors())
			}
			if in.Plat.Bandwidth() != Bandwidth {
				t.Fatalf("%s: bandwidth %g", f, in.Plat.Bandwidth())
			}
			for k := 1; k <= 20; k++ {
				if w := in.App.Work(k); w < wMin || w > wMax {
					t.Fatalf("%s seed %d: w_%d = %g outside [%g,%g]", f, seed, k, w, wMin, wMax)
				}
			}
			for k := 0; k <= 20; k++ {
				if d := in.App.Delta(k); d < dMin || d > dMax {
					t.Fatalf("%s seed %d: δ_%d = %g outside [%g,%g]", f, seed, k, d, dMin, dMax)
				}
			}
			for u := 1; u <= 10; u++ {
				s := in.Plat.Speed(u)
				if s < SpeedMin || s > SpeedMax || s != float64(int(s)) {
					t.Fatalf("%s seed %d: speed %g not an integer in [%d,%d]", f, seed, s, SpeedMin, SpeedMax)
				}
			}
		}
	}
}

func TestE1CommunicationsHomogeneous(t *testing.T) {
	in := Generate(Config{Family: E1, Stages: 15, Processors: 5, Seed: 3})
	for k := 0; k <= 15; k++ {
		if in.App.Delta(k) != 10 {
			t.Fatalf("E1 δ_%d = %g, want 10", k, in.App.Delta(k))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Family: E2, Stages: 10, Processors: 10, Seed: 77}
	a, b := Generate(cfg), Generate(cfg)
	for k := 1; k <= 10; k++ {
		if a.App.Work(k) != b.App.Work(k) {
			t.Fatal("same seed, different works")
		}
	}
	for u := 1; u <= 10; u++ {
		if a.Plat.Speed(u) != b.Plat.Speed(u) {
			t.Fatal("same seed, different speeds")
		}
	}
	c := Generate(Config{Family: E2, Stages: 10, Processors: 10, Seed: 78})
	same := true
	for k := 1; k <= 10; k++ {
		if a.App.Work(k) != c.App.Work(k) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical works")
	}
}

func TestGenerateSetSeedsArePrefixStable(t *testing.T) {
	small := GenerateSet(E3, 5, 10, 3, 100)
	large := GenerateSet(E3, 5, 10, 10, 100)
	for i := range small {
		if small[i].App.Work(1) != large[i].App.Work(1) {
			t.Fatalf("instance %d differs between set sizes", i)
		}
	}
	if len(large) != 10 {
		t.Fatalf("len = %d", len(large))
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no stages":     {Family: E1, Stages: 0, Processors: 1},
		"no processors": {Family: E1, Stages: 1, Processors: 0},
		"bad family":    {Family: 0, Stages: 1, Processors: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestEvaluatorBinding(t *testing.T) {
	in := Generate(Config{Family: E4, Stages: 8, Processors: 4, Seed: 5})
	ev := in.Evaluator()
	if ev.Pipeline() != in.App || ev.Platform() != in.Plat {
		t.Error("Evaluator did not bind the instance's own pair")
	}
	m := mapping.SingleProcessor(in.App, in.Plat, in.Plat.Fastest())
	if ev.Period(m) <= 0 || ev.Latency(m) <= 0 {
		t.Error("degenerate metrics on a generated instance")
	}
}

func TestPaperConstants(t *testing.T) {
	if got := PaperStages(); len(got) != 4 || got[0] != 5 || got[3] != 40 {
		t.Errorf("PaperStages() = %v", got)
	}
	if got := PaperProcessors(); len(got) != 2 || got[0] != 10 || got[1] != 100 {
		t.Errorf("PaperProcessors() = %v", got)
	}
	if PaperTrials != 50 {
		t.Errorf("PaperTrials = %d", PaperTrials)
	}
}

func TestGenerateCustom(t *testing.T) {
	c := Custom{
		DeltaMin: 2, DeltaMax: 4,
		WorkMin: 10, WorkMax: 20,
		SpeedMinimum: 3, SpeedMaximum: 5,
		LinkBandwidth: 7,
	}
	in, err := GenerateCustom(c, 12, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if in.App.Stages() != 12 || in.Plat.Processors() != 6 || in.Plat.Bandwidth() != 7 {
		t.Fatalf("shape wrong: %v / %v", in.App, in.Plat)
	}
	for k := 1; k <= 12; k++ {
		if w := in.App.Work(k); w < 10 || w > 20 {
			t.Errorf("w_%d = %g outside range", k, w)
		}
	}
	for k := 0; k <= 12; k++ {
		if d := in.App.Delta(k); d < 2 || d > 4 {
			t.Errorf("δ_%d = %g outside range", k, d)
		}
	}
	for u := 1; u <= 6; u++ {
		if s := in.Plat.Speed(u); s < 3 || s > 5 {
			t.Errorf("speed %d = %g outside range", u, s)
		}
	}
}

func TestGenerateCustomValidation(t *testing.T) {
	valid := Custom{DeltaMin: 0, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 1}
	bad := []Custom{
		{DeltaMin: -1, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 2, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 0, DeltaMax: 1, WorkMin: 0, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 0, DeltaMax: 1, WorkMin: 3, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 0, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 0, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 0, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 3, SpeedMaximum: 2, LinkBandwidth: 1},
		{DeltaMin: 0, DeltaMax: 1, WorkMin: 1, WorkMax: 2, SpeedMinimum: 1, SpeedMaximum: 2, LinkBandwidth: 0},
	}
	for i, c := range bad {
		if _, err := GenerateCustom(c, 2, 2, 1); err == nil {
			t.Errorf("bad custom %d accepted", i)
		}
	}
	if _, err := GenerateCustom(valid, 0, 2, 1); err == nil {
		t.Error("zero stages accepted")
	}
	if _, err := GenerateCustom(valid, 2, 0, 1); err == nil {
		t.Error("zero processors accepted")
	}
}

func TestPaperFamilyEquivalence(t *testing.T) {
	// A Custom built from a preset must draw from identical ranges; with
	// the same seed it produces the exact same instance because both use
	// the same draw order.
	for _, f := range Families() {
		preset := Generate(Config{Family: f, Stages: 7, Processors: 4, Seed: 13})
		custom, err := GenerateCustom(PaperFamily(f), 7, 4, 13)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 7; k++ {
			if preset.App.Work(k) != custom.App.Work(k) {
				t.Fatalf("%s: works differ at %d", f, k)
			}
		}
		for u := 1; u <= 4; u++ {
			if preset.Plat.Speed(u) != custom.Plat.Speed(u) {
				t.Fatalf("%s: speeds differ at %d", f, u)
			}
		}
	}
}
