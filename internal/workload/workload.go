// Package workload generates the random applications and platforms of the
// paper's experimental setting (Section 5.1): four experiment families E1–
// E4 over n ∈ {5,10,20,40} stages and p ∈ {10,100} processors, with fixed
// link bandwidth b = 10 and integer processor speeds uniform on [1,20].
// All draws are reproducible from a seed.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// Family identifies one of the paper's four experiment families.
type Family int

const (
	// E1: balanced communications/computations, homogeneous
	// communications — δ_i = 10 fixed, w ~ U[1,20].
	E1 Family = iota + 1
	// E2: balanced communications/computations, heterogeneous
	// communications — δ ~ U[1,100], w ~ U[1,20].
	E2
	// E3: large computations — δ ~ U[1,20], w ~ U[10,1000].
	E3
	// E4: small computations — δ ~ U[1,20], w ~ U[0.01,10].
	E4
)

// Families lists all four families in order.
func Families() []Family { return []Family{E1, E2, E3, E4} }

// String returns "E1".."E4".
func (f Family) String() string {
	if f < E1 || f > E4 {
		return fmt.Sprintf("Family(%d)", int(f))
	}
	return fmt.Sprintf("E%d", int(f))
}

// Description returns the paper's one-line description of the family.
func (f Family) Description() string {
	switch f {
	case E1:
		return "balanced communication/computation, homogeneous communications"
	case E2:
		return "balanced communications/computations, heterogeneous communications"
	case E3:
		return "large computations"
	case E4:
		return "small computations"
	default:
		return "unknown family"
	}
}

// Ranges returns the application parameter ranges of the family:
// communication sizes drawn on [DeltaMin, DeltaMax] (fixed when equal) and
// stage works on [WorkMin, WorkMax].
func (f Family) Ranges() (deltaMin, deltaMax, workMin, workMax float64) {
	switch f {
	case E1:
		return 10, 10, 1, 20
	case E2:
		return 1, 100, 1, 20
	case E3:
		return 1, 20, 10, 1000
	case E4:
		return 1, 20, 0.01, 10
	default:
		panic(fmt.Sprintf("workload: invalid family %d", int(f)))
	}
}

// Bandwidth is the fixed link bandwidth of every experiment (b = 10).
const Bandwidth = 10.0

// SpeedMin and SpeedMax bound the integer processor speeds.
const (
	SpeedMin = 1
	SpeedMax = 20
)

// Config describes one random application/platform pair to generate.
type Config struct {
	Family     Family
	Stages     int   // n
	Processors int   // p
	Seed       int64 // RNG seed; equal configs generate equal instances
}

// Instance is one generated application/platform pair. Its JSON form
// ({"pipeline": ..., "platform": ...}) is the interchange format of the
// command-line tools.
type Instance struct {
	App  *pipeline.Pipeline
	Plat *platform.Platform
}

type instanceJSON struct {
	Pipeline *pipeline.Pipeline `json:"pipeline"`
	Platform *platform.Platform `json:"platform"`
}

// MarshalJSON encodes the instance.
func (in Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{Pipeline: in.App, Platform: in.Plat})
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var j instanceJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Pipeline == nil || j.Platform == nil {
		return fmt.Errorf("workload: instance needs both \"pipeline\" and \"platform\"")
	}
	in.App, in.Plat = j.Pipeline, j.Platform
	return nil
}

// Evaluator binds the pair into a cost-model evaluator.
func (in Instance) Evaluator() *mapping.Evaluator {
	return mapping.NewEvaluator(in.App, in.Plat)
}

// Generate draws one instance of the family. It panics on invalid
// configuration (family out of range, non-positive sizes), which always
// indicates a programming error in the harness.
func Generate(cfg Config) Instance {
	if cfg.Stages < 1 {
		panic(fmt.Sprintf("workload: %d stages", cfg.Stages))
	}
	if cfg.Processors < 1 {
		panic(fmt.Sprintf("workload: %d processors", cfg.Processors))
	}
	dMin, dMax, wMin, wMax := cfg.Family.Ranges()
	r := rand.New(rand.NewSource(cfg.Seed))
	works := make([]float64, cfg.Stages)
	for i := range works {
		works[i] = uniform(r, wMin, wMax)
	}
	deltas := make([]float64, cfg.Stages+1)
	for i := range deltas {
		deltas[i] = uniform(r, dMin, dMax)
	}
	speeds := make([]float64, cfg.Processors)
	for i := range speeds {
		speeds[i] = float64(SpeedMin + r.Intn(SpeedMax-SpeedMin+1))
	}
	return Instance{
		App:  pipeline.MustNew(works, deltas),
		Plat: platform.MustNew(speeds, Bandwidth),
	}
}

func uniform(r *rand.Rand, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// GenerateSet draws count independent instances; instance i uses seed
// baseSeed + i, so sets with overlapping seed ranges share instances —
// deliberate, to let quick runs reuse prefixes of full runs.
func GenerateSet(family Family, stages, processors, count int, baseSeed int64) []Instance {
	out := make([]Instance, count)
	for i := range out {
		out[i] = Generate(Config{
			Family:     family,
			Stages:     stages,
			Processors: processors,
			Seed:       baseSeed + int64(i),
		})
	}
	return out
}

// PaperStages lists the stage counts the paper sweeps.
func PaperStages() []int { return []int{5, 10, 20, 40} }

// PaperProcessors lists the platform sizes the paper sweeps.
func PaperProcessors() []int { return []int{10, 100} }

// PaperTrials is the number of random application/platform pairs averaged
// per reported value in the paper.
const PaperTrials = 50
