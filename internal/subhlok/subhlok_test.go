package subhlok

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// randIdentical builds a random instance with identical processor speeds.
func randIdentical(r *rand.Rand, maxN, maxP int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 1 + r.Intn(maxP)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	s := float64(1 + r.Intn(20))
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = s
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

// The polynomial DP must agree with the exponential bitmask DP.
func TestMinPeriodMatchesExponentialSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randIdentical(r, 8, 5)
		poly, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		expo, err := exact.MinPeriod(ev)
		if err != nil {
			return false
		}
		return math.Abs(poly.Metrics.Period-expo.Metrics.Period) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyUnderPeriodMatchesExponentialSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randIdentical(r, 7, 4)
		opt, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		maxP := ev.Period(single)
		bound := opt.Metrics.Period + r.Float64()*(maxP-opt.Metrics.Period)
		poly, err := MinLatencyUnderPeriod(ev, bound)
		if err != nil {
			return false
		}
		expo, err := exact.MinLatencyUnderPeriod(ev, bound)
		if err != nil {
			return false
		}
		if poly.Metrics.Period > bound*(1+1e-9) {
			return false
		}
		return math.Abs(poly.Metrics.Latency-expo.Metrics.Latency) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinPeriodUnderLatencyMatchesExponentialSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randIdentical(r, 6, 4)
		_, optLat := ev.OptimalLatency()
		bound := optLat * (1 + 1.5*r.Float64())
		poly, err := MinPeriodUnderLatency(ev, bound)
		if err != nil {
			return false
		}
		expo, err := exact.MinPeriodUnderLatency(ev, bound)
		if err != nil {
			return false
		}
		if poly.Metrics.Latency > bound*(1+1e-9) {
			return false
		}
		return math.Abs(poly.Metrics.Period-expo.Metrics.Period) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontMatchesExponentialSolver(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randIdentical(r, 6, 4)
		poly, err := ParetoFront(ev)
		if err != nil || len(poly) == 0 {
			return false
		}
		expo, err := exact.ParetoFront(ev)
		if err != nil {
			return false
		}
		if len(poly) != len(expo) {
			return false
		}
		for i := range poly {
			if math.Abs(poly[i].Metrics.Period-expo[i].Metrics.Period) > 1e-9 {
				return false
			}
			if math.Abs(poly[i].Metrics.Latency-expo[i].Metrics.Latency) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The paper's heuristics on identical-speed platforms can never beat the
// polynomial optimum — and the optimum is reachable in polynomial time,
// which is the whole point of the Subhlok–Vondran special case.
func TestHeuristicsBoundedByPolynomialOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randIdentical(r, 10, 6)
		opt, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		for _, h := range heuristics.PeriodHeuristics() {
			th, err := heuristics.MinAchievablePeriod(ev, h)
			if err != nil || th < opt.Metrics.Period-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRejectsDifferentSpeeds(t *testing.T) {
	ev := mapping.NewEvaluator(
		pipeline.MustNew([]float64{1, 2}, make([]float64, 3)),
		platform.MustNew([]float64{1, 2}, 10))
	if _, err := MinPeriod(ev); !errors.Is(err, ErrNotIdentical) {
		t.Errorf("MinPeriod err = %v", err)
	}
	if _, err := MinLatencyUnderPeriod(ev, 10); !errors.Is(err, ErrNotIdentical) {
		t.Errorf("MinLatencyUnderPeriod err = %v", err)
	}
	if _, err := MinPeriodUnderLatency(ev, 10); !errors.Is(err, ErrNotIdentical) {
		t.Errorf("MinPeriodUnderLatency err = %v", err)
	}
	if _, err := ParetoFront(ev); !errors.Is(err, ErrNotIdentical) {
		t.Errorf("ParetoFront err = %v", err)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	ev := mapping.NewEvaluator(
		pipeline.MustNew([]float64{10}, []float64{0, 0}),
		platform.MustNew([]float64{2, 2}, 1))
	if _, err := MinLatencyUnderPeriod(ev, 4.9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("period bound below optimum: err = %v", err)
	}
	if _, err := MinPeriodUnderLatency(ev, 4.9); !errors.Is(err, ErrInfeasible) {
		t.Errorf("latency bound below optimum: err = %v", err)
	}
}

func TestKnownInstance(t *testing.T) {
	// w = {4, 4}, δ = {0, 8, 0}, two speed-2 processors, b = 2.
	// Single interval: cycle = 0 + 8/2 + 0 = 4.
	// Split: cycles = 4/2 + 8/2 = 6 each → period 6. So min period = 4
	// with the single interval; the split only ever loses here.
	app := pipeline.MustNew([]float64{4, 4}, []float64{0, 8, 0})
	plat := platform.MustNew([]float64{2, 2}, 2)
	ev := mapping.NewEvaluator(app, plat)
	res, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Period-4) > 1e-9 || res.Mapping.Size() != 1 {
		t.Errorf("MinPeriod = %+v %v, want period 4 on one interval", res.Metrics, res.Mapping)
	}
	// Now make the middle transfer cheap: δ = {0, 2, 0}. Split cycles =
	// 2 + 1 = 3 → period 3 beats 4.
	app2 := pipeline.MustNew([]float64{4, 4}, []float64{0, 2, 0})
	ev2 := mapping.NewEvaluator(app2, plat)
	res2, err := MinPeriod(ev2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Metrics.Period-3) > 1e-9 || res2.Mapping.Size() != 2 {
		t.Errorf("MinPeriod = %+v %v, want period 3 on two intervals", res2.Metrics, res2.Mapping)
	}
}

// Latency structure: with identical speeds latency = const + Σ δ at cuts;
// the min-latency mapping under a loose period bound must therefore be the
// single interval whenever it fits.
func TestLatencyReducesToCutSelection(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ev := randIdentical(r, 8, 4)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		p0 := ev.Period(single)
		res, err := MinLatencyUnderPeriod(ev, p0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mapping.Size() != 1 {
			t.Errorf("trial %d: loose bound produced %d intervals", trial, res.Mapping.Size())
		}
	}
}
