// Package subhlok solves the identical-speed special case of the paper's
// mapping problem in polynomial time, after Subhlok and Vondran's optimal
// latency–throughput algorithms for homogeneous platforms (PPoPP'95 /
// SPAA'96, references [19, 20] of the paper — the work the paper
// explicitly extends to different-speed processors).
//
// With equal processor speeds the permutation component of
// Hetero-1D-Partition disappears: processors are interchangeable, so the
// optimal interval mapping follows from dynamic programming over prefixes
// alone, in O(n²·p) per query. This package therefore provides exact
// polynomial counterparts of everything that is NP-hard on
// Communication Homogeneous platforms:
//
//   - MinPeriod: the optimal period;
//   - MinLatencyUnderPeriod / MinPeriodUnderLatency: the bi-criteria
//     optima;
//   - ParetoFront: the full trade-off curve.
//
// The test-suite cross-checks these against the exponential solvers of
// package exact on equal-speed instances — two independent algorithms, one
// polynomial and one exponential, agreeing on the same optimum.
package subhlok

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// ErrNotIdentical is returned when the platform's processors do not all
// have the same speed.
var ErrNotIdentical = errors.New("subhlok: platform processors must have identical speeds")

// ErrInfeasible is returned when no interval mapping satisfies the
// requested constraint.
var ErrInfeasible = errors.New("subhlok: no interval mapping satisfies the constraint")

// Result is an optimal mapping with its metrics.
type Result struct {
	Mapping *mapping.Mapping
	Metrics mapping.Metrics
}

func guard(ev *mapping.Evaluator) (speed float64, err error) {
	plat := ev.Platform()
	if plat.Kind() != platform.CommHomogeneous {
		return 0, errors.New("subhlok: comm-homogeneous platforms only")
	}
	s := plat.Speed(1)
	for u := 2; u <= plat.Processors(); u++ {
		if plat.Speed(u) != s {
			return 0, ErrNotIdentical
		}
	}
	return s, nil
}

// cut solves the core dynamic program: partition [1..n] into at most p
// intervals minimising either the bottleneck cycle (period objective) or
// the cut-communication sum (latency objective) subject to a cycle cap.
//
// With identical speeds the latency of a mapping is
//
//	δ_0/b + Σ_{cuts c} δ_c/b + W/s + δ_n/b
//
// — only the set of cut points matters — so minimising latency under a
// period cap means choosing the cheapest cut set whose intervals all fit
// the cap.
func cut(ev *mapping.Evaluator, maxIntervals int, cycleCap float64, minimizeCuts bool) ([]int, bool) {
	app, plat := ev.Pipeline(), ev.Platform()
	n := app.Stages()
	b := plat.Bandwidth()
	s := plat.Speed(1)
	cycle := func(d, e int) float64 {
		return app.Delta(d-1)/b + app.IntervalWork(d, e)/s + app.Delta(e)/b
	}
	const inf = math.MaxFloat64
	slack := cycleCap * (1 + 1e-12)
	// f[j][i]: best value for stages 1..i in exactly j intervals.
	// Value = bottleneck cycle (minimizeCuts=false) or Σ δ at cuts
	// (minimizeCuts=true).
	f := make([][]float64, maxIntervals+1)
	back := make([][]int, maxIntervals+1)
	for j := range f {
		f[j] = make([]float64, n+1)
		back[j] = make([]int, n+1)
		for i := range f[j] {
			f[j][i] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= maxIntervals; j++ {
		for i := j; i <= n; i++ {
			for k := j - 1; k < i; k++ {
				if f[j-1][k] == inf {
					continue
				}
				c := cycle(k+1, i)
				if c > slack {
					continue
				}
				var cand float64
				if minimizeCuts {
					cand = f[j-1][k]
					if k > 0 {
						cand += app.Delta(k) / b
					}
				} else {
					cand = f[j-1][k]
					if c > cand {
						cand = c
					}
				}
				if cand < f[j][i] {
					f[j][i] = cand
					back[j][i] = k
				}
			}
		}
	}
	bestJ, best := 0, inf
	for j := 1; j <= maxIntervals; j++ {
		if f[j][n] < best {
			best, bestJ = f[j][n], j
		}
	}
	if bestJ == 0 {
		return nil, false
	}
	ends := make([]int, bestJ)
	i := n
	for j := bestJ; j >= 1; j-- {
		ends[j-1] = i
		i = back[j][i]
	}
	return ends, true
}

// toMapping turns interval end points into a Mapping on processors
// 1, 2, ... (any distinct choice is optimal — identical speeds).
func toMapping(ev *mapping.Evaluator, ends []int) (*mapping.Mapping, error) {
	ivs := make([]mapping.Interval, len(ends))
	start := 1
	for j, e := range ends {
		ivs[j] = mapping.Interval{Start: start, End: e, Proc: j + 1}
		start = e + 1
	}
	return mapping.New(ev.Pipeline(), ev.Platform(), ivs)
}

// MinPeriod returns the optimal-period interval mapping, in O(n²·p) time.
func MinPeriod(ev *mapping.Evaluator) (Result, error) {
	if _, err := guard(ev); err != nil {
		return Result{}, err
	}
	p := ev.Platform().Processors()
	ends, ok := cut(ev, p, math.Inf(1), false)
	if !ok {
		return Result{}, fmt.Errorf("subhlok: internal error, unconstrained cut failed")
	}
	m, err := toMapping(ev, ends)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// MinLatencyUnderPeriod returns the minimum-latency mapping among those of
// period ≤ maxPeriod, in O(n²·p) time.
func MinLatencyUnderPeriod(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	if _, err := guard(ev); err != nil {
		return Result{}, err
	}
	p := ev.Platform().Processors()
	ends, ok := cut(ev, p, maxPeriod, true)
	if !ok {
		return Result{}, ErrInfeasible
	}
	m, err := toMapping(ev, ends)
	if err != nil {
		return Result{}, err
	}
	return Result{Mapping: m, Metrics: ev.Metrics(m)}, nil
}

// MinPeriodUnderLatency returns the minimum-period mapping among those of
// latency ≤ maxLatency: a bisection over the O(n²) candidate cycle values,
// each probe an O(n²·p) DP.
func MinPeriodUnderLatency(ev *mapping.Evaluator, maxLatency float64) (Result, error) {
	if _, err := guard(ev); err != nil {
		return Result{}, err
	}
	cands := candidateCycles(ev)
	feasible := func(period float64) (Result, bool) {
		res, err := MinLatencyUnderPeriod(ev, period)
		if err != nil {
			return Result{}, false
		}
		return res, res.Metrics.Latency <= maxLatency*(1+1e-12)
	}
	lo, hi := 0, len(cands)-1
	if _, ok := feasible(cands[hi]); !ok {
		return Result{}, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := feasible(cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res, ok := feasible(cands[lo])
	if !ok {
		return Result{}, fmt.Errorf("subhlok: bisection lost feasibility at %g", cands[lo])
	}
	return res, nil
}

func candidateCycles(ev *mapping.Evaluator) []float64 {
	app, plat := ev.Pipeline(), ev.Platform()
	n := app.Stages()
	b := plat.Bandwidth()
	s := plat.Speed(1)
	cands := make([]float64, 0, n*(n+1)/2)
	for d := 1; d <= n; d++ {
		for e := d; e <= n; e++ {
			cands = append(cands, app.Delta(d-1)/b+app.IntervalWork(d, e)/s+app.Delta(e)/b)
		}
	}
	sort.Float64s(cands)
	return cands
}

// ParetoPoint is one non-dominated (period, latency) trade-off.
type ParetoPoint struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}

// ParetoFront returns the exact trade-off curve over all interval
// mappings, sorted by increasing period, in O(n⁴·p) total time — entirely
// polynomial, in contrast to the exponential exact.ParetoFront needed for
// different-speed platforms.
func ParetoFront(ev *mapping.Evaluator) ([]ParetoPoint, error) {
	if _, err := guard(ev); err != nil {
		return nil, err
	}
	var points []ParetoPoint
	prevLat := math.Inf(1)
	for _, c := range candidateCycles(ev) {
		res, err := MinLatencyUnderPeriod(ev, c)
		if err != nil {
			continue
		}
		if res.Metrics.Latency < prevLat-1e-12 {
			points = append(points, ParetoPoint{Metrics: res.Metrics, Mapping: res.Mapping})
			prevLat = res.Metrics.Latency
		}
	}
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []ParetoPoint
	bestLat := math.Inf(1)
	for _, pt := range points {
		if pt.Metrics.Latency < bestLat-1e-12 {
			front = append(front, pt)
			bestLat = pt.Metrics.Latency
		}
	}
	return front, nil
}
