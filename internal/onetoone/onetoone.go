// Package onetoone solves the restricted mapping class the paper discusses
// before generalising to intervals (Section 2): one-to-one mappings, where
// each stage runs on a distinct processor (requires n ≤ p).
//
// Under the paper's cost model a one-to-one mapping alloc has
//
//	period  = max_k ( δ_{k-1}/b + w_k/s_alloc(k) + δ_k/b )
//	latency = Σ_k ( δ_{k-1}/b + w_k/s_alloc(k) ) + δ_n/b
//
// Unlike the interval problem, both single-criterion optima are polynomial
// here: minimum latency follows from the rearrangement inequality (heaviest
// stage on fastest processor), and minimum period is a bottleneck
// assignment problem solved by bisecting over the O(n·p) candidate cycle
// values with a bipartite matching feasibility test.
package onetoone

import (
	"errors"
	"fmt"
	"sort"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// ErrTooFewProcessors is returned when n > p.
var ErrTooFewProcessors = errors.New("onetoone: more stages than processors")

func guard(ev *mapping.Evaluator) error {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return errors.New("onetoone: comm-homogeneous platforms only")
	}
	if ev.Pipeline().Stages() > ev.Platform().Processors() {
		return ErrTooFewProcessors
	}
	return nil
}

// assignmentMapping converts alloc (stage k → processor alloc[k-1]) into a
// Mapping of singleton intervals.
func assignmentMapping(ev *mapping.Evaluator, alloc []int) (*mapping.Mapping, error) {
	ivs := make([]mapping.Interval, len(alloc))
	for i, u := range alloc {
		ivs[i] = mapping.Interval{Start: i + 1, End: i + 1, Proc: u}
	}
	return mapping.New(ev.Pipeline(), ev.Platform(), ivs)
}

// MinLatency returns the latency-optimal one-to-one mapping: stages sorted
// by decreasing work take processors sorted by decreasing speed (exact by
// the rearrangement inequality — the latency is Σ w_k/s_alloc(k) plus
// assignment-independent communication terms).
func MinLatency(ev *mapping.Evaluator) (*mapping.Mapping, mapping.Metrics, error) {
	if err := guard(ev); err != nil {
		return nil, mapping.Metrics{}, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n := app.Stages()
	stages := make([]int, n)
	for i := range stages {
		stages[i] = i + 1
	}
	sort.SliceStable(stages, func(a, b int) bool { return app.Work(stages[a]) > app.Work(stages[b]) })
	order := plat.FastestFirst()
	alloc := make([]int, n)
	for rank, k := range stages {
		alloc[k-1] = order[rank]
	}
	m, err := assignmentMapping(ev, alloc)
	if err != nil {
		return nil, mapping.Metrics{}, err
	}
	return m, ev.Metrics(m), nil
}

// MinPeriod returns the period-optimal one-to-one mapping. The period only
// takes values among the n·p single-stage cycle-times, so the solver
// bisects that candidate set; feasibility of a bound K is a bipartite
// matching between stages and the processors fast enough for them, decided
// by Kuhn's augmenting-path algorithm in O(n·n·p) per probe.
func MinPeriod(ev *mapping.Evaluator) (*mapping.Mapping, mapping.Metrics, error) {
	if err := guard(ev); err != nil {
		return nil, mapping.Metrics{}, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cycle := func(k, u int) float64 { return ev.Cycle(k, k, u) }
	cands := make([]float64, 0, n*p)
	for k := 1; k <= n; k++ {
		for u := 1; u <= p; u++ {
			cands = append(cands, cycle(k, u))
		}
	}
	sort.Float64s(cands)
	lo, hi := 0, len(cands)-1
	if _, ok := matchUnder(ev, cands[hi]); !ok {
		// Matching every stage to its own fastest-possible processor:
		// with n ≤ p and the largest candidate bound this always
		// succeeds (every edge admissible).
		return nil, mapping.Metrics{}, errors.New("onetoone: internal error, loosest bound infeasible")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok := matchUnder(ev, cands[mid]); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	alloc, ok := matchUnder(ev, cands[lo])
	if !ok {
		return nil, mapping.Metrics{}, fmt.Errorf("onetoone: bisection lost feasibility at %g", cands[lo])
	}
	m, err := assignmentMapping(ev, alloc)
	if err != nil {
		return nil, mapping.Metrics{}, err
	}
	return m, ev.Metrics(m), nil
}

// matchUnder attempts a perfect matching of stages onto processors using
// only pairs with cycle ≤ bound (tolerating float noise).
func matchUnder(ev *mapping.Evaluator, bound float64) ([]int, bool) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	slack := bound * (1 + 1e-12)
	adj := make([][]int, n) // stage index → admissible processors
	for k := 1; k <= n; k++ {
		for u := 1; u <= p; u++ {
			if ev.Cycle(k, k, u) <= slack {
				adj[k-1] = append(adj[k-1], u)
			}
		}
	}
	procOf := make([]int, n)    // stage → matched processor (0 = none)
	stageOf := make([]int, p+1) // processor → matched stage (0 = none)
	var try func(k int, seen []bool) bool
	try = func(k int, seen []bool) bool {
		for _, u := range adj[k] {
			if seen[u] {
				continue
			}
			seen[u] = true
			if stageOf[u] == 0 || try(stageOf[u]-1, seen) {
				stageOf[u] = k + 1
				procOf[k] = u
				return true
			}
		}
		return false
	}
	for k := 0; k < n; k++ {
		seen := make([]bool, p+1)
		if !try(k, seen) {
			return nil, false
		}
	}
	return procOf, true
}

// Greedy returns the fast heuristic one-to-one mapping used as a baseline:
// stages in pipeline order take processors fastest-first. It is cheap and
// often poor — exactly why it makes a useful comparison point in the
// ablation benchmarks.
func Greedy(ev *mapping.Evaluator) (*mapping.Mapping, mapping.Metrics, error) {
	if err := guard(ev); err != nil {
		return nil, mapping.Metrics{}, err
	}
	n := ev.Pipeline().Stages()
	order := ev.Platform().FastestFirst()
	alloc := make([]int, n)
	copy(alloc, order[:n])
	m, err := assignmentMapping(ev, alloc)
	if err != nil {
		return nil, mapping.Metrics{}, err
	}
	return m, ev.Metrics(m), nil
}
