package onetoone

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func TestAssignMinCostKnown(t *testing.T) {
	// Classic 3×3: optimal total is 5 (1+3+1 → rows to cols 0,2,1).
	cost := [][]float64{
		{1, 2, 3},
		{2, 4, 3},
		{3, 1, 2},
	}
	alloc, total, ok := assignMinCost(cost)
	if !ok {
		t.Fatal("feasible instance reported infeasible")
	}
	if math.Abs(total-6) > 1e-12 { // 1 + 3 + 1? verify by brute force below
		// brute force all permutations of 3
		best := math.Inf(1)
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for _, p := range perms {
			s := 0.0
			for i, j := range p {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
		}
		if math.Abs(total-best) > 1e-12 {
			t.Fatalf("total %g, brute force %g (alloc %v)", total, best, alloc)
		}
	}
	// The returned alloc must be a valid injection realising the total.
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range alloc {
		if j < 1 || j > 3 || seen[j] {
			t.Fatalf("invalid alloc %v", alloc)
		}
		seen[j] = true
		sum += cost[i][j-1]
	}
	if math.Abs(sum-total) > 1e-12 {
		t.Fatalf("alloc sum %g ≠ total %g", sum, total)
	}
}

func TestAssignMinCostMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := n + r.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if r.Float64() < 0.15 {
					cost[i][j] = math.Inf(1) // forbidden
				} else {
					cost[i][j] = float64(r.Intn(50))
				}
			}
		}
		alloc, total, ok := assignMinCost(cost)
		// Brute force over injections.
		best := math.Inf(1)
		used := make([]bool, m)
		var rec func(i int, cur float64)
		rec = func(i int, cur float64) {
			if cur >= best {
				return
			}
			if i == n {
				best = cur
				return
			}
			for j := 0; j < m; j++ {
				if used[j] || math.IsInf(cost[i][j], 1) {
					continue
				}
				used[j] = true
				rec(i+1, cur+cost[i][j])
				used[j] = false
			}
		}
		rec(0, 0)
		if math.IsInf(best, 1) {
			return !ok
		}
		if !ok {
			return false
		}
		if math.Abs(total-best) > 1e-9 {
			return false
		}
		// alloc realises total.
		sum := 0.0
		seen := make(map[int]bool)
		for i, j := range alloc {
			if j < 1 || j > m || seen[j] {
				return false
			}
			seen[j] = true
			sum += cost[i][j-1]
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyUnderPeriodExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5)
		// Period bound between the one-to-one optimum and a loose value.
		_, optMet, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		bound := optMet.Period * (1 + r.Float64())
		m, met, err := MinLatencyUnderPeriod(ev, bound)
		if err != nil {
			return false // must be feasible: bound ≥ one-to-one optimum
		}
		if met.Period > bound*(1+1e-9) {
			return false
		}
		// Brute force the same objective.
		app, plat := ev.Pipeline(), ev.Platform()
		n, p := app.Stages(), plat.Processors()
		best := math.Inf(1)
		alloc := make([]int, n)
		used := make([]bool, p+1)
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				ivs := make([]mapping.Interval, n)
				for i, u := range alloc {
					ivs[i] = mapping.Interval{Start: i + 1, End: i + 1, Proc: u}
				}
				mm := mapping.MustNew(app, plat, ivs)
				mmMet := ev.Metrics(mm)
				if mmMet.Period <= bound*(1+1e-12) && mmMet.Latency < best {
					best = mmMet.Latency
				}
				return
			}
			for u := 1; u <= p; u++ {
				if used[u] {
					continue
				}
				used[u] = true
				alloc[k] = u
				rec(k + 1)
				used[u] = false
			}
		}
		rec(0)
		_ = m
		return math.Abs(met.Latency-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyUnderPeriodInfeasible(t *testing.T) {
	app := pipeline.MustNew([]float64{10}, []float64{0, 0})
	plat := platform.MustNew([]float64{2, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	if _, _, err := MinLatencyUnderPeriod(ev, 4.9); err == nil {
		t.Error("impossible bound accepted")
	}
	if _, met, err := MinLatencyUnderPeriod(ev, 5); err != nil || math.Abs(met.Latency-5) > 1e-9 {
		t.Errorf("boundary bound: met=%+v err=%v", met, err)
	}
}

func TestOneToOneParetoFront(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5)
		front, err := ParetoFront(ev)
		if err != nil || len(front) == 0 {
			return false
		}
		for i := 1; i < len(front); i++ {
			if front[i].Metrics.Period < front[i-1].Metrics.Period {
				return false
			}
			if front[i].Metrics.Latency >= front[i-1].Metrics.Latency {
				return false
			}
		}
		// Endpoints: min period and min latency of the class.
		_, pMet, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		if math.Abs(front[0].Metrics.Period-pMet.Period) > 1e-9 {
			return false
		}
		_, lMet, err := MinLatency(ev)
		if err != nil {
			return false
		}
		return math.Abs(front[len(front)-1].Metrics.Latency-lMet.Latency) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
