package onetoone

import (
	"errors"
	"math"
	"sort"

	"pipesched/internal/mapping"
)

// assignMinCost solves the rectangular assignment problem: match each of
// the n rows to a distinct column (n ≤ cols) minimising the total cost,
// where math.Inf(1) marks forbidden pairs. It is the
// shortest-augmenting-path Hungarian algorithm with potentials, O(n²·cols).
// ok is false when no finite-cost perfect matching exists.
func assignMinCost(cost [][]float64) (alloc []int, total float64, ok bool) {
	n := len(cost)
	if n == 0 {
		return nil, 0, true
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, false
	}
	const inf = math.MaxFloat64
	// 1-based arrays in the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	matchCol := make([]int, m+1) // column → row matched to it (0 = free)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				// Relax via the tree's newest row i0 (forbidden
				// edges don't relax, but the column may already be
				// reachable through an earlier tree row, so it must
				// still take part in the delta scan below).
				if c := cost[i0-1][j-1]; !math.IsInf(c, 1) {
					cur := c - u[i0] - v[j]
					if cur < minv[j] {
						minv[j] = cur
						way[j] = j0
					}
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 {
				return nil, 0, false // no augmenting path via finite edges
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else if minv[j] != inf {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}
	alloc = make([]int, n)
	for j := 1; j <= m; j++ {
		if matchCol[j] > 0 {
			alloc[matchCol[j]-1] = j
			total += cost[matchCol[j]-1][j-1]
		}
	}
	return alloc, total, true
}

// MinLatencyUnderPeriod returns the minimum-latency one-to-one mapping
// among those of period ≤ maxPeriod — the exact bi-criteria optimum on
// the one-to-one class, which is polynomial (unlike the interval class):
// the latency is Σ_k w_k/s_alloc(k) plus assignment-independent terms, so
// the problem is a min-sum assignment over the pairs admissible under the
// period bound, solved by the Hungarian algorithm.
func MinLatencyUnderPeriod(ev *mapping.Evaluator, maxPeriod float64) (*mapping.Mapping, mapping.Metrics, error) {
	if err := guard(ev); err != nil {
		return nil, mapping.Metrics{}, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	slack := maxPeriod * (1 + 1e-12)
	cost := make([][]float64, n)
	for k := 1; k <= n; k++ {
		cost[k-1] = make([]float64, p)
		for u := 1; u <= p; u++ {
			if ev.Cycle(k, k, u) <= slack {
				cost[k-1][u-1] = app.Work(k) / plat.Speed(u)
			} else {
				cost[k-1][u-1] = math.Inf(1)
			}
		}
	}
	alloc, _, ok := assignMinCost(cost)
	if !ok {
		return nil, mapping.Metrics{}, errors.New("onetoone: no one-to-one mapping satisfies the period bound")
	}
	m, err := assignmentMapping(ev, alloc)
	if err != nil {
		return nil, mapping.Metrics{}, err
	}
	return m, ev.Metrics(m), nil
}

// ParetoFront returns the exact (period, latency) trade-off curve of the
// one-to-one class, in polynomial time: the period only takes the n·p
// single-stage cycle values; each candidate bound feeds the Hungarian
// min-latency solver and dominated points are pruned.
func ParetoFront(ev *mapping.Evaluator) ([]struct {
	Metrics mapping.Metrics
	Mapping *mapping.Mapping
}, error) {
	if err := guard(ev); err != nil {
		return nil, err
	}
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	cands := make([]float64, 0, n*p)
	for k := 1; k <= n; k++ {
		for u := 1; u <= p; u++ {
			cands = append(cands, ev.Cycle(k, k, u))
		}
	}
	sort.Float64s(cands)
	type point = struct {
		Metrics mapping.Metrics
		Mapping *mapping.Mapping
	}
	var points []point
	prevLat := math.Inf(1)
	for _, c := range cands {
		m, met, err := MinLatencyUnderPeriod(ev, c)
		if err != nil {
			continue
		}
		if met.Latency < prevLat-1e-12 {
			points = append(points, point{Metrics: met, Mapping: m})
			prevLat = met.Latency
		}
	}
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i].Metrics, points[j].Metrics
		if a.Period != b.Period {
			return a.Period < b.Period
		}
		return a.Latency < b.Latency
	})
	var front []point
	best := math.Inf(1)
	for _, pt := range points {
		if pt.Metrics.Latency < best-1e-12 {
			front = append(front, pt)
			best = pt.Metrics.Latency
		}
	}
	return front, nil
}
