package onetoone

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func randEvaluator(r *rand.Rand, maxN int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := n + r.Intn(4) // always n ≤ p
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

// bruteOneToOne enumerates all injections stage→processor and returns the
// minimum period and minimum latency over them.
func bruteOneToOne(ev *mapping.Evaluator) (minPeriod, minLatency float64) {
	app, plat := ev.Pipeline(), ev.Platform()
	n, p := app.Stages(), plat.Processors()
	minPeriod, minLatency = math.Inf(1), math.Inf(1)
	alloc := make([]int, n)
	used := make([]bool, p+1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			ivs := make([]mapping.Interval, n)
			for i, u := range alloc {
				ivs[i] = mapping.Interval{Start: i + 1, End: i + 1, Proc: u}
			}
			m := mapping.MustNew(app, plat, ivs)
			met := ev.Metrics(m)
			if met.Period < minPeriod {
				minPeriod = met.Period
			}
			if met.Latency < minLatency {
				minLatency = met.Latency
			}
			return
		}
		for u := 1; u <= p; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			alloc[k] = u
			rec(k + 1)
			used[u] = false
		}
	}
	rec(0)
	return minPeriod, minLatency
}

func TestMinPeriodMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5)
		m, met, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		wantP, _ := bruteOneToOne(ev)
		if math.Abs(met.Period-wantP) > 1e-9 {
			return false
		}
		return math.Abs(ev.Period(m)-met.Period) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinLatencyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 5)
		m, met, err := MinLatency(ev)
		if err != nil {
			return false
		}
		_, wantL := bruteOneToOne(ev)
		if math.Abs(met.Latency-wantL) > 1e-9 {
			return false
		}
		return math.Abs(ev.Latency(m)-met.Latency) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyIsValidAndDominatedByExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := randEvaluator(r, 6)
		_, gMet, err := Greedy(ev)
		if err != nil {
			return false
		}
		_, pMet, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		_, lMet, err := MinLatency(ev)
		if err != nil {
			return false
		}
		return gMet.Period >= pMet.Period-1e-9 && gMet.Latency >= lMet.Latency-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRejectsTooFewProcessors(t *testing.T) {
	app := pipeline.MustNew([]float64{1, 2, 3}, make([]float64, 4))
	plat := platform.MustNew([]float64{1, 2}, 10)
	ev := mapping.NewEvaluator(app, plat)
	if _, _, err := MinPeriod(ev); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("MinPeriod err = %v", err)
	}
	if _, _, err := MinLatency(ev); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("MinLatency err = %v", err)
	}
	if _, _, err := Greedy(ev); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("Greedy err = %v", err)
	}
}

func TestRejectsHeterogeneousPlatform(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)
	if _, _, err := MinPeriod(ev); err == nil {
		t.Error("heterogeneous platform accepted")
	}
}

func TestKnownInstance(t *testing.T) {
	// Stages w={9, 1}, δ=0, speeds {3, 1}, b=1.
	// Latency optimum: 9→speed3, 1→speed1: 3 + 1 = 4.
	// Period optimum: same: max(3, 1) = 3 (the swap gives max(9, 1/3)=9).
	app := pipeline.MustNew([]float64{9, 1}, make([]float64, 3))
	plat := platform.MustNew([]float64{3, 1}, 1)
	ev := mapping.NewEvaluator(app, plat)
	_, pMet, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pMet.Period-3) > 1e-9 {
		t.Errorf("MinPeriod = %g, want 3", pMet.Period)
	}
	m, lMet, err := MinLatency(ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lMet.Latency-4) > 1e-9 {
		t.Errorf("MinLatency = %g, want 4", lMet.Latency)
	}
	if m.ProcessorOf(1) != 1 {
		t.Errorf("heaviest stage not on fastest processor: %v", m)
	}
}

// One-to-one period optimum can never beat the interval optimum (intervals
// strictly generalise singletons when n ≤ p): cross-package sanity against
// the greedy single-processor upper bound instead of the exact solver to
// keep this package decoupled — the interval comparison lives in the
// integration tests.
func TestSingleStage(t *testing.T) {
	app := pipeline.MustNew([]float64{10}, []float64{5, 5})
	plat := platform.MustNew([]float64{2, 5}, 10)
	ev := mapping.NewEvaluator(app, plat)
	m, met, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	// Only stage on fastest proc: 0.5 + 2 + 0.5 = 3.
	if math.Abs(met.Period-3) > 1e-9 {
		t.Errorf("period = %g, want 3", met.Period)
	}
	if m.ProcessorOf(1) != 2 {
		t.Errorf("mapping %v, want P2", m)
	}
}
