// Package pipeline models the applicative framework of the paper: a linear
// pipeline of n stages S_1..S_n. Stage S_k receives an input of size
// δ_{k-1} from the previous stage, performs w_k computations and outputs
// data of size δ_k to the next stage. The first stage reads δ_0 from the
// outside world and the last stage writes δ_n back to it (Figure 1 of the
// paper).
package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Pipeline is an immutable description of an n-stage pipeline application.
//
// The zero value is not usable; build instances with New or the builders in
// this package. All weights are expressed in abstract units: w in floating
// point operations, δ in data units. They acquire meaning relative to the
// processor speeds s (operations per time unit) and link bandwidth b (data
// units per time unit) of a platform.Platform.
type Pipeline struct {
	works  []float64 // works[k] = w_{k+1}, length n
	deltas []float64 // deltas[k] = δ_k, length n+1
	prefix []float64 // prefix[k] = w_1 + ... + w_k, length n+1, prefix[0] = 0
}

// ErrEmpty is returned when constructing a pipeline with no stage.
var ErrEmpty = errors.New("pipeline: at least one stage is required")

// New builds a pipeline from stage computation weights w (length n ≥ 1) and
// communication sizes deltas (length n+1: δ_0 .. δ_n). Both slices are
// copied. All weights must be non-negative and every w_k must be positive
// (a zero-work stage would make interval cycle-times degenerate without
// modelling anything useful; merge it with a neighbour instead).
func New(works, deltas []float64) (*Pipeline, error) {
	n := len(works)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(deltas) != n+1 {
		return nil, fmt.Errorf("pipeline: got %d communication sizes for %d stages, want %d", len(deltas), n, n+1)
	}
	for k, w := range works {
		if w <= 0 || isBad(w) {
			return nil, fmt.Errorf("pipeline: stage %d has invalid work %v (must be finite and > 0)", k+1, w)
		}
	}
	for k, d := range deltas {
		if d < 0 || isBad(d) {
			return nil, fmt.Errorf("pipeline: δ_%d = %v is invalid (must be finite and ≥ 0)", k, d)
		}
	}
	p := &Pipeline{
		works:  append([]float64(nil), works...),
		deltas: append([]float64(nil), deltas...),
	}
	p.prefix = make([]float64, n+1)
	for k, w := range p.works {
		p.prefix[k+1] = p.prefix[k] + w
	}
	return p, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(works, deltas []float64) *Pipeline {
	p, err := New(works, deltas)
	if err != nil {
		panic(err)
	}
	return p
}

func isBad(x float64) bool {
	return x != x || x > 1e300 || x < -1e300 // NaN or effectively infinite
}

// Stages returns n, the number of stages.
func (p *Pipeline) Stages() int { return len(p.works) }

// Work returns w_k for k in [1..n].
func (p *Pipeline) Work(k int) float64 {
	p.checkStage(k)
	return p.works[k-1]
}

// Delta returns δ_k for k in [0..n]. δ_{k-1} is the input size of stage k
// and δ_k its output size.
func (p *Pipeline) Delta(k int) float64 {
	if k < 0 || k > len(p.works) {
		panic(fmt.Sprintf("pipeline: δ_%d out of range [0..%d]", k, len(p.works)))
	}
	return p.deltas[k]
}

// IntervalWork returns w_d + w_{d+1} + ... + w_e in O(1), for
// 1 ≤ d ≤ e ≤ n. This is the numerator of the computation term of an
// interval mapped onto one processor.
func (p *Pipeline) IntervalWork(d, e int) float64 {
	p.checkStage(d)
	p.checkStage(e)
	if d > e {
		panic(fmt.Sprintf("pipeline: empty interval [%d..%d]", d, e))
	}
	return p.prefix[e] - p.prefix[d-1]
}

// TotalWork returns w_1 + ... + w_n.
func (p *Pipeline) TotalWork() float64 { return p.prefix[len(p.works)] }

// MaxWork returns the largest single-stage work max_k w_k.
func (p *Pipeline) MaxWork() float64 {
	m := p.works[0]
	for _, w := range p.works[1:] {
		if w > m {
			m = w
		}
	}
	return m
}

// MaxDelta returns the largest communication size max_k δ_k.
func (p *Pipeline) MaxDelta() float64 {
	m := p.deltas[0]
	for _, d := range p.deltas[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Works returns a copy of the stage weights (index 0 holds w_1).
func (p *Pipeline) Works() []float64 { return append([]float64(nil), p.works...) }

// Deltas returns a copy of the communication sizes (index k holds δ_k).
func (p *Pipeline) Deltas() []float64 { return append([]float64(nil), p.deltas...) }

func (p *Pipeline) checkStage(k int) {
	if k < 1 || k > len(p.works) {
		panic(fmt.Sprintf("pipeline: stage %d out of range [1..%d]", k, len(p.works)))
	}
}

// String renders the pipeline in the style of Figure 1:
// [δ0] S1(w1) [δ1] S2(w2) ... Sn(wn) [δn].
func (p *Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%g]", p.deltas[0])
	for k, w := range p.works {
		fmt.Fprintf(&b, " S%d(%g) [%g]", k+1, w, p.deltas[k+1])
	}
	return b.String()
}

// jsonPipeline is the serialised form.
type jsonPipeline struct {
	Works  []float64 `json:"works"`
	Deltas []float64 `json:"deltas"`
}

// MarshalJSON encodes the pipeline as {"works":[...],"deltas":[...]}.
func (p *Pipeline) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPipeline{Works: p.works, Deltas: p.deltas})
}

// UnmarshalJSON decodes and validates a pipeline.
func (p *Pipeline) UnmarshalJSON(data []byte) error {
	var j jsonPipeline
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	q, err := New(j.Works, j.Deltas)
	if err != nil {
		return err
	}
	*p = *q
	return nil
}

// Uniform builds an n-stage pipeline with identical stage work w and
// identical communication size d at every level (including δ_0 and δ_n).
func Uniform(n int, w, d float64) (*Pipeline, error) {
	if n <= 0 {
		return nil, ErrEmpty
	}
	works := make([]float64, n)
	deltas := make([]float64, n+1)
	for i := range works {
		works[i] = w
	}
	for i := range deltas {
		deltas[i] = d
	}
	return New(works, deltas)
}

// Concat joins two pipelines into one: the stages of q follow the stages of
// p. The boundary communication size is max(δ_n(p), δ_0(q)) so that neither
// side's requirement is under-modelled.
func Concat(p, q *Pipeline) (*Pipeline, error) {
	works := append(p.Works(), q.Works()...)
	dp, dq := p.Deltas(), q.Deltas()
	boundary := dp[len(dp)-1]
	if dq[0] > boundary {
		boundary = dq[0]
	}
	deltas := make([]float64, 0, len(works)+1)
	deltas = append(deltas, dp[:len(dp)-1]...)
	deltas = append(deltas, boundary)
	deltas = append(deltas, dq[1:]...)
	return New(works, deltas)
}

// SubPipeline extracts stages [d..e] as a standalone pipeline, keeping the
// surrounding communication sizes δ_{d-1} and δ_e as its outside-world
// input and output.
func (p *Pipeline) SubPipeline(d, e int) (*Pipeline, error) {
	if d < 1 || e > p.Stages() || d > e {
		return nil, fmt.Errorf("pipeline: invalid sub-interval [%d..%d] of %d stages", d, e, p.Stages())
	}
	return New(p.works[d-1:e], p.deltas[d-1:e+1])
}
