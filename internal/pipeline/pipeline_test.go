package pipeline

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	p, err := New([]float64{1, 2, 3}, []float64{10, 11, 12, 13})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := p.Stages(); got != 3 {
		t.Errorf("Stages() = %d, want 3", got)
	}
	for k, want := range map[int]float64{1: 1, 2: 2, 3: 3} {
		if got := p.Work(k); got != want {
			t.Errorf("Work(%d) = %g, want %g", k, got, want)
		}
	}
	for k, want := range map[int]float64{0: 10, 1: 11, 2: 12, 3: 13} {
		if got := p.Delta(k); got != want {
			t.Errorf("Delta(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		works  []float64
		deltas []float64
	}{
		{"no stage", nil, []float64{1}},
		{"delta length mismatch short", []float64{1, 2}, []float64{1, 2}},
		{"delta length mismatch long", []float64{1, 2}, []float64{1, 2, 3, 4}},
		{"zero work", []float64{1, 0}, []float64{1, 1, 1}},
		{"negative work", []float64{-1}, []float64{1, 1}},
		{"NaN work", []float64{math.NaN()}, []float64{1, 1}},
		{"Inf work", []float64{math.Inf(1)}, []float64{1, 1}},
		{"negative delta", []float64{1}, []float64{-1, 1}},
		{"NaN delta", []float64{1}, []float64{math.NaN(), 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.works, c.deltas); err == nil {
				t.Errorf("New(%v, %v) succeeded, want error", c.works, c.deltas)
			}
		})
	}
}

func TestZeroDeltaAllowed(t *testing.T) {
	// The NP-hardness reduction (Theorem 2) sets all δ_i = 0; the model
	// must accept that.
	p, err := New([]float64{5, 7}, []float64{0, 0, 0})
	if err != nil {
		t.Fatalf("New with zero deltas: %v", err)
	}
	if p.MaxDelta() != 0 {
		t.Errorf("MaxDelta() = %g, want 0", p.MaxDelta())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid input did not panic")
		}
	}()
	MustNew(nil, nil)
}

func TestIntervalWork(t *testing.T) {
	p := MustNew([]float64{1, 2, 3, 4, 5}, make([]float64, 6))
	cases := []struct {
		d, e int
		want float64
	}{
		{1, 5, 15}, {1, 1, 1}, {5, 5, 5}, {2, 4, 9}, {3, 3, 3}, {1, 2, 3},
	}
	for _, c := range cases {
		if got := p.IntervalWork(c.d, c.e); got != c.want {
			t.Errorf("IntervalWork(%d,%d) = %g, want %g", c.d, c.e, got, c.want)
		}
	}
	if got := p.TotalWork(); got != 15 {
		t.Errorf("TotalWork() = %g, want 15", got)
	}
	if got := p.MaxWork(); got != 5 {
		t.Errorf("MaxWork() = %g, want 5", got)
	}
}

func TestIntervalWorkPanicsOnBadRange(t *testing.T) {
	p := MustNew([]float64{1, 2}, make([]float64, 3))
	for _, c := range [][2]int{{0, 1}, {1, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IntervalWork(%d,%d) did not panic", c[0], c[1])
				}
			}()
			p.IntervalWork(c[0], c[1])
		}()
	}
}

// Property: for random pipelines and random split points, interval work is
// additive: work[d..k] + work[k+1..e] == work[d..e].
func TestIntervalWorkAdditiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		works := make([]float64, n)
		for i := range works {
			works[i] = 0.01 + 20*r.Float64()
		}
		p := MustNew(works, make([]float64, n+1))
		d := 1 + r.Intn(n)
		e := d + r.Intn(n-d+1)
		if d == e {
			return math.Abs(p.IntervalWork(d, e)-works[d-1]) < 1e-9*(1+works[d-1])
		}
		k := d + r.Intn(e-d) // d ≤ k < e
		lhs := p.IntervalWork(d, k) + p.IntervalWork(k+1, e)
		rhs := p.IntervalWork(d, e)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(rhs))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWorksDeltasAreCopies(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{3, 4, 5})
	w := p.Works()
	w[0] = 99
	if p.Work(1) != 1 {
		t.Error("mutating Works() result changed the pipeline")
	}
	d := p.Deltas()
	d[0] = 99
	if p.Delta(0) != 3 {
		t.Error("mutating Deltas() result changed the pipeline")
	}
}

func TestNewCopiesInput(t *testing.T) {
	works := []float64{1, 2}
	deltas := []float64{3, 4, 5}
	p := MustNew(works, deltas)
	works[0] = 42
	deltas[0] = 42
	if p.Work(1) != 1 || p.Delta(0) != 3 {
		t.Error("New aliased caller slices")
	}
}

func TestString(t *testing.T) {
	p := MustNew([]float64{1.5, 2}, []float64{0, 3, 4})
	s := p.String()
	for _, want := range []string{"S1(1.5)", "S2(2)", "[0]", "[3]", "[4]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := MustNew([]float64{1, 2, 3}, []float64{0.5, 1.5, 2.5, 3.5})
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var q Pipeline
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Stages() != p.Stages() || q.TotalWork() != p.TotalWork() {
		t.Errorf("round trip mismatch: %v vs %v", &q, p)
	}
	for k := 0; k <= p.Stages(); k++ {
		if q.Delta(k) != p.Delta(k) {
			t.Errorf("Delta(%d) = %g after round trip, want %g", k, q.Delta(k), p.Delta(k))
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var p Pipeline
	for _, blob := range []string{
		`{"works":[],"deltas":[1]}`,
		`{"works":[1],"deltas":[1]}`,
		`{"works":[-1],"deltas":[1,1]}`,
		`{not json`,
	} {
		if err := json.Unmarshal([]byte(blob), &p); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", blob)
		}
	}
}

func TestUniform(t *testing.T) {
	p, err := Uniform(4, 2.5, 10)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if p.Stages() != 4 || p.TotalWork() != 10 {
		t.Errorf("Uniform(4, 2.5, 10): stages=%d total=%g", p.Stages(), p.TotalWork())
	}
	for k := 0; k <= 4; k++ {
		if p.Delta(k) != 10 {
			t.Errorf("Delta(%d) = %g, want 10", k, p.Delta(k))
		}
	}
	if _, err := Uniform(0, 1, 1); err == nil {
		t.Error("Uniform(0,...) succeeded, want error")
	}
}

func TestConcat(t *testing.T) {
	p := MustNew([]float64{1, 2}, []float64{10, 11, 12})
	q := MustNew([]float64{3}, []float64{20, 21})
	r, err := Concat(p, q)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if r.Stages() != 3 {
		t.Fatalf("Concat stages = %d, want 3", r.Stages())
	}
	// Boundary is max(δ_2(p)=12, δ_0(q)=20) = 20.
	wantDeltas := []float64{10, 11, 20, 21}
	for k, want := range wantDeltas {
		if got := r.Delta(k); got != want {
			t.Errorf("Concat Delta(%d) = %g, want %g", k, got, want)
		}
	}
	if r.TotalWork() != 6 {
		t.Errorf("Concat TotalWork = %g, want 6", r.TotalWork())
	}
}

func TestSubPipeline(t *testing.T) {
	p := MustNew([]float64{1, 2, 3, 4}, []float64{0, 10, 20, 30, 40})
	s, err := p.SubPipeline(2, 3)
	if err != nil {
		t.Fatalf("SubPipeline: %v", err)
	}
	if s.Stages() != 2 || s.TotalWork() != 5 {
		t.Errorf("SubPipeline(2,3): stages=%d total=%g, want 2, 5", s.Stages(), s.TotalWork())
	}
	if s.Delta(0) != 10 || s.Delta(2) != 30 {
		t.Errorf("SubPipeline kept wrong boundary deltas: δ0=%g δ2=%g", s.Delta(0), s.Delta(2))
	}
	for _, c := range [][2]int{{0, 1}, {3, 2}, {1, 5}} {
		if _, err := p.SubPipeline(c[0], c[1]); err == nil {
			t.Errorf("SubPipeline(%d,%d) succeeded, want error", c[0], c[1])
		}
	}
}

// Property: Concat(p, q).TotalWork == p.TotalWork + q.TotalWork and
// SubPipeline(1, n) reproduces the original weights.
func TestConcatSubPipelineProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func() *Pipeline {
			n := 1 + r.Intn(10)
			w := make([]float64, n)
			d := make([]float64, n+1)
			for i := range w {
				w[i] = 0.5 + r.Float64()
			}
			for i := range d {
				d[i] = r.Float64() * 5
			}
			return MustNew(w, d)
		}
		p, q := gen(), gen()
		cat, err := Concat(p, q)
		if err != nil {
			return false
		}
		if math.Abs(cat.TotalWork()-(p.TotalWork()+q.TotalWork())) > 1e-9 {
			return false
		}
		whole, err := p.SubPipeline(1, p.Stages())
		if err != nil {
			return false
		}
		return whole.TotalWork() == p.TotalWork() && whole.Delta(0) == p.Delta(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
