package deal

import (
	"fmt"

	"pipesched/internal/mapping"
)

// SimReport summarises a discrete-event simulation of a replicated
// mapping; fields mirror sim.Report for the plain-mapping simulator.
type SimReport struct {
	Completions       []float64
	Latencies         []float64
	MaxLatency        float64
	SteadyStatePeriod float64
	Makespan          float64
}

// Simulate executes dataSets data sets through a replicated mapping under
// the one-port model with round-robin dealing: data set t is handled, in
// interval j, by replica R_j[t mod |R_j|]. Every processor serially
// performs receive → compute → send for each of its own data sets;
// transfers are blocking rendezvous occupying both endpoints.
//
// The simulator validates the extended cost model: the measured
// steady-state period equals Period's analytic value, and the first data
// set's response time equals the no-contention walk through each
// interval's replica 0 (see the tests). Together with the plain-mapping
// simulator this grounds the deal extension in the same execution
// semantics as the paper's equations (1)–(2).
func Simulate(ev *mapping.Evaluator, m *Mapping, dataSets int) (SimReport, error) {
	if dataSets < 1 {
		return SimReport{}, fmt.Errorf("deal: dataSets = %d, want ≥ 1", dataSets)
	}
	app, plat := ev.Pipeline(), ev.Platform()
	ivs := m.Intervals()
	nIv := len(ivs)
	b := plat.Bandwidth()

	// Per-processor availability (end of its last operation).
	free := make(map[int]float64)
	// senderReady[t'] per boundary isn't needed across iterations: data
	// sets are processed in order and the per-data-set recursion only
	// looks at this data set's upstream compute end plus processor
	// availabilities.
	rep := SimReport{
		Completions: make([]float64, dataSets),
		Latencies:   make([]float64, dataSets),
	}
	handler := func(j, t int) int {
		procs := ivs[j].Procs
		return procs[t%len(procs)]
	}
	for t := 0; t < dataSets; t++ {
		// Boundary 0: outside world → first interval's handler.
		u0 := handler(0, t)
		start := free[u0] // receiver must be free; source always ready
		injection := start
		cursor := start + app.Delta(0)/b // recv end on u0
		free[u0] = cursor
		for j := 0; j < nIv; j++ {
			u := handler(j, t)
			// Compute (the receive above, or the transfer below for
			// j > 0, already advanced free[u] to the recv end).
			compEnd := free[u] + app.IntervalWork(ivs[j].Start, ivs[j].End)/plat.Speed(u)
			free[u] = compEnd
			// Send on boundary j+1.
			dur := app.Delta(ivs[j].End) / b
			if j+1 < nIv {
				v := handler(j+1, t)
				xferStart := compEnd
				if intra := free[v]; intra > xferStart {
					xferStart = intra // receiver busy with an earlier data set
				}
				end := xferStart + dur
				if u != v {
					free[u] = end
				}
				free[v] = end
			} else {
				end := compEnd + dur
				free[u] = end
				cursor = end
			}
		}
		rep.Completions[t] = free[handler(nIv-1, t)]
		rep.Latencies[t] = rep.Completions[t] - injection
		if rep.Latencies[t] > rep.MaxLatency {
			rep.MaxLatency = rep.Latencies[t]
		}
	}
	rep.Makespan = rep.Completions[dataSets-1]
	// Completions of consecutive data sets can interleave across
	// replicas? No: the chain of rendezvous keeps boundary-(nIv) sends
	// ordered by t, because the outside world is a single sink... with a
	// replicated last interval two replicas send to the sink
	// independently — completions may be non-monotone. Measure the
	// steady-state period on max-completion growth instead.
	warm := dataSets / 2
	if warm >= dataSets-1 {
		warm = dataSets - 1
	}
	if dataSets-1 > warm {
		hi := maxPrefix(rep.Completions, dataSets-1)
		lo := maxPrefix(rep.Completions, warm)
		rep.SteadyStatePeriod = (hi - lo) / float64(dataSets-1-warm)
	} else {
		rep.SteadyStatePeriod = rep.Completions[0]
	}
	return rep, nil
}

// maxPrefix returns max(completions[0..i]).
func maxPrefix(xs []float64, i int) float64 {
	m := xs[0]
	for _, x := range xs[1 : i+1] {
		if x > m {
			m = x
		}
	}
	return m
}
