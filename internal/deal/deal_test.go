package deal

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/heuristics"
	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

func ev2(works, deltas, speeds []float64, b float64) *mapping.Evaluator {
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, b))
}

func TestNewValidation(t *testing.T) {
	ev := ev2([]float64{1, 2, 3}, make([]float64, 4), []float64{1, 1, 1}, 1)
	good := []Interval{{1, 2, []int{1, 3}}, {3, 3, []int{2}}}
	if _, err := New(ev, good); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := map[string][]Interval{
		"empty":           nil,
		"gap":             {{1, 1, []int{1}}, {3, 3, []int{2}}},
		"no processor":    {{1, 3, nil}},
		"proc reuse":      {{1, 1, []int{1}}, {2, 3, []int{1}}},
		"reuse in set":    {{1, 3, []int{1, 1}}},
		"proc range":      {{1, 3, []int{9}}},
		"incomplete":      {{1, 2, []int{1}}},
		"starts past one": {{2, 3, []int{1}}},
	}
	for name, ivs := range bad {
		if _, err := New(ev, ivs); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestUnreplicatedMatchesPlainModel(t *testing.T) {
	// With all replica sets singleton, Period/Latency must equal the
	// plain interval-mapping evaluator exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		p := 2 + r.Intn(4)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(20))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(20))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		ev := ev2(works, deltas, speeds, 10)
		// A random 2-interval plain mapping.
		cutAt := 1 + r.Intn(n-1)
		plain := mapping.MustNew(ev.Pipeline(), ev.Platform(), []mapping.Interval{
			{Start: 1, End: cutAt, Proc: 1},
			{Start: cutAt + 1, End: n, Proc: 2},
		})
		dealM, err := New(ev, []Interval{
			{Start: 1, End: cutAt, Procs: []int{1}},
			{Start: cutAt + 1, End: n, Procs: []int{2}},
		})
		if err != nil {
			return false
		}
		return math.Abs(Period(ev, dealM)-ev.Period(plain)) < 1e-9 &&
			math.Abs(Latency(ev, dealM)-ev.Latency(plain)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestReplicationDividesPeriod(t *testing.T) {
	// One stage, work 12, two speed-2 processors, no comms: replicating
	// over both halves the period contribution: 6 → 3. Latency stays 6.
	ev := ev2([]float64{12}, []float64{0, 0}, []float64{2, 2}, 1)
	m, err := New(ev, []Interval{{1, 1, []int{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := Period(ev, m); math.Abs(got-3) > 1e-9 {
		t.Errorf("Period = %g, want 3", got)
	}
	if got := Latency(ev, m); math.Abs(got-6) > 1e-9 {
		t.Errorf("Latency = %g, want 6", got)
	}
}

func TestHeterogeneousReplicasUseSlowest(t *testing.T) {
	// Replicas at speeds 4 and 1: slowest cycle = 12/1 = 12, degree 2 →
	// period 6; latency = slowest in+comp = 12.
	ev := ev2([]float64{12}, []float64{0, 0}, []float64{4, 1}, 1)
	m, err := New(ev, []Interval{{1, 1, []int{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := Period(ev, m); math.Abs(got-6) > 1e-9 {
		t.Errorf("Period = %g, want 6", got)
	}
	if got := Latency(ev, m); math.Abs(got-12) > 1e-9 {
		t.Errorf("Latency = %g, want 12", got)
	}
}

// The paper's motivating scenario: a single bottleneck stage that pure
// splitting can never improve (intervals cannot split a stage), but
// dealing can.
func TestDealBreaksSingleStageBottleneck(t *testing.T) {
	// 3 stages; the middle one dominates. 4 processors of speed 5.
	ev := ev2([]float64{5, 100, 5}, []float64{0, 0, 0, 0}, []float64{5, 5, 5, 5}, 10)
	// Pure splitting floor: the middle stage alone costs 100/5 = 20.
	h1Floor, err := heuristics.MinAchievablePeriod(ev, heuristics.SpMonoP{})
	if err != nil {
		t.Fatal(err)
	}
	if h1Floor < 20-1e-9 {
		t.Fatalf("splitting floor %g below the single-stage cycle 20?", h1Floor)
	}
	// DealSplit reaches period 10: S2 dealt over two processors.
	res, err := DealSplit(ev, 11)
	if err != nil {
		t.Fatalf("DealSplit: %v", err)
	}
	if res.Metrics.Period > 11+1e-9 {
		t.Errorf("period %g > 11", res.Metrics.Period)
	}
	replicated := false
	for _, iv := range res.Mapping.Intervals() {
		if iv.Replication() > 1 {
			replicated = true
		}
	}
	if !replicated {
		t.Errorf("no replication used: %v", res.Mapping)
	}
}

func TestDealSplitRespectsBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		p := 1 + r.Intn(6)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(50))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(10))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		ev := ev2(works, deltas, speeds, 10)
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		bound := ev.Period(single) * (0.2 + 0.8*r.Float64())
		res, err := DealSplit(ev, bound)
		if err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				return false
			}
			return inf.Best.Metrics.Period > bound*(1-1e-9)
		}
		if res.Metrics.Period > bound*(1+1e-6) {
			return false
		}
		// Reported metrics consistent with re-evaluation.
		return math.Abs(Period(ev, res.Mapping)-res.Metrics.Period) < 1e-9*(1+res.Metrics.Period) &&
			math.Abs(Latency(ev, res.Mapping)-res.Metrics.Latency) < 1e-9*(1+res.Metrics.Latency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// DealSplit can never do worse than plain H1 splitting at period chasing:
// its move set strictly contains H1's bottleneck move.
func TestDealSplitAtLeastAsDeepAsH1(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var sumH1, sumDeal float64
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(10)
		p := 2 + r.Intn(6)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(50))
		}
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + r.Intn(20))
		}
		ev := ev2(works, make([]float64, n+1), speeds, 10)
		h1, err := heuristics.MinAchievablePeriod(ev, heuristics.SpMonoP{})
		if err != nil {
			t.Fatal(err)
		}
		var dealP float64
		if res, err := DealSplit(ev, 0); err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatal(err)
			}
			dealP = inf.Best.Metrics.Period
		} else {
			dealP = res.Metrics.Period
		}
		sumH1 += h1
		sumDeal += dealP
	}
	if sumDeal > sumH1*(1+1e-9) {
		t.Errorf("deal splitting lost to plain splitting on aggregate: %g vs %g", sumDeal/60, sumH1/60)
	}
}

func TestStringRendering(t *testing.T) {
	ev := ev2([]float64{1, 2}, make([]float64, 3), []float64{1, 1, 1}, 1)
	m, err := New(ev, []Interval{{1, 1, []int{2}}, {2, 2, []int{1, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if s != "S1→P2 | S2→deal{P1,P3}" {
		t.Errorf("String() = %q", s)
	}
}

func TestRejectsHeterogeneousPlatform(t *testing.T) {
	plat, err := platform.NewFullyHeterogeneous([]float64{1, 1}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ev := mapping.NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)
	if _, err := New(ev, []Interval{{1, 1, []int{1}}}); err == nil {
		t.Error("heterogeneous platform accepted")
	}
}
