package deal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/sim"
)

// randDealInstance builds a random evaluator and a random replicated
// mapping over it.
func randDealInstance(r *rand.Rand) (*mapping.Evaluator, *Mapping) {
	n := 1 + r.Intn(6)
	p := 2 + r.Intn(7)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(15))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + r.Intn(20))
	}
	ev := ev2(works, deltas, speeds, 10)
	// Random interval structure with random replica sets.
	perm := r.Perm(p)
	next := 0
	take := func(k int) []int {
		out := make([]int, 0, k)
		for len(out) < k && next < p {
			out = append(out, perm[next]+1)
			next++
		}
		return out
	}
	var ivs []Interval
	start := 1
	for start <= n {
		end := start + r.Intn(n-start+1)
		remaining := p - next
		intervalsLeft := n - end + 1 // worst case: one interval per stage
		maxRep := remaining - intervalsLeft
		if maxRep < 1 {
			maxRep = 1
		}
		if maxRep > 3 {
			maxRep = 3
		}
		procs := take(1 + r.Intn(maxRep))
		if len(procs) == 0 {
			return nil, nil // out of processors; caller retries
		}
		ivs = append(ivs, Interval{Start: start, End: end, Procs: procs})
		start = end + 1
	}
	m, err := New(ev, ivs)
	if err != nil {
		return nil, nil
	}
	return ev, m
}

// The extended analytic period must equal the simulated steady state.
func TestSimulateMatchesAnalyticPeriod(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev, m := randDealInstance(r)
		if ev == nil {
			return true
		}
		rep, err := Simulate(ev, m, 400)
		if err != nil {
			return false
		}
		want := Period(ev, m)
		// Round-robin dealing batches completions (up to |R| finish
		// within one slow cycle), so a finite measurement window is
		// biased by O(maxDegree / window). With 400 data sets and a
		// 200-set warmup the bias stays below 2%.
		return math.Abs(rep.SteadyStatePeriod-want) < 0.02*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The first data set walks an empty pipeline through replica 0 of every
// interval: its simulated latency equals that exact path.
func TestSimulateFirstLatency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev, m := randDealInstance(r)
		if ev == nil {
			return true
		}
		rep, err := Simulate(ev, m, 5)
		if err != nil {
			return false
		}
		app, plat := ev.Pipeline(), ev.Platform()
		b := plat.Bandwidth()
		want := 0.0
		for _, iv := range m.Intervals() {
			u := iv.Procs[0] // data set 0 → replica 0
			want += app.Delta(iv.Start-1)/b + app.IntervalWork(iv.Start, iv.End)/plat.Speed(u)
		}
		want += app.Delta(app.Stages()) / b
		return math.Abs(rep.Latencies[0]-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// On unreplicated mappings the deal simulator must agree with the plain
// pipeline simulator exactly.
func TestSimulateDegeneratesToPlainSimulator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(20))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(15))
		}
		speeds := []float64{float64(1 + r.Intn(20)), float64(1 + r.Intn(20))}
		ev := ev2(works, deltas, speeds, 10)
		cut := 1 + r.Intn(n-1)
		plain := mapping.MustNew(ev.Pipeline(), ev.Platform(), []mapping.Interval{
			{Start: 1, End: cut, Proc: 1}, {Start: cut + 1, End: n, Proc: 2},
		})
		dealM, err := New(ev, []Interval{
			{Start: 1, End: cut, Procs: []int{1}},
			{Start: cut + 1, End: n, Procs: []int{2}},
		})
		if err != nil {
			return false
		}
		const k = 40
		plainRep, err1 := sim.Run(ev, plain, sim.Options{DataSets: k})
		dealRep, err2 := Simulate(ev, dealM, k)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if math.Abs(plainRep.Completions[i]-dealRep.Completions[i]) > 1e-9 {
				return false
			}
			if math.Abs(plainRep.Latencies[i]-dealRep.Latencies[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Replication really buys the simulated throughput, not just the analytic
// number: a dominant single stage dealt over three processors triples the
// measured rate.
func TestSimulatedThroughputGain(t *testing.T) {
	ev := ev2([]float64{60}, []float64{0, 0}, []float64{2, 2, 2}, 1)
	single, err := New(ev, []Interval{{1, 1, []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	dealt, err := New(ev, []Interval{{1, 1, []int{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	const k = 300
	repS, err := Simulate(ev, single, k)
	if err != nil {
		t.Fatal(err)
	}
	repD, err := Simulate(ev, dealt, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(repS.SteadyStatePeriod-30) > 1e-6 {
		t.Errorf("single-replica period %g, want 30", repS.SteadyStatePeriod)
	}
	// Completions arrive in bursts of three (one per replica), so the
	// finite-window measurement sits slightly below the asymptotic 10.
	if math.Abs(repD.SteadyStatePeriod-10) > 0.25 {
		t.Errorf("three-replica period %g, want ≈ 10", repD.SteadyStatePeriod)
	}
}

func TestSimulateRejectsBadCount(t *testing.T) {
	ev := ev2([]float64{1}, []float64{0, 0}, []float64{1}, 1)
	m, err := New(ev, []Interval{{1, 1, []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(ev, m, 0); err == nil {
		t.Error("dataSets=0 accepted")
	}
}
