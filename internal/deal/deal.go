// Package deal implements the paper's concluding extension: nesting a
// *deal* (farm) skeleton inside a pipeline stage. When a stage interval is
// both computationally demanding and free of internal inter-task
// dependencies, its workload can be dealt round-robin over several
// processors; replica r then only processes every r-th data set, dividing
// the interval's pressure on the period by the replication degree.
//
// Cost model (extending equations (1)–(2) of the paper):
//
//   - a replicated interval I = [d..e] on processor set R has period
//     contribution max_{u∈R} cycle(d, e, u) / |R| — each replica must
//     finish its data set before its next turn, which comes every |R|
//     periods;
//   - every data set still traverses exactly one replica per interval, so
//     the worst-case latency sums the *slowest* replica's input and
//     compute terms: Σ_I max_{u∈R(I)} (δ_{d-1}/b + W(I)/s_u) + δ_n/b.
//
// The one-port model is respected from the neighbours' point of view:
// upstream intervals still perform one send per data set (to alternating
// replicas), so their cycle-times are unchanged. What the model ignores —
// deliberately, matching the paper's informal sketch — is any cost of the
// round-robin bookkeeping itself.
//
// DealSplit is the paper's "extending our mapping strategies to
// automatically identify opportunities for deal skeletons" in its simplest
// greedy form: at each step the bottleneck interval is either split (the
// H1 move) or replicated (the deal move), whichever helps more.
package deal

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"pipesched/internal/mapping"
	"pipesched/internal/platform"
)

// Interval is a pipeline interval executed by one or more processors;
// with a single processor it degenerates to the paper's plain interval.
type Interval struct {
	Start, End int
	Procs      []int // replica set, round-robin deal order; non-empty, distinct
}

// Replication returns the replication degree |R|.
func (iv Interval) Replication() int { return len(iv.Procs) }

func (iv Interval) String() string {
	procs := make([]string, len(iv.Procs))
	for i, u := range iv.Procs {
		procs[i] = fmt.Sprintf("P%d", u)
	}
	span := fmt.Sprintf("S%d", iv.Start)
	if iv.End != iv.Start {
		span = fmt.Sprintf("S%d..S%d", iv.Start, iv.End)
	}
	if len(iv.Procs) == 1 {
		return span + "→" + procs[0]
	}
	return span + "→deal{" + strings.Join(procs, ",") + "}"
}

// Mapping is an ordered partition of [1..n] into (possibly replicated)
// intervals.
type Mapping struct {
	intervals []Interval
}

// New validates the intervals: full coverage in order, globally distinct
// processors, non-empty replica sets.
func New(ev *mapping.Evaluator, ivs []Interval) (*Mapping, error) {
	if ev.Platform().Kind() != platform.CommHomogeneous {
		return nil, errors.New("deal: comm-homogeneous platforms only")
	}
	n, p := ev.Pipeline().Stages(), ev.Platform().Processors()
	if len(ivs) == 0 {
		return nil, errors.New("deal: no interval")
	}
	used := make(map[int]bool)
	next := 1
	for j, iv := range ivs {
		if iv.Start != next || iv.End < iv.Start || iv.End > n {
			return nil, fmt.Errorf("deal: interval %d spans [%d..%d], want start %d within [1..%d]", j, iv.Start, iv.End, next, n)
		}
		if len(iv.Procs) == 0 {
			return nil, fmt.Errorf("deal: interval %d has no processor", j)
		}
		for _, u := range iv.Procs {
			if u < 1 || u > p {
				return nil, fmt.Errorf("deal: interval %d uses processor %d outside [1..%d]", j, u, p)
			}
			if used[u] {
				return nil, fmt.Errorf("deal: processor %d used twice", u)
			}
			used[u] = true
		}
		next = iv.End + 1
	}
	if next != n+1 {
		return nil, fmt.Errorf("deal: stages %d..%d unmapped", next, n)
	}
	return &Mapping{intervals: append([]Interval(nil), ivs...)}, nil
}

// Intervals returns a copy of the intervals.
func (m *Mapping) Intervals() []Interval {
	out := make([]Interval, len(m.intervals))
	for i, iv := range m.intervals {
		out[i] = Interval{Start: iv.Start, End: iv.End, Procs: append([]int(nil), iv.Procs...)}
	}
	return out
}

// Size returns the number of intervals.
func (m *Mapping) Size() int { return len(m.intervals) }

func (m *Mapping) String() string {
	parts := make([]string, len(m.intervals))
	for i, iv := range m.intervals {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " | ")
}

// Period evaluates the extended equation (1): the slowest replica's cycle
// divided by the replication degree, maximised over intervals.
func Period(ev *mapping.Evaluator, m *Mapping) float64 {
	worst := 0.0
	for _, iv := range m.intervals {
		if c := contribution(ev, iv); c > worst {
			worst = c
		}
	}
	return worst
}

func contribution(ev *mapping.Evaluator, iv Interval) float64 {
	slowest := 0.0
	for _, u := range iv.Procs {
		if c := ev.Cycle(iv.Start, iv.End, u); c > slowest {
			slowest = c
		}
	}
	return slowest / float64(len(iv.Procs))
}

// Latency evaluates the extended equation (2): the worst-case data set
// meets the slowest replica of every interval.
func Latency(ev *mapping.Evaluator, m *Mapping) float64 {
	app, plat := ev.Pipeline(), ev.Platform()
	b := plat.Bandwidth()
	total := 0.0
	for _, iv := range m.intervals {
		slowest := 0.0
		for _, u := range iv.Procs {
			t := app.Delta(iv.Start-1)/b + app.IntervalWork(iv.Start, iv.End)/plat.Speed(u)
			if t > slowest {
				slowest = t
			}
		}
		total += slowest
	}
	return total + app.Delta(app.Stages())/b
}

// Result is the outcome of DealSplit.
type Result struct {
	Mapping *Mapping
	Metrics mapping.Metrics
}

// InfeasibleError reports that DealSplit could not reach the period bound;
// Best carries the closest mapping it found.
type InfeasibleError struct {
	Target   float64
	Achieved float64
	Best     Result
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("deal: could not reach period ≤ %g (best %g)", e.Target, e.Achieved)
}

// DealSplit greedily drives the period under maxPeriod, starting from the
// latency-optimal single interval on the fastest processor. At each step
// the bottleneck interval is improved by the better of two moves:
//
//   - split: the best 2-way split with the next fastest unused processor
//     (the H1 move; only for unreplicated intervals with ≥ 2 stages);
//   - deal: add the next fastest unused processor to the interval's
//     replica set.
//
// A move is applied only if it strictly reduces the bottleneck's period
// contribution. Unlike pure splitting, DealSplit can push a single heavy
// stage below its cycle-time — the scenario the paper's conclusion calls
// out as the motivation for nesting farm skeletons.
func DealSplit(ev *mapping.Evaluator, maxPeriod float64) (Result, error) {
	plat := ev.Platform()
	app := ev.Pipeline()
	ivs := []Interval{{Start: 1, End: app.Stages(), Procs: []int{plat.Fastest()}}}
	free := plat.FastestFirst()[1:]

	build := func() *Mapping {
		m, err := New(ev, ivs)
		if err != nil {
			panic("deal: internal construction error: " + err.Error())
		}
		return m
	}
	const eps = 1e-12
	for {
		m := build()
		period := Period(ev, m)
		if period <= maxPeriod*(1+1e-9) {
			return Result{Mapping: m, Metrics: mapping.Metrics{Period: period, Latency: Latency(ev, m)}}, nil
		}
		if len(free) == 0 {
			res := Result{Mapping: m, Metrics: mapping.Metrics{Period: period, Latency: Latency(ev, m)}}
			return res, &InfeasibleError{Target: maxPeriod, Achieved: period, Best: res}
		}
		// Bottleneck interval.
		bIdx, bContrib := 0, math.Inf(-1)
		for j, iv := range ivs {
			if c := contribution(ev, iv); c > bContrib {
				bIdx, bContrib = j, c
			}
		}
		iv := ivs[bIdx]
		next := free[0]

		// Move 1: deal — always available.
		dealContrib := contribution(ev, Interval{Start: iv.Start, End: iv.End, Procs: append(append([]int(nil), iv.Procs...), next)})

		// Move 2: split — unreplicated multi-stage intervals only.
		splitContrib := math.Inf(1)
		splitAt, splitOrder := 0, 0
		if len(iv.Procs) == 1 && iv.End > iv.Start {
			for k := iv.Start; k < iv.End; k++ {
				for o, procs := range [2][2]int{{iv.Procs[0], next}, {next, iv.Procs[0]}} {
					c1 := ev.Cycle(iv.Start, k, procs[0])
					c2 := ev.Cycle(k+1, iv.End, procs[1])
					worst := math.Max(c1, c2)
					if worst < splitContrib {
						splitContrib, splitAt, splitOrder = worst, k, o
					}
				}
			}
		}

		better := math.Min(dealContrib, splitContrib)
		if better >= bContrib-eps*(1+bContrib) {
			m := build()
			period := Period(ev, m)
			res := Result{Mapping: m, Metrics: mapping.Metrics{Period: period, Latency: Latency(ev, m)}}
			return res, &InfeasibleError{Target: maxPeriod, Achieved: period, Best: res}
		}
		if splitContrib < dealContrib {
			first, second := iv.Procs[0], next
			if splitOrder == 1 {
				first, second = next, iv.Procs[0]
			}
			replaced := []Interval{
				{Start: iv.Start, End: splitAt, Procs: []int{first}},
				{Start: splitAt + 1, End: iv.End, Procs: []int{second}},
			}
			ivs = append(ivs[:bIdx:bIdx], append(replaced, ivs[bIdx+1:]...)...)
		} else {
			ivs[bIdx].Procs = append(ivs[bIdx].Procs, next)
		}
		free = free[1:]
	}
}
