package loadgen

import (
	"math"
	"sync/atomic"
	"time"
)

// Pacer shapes the arrival process of the load generator: an open-loop
// request-per-second rate stored as an atomic inter-arrival interval.
// The generator reads the interval before every admission and ramps
// retune it mid-run with SetRate — no locks, no channel round trips, no
// generator restarts — so the arrival process can be reshaped while
// requests are in flight. A zero rate means unpaced (closed loop): the
// generator admits as fast as the workers complete.
type Pacer struct {
	intervalNS atomic.Int64 // 0 = unpaced
}

// NewPacer returns a pacer at perSec requests per second (0 or less =
// unpaced).
func NewPacer(perSec float64) *Pacer {
	p := &Pacer{}
	p.SetRate(perSec)
	return p
}

// SetRate retunes the arrival rate, effective from the next admission.
func (p *Pacer) SetRate(perSec float64) {
	if perSec <= 0 || math.IsNaN(perSec) || math.IsInf(perSec, 0) {
		p.intervalNS.Store(0)
		return
	}
	ns := int64(float64(time.Second) / perSec)
	if ns < 1 {
		ns = 1
	}
	p.intervalNS.Store(ns)
}

// Rate returns the current arrival rate (0 = unpaced).
func (p *Pacer) Rate() float64 {
	ns := p.intervalNS.Load()
	if ns == 0 {
		return 0
	}
	return float64(time.Second) / float64(ns)
}

// Next returns the instant at which the admission after one at t should
// fire (t itself when unpaced). The generator sleeps until the returned
// instant; a generator running behind schedule gets a past instant and
// catches up without sleeping, so transient stalls do not permanently
// lower the achieved rate.
func (p *Pacer) Next(t time.Time) time.Time {
	ns := p.intervalNS.Load()
	if ns == 0 {
		return t
	}
	return t.Add(time.Duration(ns))
}
