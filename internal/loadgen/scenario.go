package loadgen

// Scenario support: multi-phase load shapes described in committed JSON
// files (scripts/scenarios/) and replayed via pipeschedbench -scenario.
// Each phase is one Run with its own duration/rate/skew overlaid on a
// base Config, so a scenario composes the primitives the engine already
// has — ramps, Zipf skew, verify, chaos — into named traffic stories:
// a diurnal ramp, a flash crowd, the client side of a rolling restart.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// ScenarioPhase is one stretch of a scenario. Zero-valued fields inherit
// from the base Config (and through it the engine defaults); a phase
// must bound itself with either DurationMS or Requests.
type ScenarioPhase struct {
	// Name labels the phase in reports.
	Name string `json:"name"`
	// DurationMS bounds the phase in time; Requests bounds it by exact
	// request count (deterministic key sequence). Exactly one must be
	// positive.
	DurationMS int64 `json:"duration_ms,omitempty"`
	Requests   int   `json:"requests,omitempty"`
	// Rate (and FinalRate, for a linear ramp across the phase) in
	// requests/second; 0 = closed loop.
	Rate      float64 `json:"rate,omitempty"`
	FinalRate float64 `json:"final_rate,omitempty"`
	// Workers overrides the concurrent request loops for this phase.
	Workers int `json:"workers,omitempty"`
	// Keys/ZipfS reshape the key universe and its skew; Seed re-seeds
	// the phase (draw order and instance universe — leave it zero to
	// keep the base config's keys, and with them cache continuity,
	// across phases).
	Keys  int     `json:"keys,omitempty"`
	ZipfS float64 `json:"zipf_s,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// PauseMS sleeps after the phase completes, before the next one —
	// the quiet gap an operator uses to restart a daemon mid-scenario.
	PauseMS int64 `json:"pause_ms,omitempty"`
}

// Scenario is a named sequence of phases.
type Scenario struct {
	Name        string          `json:"name"`
	Description string          `json:"description,omitempty"`
	Phases      []ScenarioPhase `json:"phases"`
}

// PhaseReport pairs a phase with its run outcome.
type PhaseReport struct {
	Phase  string  `json:"phase"`
	Report *Report `json:"report"`
}

// ParseScenario decodes and validates the JSON form.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("loadgen: parse scenario: %w", err)
	}
	if len(sc.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %q has no phases", sc.Name)
	}
	for i, p := range sc.Phases {
		if p.DurationMS <= 0 && p.Requests <= 0 {
			return nil, fmt.Errorf("loadgen: scenario %q phase %d (%s): needs duration_ms or requests", sc.Name, i, p.Name)
		}
		if p.DurationMS > 0 && p.Requests > 0 {
			return nil, fmt.Errorf("loadgen: scenario %q phase %d (%s): duration_ms and requests are exclusive", sc.Name, i, p.Name)
		}
		if p.DurationMS < 0 || p.Requests < 0 || p.Rate < 0 || p.FinalRate < 0 || p.Workers < 0 || p.Keys < 0 || p.PauseMS < 0 {
			return nil, fmt.Errorf("loadgen: scenario %q phase %d (%s): negative field", sc.Name, i, p.Name)
		}
	}
	return &sc, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	return ParseScenario(data)
}

// phaseConfig overlays one phase on the base config.
func phaseConfig(base Config, p ScenarioPhase) Config {
	cfg := base
	cfg.Requests = p.Requests
	cfg.Duration = time.Duration(p.DurationMS) * time.Millisecond
	cfg.Rate = p.Rate
	cfg.FinalRate = p.FinalRate
	if p.Workers > 0 {
		cfg.Workers = p.Workers
	}
	if p.Keys > 0 {
		cfg.Keys = p.Keys
	}
	if p.ZipfS > 0 {
		cfg.ZipfS = p.ZipfS
	}
	if p.Seed != 0 {
		cfg.Seed = p.Seed
	}
	return cfg
}

// RunScenario replays the scenario's phases in order against the base
// config, returning one report per phase. A phase's run error aborts the
// scenario; phase-level request errors and mismatches stay in the
// reports for the caller to judge (pipeschedbench exits dirty if any
// phase saw one).
func RunScenario(ctx context.Context, base Config, sc *Scenario) ([]PhaseReport, error) {
	reports := make([]PhaseReport, 0, len(sc.Phases))
	for i, p := range sc.Phases {
		rep, err := Run(ctx, phaseConfig(base, p))
		if err != nil {
			return reports, fmt.Errorf("loadgen: scenario %q phase %d (%s): %w", sc.Name, i, p.Name, err)
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase-%d", i+1)
		}
		reports = append(reports, PhaseReport{Phase: name, Report: rep})
		if p.PauseMS > 0 {
			select {
			case <-time.After(time.Duration(p.PauseMS) * time.Millisecond):
			case <-ctx.Done():
				return reports, ctx.Err()
			}
		}
	}
	return reports, nil
}
