package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"pipesched/internal/faultinject"
)

func TestParseScenarioRejects(t *testing.T) {
	for name, data := range map[string]string{
		"empty-object":  `{}`,
		"no-phases":     `{"name":"x","phases":[]}`,
		"unbounded":     `{"name":"x","phases":[{"name":"p"}]}`,
		"both-bounds":   `{"name":"x","phases":[{"requests":10,"duration_ms":100}]}`,
		"negative-rate": `{"name":"x","phases":[{"requests":10,"rate":-1}]}`,
		"unknown-field": `{"name":"x","phases":[{"requests":10,"burst":true}]}`,
		"not-json":      `phases: [p1]`,
	} {
		if _, err := ParseScenario([]byte(data)); err == nil {
			t.Errorf("%s: ParseScenario accepted %s", name, data)
		}
	}

	sc, err := ParseScenario([]byte(`{
		"name": "ok",
		"phases": [
			{"name": "warm", "requests": 10},
			{"name": "storm", "duration_ms": 500, "rate": 100, "final_rate": 500, "pause_ms": 50}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "ok" || len(sc.Phases) != 2 || sc.Phases[1].FinalRate != 500 {
		t.Fatalf("parsed scenario = %+v", sc)
	}
}

// TestShippedScenariosParse loads every scenario file the repo ships in
// scripts/scenarios/ — the files operators actually point pipeschedbench
// at — so a schema change or a typo in a committed scenario fails in CI
// instead of at the operator's prompt.
func TestShippedScenariosParse(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scripts", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found only %d shipped scenarios — wrong path?", len(files))
	}
	for _, f := range files {
		sc, err := LoadScenario(f)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
			continue
		}
		if sc.Name == "" || len(sc.Phases) == 0 {
			t.Errorf("%s: parsed to an empty scenario", filepath.Base(f))
		}
	}
}

func TestPhaseConfigOverlay(t *testing.T) {
	base := Config{
		Targets: []string{"http://x"},
		Workers: 8, Keys: 64, ZipfS: 1.3, Seed: 7,
		Requests: 999, Duration: time.Hour, Rate: 123, FinalRate: 456,
	}

	// A sparse phase resets the run bounds (they are per-phase, never
	// inherited) but keeps workers/keys/skew/seed from the base.
	got := phaseConfig(base, ScenarioPhase{Requests: 10})
	if got.Requests != 10 || got.Duration != 0 || got.Rate != 0 || got.FinalRate != 0 {
		t.Fatalf("run bounds not reset: %+v", got)
	}
	if got.Workers != 8 || got.Keys != 64 || got.ZipfS != 1.3 || got.Seed != 7 {
		t.Fatalf("base fields not inherited: %+v", got)
	}

	// A full phase overrides each of them.
	got = phaseConfig(base, ScenarioPhase{
		DurationMS: 250, Rate: 50, FinalRate: 100,
		Workers: 2, Keys: 16, ZipfS: 2, Seed: 99,
	})
	if got.Duration != 250*time.Millisecond || got.Rate != 50 || got.FinalRate != 100 {
		t.Fatalf("phase bounds not applied: %+v", got)
	}
	if got.Workers != 2 || got.Keys != 16 || got.ZipfS != 2 || got.Seed != 99 {
		t.Fatalf("phase overrides not applied: %+v", got)
	}
}

func TestRunScenarioPhases(t *testing.T) {
	stub := &countingStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	sc, err := ParseScenario([]byte(`{
		"name": "two-step",
		"phases": [
			{"name": "warm", "requests": 20},
			{"requests": 30, "workers": 2}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := RunScenario(context.Background(), Config{
		Targets: []string{ts.URL},
		Workers: 4, Keys: 8, Seed: 3,
		Stages: 4, Processors: 3,
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d phase reports, want 2", len(reports))
	}
	if reports[0].Phase != "warm" || reports[1].Phase != "phase-2" {
		t.Fatalf("phase names = %q, %q", reports[0].Phase, reports[1].Phase)
	}
	if reports[0].Report.Sent != 20 || reports[1].Report.Sent != 30 {
		t.Fatalf("sent = %d, %d; want 20, 30", reports[0].Report.Sent, reports[1].Report.Sent)
	}
	if total := len(stub.sorted()); total != 50 {
		t.Fatalf("server saw %d requests, want 50", total)
	}
}

func TestRunScenarioHonoursContext(t *testing.T) {
	stub := &countingStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	sc, err := ParseScenario([]byte(`{
		"name": "pausey",
		"phases": [{"name": "p1", "requests": 5, "pause_ms": 60000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	reports, err := RunScenario(ctx, Config{
		Targets: []string{ts.URL},
		Workers: 2, Keys: 4, Seed: 1,
		Stages: 4, Processors: 3,
	}, sc)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(reports) != 1 || reports[0].Report.Sent != 5 {
		t.Fatalf("the completed phase must still be reported: %+v", reports)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not cut the pause short")
	}
}

func TestRunChaosCountsInjected(t *testing.T) {
	stub := &countingStub{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	// Every request gets a synthesized 500 — all injected, none of them
	// client-visible errors.
	rep, err := Run(context.Background(), Config{
		Targets: []string{ts.URL},
		Workers: 2, Requests: 25, Keys: 4, Seed: 9,
		Stages: 4, Processors: 3,
		Chaos: &faultinject.Schedule{
			Seed:  1,
			Rules: []faultinject.Rule{{Name: "blackout", Status: 500, StatusProb: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 25 || rep.Injected != 25 {
		t.Fatalf("sent %d injected %d, want 25/25", rep.Sent, rep.Injected)
	}
	if rep.Errors != 0 {
		t.Fatalf("injected faults counted as %d errors, want 0", rep.Errors)
	}
	if len(stub.sorted()) != 0 {
		t.Fatal("synthesized statuses must never reach the upstream")
	}
}
