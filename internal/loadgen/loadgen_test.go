package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestPacerRates(t *testing.T) {
	p := NewPacer(0)
	if p.Rate() != 0 {
		t.Fatalf("unpaced rate = %g, want 0", p.Rate())
	}
	now := time.Now()
	if got := p.Next(now); !got.Equal(now) {
		t.Fatal("unpaced Next must return its input")
	}

	p.SetRate(100)
	if r := p.Rate(); r < 99.9 || r > 100.1 {
		t.Fatalf("rate = %g, want 100", r)
	}
	if got := p.Next(now); got.Sub(now) != 10*time.Millisecond {
		t.Fatalf("interval = %v, want 10ms", got.Sub(now))
	}

	// Retuning mid-run is the whole point: the next admission sees it.
	p.SetRate(1000)
	if got := p.Next(now); got.Sub(now) != time.Millisecond {
		t.Fatalf("retuned interval = %v, want 1ms", got.Sub(now))
	}

	// Degenerate inputs all mean "unpaced", never a panic or a negative
	// interval.
	for _, r := range []float64{0, -5} {
		p.SetRate(r)
		if p.Rate() != 0 {
			t.Fatalf("SetRate(%g) left rate %g, want 0", r, p.Rate())
		}
	}
	// Absurdly high rates floor at a 1ns interval.
	p.SetRate(1e18)
	if got := p.Next(now); got.Sub(now) < time.Nanosecond {
		t.Fatal("interval below 1ns")
	}
}

// countingStub records every body it receives, a deterministic sink for
// the generator.
type countingStub struct {
	mu     sync.Mutex
	bodies []string
}

func (c *countingStub) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf, _ := io.ReadAll(r.Body)
		c.mu.Lock()
		c.bodies = append(c.bodies, string(buf))
		c.mu.Unlock()
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	})
}

func (c *countingStub) sorted() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.bodies...)
	sort.Strings(out)
	return out
}

func TestRunDeterministicKeyMultiset(t *testing.T) {
	run := func() []string {
		stub := &countingStub{}
		ts := httptest.NewServer(stub.handler())
		defer ts.Close()
		rep, err := Run(context.Background(), Config{
			Targets:  []string{ts.URL},
			Workers:  4,
			Requests: 120,
			Keys:     16,
			Seed:     42,
			Stages:   4, Processors: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sent != 120 || rep.Errors != 0 {
			t.Fatalf("report: %+v", rep)
		}
		if rep.Tiers["hit"] != 120 {
			t.Fatalf("tiers = %v, want 120 hits", rep.Tiers)
		}
		return stub.sorted()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs sent %d vs %d requests", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request multiset diverged at %d — the stream is not reproducible", i)
		}
	}
	// The Zipf draw over 16 keys must repeat keys (skew means a hot
	// head), so distinct bodies < requests.
	distinct := map[string]bool{}
	for _, s := range a {
		distinct[s] = true
	}
	if len(distinct) >= len(a) {
		t.Fatal("no key repeated — Zipf skew is not being applied")
	}
	if len(distinct) < 2 {
		t.Fatal("only one distinct key — universe generation is broken")
	}
}

func TestRunCountsErrors(t *testing.T) {
	var n int64
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		fail := n%2 == 0
		mu.Unlock()
		if fail {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Workers:  2,
		Requests: 50,
		Keys:     4,
		Stages:   4, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 25 {
		t.Fatalf("errors = %d, want 25 (every second request 500s)", rep.Errors)
	}
	if rep.Statuses["500"] != 25 || rep.Statuses["200"] != 25 {
		t.Fatalf("statuses = %v", rep.Statuses)
	}
}

func TestRunDetectsVerifyMismatch(t *testing.T) {
	serve := func(body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(body))
		}))
	}
	target := serve("one answer")
	defer target.Close()
	ref := serve("a different answer")
	defer ref.Close()

	rep, err := Run(context.Background(), Config{
		Targets:      []string{target.URL},
		VerifyTarget: ref.URL,
		Workers:      2,
		Requests:     10,
		Keys:         4,
		Stages:       4, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 10 {
		t.Fatalf("mismatches = %d, want 10", rep.Mismatches)
	}

	// And agreeing targets report zero.
	rep, err = Run(context.Background(), Config{
		Targets:      []string{target.URL},
		VerifyTarget: target.URL,
		Workers:      2,
		Requests:     10,
		Keys:         4,
		Stages:       4, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("self-verify mismatches = %d, want 0", rep.Mismatches)
	}
}

func TestRunPacedRateIsRoughlyHonoured(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Workers:  4,
		Requests: 100,
		Rate:     1000, // 100 requests at 1k/s ≈ 100ms wall clock
		Keys:     4,
		Stages:   4, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 100 {
		t.Fatalf("sent %d of 100", rep.Sent)
	}
	// The pacer must actually have slowed the run below closed-loop
	// speed; generous upper bound keeps slow CI green.
	if rep.ElapsedSeconds < 0.05 {
		t.Fatalf("run finished in %.3fs — pacing was not applied", rep.ElapsedSeconds)
	}
	if rep.ElapsedSeconds > 5 {
		t.Fatalf("run took %.1fs — pacing far too slow", rep.ElapsedSeconds)
	}
}

func TestRunConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-targets":   {},
		"bad-zipf":     {Targets: []string{"http://x"}, ZipfS: 0.5},
		"negative-req": {Targets: []string{"http://x"}, Requests: -1},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run accepted %+v", name, cfg)
		}
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	s := summarize(lat)
	if s.P50MS != 50 || s.P90MS != 90 || s.P99MS != 99 || s.MaxMS != 100 {
		t.Fatalf("quantiles = %+v", s)
	}
	if s.MeanMS < 50.4 || s.MeanMS > 50.6 {
		t.Fatalf("mean = %g, want 50.5", s.MeanMS)
	}
	if z := summarize(nil); z != (LatencySummary{}) {
		t.Fatalf("empty summary = %+v", z)
	}
}

// TestRunBatchModeWireShape: Batch > 1 drives /v1/batch with bodies of
// exactly Batch instances whose platforms are one shared object — the
// shape the daemon's platform dedup and the grouped SoA lane key on —
// while the pipelines stay distinct.
func TestRunBatchModeWireShape(t *testing.T) {
	var mu sync.Mutex
	paths := map[string]int{}
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf, _ := io.ReadAll(r.Body)
		mu.Lock()
		paths[r.URL.Path]++
		bodies = append(bodies, string(buf))
		mu.Unlock()
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		Targets: []string{ts.URL},
		Workers: 2, Requests: 20,
		Keys: 12, Batch: 4,
		Seed: 5, Stages: 4, Processors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 20 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if paths["/v1/batch"] != 20 || len(paths) != 1 {
		t.Fatalf("paths = %v, want 20 hits on /v1/batch only", paths)
	}
	for _, body := range bodies {
		var req struct {
			Instances []struct {
				Pipeline json.RawMessage `json:"pipeline"`
				Platform json.RawMessage `json:"platform"`
			} `json:"instances"`
			Bound float64 `json:"bound"`
		}
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("batch body is not JSON: %v\n%s", err, body)
		}
		// 12 keys in groups of 4: every group is full.
		if len(req.Instances) != 4 {
			t.Fatalf("batch holds %d instances, want 4", len(req.Instances))
		}
		if req.Bound != 1e6 {
			t.Fatalf("bound = %g, want the default 1e6", req.Bound)
		}
		pipes := map[string]bool{}
		for _, in := range req.Instances {
			if string(in.Platform) != string(req.Instances[0].Platform) {
				t.Fatal("instances in one batch must share the group platform")
			}
			pipes[string(in.Pipeline)] = true
		}
		if len(pipes) < 2 {
			t.Fatal("batch pipelines are not distinct — universe generation is broken")
		}
	}
}
