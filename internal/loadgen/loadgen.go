// Package loadgen is the engine of cmd/pipeschedbench: a deterministic,
// Zipf-skewed load generator for a pipeschedd fleet. It generates a
// fixed universe of solve instances from a seed, drives them at a
// configurable (and mid-run retunable, see Pacer) arrival rate across
// one or more targets, and reports achieved QPS, the X-Cache hit-tier
// breakdown and latency percentiles. An optional verify target replays
// every response against a reference daemon and counts byte mismatches —
// the fleet-vs-single-node bit-identity check the cluster CI lane runs.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"pipesched/internal/faultinject"
	"pipesched/internal/workload"
)

// Config parameterises one load-generation run. Zero values select the
// documented defaults; Targets is the only required field.
type Config struct {
	// Targets are the base URLs the request stream round-robins over.
	Targets []string
	// VerifyTarget, when set, receives every request a second time; the
	// two response bodies must match byte for byte (solvers are
	// deterministic, so any divergence is a bug). Mismatches are counted
	// in the report.
	VerifyTarget string
	// Workers is the number of concurrent request loops (default 16).
	Workers int
	// Requests caps the run at an exact request count; with a fixed Seed
	// this makes the whole key sequence deterministic. 0 means run for
	// Duration instead.
	Requests int
	// Duration bounds the run when Requests is 0 (default 10s).
	Duration time.Duration
	// Rate is the arrival rate in requests/second; 0 = closed loop (as
	// fast as the workers complete).
	Rate float64
	// FinalRate, when positive and the run is duration-bounded, ramps
	// the rate linearly from Rate to FinalRate over the run.
	FinalRate float64
	// Keys is the number of distinct instances in the universe (default
	// 256); requests draw from it with Zipf skew, so a handful of hot
	// keys dominate like real repeat traffic does.
	Keys int
	// ZipfS and ZipfV are the Zipf skew parameters (defaults 1.1 and 1;
	// s must be > 1 and v >= 1).
	ZipfS, ZipfV float64
	// Seed makes the instance universe and the key sequence reproducible
	// (default 1).
	Seed int64
	// Family, Stages and Processors shape the generated instances
	// (defaults E1, 8, 8).
	Family             workload.Family
	Stages, Processors int
	// Objective is the solve objective ("" = min-latency).
	Objective string
	// Batch, when > 1, switches the stream to POST /v1/batch: the key
	// universe is grouped into batch bodies of this many consecutive
	// instances, all sharing their group's first platform — the skewed
	// many-pipelines-few-platforms shape the grouped batch lane (and the
	// daemon's decode-time platform dedup) is built for. Keys then counts
	// instances, not requests: the Zipf draw runs over the batch bodies.
	// 0 or 1 keeps the per-instance /v1/solve stream.
	Batch int
	// Bound is the solve bound (default 1e6: loose enough that every
	// instance is feasible, so the stream measures serving, not
	// infeasibility handling).
	Bound float64
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Chaos, when set, routes the load stream's requests through a
	// fault-injecting transport under this seeded schedule: injected
	// drops, latency and synthesized statuses exercise the client-facing
	// path of a fleet under partition. Injected faults are counted
	// separately (Report.Injected) and never as Errors — they are the
	// harness's own doing, not the fleet's. The verify stream always
	// uses a clean client, so bit-identity is asserted on real
	// responses only.
	Chaos *faultinject.Schedule
}

func (c *Config) setDefaults() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("loadgen: no targets")
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Requests < 0 {
		return fmt.Errorf("loadgen: negative request count")
	}
	if c.Requests == 0 && c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 256
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ZipfV == 0 {
		c.ZipfV = 1
	}
	if c.ZipfS <= 1 || c.ZipfV < 1 {
		return fmt.Errorf("loadgen: zipf wants s > 1 and v >= 1 (got s=%g v=%g)", c.ZipfS, c.ZipfV)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Family == 0 {
		c.Family = workload.E1
	}
	if c.Stages <= 0 {
		c.Stages = 8
	}
	if c.Processors <= 0 {
		c.Processors = 8
	}
	if c.Bound == 0 {
		c.Bound = 1e6
	}
	if c.Batch < 0 {
		return fmt.Errorf("loadgen: negative batch size")
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return nil
}

// LatencySummary is the latency tail of one run, in milliseconds.
type LatencySummary struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is the outcome of one run.
type Report struct {
	Targets        int            `json:"targets"`
	Sent           int            `json:"sent"`
	Errors         int            `json:"errors"`     // transport failures + non-200 statuses
	Injected       int            `json:"injected"`   // client-side chaos faults (never errors)
	Mismatches     int            `json:"mismatches"` // verify-target body divergences
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	QPS            float64        `json:"qps"`
	Tiers          map[string]int `json:"tiers"`    // X-Cache tier -> count (200s only)
	Statuses       map[string]int `json:"statuses"` // HTTP status -> count
	Latency        LatencySummary `json:"latency"`
}

// workerState accumulates one worker's tallies, merged after the run so
// the hot loop never shares a counter.
type workerState struct {
	sent, errors, injected, mismatches int
	tiers                              map[string]int
	statuses                           map[string]int
	latencies                          []time.Duration
}

// Run executes one load-generation run and returns its report. The
// request stream is deterministic given the config (single generator
// goroutine, seeded Zipf, round-robin target choice); only the
// interleaving across workers varies.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	bodies, err := buildBodies(cfg)
	if err != nil {
		return nil, err
	}
	newTransport := func() http.RoundTripper {
		return &http.Transport{
			MaxIdleConnsPerHost: cfg.Workers + 1,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt := newTransport()
	if cfg.Chaos != nil {
		rt = faultinject.NewTransport(rt, cfg.Chaos)
	}
	client := &http.Client{Timeout: cfg.Timeout, Transport: rt}
	// The verify stream never crosses the chaos transport: mismatch
	// accounting must compare real fleet responses against the
	// reference, not the harness's own injected failures.
	verifyClient := client
	if cfg.Chaos != nil {
		verifyClient = &http.Client{Timeout: cfg.Timeout, Transport: newTransport()}
	}

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Requests == 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	pacer := NewPacer(cfg.Rate)
	if cfg.FinalRate > 0 && cfg.Rate > 0 && cfg.Requests == 0 {
		go ramp(runCtx, pacer, cfg.Rate, cfg.FinalRate, cfg.Duration)
	}

	// The generator owns all randomness: one seeded Zipf draw and one
	// round-robin counter per admission, so the multiset of keys (and,
	// with Requests set, the exact sequence) is reproducible.
	path := "/v1/solve"
	if cfg.Batch > 1 {
		path = "/v1/batch"
	}
	type job struct{ key, target int }
	jobs := make(chan job, cfg.Workers)
	go func() {
		defer close(jobs)
		// The Zipf draw runs over the rendered bodies — per-instance solve
		// bodies, or batch-mode groups of Batch instances each.
		zipf := rand.NewZipf(rand.New(rand.NewSource(cfg.Seed)), cfg.ZipfS, cfg.ZipfV, uint64(len(bodies)-1))
		next := time.Now()
		for i := 0; cfg.Requests == 0 || i < cfg.Requests; i++ {
			if cfg.Rate > 0 {
				if d := time.Until(next); d > 0 {
					select {
					case <-time.After(d):
					case <-runCtx.Done():
						return
					}
				}
				next = pacer.Next(next)
			}
			j := job{key: int(zipf.Uint64()), target: i % len(cfg.Targets)}
			select {
			case jobs <- j:
			case <-runCtx.Done():
				return
			}
		}
	}()

	states := make([]*workerState, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		st := &workerState{tiers: map[string]int{}, statuses: map[string]int{}}
		states[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				body := bodies[j.key]
				t0 := time.Now()
				status, tier, injected, respBody, err := post(runCtx, client, cfg.Targets[j.target], path, body)
				st.latencies = append(st.latencies, time.Since(t0))
				st.sent++
				if err != nil {
					if faultinject.Injected(err) {
						// The harness dropped its own request; the fleet
						// never saw it, so it cannot count against it.
						st.injected++
						st.statuses["injected"]++
					} else {
						st.errors++
						st.statuses["transport-error"]++
					}
					continue
				}
				if injected {
					// A synthesized client-side status, same reasoning.
					st.injected++
					st.statuses["injected"]++
					continue
				}
				st.statuses[strconv.Itoa(status)]++
				if status != http.StatusOK {
					st.errors++
					continue
				}
				if tier != "" {
					st.tiers[tier]++
				}
				if cfg.VerifyTarget != "" {
					_, _, _, refBody, err := post(runCtx, verifyClient, cfg.VerifyTarget, path, body)
					if err != nil || !bytes.Equal(respBody, refBody) {
						st.mismatches++
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Targets:        len(cfg.Targets),
		ElapsedSeconds: elapsed.Seconds(),
		Tiers:          map[string]int{},
		Statuses:       map[string]int{},
	}
	var all []time.Duration
	for _, st := range states {
		rep.Sent += st.sent
		rep.Errors += st.errors
		rep.Injected += st.injected
		rep.Mismatches += st.mismatches
		for k, v := range st.tiers {
			rep.Tiers[k] += v
		}
		for k, v := range st.statuses {
			rep.Statuses[k] += v
		}
		all = append(all, st.latencies...)
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Sent) / elapsed.Seconds()
	}
	rep.Latency = summarize(all)
	return rep, nil
}

// ramp retunes the pacer every 100ms along the linear path from r0 to r1
// over the run duration — the generator picks the new rate up on its
// next admission.
func ramp(ctx context.Context, p *Pacer, r0, r1 float64, d time.Duration) {
	start := time.Now()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			frac := float64(time.Since(start)) / float64(d)
			if frac > 1 {
				frac = 1
			}
			p.SetRate(r0 + (r1-r0)*frac)
		}
	}
}

// buildBodies renders the instance universe once: request i is the
// marshalled solve body of the seeded instance i (or, in batch mode, the
// marshalled batch of instances i·Batch..), so every run with the same
// config replays byte-identical requests.
func buildBodies(cfg Config) ([][]byte, error) {
	if cfg.Batch > 1 {
		return buildBatchBodies(cfg)
	}
	bodies := make([][]byte, cfg.Keys)
	for i := range bodies {
		in := workload.Generate(workload.Config{
			Family:     cfg.Family,
			Stages:     cfg.Stages,
			Processors: cfg.Processors,
			Seed:       cfg.Seed + int64(i),
		})
		req := map[string]any{
			"pipeline": in.App,
			"platform": in.Plat,
			"bound":    cfg.Bound,
		}
		if cfg.Objective != "" {
			req["objective"] = cfg.Objective
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal instance %d: %w", i, err)
		}
		bodies[i] = b
	}
	return bodies, nil
}

// buildBatchBodies renders the universe as /v1/batch requests of Batch
// consecutive seeded pipelines. Every instance in a group reuses the
// group's first platform: real batches are a sweep of many pipelines
// over one cluster, and the shared platform is what lets the daemon
// dedup platforms at decode time and the grouped batch lane build the
// evaluator tables once per group.
func buildBatchBodies(cfg Config) ([][]byte, error) {
	n := (cfg.Keys + cfg.Batch - 1) / cfg.Batch
	bodies := make([][]byte, n)
	for g := range bodies {
		lo := g * cfg.Batch
		hi := lo + cfg.Batch
		if hi > cfg.Keys {
			hi = cfg.Keys
		}
		var plat any
		instances := make([]map[string]any, 0, hi-lo)
		for i := lo; i < hi; i++ {
			in := workload.Generate(workload.Config{
				Family:     cfg.Family,
				Stages:     cfg.Stages,
				Processors: cfg.Processors,
				Seed:       cfg.Seed + int64(i),
			})
			if plat == nil {
				plat = in.Plat
			}
			instances = append(instances, map[string]any{
				"pipeline": in.App,
				"platform": plat,
			})
		}
		req := map[string]any{
			"instances": instances,
			"bound":     cfg.Bound,
		}
		if cfg.Objective != "" {
			req["objective"] = cfg.Objective
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("loadgen: marshal batch %d: %w", g, err)
		}
		bodies[g] = b
	}
	return bodies, nil
}

// post issues one request and returns status, X-Cache tier, whether the
// response was synthesized by a chaos transport, and the body.
func post(ctx context.Context, client *http.Client, target, path string, body []byte) (int, string, bool, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", false, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", false, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", false, nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get(faultinject.Header) != "", b, nil
}

// summarize computes the latency tail of one run.
func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	at := func(q float64) time.Duration {
		// Nearest-rank, matching the service's own quantile convention.
		idx := int(math.Ceil(q*float64(len(lat)))) - 1
		if idx < 0 {
			idx = 0
		}
		return lat[idx]
	}
	return LatencySummary{
		MeanMS: ms(sum) / float64(len(lat)),
		P50MS:  ms(at(0.50)),
		P90MS:  ms(at(0.90)),
		P95MS:  ms(at(0.95)),
		P99MS:  ms(at(0.99)),
		MaxMS:  ms(lat[len(lat)-1]),
	}
}
