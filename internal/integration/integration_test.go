// Package integration_test wires every subsystem together on shared
// instances: workload generation → lower bounds → heuristics → exact
// solvers → simulator, across all four experiment families. Each test
// asserts a relationship *between* modules that no per-package unit test
// can see.
package integration_test

import (
	"math"
	"testing"

	"pipesched/internal/chains"
	"pipesched/internal/exact"
	"pipesched/internal/heuristics"
	"pipesched/internal/lowerbound"
	"pipesched/internal/mapping"
	"pipesched/internal/onetoone"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
	"pipesched/internal/sim"
	"pipesched/internal/subhlok"
	"pipesched/internal/workload"
)

// The full sandwich on every family: for random instances and a sweep of
// period bounds,
//
//	lower bound ≤ exact optimum ≤ heuristic ≤ single-processor period
//
// and every feasible heuristic mapping simulates to its analytic metrics.
func TestSandwichAcrossFamilies(t *testing.T) {
	for _, fam := range workload.Families() {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 5; seed++ {
				in := workload.Generate(workload.Config{
					Family: fam, Stages: 8, Processors: 6, Seed: 9000 + seed,
				})
				ev := in.Evaluator()
				lb := lowerbound.Period(ev)
				opt, err := exact.MinPeriod(ev)
				if err != nil {
					t.Fatal(err)
				}
				single := mapping.SingleProcessor(in.App, in.Plat, in.Plat.Fastest())
				p0 := ev.Period(single)
				if lb > opt.Metrics.Period*(1+1e-9) {
					t.Fatalf("seed %d: lower bound %g > exact %g", seed, lb, opt.Metrics.Period)
				}
				if opt.Metrics.Period > p0*(1+1e-9) {
					t.Fatalf("seed %d: exact %g > single-proc %g", seed, opt.Metrics.Period, p0)
				}
				for _, h := range heuristics.PeriodHeuristics() {
					minP, err := heuristics.MinAchievablePeriod(ev, h)
					if err != nil {
						t.Fatalf("seed %d: %s threshold: %v", seed, h.ID(), err)
					}
					if minP < opt.Metrics.Period-1e-9 {
						t.Fatalf("seed %d: %s reached %g below exact optimum %g",
							seed, h.ID(), minP, opt.Metrics.Period)
					}
					res, err := h.MinimizeLatency(ev, minP*1.000001)
					if err != nil {
						t.Fatalf("seed %d: %s infeasible at own threshold: %v", seed, h.ID(), err)
					}
					if err := sim.ValidateModel(ev, res.Mapping, 1e-9); err != nil {
						t.Fatalf("seed %d: %s mapping fails simulation: %v", seed, h.ID(), err)
					}
				}
			}
		})
	}
}

// One-to-one optima are dominated by interval optima whenever n ≤ p (the
// interval class strictly contains singletons), and the heuristics —
// though restricted to fastest-first processors — must stay within the
// one-to-one period optimum's reach on loose bounds.
func TestOneToOneDominatedByIntervals(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.Generate(workload.Config{
			Family: workload.E2, Stages: 5, Processors: 8, Seed: 700 + seed,
		})
		ev := in.Evaluator()
		_, oMet, err := onetoone.MinPeriod(ev)
		if err != nil {
			t.Fatal(err)
		}
		iOpt, err := exact.MinPeriod(ev)
		if err != nil {
			t.Fatal(err)
		}
		if iOpt.Metrics.Period > oMet.Period*(1+1e-9) {
			t.Fatalf("seed %d: interval optimum %g worse than one-to-one %g",
				seed, iOpt.Metrics.Period, oMet.Period)
		}
		_, oLat, err := onetoone.MinLatency(ev)
		if err != nil {
			t.Fatal(err)
		}
		_, intervalOptLat := ev.OptimalLatency()
		if intervalOptLat > oLat.Latency*(1+1e-9) {
			t.Fatalf("seed %d: Lemma-1 latency %g worse than one-to-one latency %g",
				seed, intervalOptLat, oLat.Latency)
		}
	}
}

// On identical-speed platforms three independent solvers must agree: the
// polynomial Subhlok DP, the exponential bitmask DP, and (for the chains
// sub-case with zero communications) the homogeneous chains DP.
func TestThreeSolverAgreementIdenticalSpeeds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := workload.Generate(workload.Config{
			Family: workload.E1, Stages: 7, Processors: 4, Seed: 300 + seed,
		})
		// Force identical speeds, keep the generated works/deltas.
		speeds := in.Plat.Speeds()
		for i := range speeds {
			speeds[i] = 10
		}
		plat := mustPlatform(t, speeds, in.Plat.Bandwidth())
		ev := mapping.NewEvaluator(in.App, plat)
		poly, err := subhlok.MinPeriod(ev)
		if err != nil {
			t.Fatal(err)
		}
		expo, err := exact.MinPeriod(ev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(poly.Metrics.Period-expo.Metrics.Period) > 1e-9 {
			t.Fatalf("seed %d: subhlok %g vs exact %g", seed, poly.Metrics.Period, expo.Metrics.Period)
		}
		// Zero-comm variant reduces to homogeneous chains.
		app0 := mustPipeline(t, in.App.Works(), make([]float64, in.App.Stages()+1))
		ev0 := mapping.NewEvaluator(app0, plat)
		poly0, err := subhlok.MinPeriod(ev0)
		if err != nil {
			t.Fatal(err)
		}
		part, err := chains.HomogeneousDP(in.App.Works(), plat.Processors())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(poly0.Metrics.Period-part.Bottleneck/10) > 1e-9 {
			t.Fatalf("seed %d: subhlok %g vs chains %g", seed, poly0.Metrics.Period, part.Bottleneck/10)
		}
	}
}

// The Table-1 relationships hold on fresh instances never seen by the
// per-package tests: thresholds are bracketed by the lower bound and the
// single-processor period, and the latency thresholds equal the optimal
// latency exactly.
func TestThresholdBracketing(t *testing.T) {
	for _, fam := range workload.Families() {
		for seed := int64(0); seed < 5; seed++ {
			in := workload.Generate(workload.Config{
				Family: fam, Stages: 12, Processors: 10, Seed: 5000 + seed,
			})
			ev := in.Evaluator()
			lb := lowerbound.Period(ev)
			single := mapping.SingleProcessor(in.App, in.Plat, in.Plat.Fastest())
			p0 := ev.Period(single)
			for _, h := range heuristics.PeriodHeuristics() {
				th, err := heuristics.MinAchievablePeriod(ev, h)
				if err != nil {
					t.Fatalf("%s seed %d: %s threshold: %v", fam, seed, h.ID(), err)
				}
				if th < lb*(1-1e-9) || th > p0*(1+1e-9) {
					t.Fatalf("%s seed %d: %s threshold %g outside [%g, %g]",
						fam, seed, h.ID(), th, lb, p0)
				}
			}
			_, optLat := ev.OptimalLatency()
			if th := heuristics.LatencyFailureThreshold(ev); th != optLat {
				t.Fatalf("%s seed %d: latency threshold %g ≠ optimal latency %g", fam, seed, th, optLat)
			}
		}
	}
}

// End-to-end pipeline through the simulator at scale: run a heuristic
// mapping for thousands of data sets and verify throughput accounting —
// makespan ≈ latency + (K-1)·period — a relationship combining both
// analytic formulas with the simulator's execution.
func TestThroughputAccounting(t *testing.T) {
	in := workload.Generate(workload.Config{
		Family: workload.E2, Stages: 20, Processors: 10, Seed: 77,
	})
	ev := in.Evaluator()
	floor, err := heuristics.MinAchievablePeriod(ev, heuristics.SpMonoP{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := heuristics.SpMonoP{}.MinimizeLatency(ev, floor*1.05)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5000
	rep, err := sim.Run(ev, res.Mapping, sim.Options{DataSets: k})
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline fill costs at most one latency; afterwards one data
	// set completes per period. Allow one extra period of slack for the
	// fill/drain boundary.
	upper := res.Metrics.Latency + float64(k)*res.Metrics.Period
	lower := float64(k-1) * res.Metrics.Period
	if rep.Makespan > upper+1e-6 || rep.Makespan < lower-1e-6 {
		t.Fatalf("makespan %g outside [%g, %g]", rep.Makespan, lower, upper)
	}
}

func mustPlatform(t *testing.T, speeds []float64, b float64) *platform.Platform {
	t.Helper()
	p, err := platform.New(speeds, b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustPipeline(t *testing.T, works, deltas []float64) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(works, deltas)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
