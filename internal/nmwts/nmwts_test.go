package nmwts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipesched/internal/chains"
)

// solvableInstance constructs an NMWTS instance with a known solution by
// drawing x, y and a random pairing, then defining z as the permuted sums.
func solvableInstance(r *rand.Rand, m, maxVal int) (Instance, Solution) {
	x := make([]int, m)
	y := make([]int, m)
	for i := range x {
		x[i] = 1 + r.Intn(maxVal)
		y[i] = 1 + r.Intn(maxVal)
	}
	sigma1 := r.Perm(m)
	sigma2 := r.Perm(m)
	z := make([]int, m)
	for i := 0; i < m; i++ {
		z[sigma2[i]] = x[i] + y[sigma1[i]]
	}
	return Instance{X: x, Y: y, Z: z}, Solution{Sigma1: sigma1, Sigma2: sigma2}
}

func TestValidate(t *testing.T) {
	good := Instance{X: []int{1}, Y: []int{2}, Z: []int{3}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{},
		{X: []int{1}, Y: []int{2}, Z: []int{3, 4}},
		{X: []int{0}, Y: []int{2}, Z: []int{2}},
		{X: []int{-1}, Y: []int{2}, Z: []int{1}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestSumsBalanced(t *testing.T) {
	in := Instance{X: []int{1, 2}, Y: []int{3, 4}, Z: []int{5, 5}}
	if !in.SumsBalanced() {
		t.Error("balanced instance reported unbalanced")
	}
	in.Z[0] = 6
	if in.SumsBalanced() {
		t.Error("unbalanced instance reported balanced")
	}
}

func TestCheck(t *testing.T) {
	in := Instance{X: []int{1, 2}, Y: []int{3, 4}, Z: []int{4, 6}}
	good := Solution{Sigma1: []int{0, 1}, Sigma2: []int{0, 1}} // 1+3=4, 2+4=6
	if err := in.Check(good); err != nil {
		t.Errorf("valid solution rejected: %v", err)
	}
	if err := in.Check(Solution{Sigma1: []int{1, 0}, Sigma2: []int{0, 1}}); err == nil {
		t.Error("wrong pairing accepted")
	}
	if err := in.Check(Solution{Sigma1: []int{0, 0}, Sigma2: []int{0, 1}}); err == nil {
		t.Error("non-permutation accepted")
	}
}

func TestSolveBruteFindsPlantedSolutions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(4)
		in, _ := solvableInstance(r, m, 5)
		sol, ok, err := SolveBrute(in)
		if err != nil || !ok {
			return false
		}
		return in.Check(sol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSolveBruteRejectsUnsolvable(t *testing.T) {
	// Σx + Σy ≠ Σz ⇒ unsolvable.
	in := Instance{X: []int{1, 1}, Y: []int{1, 1}, Z: []int{2, 3}}
	_, ok, err := SolveBrute(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unsolvable instance solved")
	}
}

func TestSolveBruteCapsM(t *testing.T) {
	m := MaxBruteM + 1
	in := Instance{X: make([]int, m), Y: make([]int, m), Z: make([]int, m)}
	for i := 0; i < m; i++ {
		in.X[i], in.Y[i], in.Z[i] = 1, 1, 2
	}
	if _, _, err := SolveBrute(in); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestReduceShape(t *testing.T) {
	in := Instance{X: []int{2, 3}, Y: []int{1, 4}, Z: []int{3, 7}}
	r, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	mv := 7 // max value
	if r.MaxVal != mv {
		t.Fatalf("MaxVal = %d, want %d", r.MaxVal, mv)
	}
	if len(r.Tasks) != (mv+3)*2 {
		t.Errorf("%d tasks, want %d", len(r.Tasks), (mv+3)*2)
	}
	if len(r.Speeds) != 6 {
		t.Errorf("%d speeds, want 6", len(r.Speeds))
	}
	// Spot-check gadget values: A_1 = B + x_1 = 14 + 2 = 16,
	// C = 35, D = 49; s_1 = B + z_1 = 17, s_3 = C + M − y_1 = 41,
	// s_5 = D = 49.
	if r.Tasks[0] != 16 {
		t.Errorf("A_1 = %g, want 16", r.Tasks[0])
	}
	if r.Tasks[mv+1] != 35 || r.Tasks[mv+2] != 49 {
		t.Errorf("C/D tasks = %g/%g, want 35/49", r.Tasks[mv+1], r.Tasks[mv+2])
	}
	if r.Speeds[0] != 17 || r.Speeds[2] != 41 || r.Speeds[4] != 49 {
		t.Errorf("speeds = %v", r.Speeds)
	}
	// The proof's ordering: s_i < s_{m+j} < s_{2m+k} = D.
	for i := 0; i < 2; i++ {
		for j := 2; j < 4; j++ {
			if !(r.Speeds[i] < r.Speeds[j] && r.Speeds[j] < r.Speeds[4]) {
				t.Errorf("speed ordering violated: %v", r.Speeds)
			}
		}
	}
}

// Forward direction of Theorem 1: a planted NMWTS solution maps to a valid
// partition of the reduction matching bound 1.
func TestForwardMapping(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(3)
		in, sol := solvableInstance(r, m, 4)
		red, err := Reduce(in)
		if err != nil {
			return false
		}
		part, err := PartitionFromSolution(in, red, sol)
		if err != nil {
			return false
		}
		return part.Bottleneck <= 1+1e-9 && len(part.Ends) == 3*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Backward direction: solving the reduced Hetero-1D-Partition instance
// exactly and mapping back recovers a valid NMWTS solution — the full
// round trip of the NP-hardness proof, executed.
func TestBackwardMappingViaExactSolver(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		m := 1 + r.Intn(2) // 3m ≤ 6 processors keeps the exact DP fast
		in, _ := solvableInstance(r, m, 3)
		red, err := Reduce(in)
		if err != nil {
			t.Fatal(err)
		}
		part, err := chains.HeterogeneousExact(red.Tasks, red.Speeds)
		if err != nil {
			t.Fatal(err)
		}
		if part.Bottleneck > 1+1e-9 {
			t.Fatalf("trial %d: exact bottleneck %g > 1 on a solvable instance", trial, part.Bottleneck)
		}
		sol, err := SolutionFromPartition(in, red, part)
		if err != nil {
			t.Fatalf("trial %d: backward mapping failed: %v", trial, err)
		}
		if err := in.Check(sol); err != nil {
			t.Fatalf("trial %d: recovered solution invalid: %v", trial, err)
		}
	}
}

// Unsolvable instances must make the reduced partition problem miss the
// bound: the exact bottleneck stays strictly above 1.
func TestUnsolvableInstanceMissesBound(t *testing.T) {
	// Balanced sums but provably unmatchable: x={1,2}, y={1,2}, z={2,4}:
	// pairings give {1+1,2+2}={2,4} ✓ — need a truly unmatchable one:
	// x={1,2}, y={1,2}, z={3,3}: sums 3+3=6=Σx+Σy ✓, pairs: 1+2=3 ✓ and
	// 2+1=3 ✓ — solvable again. Use z={2,4} vs pairing (1+2,2+1)=(3,3):
	// the multiset {2,4} needs 1+1 and 2+2 → σ1=identity works. So craft:
	// x={1,1}, y={1,1}, z={1,3}: balanced (2+2=4=1+3) but sums can only
	// be {2,2} ≠ {1,3}: unsolvable.
	in := Instance{X: []int{1, 1}, Y: []int{1, 1}, Z: []int{1, 3}}
	if _, ok, err := SolveBrute(in); err != nil || ok {
		t.Fatalf("expected unsolvable, got ok=%v err=%v", ok, err)
	}
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	part, err := chains.HeterogeneousExact(red.Tasks, red.Speeds)
	if err != nil {
		t.Fatal(err)
	}
	if part.Bottleneck <= 1+1e-9 {
		t.Errorf("unsolvable instance achieved bottleneck %g ≤ 1: reduction broken", part.Bottleneck)
	}
	if _, err := SolutionFromPartition(in, red, part); err == nil {
		t.Error("backward mapping accepted an over-bound partition")
	}
}

func TestPartitionFromSolutionRejectsBadSolution(t *testing.T) {
	in := Instance{X: []int{1}, Y: []int{2}, Z: []int{3}}
	red, err := Reduce(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionFromSolution(in, red, Solution{Sigma1: []int{0}, Sigma2: []int{1}}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}
