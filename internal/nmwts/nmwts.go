// Package nmwts makes the paper's NP-completeness construction executable
// (Section 3, Theorem 1): it models NUMERICAL MATCHING WITH TARGET SUMS
// (NMWTS) instances, solves small ones exhaustively, and implements the
// polynomial reduction from NMWTS to Hetero-1D-Partition together with the
// forward and backward solution mappings the proof describes.
//
// Given 3m numbers x_1..x_m, y_1..y_m, z_1..z_m, NMWTS asks for two
// permutations σ1, σ2 of {1..m} with x_i + y_{σ1(i)} = z_{σ2(i)} for all
// i. The reduction builds (M+3)·m tasks and 3m processor speeds such that
// a partition matching the bound K = 1 exists iff the NMWTS instance has a
// solution (M = max over all values, B = 2M, C = 5M, D = 7M).
package nmwts

import (
	"errors"
	"fmt"

	"pipesched/internal/chains"
)

// Instance is an NMWTS instance. All values must be positive.
type Instance struct {
	X, Y, Z []int
}

// M returns the number of triples.
func (in Instance) M() int { return len(in.X) }

// Validate checks structural well-formedness (equal lengths, positive
// values). It does not check solvability.
func (in Instance) Validate() error {
	m := len(in.X)
	if m == 0 {
		return errors.New("nmwts: empty instance")
	}
	if len(in.Y) != m || len(in.Z) != m {
		return fmt.Errorf("nmwts: lengths %d/%d/%d differ", len(in.X), len(in.Y), len(in.Z))
	}
	for _, s := range [][]int{in.X, in.Y, in.Z} {
		for _, v := range s {
			if v <= 0 {
				return fmt.Errorf("nmwts: non-positive value %d", v)
			}
		}
	}
	return nil
}

// MaxValue returns M = max_i {x_i, y_i, z_i}.
func (in Instance) MaxValue() int {
	m := 0
	for _, s := range [][]int{in.X, in.Y, in.Z} {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// SumsBalanced reports whether Σx + Σy = Σz, a necessary condition for
// solvability the proof assumes.
func (in Instance) SumsBalanced() bool {
	sx, sy, sz := 0, 0, 0
	for i := range in.X {
		sx += in.X[i]
		sy += in.Y[i]
		sz += in.Z[i]
	}
	return sx+sy == sz
}

// Solution pairs the two permutations: X[i] + Y[Sigma1[i]] = Z[Sigma2[i]]
// (0-based indices).
type Solution struct {
	Sigma1, Sigma2 []int
}

// Check verifies sol against the instance.
func (in Instance) Check(sol Solution) error {
	m := in.M()
	if len(sol.Sigma1) != m || len(sol.Sigma2) != m {
		return fmt.Errorf("nmwts: permutation lengths %d/%d, want %d", len(sol.Sigma1), len(sol.Sigma2), m)
	}
	if !isPerm(sol.Sigma1) || !isPerm(sol.Sigma2) {
		return errors.New("nmwts: not permutations")
	}
	for i := 0; i < m; i++ {
		if in.X[i]+in.Y[sol.Sigma1[i]] != in.Z[sol.Sigma2[i]] {
			return fmt.Errorf("nmwts: x_%d + y_%d = %d ≠ z_%d = %d",
				i, sol.Sigma1[i], in.X[i]+in.Y[sol.Sigma1[i]], sol.Sigma2[i], in.Z[sol.Sigma2[i]])
		}
	}
	return nil
}

func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// MaxBruteM caps SolveBrute (m! × m! pairings pruned to m! × matching).
const MaxBruteM = 7

// SolveBrute finds a solution by exhaustive search over σ1 with a greedy
// multiset match for σ2, or reports that none exists. Instances larger
// than MaxBruteM are rejected.
func SolveBrute(in Instance) (Solution, bool, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, false, err
	}
	m := in.M()
	if m > MaxBruteM {
		return Solution{}, false, fmt.Errorf("nmwts: brute force limited to m ≤ %d, got %d", MaxBruteM, m)
	}
	perm := make([]int, m)
	used := make([]bool, m)
	var try func(i int) (Solution, bool)
	try = func(i int) (Solution, bool) {
		if i == m {
			// σ1 fixed; match sums against Z as multisets.
			sigma2, ok := matchSums(in, perm)
			if !ok {
				return Solution{}, false
			}
			return Solution{Sigma1: append([]int(nil), perm...), Sigma2: sigma2}, true
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			if sol, ok := try(i + 1); ok {
				used[j] = false
				return sol, true
			}
			used[j] = false
		}
		return Solution{}, false
	}
	sol, ok := try(0)
	return sol, ok, nil
}

// matchSums finds σ2 with x_i + y_{σ1(i)} = z_{σ2(i)}, greedily consuming
// equal z values (exact because equality is a rigid constraint).
func matchSums(in Instance, sigma1 []int) ([]int, bool) {
	m := in.M()
	taken := make([]bool, m)
	sigma2 := make([]int, m)
	for i := 0; i < m; i++ {
		want := in.X[i] + in.Y[sigma1[i]]
		found := false
		for j := 0; j < m; j++ {
			if !taken[j] && in.Z[j] == want {
				taken[j] = true
				sigma2[i] = j
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return sigma2, true
}

// Reduction is the Theorem-1 gadget: a Hetero-1D-Partition instance whose
// bound-1 solutions correspond exactly to NMWTS solutions.
type Reduction struct {
	Tasks  []float64 // n = (M+3)·m task weights
	Speeds []float64 // p = 3m processor speeds
	M      int       // number of triples m
	MaxVal int       // M = max value
}

// B, C and D return the gadget constants 2M, 5M and 7M.
func (r Reduction) B() float64 { return 2 * float64(r.MaxVal) }

// C returns 5M (weight of the guard task before each D task).
func (r Reduction) C() float64 { return 5 * float64(r.MaxVal) }

// D returns 7M (weight of the separator tasks).
func (r Reduction) D() float64 { return 7 * float64(r.MaxVal) }

// Reduce builds the reduction for a validated instance.
func Reduce(in Instance) (Reduction, error) {
	if err := in.Validate(); err != nil {
		return Reduction{}, err
	}
	m := in.M()
	mv := in.MaxValue()
	b, c, d := 2*mv, 5*mv, 7*mv
	var tasks []float64
	for i := 0; i < m; i++ {
		tasks = append(tasks, float64(b+in.X[i])) // A_i = B + x_i
		for j := 0; j < mv; j++ {
			tasks = append(tasks, 1) // M unit tasks
		}
		tasks = append(tasks, float64(c), float64(d))
	}
	speeds := make([]float64, 3*m)
	for i := 0; i < m; i++ {
		speeds[i] = float64(b + in.Z[i])        // s_i = B + z_i
		speeds[m+i] = float64(c + mv - in.Y[i]) // s_{m+i} = C + M − y_i
		speeds[2*m+i] = float64(d)              // s_{2m+i} = D
	}
	return Reduction{Tasks: tasks, Speeds: speeds, M: m, MaxVal: mv}, nil
}

// PartitionFromSolution builds the bound-1 partition the proof's forward
// direction describes: processor P_{σ2(i)} takes A_i and y_{σ1(i)} unit
// tasks, P_{m+σ1(i)} takes the remaining M − y_{σ1(i)} units plus C, and
// P_{2m+i} takes the D task.
func PartitionFromSolution(in Instance, r Reduction, sol Solution) (chains.Partition, error) {
	if err := in.Check(sol); err != nil {
		return chains.Partition{}, err
	}
	m := in.M()
	blockLen := r.MaxVal + 3
	var ends, procs []int
	for i := 0; i < m; i++ {
		base := i * blockLen
		y := in.Y[sol.Sigma1[i]]
		ends = append(ends, base+1+y) // A_i + y unit tasks
		procs = append(procs, sol.Sigma2[i])
		ends = append(ends, base+blockLen-1) // rest of units + C
		procs = append(procs, m+sol.Sigma1[i])
		ends = append(ends, base+blockLen) // D
		procs = append(procs, 2*m+i)
	}
	bott := 0.0
	start := 0
	for k, e := range ends {
		load := 0.0
		for t := start; t < e; t++ {
			load += r.Tasks[t]
		}
		if v := load / r.Speeds[procs[k]]; v > bott {
			bott = v
		}
		start = e
	}
	part := chains.Partition{Ends: ends, Proc: procs, Bottleneck: bott}
	if err := chains.Verify(r.Tasks, r.Speeds, part); err != nil {
		return chains.Partition{}, fmt.Errorf("nmwts: forward mapping built invalid partition: %w", err)
	}
	if bott > 1+1e-9 {
		return chains.Partition{}, fmt.Errorf("nmwts: forward mapping bottleneck %g > 1", bott)
	}
	return part, nil
}

// SolutionFromPartition is the proof's backward direction: extract the two
// permutations from any partition of the reduction matching bound 1.
func SolutionFromPartition(in Instance, r Reduction, part chains.Partition) (Solution, error) {
	if err := chains.Verify(r.Tasks, r.Speeds, part); err != nil {
		return Solution{}, err
	}
	if part.Bottleneck > 1+1e-9 {
		return Solution{}, fmt.Errorf("nmwts: partition bottleneck %g > 1", part.Bottleneck)
	}
	m := in.M()
	blockLen := r.MaxVal + 3
	sigma1 := make([]int, m)
	sigma2 := make([]int, m)
	for i := range sigma1 {
		sigma1[i], sigma2[i] = -1, -1
	}
	for k := range part.Ends {
		start, end := part.Bounds(k)
		proc := part.Proc[k]
		block := start / blockLen
		if block >= m {
			return Solution{}, fmt.Errorf("nmwts: interval %d beyond gadget blocks", k)
		}
		first := r.Tasks[start]
		switch {
		case first == float64(r.MaxVal)*2+float64(in.X[block]) && start == block*blockLen:
			// Interval starting at A_block → processor must be some
			// P_j with j < m, defining σ2(block) = j.
			if proc >= m {
				return Solution{}, fmt.Errorf("nmwts: A-interval on non-B processor %d", proc)
			}
			sigma2[block] = proc
			// Units taken: end − start − 1 = h_block = y_{σ1(block)}.
		case r.Tasks[end-1] == r.C():
			// Interval ending at the C task → P_{m+j}, defining
			// σ1(block) = j.
			if proc < m || proc >= 2*m {
				return Solution{}, fmt.Errorf("nmwts: C-interval on processor %d", proc)
			}
			sigma1[block] = proc - m
		case first == r.D() && end == start+1:
			// Singleton D task on a D processor: structural only.
			if proc < 2*m {
				return Solution{}, fmt.Errorf("nmwts: D task on processor %d", proc)
			}
		default:
			return Solution{}, fmt.Errorf("nmwts: unexpected interval [%d,%d) in bound-1 partition", start, end)
		}
	}
	sol := Solution{Sigma1: sigma1, Sigma2: sigma2}
	if err := in.Check(sol); err != nil {
		return Solution{}, fmt.Errorf("nmwts: extracted permutations invalid: %w", err)
	}
	return sol, nil
}
