package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The peer wire codec: the byte stream of GET /v1/peer/snapshot. A
// snapshot is a magic+version header followed by zero or more records,
//
//	[32-byte key][uvarint body length][body bytes]
//
// terminated by EOF. The key travels as its exact 32 digest bytes and
// the body length-prefixed, so no record can bleed into its neighbour's
// key — cross-peer key aliasing is structurally impossible, and
// FuzzPeerWire pins it. Decoding is bounded (entry count, per-body
// size), so a misbehaving peer cannot balloon a joining node's memory;
// any malformed stream is an error, never a panic.

// snapshotMagic opens every snapshot stream. The trailing byte is the
// codec version: bump it whenever a field is added or reordered, so a
// mixed-version fleet fails loudly at warm-up instead of importing
// garbage.
var snapshotMagic = []byte{'P', 'S', 'N', 'P', 1}

// Entry is one cache entry on the wire: a canonical key and the rendered
// response bytes stored under it.
type Entry struct {
	Key  Key
	Body []byte
}

// Decode bound errors, distinguishable from plain corruption so callers
// can log "peer over budget" differently from "peer sent garbage".
var (
	ErrBadMagic    = errors.New("cluster: snapshot stream has wrong magic or version")
	ErrTooMany     = errors.New("cluster: snapshot stream exceeds the entry bound")
	ErrBodyTooLong = errors.New("cluster: snapshot entry exceeds the body bound")
)

// EncodeSnapshot writes entries as one snapshot stream. The writer is
// buffered internally; the returned error is the first write failure.
func EncodeSnapshot(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		if _, err := bw.Write(e.Key[:]); err != nil {
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(e.Body)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSnapshot reads one snapshot stream back into entries. maxEntries
// bounds how many records are accepted and maxBody each record's body
// length; non-positive bounds reject everything, so callers must pass
// their real budgets. A stream that ends mid-record, overflows a bound
// or opens with the wrong magic is an error; a well-formed empty
// snapshot (header only) decodes to zero entries.
func DecodeSnapshot(r io.Reader, maxEntries, maxBody int) ([]Entry, error) {
	if maxBody < 0 {
		maxBody = 0 // a negative bound must not wrap to "unbounded" below
	}
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic[:]) != string(snapshotMagic) {
		return nil, ErrBadMagic
	}
	var entries []Entry
	for {
		var key Key
		if _, err := io.ReadFull(br, key[:]); err != nil {
			if err == io.EOF {
				return entries, nil // clean end between records
			}
			return nil, fmt.Errorf("cluster: snapshot truncated mid-key: %w", err)
		}
		if len(entries) >= maxEntries {
			return nil, ErrTooMany
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot truncated in body length: %w", err)
		}
		if n > uint64(maxBody) {
			return nil, fmt.Errorf("%w: %d bytes", ErrBodyTooLong, n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("cluster: snapshot truncated mid-body: %w", err)
		}
		entries = append(entries, Entry{Key: key, Body: body})
	}
}
