package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The peer wire codec: the byte stream of GET /v1/peer/snapshot. A
// snapshot is a magic+version header followed by zero or more records,
//
//	[32-byte key][uvarint body length][body bytes]
//
// terminated by EOF. The key travels as its exact 32 digest bytes and
// the body length-prefixed, so no record can bleed into its neighbour's
// key — cross-peer key aliasing is structurally impossible, and
// FuzzPeerWire pins it. Decoding is bounded (entry count, per-body
// size), so a misbehaving peer cannot balloon a joining node's memory;
// any malformed stream is an error, never a panic.

// snapshotMagic opens every snapshot stream. The trailing byte is the
// codec version: bump it whenever a field is added or reordered, so a
// mixed-version fleet fails loudly at warm-up instead of importing
// garbage.
var snapshotMagic = []byte{'P', 'S', 'N', 'P', 1}

// membersMagic opens a membership message (GET /v1/peer/members and the
// POST /v1/peer/join exchange):
//
//	[magic][uvarint epoch][uvarint count] count x [uvarint len][URL bytes]
//
// digestMagic opens a cache-key digest (GET /v1/peer/digest and the
// POST /v1/peer/fetch want-list): [magic][uvarint count] count x 32-byte
// keys. Both share the snapshot codec's discipline: versioned magic,
// bounded decode, malformed input is an error, never a panic.
var (
	membersMagic = []byte{'P', 'M', 'B', 'R', 1}
	digestMagic  = []byte{'P', 'D', 'I', 'G', 1}
)

const (
	// MaxMembers bounds how many peers one membership message may carry
	// — far above any fleet this system targets, small enough that a
	// hostile message cannot balloon memory.
	MaxMembers = 1024
	// maxPeerURLLen bounds one member URL on the wire.
	maxPeerURLLen = 512
)

// Entry is one cache entry on the wire: a canonical key and the rendered
// response bytes stored under it.
type Entry struct {
	Key  Key
	Body []byte
}

// Decode bound errors, distinguishable from plain corruption so callers
// can log "peer over budget" differently from "peer sent garbage".
var (
	ErrBadMagic    = errors.New("cluster: snapshot stream has wrong magic or version")
	ErrTooMany     = errors.New("cluster: snapshot stream exceeds the entry bound")
	ErrBodyTooLong = errors.New("cluster: snapshot entry exceeds the body bound")
	ErrURLTooLong  = errors.New("cluster: member URL exceeds the length bound")
)

// EncodeSnapshot writes entries as one snapshot stream. The writer is
// buffered internally; the returned error is the first write failure.
func EncodeSnapshot(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, e := range entries {
		if _, err := bw.Write(e.Key[:]); err != nil {
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(e.Body)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(e.Body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSnapshot reads one snapshot stream back into entries. maxEntries
// bounds how many records are accepted and maxBody each record's body
// length; non-positive bounds reject everything, so callers must pass
// their real budgets. A stream that ends mid-record, overflows a bound
// or opens with the wrong magic is an error; a well-formed empty
// snapshot (header only) decodes to zero entries.
func DecodeSnapshot(r io.Reader, maxEntries, maxBody int) ([]Entry, error) {
	if maxBody < 0 {
		maxBody = 0 // a negative bound must not wrap to "unbounded" below
	}
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic[:]) != string(snapshotMagic) {
		return nil, ErrBadMagic
	}
	var entries []Entry
	for {
		var key Key
		if _, err := io.ReadFull(br, key[:]); err != nil {
			if err == io.EOF {
				return entries, nil // clean end between records
			}
			return nil, fmt.Errorf("cluster: snapshot truncated mid-key: %w", err)
		}
		if len(entries) >= maxEntries {
			return nil, ErrTooMany
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot truncated in body length: %w", err)
		}
		if n > uint64(maxBody) {
			return nil, fmt.Errorf("%w: %d bytes", ErrBodyTooLong, n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("cluster: snapshot truncated mid-body: %w", err)
		}
		entries = append(entries, Entry{Key: key, Body: body})
	}
}

// EncodeMembers writes one membership view as a members message.
func EncodeMembers(w io.Writer, m Members) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(membersMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], m.Epoch)
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(lenBuf[:], uint64(len(m.Peers)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	for _, p := range m.Peers {
		if len(p) > maxPeerURLLen {
			return fmt.Errorf("%w: %d bytes", ErrURLTooLong, len(p))
		}
		n = binary.PutUvarint(lenBuf[:], uint64(len(p)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.WriteString(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeMembers reads one members message back. maxPeers bounds the
// peer count (non-positive rejects everything); each URL is bounded at
// maxPeerURLLen. The peer list is returned exactly as carried —
// Members.Merge and NewTopology re-canonicalise and validate, so a
// malformed list can fail a topology swap but never corrupt one.
func DecodeMembers(r io.Reader, maxPeers int) (Members, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Members{}, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic[:]) != string(membersMagic) {
		return Members{}, ErrBadMagic
	}
	epoch, err := binary.ReadUvarint(br)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members truncated in epoch: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members truncated in count: %w", err)
	}
	if maxPeers < 0 {
		maxPeers = 0
	}
	if count > uint64(maxPeers) {
		return Members{}, fmt.Errorf("%w: %d peers", ErrTooMany, count)
	}
	peers := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return Members{}, fmt.Errorf("cluster: members truncated in URL length: %w", err)
		}
		if n > maxPeerURLLen {
			return Members{}, fmt.Errorf("%w: %d bytes", ErrURLTooLong, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Members{}, fmt.Errorf("cluster: members truncated mid-URL: %w", err)
		}
		peers = append(peers, string(buf))
	}
	return Members{Epoch: epoch, Peers: peers}, nil
}

// EncodeDigest writes a key list as a digest message — a node's bounded
// cache-key inventory (served on GET /v1/peer/digest) or an anti-entropy
// want-list (POSTed to /v1/peer/fetch).
func EncodeDigest(w io.Writer, keys []Key) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(digestMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(keys)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	for i := range keys {
		if _, err := bw.Write(keys[i][:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeDigest reads one digest message back, bounded at maxKeys
// (non-positive rejects everything).
func DecodeDigest(r io.Reader, maxKeys int) ([]Key, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic[:]) != string(digestMagic) {
		return nil, ErrBadMagic
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest truncated in count: %w", err)
	}
	if maxKeys < 0 {
		maxKeys = 0
	}
	if count > uint64(maxKeys) {
		return nil, fmt.Errorf("%w: %d keys", ErrTooMany, count)
	}
	keys := make([]Key, count)
	for i := range keys {
		if _, err := io.ReadFull(br, keys[i][:]); err != nil {
			return nil, fmt.Errorf("cluster: digest truncated mid-key: %w", err)
		}
	}
	return keys, nil
}
