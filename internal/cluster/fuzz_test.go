package cluster

import (
	"bytes"
	"crypto/sha256"
	"slices"
	"strings"
	"testing"
)

// FuzzPeerWire throws arbitrary bytes at every peer wire decoder —
// snapshot, membership and digest share one fuzz target since a
// confused peer can answer any endpoint with any stream — and, for
// every input that decodes, re-encodes and decodes again: the two
// passes must agree record for record. A decoder that panics, or that
// lets one record's body bleed into the next record's key (cross-peer
// key aliasing), fails here. Decoded membership views are additionally
// fed through Merge and NewTopology, pinning that no malformed peer
// payload can panic or poison a topology swap: the build either errors
// or yields a working topology, never anything in between. Seed corpora
// cover the empty streams, real records, magic bytes embedded in
// bodies, cross-codec magic confusion, and truncations.
func FuzzPeerWire(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotMagic)
	f.Add([]byte{'P', 'S', 'N', 'P', 2})
	f.Add(membersMagic)
	f.Add([]byte{'P', 'M', 'B', 'R', 2})
	f.Add(digestMagic)
	var mbuf bytes.Buffer
	if err := EncodeMembers(&mbuf, NewMembers(7, []string{"http://node-0:7001", "http://node-1:7001"})); err != nil {
		f.Fatal(err)
	}
	f.Add(mbuf.Bytes())
	f.Add(mbuf.Bytes()[:len(mbuf.Bytes())-2])
	var dbuf bytes.Buffer
	if err := EncodeDigest(&dbuf, []Key{sha256.Sum256([]byte("k"))}); err != nil {
		f.Fatal(err)
	}
	f.Add(dbuf.Bytes())
	f.Add(dbuf.Bytes()[:len(dbuf.Bytes())-5])
	sample := func(entries []Entry) []byte {
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, entries); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	k1 := sha256.Sum256([]byte("one"))
	k2 := sha256.Sum256([]byte("two"))
	full := sample([]Entry{
		{Key: k1, Body: []byte(`{"latency":3.5,"period":1.25}`)},
		{Key: k2, Body: append([]byte{0}, snapshotMagic...)},
		{Key: sha256.Sum256([]byte("three")), Body: nil},
	})
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(full[:37])

	const maxEntries, maxBody = 64, 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzMembersWire(t, data)
		fuzzDigestWire(t, data)
		entries, err := DecodeSnapshot(bytes.NewReader(data), maxEntries, maxBody)
		if err != nil {
			return // malformed input must error, never panic — reaching here is the assertion
		}
		if len(entries) > maxEntries {
			t.Fatalf("decoder returned %d entries past the %d bound", len(entries), maxEntries)
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, entries); err != nil {
			t.Fatalf("re-encode of decoded entries failed: %v", err)
		}
		again, err := DecodeSnapshot(&buf, maxEntries, maxBody)
		if err != nil {
			t.Fatalf("re-decode of re-encoded entries failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			if again[i].Key != entries[i].Key {
				t.Fatalf("entry %d key changed across round trip — key aliasing", i)
			}
			if len(entries[i].Body) > maxBody {
				t.Fatalf("entry %d body of %d bytes passed the %d bound", i, len(entries[i].Body), maxBody)
			}
			if !bytes.Equal(again[i].Body, entries[i].Body) {
				t.Fatalf("entry %d body changed across round trip", i)
			}
		}
	})
}

// fuzzMembersWire is FuzzPeerWire's membership leg: decode, round-trip,
// then drive the decoded view through the exact path a gossip exchange
// takes — Merge into a local view and NewTopology over the result. The
// swap machinery installs a new epoch only when NewTopology succeeds, so
// "error or working topology, never a panic" here is precisely the
// cannot-poison-a-swap guarantee.
func fuzzMembersWire(t *testing.T, data []byte) {
	t.Helper()
	m, err := DecodeMembers(bytes.NewReader(data), 64)
	if err != nil {
		return // malformed input must error, never panic
	}
	if len(m.Peers) > 64 {
		t.Fatalf("decoder returned %d peers past the 64 bound", len(m.Peers))
	}
	canon := NewMembers(m.Epoch, m.Peers)
	var buf bytes.Buffer
	if err := EncodeMembers(&buf, canon); err != nil {
		t.Fatalf("re-encode of canonicalised members failed: %v", err)
	}
	again, err := DecodeMembers(&buf, 64)
	if err != nil {
		t.Fatalf("re-decode of re-encoded members failed: %v", err)
	}
	if !canon.Equal(NewMembers(again.Epoch, again.Peers)) {
		t.Fatalf("members round trip changed the view: %+v vs %+v", again, canon)
	}
	// The gossip path: merge into a typical local view, then build. Any
	// outcome but a clean error or a valid topology is a failure.
	local := NewMembers(1, []string{"http://self:7001", "http://peer:7001"})
	merged, _ := local.Merge(m)
	if merged.Stamp() == "" {
		t.Fatal("merged view has an empty stamp")
	}
	topo, err := NewTopology(merged.Peers, "http://self:7001")
	if err != nil {
		return // rejected cleanly — the old epoch would stay in force
	}
	k := Key(sha256.Sum256(data))
	if owners := topo.Owners(k, 2, nil); len(owners) == 0 {
		t.Fatal("adopted topology ranks no owners")
	}
}

// fuzzDigestWire is FuzzPeerWire's digest leg: decode and round-trip
// the anti-entropy key inventory.
func fuzzDigestWire(t *testing.T, data []byte) {
	t.Helper()
	keys, err := DecodeDigest(bytes.NewReader(data), 64)
	if err != nil {
		return // malformed input must error, never panic
	}
	if len(keys) > 64 {
		t.Fatalf("decoder returned %d keys past the 64 bound", len(keys))
	}
	var buf bytes.Buffer
	if err := EncodeDigest(&buf, keys); err != nil {
		t.Fatalf("re-encode of decoded digest failed: %v", err)
	}
	again, err := DecodeDigest(&buf, 64)
	if err != nil {
		t.Fatalf("re-decode of re-encoded digest failed: %v", err)
	}
	if !slices.Equal(again, keys) {
		t.Fatalf("digest round trip changed keys: %x vs %x", again, keys)
	}
}

// FuzzMembershipReload throws arbitrary bytes at the peers-file parser
// and, for every input that yields a buildable topology, replays the
// reload path the daemon takes on SIGHUP: parse, build, write the parsed
// list back, parse and build again. The two topologies must agree on
// ownership for every key and every replication factor — a parser that
// is not a fixed point under its own output, or a ranking that depends
// on anything beyond the normalized URL list, would let two nodes watch
// the same file and disagree about who owns a key, which is the one
// split-brain dynamic membership must never produce. Panics on malformed
// input fail too, since the file is operator-written.
func FuzzMembershipReload(f *testing.F) {
	f.Add([]byte("http://a:1\nhttp://b:2\nhttp://c:3\n"))
	f.Add([]byte("# fleet\nhttp://a:1, http://b:2\n\n  http://c:3  # joined last\n"))
	f.Add([]byte("http://a:1,http://a:1"))
	f.Add([]byte(""))
	f.Add([]byte("https://node-0.internal:7001\r\nhttps://node-1.internal:7001\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		peers := ParsePeersFile(data)
		// The parser must be a fixed point under its own output: tokens
		// contain no newline, comma or comment byte, so writing them back
		// one per line and re-parsing cannot change the list.
		again := ParsePeersFile([]byte(strings.Join(peers, "\n")))
		if !slices.Equal(peers, again) {
			t.Fatalf("parse not idempotent: %q -> %q", peers, again)
		}
		if len(peers) == 0 {
			return
		}
		topoA, err := NewTopology(peers, peers[0])
		if err != nil {
			return // invalid or duplicate URLs must error, never panic
		}
		topoB, err := NewTopology(again, again[0])
		if err != nil {
			t.Fatalf("reload rejected a peer list it accepted before: %v", err)
		}
		if topoA.Size() != topoB.Size() {
			t.Fatalf("reload changed fleet size: %d -> %d", topoA.Size(), topoB.Size())
		}
		for i := 0; i < 8; i++ {
			k := Key(sha256.Sum256([]byte{byte(i), byte(len(peers))}))
			full := topoA.Owners(k, topoA.Size(), nil)
			if got := topoB.Owners(k, topoB.Size(), nil); !slices.Equal(full, got) {
				t.Fatalf("ownership disagreement after reload: %v vs %v", full, got)
			}
			// The ranking must nest: Owners(k, r) is a prefix of the full
			// ranking for every r, and rank 0 is the single owner. Replica
			// failover and the R flag both lean on this.
			for r := 1; r <= len(full); r++ {
				if got := topoA.Owners(k, r, nil); !slices.Equal(got, full[:r]) {
					t.Fatalf("Owners(k, %d) = %v is not a prefix of %v", r, got, full)
				}
			}
			if topoA.Owner(k) != full[0] {
				t.Fatalf("Owner disagrees with rank 0: %d vs %v", topoA.Owner(k), full)
			}
		}
	})
}
