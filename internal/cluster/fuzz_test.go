package cluster

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzPeerWire throws arbitrary bytes at the snapshot decoder and, for
// every stream that decodes, re-encodes and decodes again: the two
// passes must agree entry for entry. A decoder that panics, or that lets
// one record's body bleed into the next record's key (cross-peer key
// aliasing), fails here. Seed corpora cover the empty snapshot, real
// records, magic bytes embedded in bodies, and truncations.
func FuzzPeerWire(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotMagic)
	f.Add([]byte{'P', 'S', 'N', 'P', 2})
	sample := func(entries []Entry) []byte {
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, entries); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	k1 := sha256.Sum256([]byte("one"))
	k2 := sha256.Sum256([]byte("two"))
	full := sample([]Entry{
		{Key: k1, Body: []byte(`{"latency":3.5,"period":1.25}`)},
		{Key: k2, Body: append([]byte{0}, snapshotMagic...)},
		{Key: sha256.Sum256([]byte("three")), Body: nil},
	})
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(full[:37])

	const maxEntries, maxBody = 64, 1 << 12
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeSnapshot(bytes.NewReader(data), maxEntries, maxBody)
		if err != nil {
			return // malformed input must error, never panic — reaching here is the assertion
		}
		if len(entries) > maxEntries {
			t.Fatalf("decoder returned %d entries past the %d bound", len(entries), maxEntries)
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, entries); err != nil {
			t.Fatalf("re-encode of decoded entries failed: %v", err)
		}
		again, err := DecodeSnapshot(&buf, maxEntries, maxBody)
		if err != nil {
			t.Fatalf("re-decode of re-encoded entries failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			if again[i].Key != entries[i].Key {
				t.Fatalf("entry %d key changed across round trip — key aliasing", i)
			}
			if len(entries[i].Body) > maxBody {
				t.Fatalf("entry %d body of %d bytes passed the %d bound", i, len(entries[i].Body), maxBody)
			}
			if !bytes.Equal(again[i].Body, entries[i].Body) {
				t.Fatalf("entry %d body changed across round trip", i)
			}
		}
	})
}
