package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"pipesched/internal/cluster"
	"pipesched/internal/loadgen"
	"pipesched/internal/service"
)

// benchFleetHits measures fleet hit-serving throughput: every key in the
// universe is pre-installed on every node (forward-suppressed posts, so
// the warm-up itself emits no peer traffic), then the same deterministic
// Zipf stream cmd/pipeschedbench generates is replayed with b.N
// requests — all local hits, end to end over loopback HTTP. Comparing
// the single-node and 3-node rows in BENCH_*.json shows what peer-aware
// serving costs (or buys) on the hot path.
func benchFleetHits(b *testing.B, nodes int) {
	const keys = 16
	const seed = 5
	f := startFleet(b, nodes)
	f.startAll()
	for i := int64(0); i < keys; i++ {
		body := solveBody(b, seed+i) // loadgen derives instance i from Seed+i
		for _, url := range f.urls {
			if status, _, resp := postLocal(b, url, body); status != http.StatusOK {
				b.Fatalf("warm post: status %d: %s", status, resp)
			}
		}
	}

	b.ResetTimer()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  f.urls,
		Workers:  8,
		Requests: b.N,
		Keys:     keys,
		Seed:     seed,
		Stages:   6, Processors: 4,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors != 0 {
		b.Fatalf("bench run saw %d errors (statuses %v)", rep.Errors, rep.Statuses)
	}
	if rep.Tiers["hit"] != rep.Sent {
		b.Fatalf("bench run was not all hits: tiers %v", rep.Tiers)
	}
	b.ReportMetric(rep.QPS, "qps")
	b.ReportMetric(rep.Latency.P99MS, "p99ms")
}

func BenchmarkFleetServe(b *testing.B) {
	b.Run("single-node", func(b *testing.B) { benchFleetHits(b, 1) })
	b.Run("3-node", func(b *testing.B) { benchFleetHits(b, 3) })
}

// BenchmarkFleetForward isolates the owner-forward round trip: a 2-node
// fleet where the measured node has local cache storage disabled
// (CacheEntries < 0), so every request for a peer-owned key misses
// locally and proxies to the warm owner — a pure forward + relay cycle,
// the cost a cold or storage-starved node pays to serve another node's
// keys.
func BenchmarkFleetForward(b *testing.B) {
	var tss [2]*httptest.Server
	var urls [2]string
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + tss[i].Listener.Addr().String()
		defer tss[i].Close()
	}
	for i := range tss {
		topo, err := cluster.NewTopology(urls[:], urls[i])
		if err != nil {
			b.Fatal(err)
		}
		entries := 0
		if i == 0 {
			entries = -1 // the measured node never caches: every request forwards
		}
		tss[i].Config.Handler = service.New(service.Options{
			CacheEntries: entries,
			Cluster:      &service.ClusterConfig{Topology: topo},
		})
		tss[i].Start()
	}

	// Warm the owner with candidate keys and keep those node 0 forwards
	// (remote-hit proves peer ownership; node 0 stores nothing, so the
	// probe does not contaminate the measurement).
	var bodies [][]byte
	for seed := int64(100); seed < 200 && len(bodies) < 8; seed++ {
		body := solveBody(b, seed)
		if status, _, _ := postLocal(b, urls[1], body); status != http.StatusOK {
			b.Fatalf("warm post: status %d", status)
		}
		status, tier, _ := postSolve(b, urls[0], body)
		if status != http.StatusOK {
			b.Fatalf("probe: status %d", status)
		}
		if tier == "remote-hit" {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no peer-owned key found")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, tier, _ := postSolve(b, urls[0], bodies[i%len(bodies)])
		if status != http.StatusOK || tier != "remote-hit" {
			b.Fatalf("iteration %d: status %d tier %q, want a remote-hit forward", i, status, tier)
		}
	}
}
