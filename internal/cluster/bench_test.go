package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/faultinject"
	"pipesched/internal/loadgen"
	"pipesched/internal/service"
)

// benchFleetHits measures fleet hit-serving throughput: every key in the
// universe is pre-installed on every node (forward-suppressed posts, so
// the warm-up itself emits no peer traffic), then the same deterministic
// Zipf stream cmd/pipeschedbench generates is replayed with b.N
// requests — all local hits, end to end over loopback HTTP. Comparing
// the single-node and 3-node rows in BENCH_*.json shows what peer-aware
// serving costs (or buys) on the hot path.
func benchFleetHits(b *testing.B, nodes int) {
	const keys = 16
	const seed = 5
	f := startFleet(b, nodes)
	f.startAll()
	for i := int64(0); i < keys; i++ {
		body := solveBody(b, seed+i) // loadgen derives instance i from Seed+i
		for _, url := range f.urls {
			if status, _, resp := postLocal(b, url, body); status != http.StatusOK {
				b.Fatalf("warm post: status %d: %s", status, resp)
			}
		}
	}

	b.ResetTimer()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  f.urls,
		Workers:  8,
		Requests: b.N,
		Keys:     keys,
		Seed:     seed,
		Stages:   6, Processors: 4,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors != 0 {
		b.Fatalf("bench run saw %d errors (statuses %v)", rep.Errors, rep.Statuses)
	}
	if rep.Tiers["hit"] != rep.Sent {
		b.Fatalf("bench run was not all hits: tiers %v", rep.Tiers)
	}
	b.ReportMetric(rep.QPS, "qps")
	b.ReportMetric(rep.Latency.P99MS, "p99ms")
}

func BenchmarkFleetServe(b *testing.B) {
	b.Run("single-node", func(b *testing.B) { benchFleetHits(b, 1) })
	b.Run("3-node", func(b *testing.B) { benchFleetHits(b, 3) })
}

// BenchmarkFleetForward isolates the owner-forward round trip: a 2-node
// fleet where the measured node has local cache storage disabled
// (CacheEntries < 0), so every request for a peer-owned key misses
// locally and proxies to the warm owner — a pure forward + relay cycle,
// the cost a cold or storage-starved node pays to serve another node's
// keys.
func BenchmarkFleetForward(b *testing.B) {
	var tss [2]*httptest.Server
	var urls [2]string
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + tss[i].Listener.Addr().String()
		defer tss[i].Close()
	}
	for i := range tss {
		topo, err := cluster.NewTopology(urls[:], urls[i])
		if err != nil {
			b.Fatal(err)
		}
		entries := 0
		if i == 0 {
			entries = -1 // the measured node never caches: every request forwards
		}
		// R=1: with the default R=2 a two-node fleet puts self in every
		// replica set and nothing would forward.
		tss[i].Config.Handler = service.New(service.Options{
			CacheEntries: entries,
			Cluster:      &service.ClusterConfig{Topology: topo, Replicas: 1},
		})
		tss[i].Start()
	}

	// Warm the owner with candidate keys and keep those node 0 forwards
	// (remote-hit proves peer ownership; node 0 stores nothing, so the
	// probe does not contaminate the measurement).
	var bodies [][]byte
	for seed := int64(100); seed < 200 && len(bodies) < 8; seed++ {
		body := solveBody(b, seed)
		if status, _, _ := postLocal(b, urls[1], body); status != http.StatusOK {
			b.Fatalf("warm post: status %d", status)
		}
		status, tier, _ := postSolve(b, urls[0], body)
		if status != http.StatusOK {
			b.Fatalf("probe: status %d", status)
		}
		if tier == "remote-hit" {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no peer-owned key found")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, tier, _ := postSolve(b, urls[0], bodies[i%len(bodies)])
		if status != http.StatusOK || tier != "remote-hit" {
			b.Fatalf("iteration %d: status %d tier %q, want a remote-hit forward", i, status, tier)
		}
	}
}

// BenchmarkFleetHedgedForward prices the hedge path in steady state: the
// rank-0 replica of every measured key sits behind an injected latency
// far past the hedge delay, so each forward waits out hedge-after, races
// a second attempt at the rank-1 replica, takes its answer and cancels
// the laggard. The delta against BenchmarkFleetForward is what a hedged
// hit costs over a clean one — the price of tail-latency insurance when
// a replica is slow but not down.
func BenchmarkFleetHedgedForward(b *testing.B) {
	b.Run("steady", benchHedgedSteady)
	b.Run("injected-latency", benchHedgedInjectedLatency)
}

// hedgedFleet starts the 3-node hedge topology: node 0 is the measured
// node (storage disabled, every request forwards, peer traffic routed
// through the schedule the callback builds from the fleet's addresses),
// nodes 1 and 2 are replicas warmed with the candidate key set.
func hedgedFleet(b *testing.B, warmKeys int64, schedule func(urls []string) *faultinject.Schedule) (urls [3]string) {
	var tss [3]*httptest.Server
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + tss[i].Listener.Addr().String()
		b.Cleanup(tss[i].Close)
	}
	for i := range tss {
		topo, err := cluster.NewTopology(urls[:], urls[i])
		if err != nil {
			b.Fatal(err)
		}
		entries := 0
		cfg := &service.ClusterConfig{Topology: topo, HedgeAfter: time.Millisecond}
		if i == 0 {
			entries = -1 // the measured node never caches: every request forwards
			cfg.Transport = faultinject.NewTransport(nil, schedule(urls[:]))
		}
		tss[i].Config.Handler = service.New(service.Options{CacheEntries: entries, Cluster: cfg})
		tss[i].Start()
	}
	for seed := int64(100); seed < 100+warmKeys; seed++ {
		body := solveBody(b, seed)
		for _, u := range []string{urls[1], urls[2]} {
			if status, _, _ := postLocal(b, u, body); status != http.StatusOK {
				b.Fatalf("warm post: status %d", status)
			}
		}
	}
	return urls
}

// benchHedgedSteady prices the deterministic hedge: the rank-0 replica
// of every measured key sits behind a fixed 25ms — far past the 1ms
// hedge delay — so each forward waits out hedge-after, races a second
// attempt at the rank-1 replica, takes its answer and cancels the
// laggard. The delta against BenchmarkFleetForward is what a hedged hit
// costs over a clean one.
func benchHedgedSteady(b *testing.B) {
	urls := hedgedFleet(b, 200, func(urls []string) *faultinject.Schedule {
		return &faultinject.Schedule{Seed: 1, Rules: []faultinject.Rule{
			{Name: "lag", Hosts: []string{strings.TrimPrefix(urls[2], "http://")}, LatencyMS: 25},
		}}
	})
	// Keep the keys whose rank-0 owner is the slow node: their probes
	// come back hedged.
	var bodies [][]byte
	for seed := int64(100); seed < 300 && len(bodies) < 8; seed++ {
		body := solveBody(b, seed)
		status, tier, _ := postSolve(b, urls[0], body)
		if status != http.StatusOK {
			b.Fatalf("probe: status %d", status)
		}
		if tier == "hedged-hit" {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no key hedged in 200 seeds")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, tier, _ := postSolve(b, urls[0], bodies[i%len(bodies)])
		if status != http.StatusOK || tier != "hedged-hit" {
			b.Fatalf("iteration %d: status %d tier %q, want a hedged hit", i, status, tier)
		}
	}
}

// benchHedgedInjectedLatency is the chaos twin: every peer link out of
// the measured node carries a uniform 0–8ms jitter, so each forward is a
// genuine race between the jittered primary attempt and the 1ms hedge to
// the (equally jittered) other replica — sometimes the primary returns
// first, sometimes the hedge wins. The reported hedge-wins/op is the
// measured hedge-win rate over the run, pinning the tail-latency payoff
// of hedging quantitatively rather than by construction.
func benchHedgedInjectedLatency(b *testing.B) {
	urls := hedgedFleet(b, 32, func(urls []string) *faultinject.Schedule {
		return &faultinject.Schedule{Seed: 7, Rules: []faultinject.Rule{
			{Name: "jitter", JitterMS: 8},
		}}
	})
	// Keep forwarded keys (either replica owns them); keys the measured
	// node owns itself solve locally and never exercise the hedge.
	var bodies [][]byte
	for seed := int64(100); seed < 132 && len(bodies) < 8; seed++ {
		body := solveBody(b, seed)
		status, tier, _ := postSolve(b, urls[0], body)
		if status != http.StatusOK {
			b.Fatalf("probe: status %d", status)
		}
		if tier == "remote-hit" || tier == "hedged-hit" {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no forwarded key found in 32 seeds")
	}

	hedged := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, tier, _ := postSolve(b, urls[0], bodies[i%len(bodies)])
		if status != http.StatusOK {
			b.Fatalf("iteration %d: status %d", i, status)
		}
		if tier == "hedged-hit" {
			hedged++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hedged)/float64(b.N), "hedge-wins/op")
}

// BenchmarkFleetAntiEntropy prices the background replica-sync loop at
// its two operating points. steady-converged is the cost every node pays
// per sync tick once the fleet is quiet — one digest round trip per
// peer, no entry transfer — the overhead budget of running anti-entropy
// continuously. converge-32 is the recovery case: a replica with an
// empty cache pulls the 32 entries it replicates from its warm peer in
// one round, the path a restarted node takes back to digest equality
// with zero client traffic.
func BenchmarkFleetAntiEntropy(b *testing.B) {
	const keys = 32
	ctx := context.Background()

	b.Run("steady-converged", func(b *testing.B) {
		f := startFleet(b, 2)
		f.startAll()
		for seed := int64(0); seed < keys; seed++ {
			body := solveBody(b, 5000+seed)
			for _, url := range f.urls {
				if status, _, resp := postLocal(b, url, body); status != http.StatusOK {
					b.Fatalf("warm post: status %d: %s", status, resp)
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := f.srvs[1].SyncOnce(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if n != 0 {
				b.Fatalf("converged sync pulled %d entries", n)
			}
		}
	})

	b.Run("converge-32", func(b *testing.B) {
		// Only the warm node listens; SyncOnce is outbound-only, so the
		// cold replica is rebuilt fresh per iteration against a reserved
		// address that never serves.
		warm := httptest.NewUnstartedServer(nil)
		cold := httptest.NewUnstartedServer(nil)
		b.Cleanup(warm.Close)
		b.Cleanup(cold.Close)
		warmURL := "http://" + warm.Listener.Addr().String()
		coldURL := "http://" + cold.Listener.Addr().String()
		wtopo, err := cluster.NewTopology([]string{warmURL, coldURL}, warmURL)
		if err != nil {
			b.Fatal(err)
		}
		warm.Config.Handler = service.New(service.Options{Cluster: &service.ClusterConfig{Topology: wtopo}})
		warm.Start()
		for seed := int64(0); seed < keys; seed++ {
			if status, _, resp := postLocal(b, warmURL, solveBody(b, 5000+seed)); status != http.StatusOK {
				b.Fatalf("warm post: status %d: %s", status, resp)
			}
		}
		ctopo, err := cluster.NewTopology([]string{warmURL, coldURL}, coldURL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			replica := service.New(service.Options{Cluster: &service.ClusterConfig{Topology: ctopo}})
			n, err := replica.SyncOnce(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if n != keys {
				b.Fatalf("recovery sync pulled %d entries, want %d", n, keys)
			}
		}
		b.StopTimer()
		b.ReportMetric(keys, "entries/op")
	})
}

// BenchmarkFleetJoinWarmup prices the -join boot sequence a new node
// runs before taking traffic: resolve the fleet from a seed
// (GET /v1/peer/members), build the grown topology at the fleet's
// epoch, and warm the cache from peer snapshots. The row bounds how
// long a scale-out event keeps a fresh node cold.
func BenchmarkFleetJoinWarmup(b *testing.B) {
	const keys = 32
	ctx := context.Background()
	f := startFleet(b, 2)
	f.startAll()
	for seed := int64(0); seed < keys; seed++ {
		body := solveBody(b, 5000+seed)
		for _, url := range f.urls {
			if status, _, resp := postLocal(b, url, body); status != http.StatusOK {
				b.Fatalf("warm post: status %d: %s", status, resp)
			}
		}
	}
	// Reserve the joiner's address; bootstrap and warm-up are
	// outbound-only, so it never serves.
	ts := httptest.NewUnstartedServer(nil)
	b.Cleanup(ts.Close)
	joinerURL := "http://" + ts.Listener.Addr().String()
	hc := &http.Client{Timeout: 2 * time.Second}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cluster.BootstrapMembers(ctx, []string{f.urls[0]}, joinerURL, hc)
		if err != nil {
			b.Fatal(err)
		}
		topo, err := cluster.NewTopology(m.Peers, joinerURL)
		if err != nil {
			b.Fatal(err)
		}
		joiner := service.New(service.Options{Cluster: &service.ClusterConfig{Topology: topo, Epoch: m.Epoch}})
		n, err := joiner.WarmFromPeers(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("join warm-up imported nothing from a warm fleet")
		}
	}
}

// BenchmarkFleetReplicatedMiss prices replica failover in steady state: a
// 3-node topology where one node is dead and already marked down, so
// every measured request for a key that node owned goes straight to the
// surviving rank-1 replica. This is the row that shows what R=2 buys —
// a peer death degrades its keys to a normal forward against the
// replica, not to a local fallback solve.
func BenchmarkFleetReplicatedMiss(b *testing.B) {
	var tss [3]*httptest.Server
	var urls [3]string
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + tss[i].Listener.Addr().String()
		defer tss[i].Close()
	}
	for i := range tss {
		topo, err := cluster.NewTopology(urls[:], urls[i])
		if err != nil {
			b.Fatal(err)
		}
		entries := 0
		if i == 0 {
			entries = -1
		}
		tss[i].Config.Handler = service.New(service.Options{
			CacheEntries: entries,
			// A long backoff keeps the dead peer marked down for the whole
			// run once the first attempt fails.
			Cluster: &service.ClusterConfig{Topology: topo, PeerBackoff: time.Minute},
		})
		if i != 2 {
			tss[i].Start()
		} else {
			// Dead means connection-refused: an unstarted listener would
			// still accept and park connections, which reads as slow, not
			// down, and would never trip the health mark.
			tss[i].Listener.Close()
		}
	}

	// Warm the surviving replica, then keep the keys whose rank-0 owner
	// is the corpse: the first touch hedges into it and fails over
	// (marking it down), every later touch is a plain forward to rank 1.
	var bodies [][]byte
	for seed := int64(100); seed < 300 && len(bodies) < 8; seed++ {
		body := solveBody(b, seed)
		if status, _, _ := postLocal(b, urls[1], body); status != http.StatusOK {
			b.Fatalf("warm post: status %d", status)
		}
		status, tier, _ := postSolve(b, urls[0], body)
		if status != http.StatusOK {
			b.Fatalf("probe: status %d", status)
		}
		if tier != "hedged-hit" {
			continue // rank-0 owner is alive; not the path under test
		}
		if status, tier, _ = postSolve(b, urls[0], body); status != http.StatusOK || tier != "remote-hit" {
			b.Fatalf("settled probe: status %d tier %q, want remote-hit via the replica", status, tier)
		}
		bodies = append(bodies, body)
	}
	if len(bodies) == 0 {
		b.Fatal("no key failed over in 200 seeds")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, tier, _ := postSolve(b, urls[0], bodies[i%len(bodies)])
		if status != http.StatusOK || tier != "remote-hit" {
			b.Fatalf("iteration %d: status %d tier %q, want a replica forward", i, status, tier)
		}
	}
}
