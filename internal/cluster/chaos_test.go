// Chaos suite: the in-process half of the fault-injection acceptance
// story. Each test wires internal/faultinject into the fleet harness the
// way scripts/cluster_e2e.sh wires cmd/chaosproxy — the chaotic node's
// *advertised* URL points at a fault-injecting proxy while its real
// listener stays clean — and then asserts the one property the whole PR
// exists for: scheduled peer-path faults never surface to clients, and
// every client-visible body stays byte-identical to a single clean node.
// The names share the Fleet prefix so the CI cluster lane (-run Fleet)
// runs them under -race.
package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/faultinject"
	"pipesched/internal/loadgen"
	"pipesched/internal/service"
)

// startChaosFleet brings up a 3-node fleet in which node 2 is advertised
// through a fault-injecting reverse proxy: every forward, hedge and
// snapshot pull that targets node 2 crosses the schedule, while nodes 0
// and 1 (and node 2's own listener) stay clean. hedgeAfter is kept well
// under the injected latency so delayed forwards actually hedge.
func startChaosFleet(t testing.TB, sched *faultinject.Schedule) (*fleet, *faultinject.Proxy) {
	t.Helper()
	f := &fleet{}
	for i := 0; i < 3; i++ {
		ts := httptest.NewUnstartedServer(nil)
		f.http = append(f.http, ts)
		f.urls = append(f.urls, "http://"+ts.Listener.Addr().String())
	}
	proxy, err := faultinject.NewProxy(f.urls[2], sched)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewUnstartedServer(proxy)
	t.Cleanup(front.Close)
	// The topology lists the proxy where node 2's direct URL would be;
	// f.urls keeps the direct addresses so the load stream below talks to
	// the daemons the way external clients do.
	topoURLs := []string{f.urls[0], f.urls[1], "http://" + front.Listener.Addr().String()}
	for i := 0; i < 3; i++ {
		topo, err := cluster.NewTopology(topoURLs, topoURLs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := service.New(service.Options{
			Cluster: &service.ClusterConfig{
				Topology:       topo,
				ForwardTimeout: time.Second,
				HedgeAfter:     30 * time.Millisecond,
				PeerBackoff:    100 * time.Millisecond,
			},
		})
		f.srvs = append(f.srvs, srv)
		f.http[i].Config.Handler = srv
	}
	t.Cleanup(func() {
		for _, ts := range f.http {
			ts.Close()
		}
	})
	f.startAll()
	front.Start()
	return f, proxy
}

// TestFleetChaosFlappingPeer is the core chaos acceptance check: one
// node's peer traffic suffers flapping latency, 5xx bursts and dropped
// connections under a seeded schedule, and a verified Zipf stream across
// the whole fleet must still complete with zero client-visible errors
// and zero byte mismatches against a clean single-node reference.
func TestFleetChaosFlappingPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	sched := &faultinject.Schedule{
		Seed: 42,
		Rules: []faultinject.Rule{
			// Flapping latency: slow for 400ms out of every 800ms, enough
			// past hedgeAfter that delayed forwards hedge to a replica.
			{Name: "lag", LatencyMS: 120, JitterMS: 60, PeriodMS: 800, OnMS: 400},
			// 5xx bursts: 300ms out of every 700ms, 60% of requests.
			{Name: "burst", Status: 500, StatusProb: 0.6, PeriodMS: 700, OnMS: 300},
			// Background connection drops.
			{Name: "part", DropProb: 0.15},
		},
	}
	f, proxy := startChaosFleet(t, sched)
	ref := startReference(t)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls, // direct daemon addresses; only peer traffic crosses the proxy
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     400,
		Keys:         24,
		Seed:         7,
		Stages:       6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 400 {
		t.Fatalf("sent %d of 400", rep.Sent)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("peer-path chaos leaked to clients: %d errors, %d mismatches (tiers %v, statuses %v)",
			rep.Errors, rep.Mismatches, rep.Tiers, rep.Statuses)
	}
	// The schedule must actually have fired, or the run proved nothing.
	st := proxy.Stats()
	if st.Requests == 0 {
		t.Fatal("no peer traffic crossed the chaos proxy — topology wiring is wrong")
	}
	if st.Delayed+st.Dropped+st.Statuses == 0 {
		t.Fatalf("schedule injected nothing across %d proxied requests: %+v", st.Requests, st)
	}
	// And the fleet must have absorbed faults through its failure ladder:
	// hedges, marked-down retries against replicas, or local fallback.
	absorbed := rep.Tiers["hedged-hit"] + rep.Tiers["fallback"] +
		rep.Tiers["remote-hit"] + rep.Tiers["remote-miss"]
	if absorbed == 0 {
		t.Fatalf("no request took a failover path under chaos: tiers %v", rep.Tiers)
	}
	t.Logf("chaos run: proxy %+v, tiers %v", st, rep.Tiers)
}

// restartableNode is a fixed listener whose backing *service.Server can
// be swapped: Store(nil) is the crash (connections get 503, which peers
// treat as a down peer and clients in the load stream never see because
// a restarting node is drained from the target pool), Store(fresh) is
// the restart on the same address.
type restartableNode struct {
	srv atomic.Pointer[service.Server]
}

func (n *restartableNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if srv := n.srv.Load(); srv != nil {
		srv.ServeHTTP(w, r)
		return
	}
	http.Error(w, "restarting", http.StatusServiceUnavailable)
}

// TestFleetChaosRollingRestart restarts one node in place: its keys must
// fail over to the surviving replica while it is down, and after the
// restart the cold instance must warm back from its peers and serve
// local hits on keys only its pre-crash incarnation solved.
func TestFleetChaosRollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	f := &fleet{}
	var nodes [3]*restartableNode
	for i := 0; i < 3; i++ {
		nodes[i] = &restartableNode{}
		ts := httptest.NewUnstartedServer(nodes[i])
		f.http = append(f.http, ts)
		f.urls = append(f.urls, "http://"+ts.Listener.Addr().String())
	}
	newNode := func(i int) *service.Server {
		topo, err := cluster.NewTopology(f.urls, f.urls[i])
		if err != nil {
			t.Fatal(err)
		}
		return service.New(service.Options{
			Cluster: &service.ClusterConfig{
				Topology:       topo,
				ForwardTimeout: 500 * time.Millisecond,
				PeerBackoff:    100 * time.Millisecond,
			},
		})
	}
	for i := 0; i < 3; i++ {
		f.srvs = append(f.srvs, newNode(i))
		nodes[i].srv.Store(f.srvs[i])
	}
	t.Cleanup(func() {
		for _, ts := range f.http {
			ts.Close()
		}
	})
	f.startAll()
	ref := startReference(t)

	warm, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  f.urls,
		Workers:  8,
		Requests: 150,
		Keys:     24,
		Seed:     7,
		Stages:   6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm phase saw %d errors", warm.Errors)
	}

	// Crash node 2. The load stream drains it (rolling restarts take the
	// node out of the balancer first), but its keys keep arriving at the
	// survivors, who must fail over to the remaining replica.
	nodes[2].srv.Store(nil)
	during, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls[:2],
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     150,
		Keys:         24,
		Seed:         11,
		Stages:       6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if during.Errors != 0 || during.Mismatches != 0 {
		t.Fatalf("restart window leaked to clients: %d errors, %d mismatches (tiers %v, statuses %v)",
			during.Errors, during.Mismatches, during.Tiers, during.Statuses)
	}

	// Restart: a fresh cold instance on the same address warms back from
	// its peers before rejoining the pool.
	fresh := newNode(2)
	nodes[2].srv.Store(fresh)
	f.srvs[2] = fresh
	n, err := fresh.WarmFromPeers(context.Background())
	if err != nil {
		t.Fatalf("post-restart warm-up: %v", err)
	}
	if n == 0 {
		t.Fatal("post-restart warm-up imported nothing although peers hold entries")
	}

	after, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls,
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     150,
		Keys:         24,
		Seed:         13,
		Stages:       6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Errors != 0 || after.Mismatches != 0 {
		t.Fatalf("restarted fleet diverged: %d errors, %d mismatches (tiers %v, statuses %v)",
			after.Errors, after.Mismatches, after.Tiers, after.Statuses)
	}
}

// TestFleetChaosMembershipReload shrinks a 3-node fleet to 2 via
// ReloadTopology — the dynamic-membership path the daemon drives from a
// peers-file change — and checks the snapshot-driven handoff: keys whose
// replica set newly includes a survivor are installed there before the
// departed node stops answering, so the shrink costs no correctness and
// shows up as handed-off entries in the metrics.
func TestFleetChaosMembershipReload(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	f := startFleet(t, 3)
	f.startAll()
	ref := startReference(t)

	warm, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  f.urls,
		Workers:  8,
		Requests: 200,
		Keys:     24,
		Seed:     7,
		Stages:   6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm phase saw %d errors", warm.Errors)
	}

	// Reload nodes 0 and 1 onto a topology without node 2. With R=2 over
	// two nodes every key is owned by both, so each survivor must pick up
	// the keys it was not already a replica for.
	handed := 0
	for i := 0; i < 2; i++ {
		topo, err := cluster.NewTopology(f.urls[:2], f.urls[i])
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.srvs[i].ReloadTopology(context.Background(), topo)
		if err != nil {
			t.Fatalf("node %d reload: %v", i, err)
		}
		handed += n
		c := f.srvs[i].Metrics().Cluster
		if c == nil || c.Reloads != 1 {
			t.Fatalf("node %d metrics do not record the reload: %+v", i, c)
		}
		if c.Peers != 2 {
			t.Fatalf("node %d still reports %d peers after shrink", i, c.Peers)
		}
	}
	if handed == 0 {
		t.Fatal("shrinking 3->2 handed off no entries although both survivors gained ownership")
	}

	// The departed node can now actually die; the shrunken fleet must
	// serve the same stream clean, with no forwards aimed at the corpse.
	f.http[2].Close()
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls[:2],
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     200,
		Keys:         24,
		Seed:         11,
		Stages:       6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("post-shrink fleet diverged: %d errors, %d mismatches (tiers %v, statuses %v)",
			rep.Errors, rep.Mismatches, rep.Tiers, rep.Statuses)
	}
	// Both survivors own every key now, so nothing should fall back.
	if rep.Tiers["fallback"] != 0 {
		t.Fatalf("post-shrink stream fell back %d times: %v", rep.Tiers["fallback"], rep.Tiers)
	}
}
