// Package cluster_test holds the in-process fleet harness: N service
// instances behind loopback HTTP listeners sharing one topology, driven
// by the same loadgen engine cmd/pipeschedbench uses. It runs under
// go test -race, so the CI cluster lane exercises the full peer path —
// ownership, forwarding, fallback, warm-up — with the race detector on,
// which the subprocess-based e2e script cannot.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/loadgen"
	"pipesched/internal/service"
	"pipesched/internal/workload"
)

// fleet is an in-process cluster: the unstarted-server trick resolves
// every listener address before any topology is built, which is exactly
// the order the daemons need (each node must know the full fleet list at
// construction).
type fleet struct {
	srvs []*service.Server
	http []*httptest.Server
	urls []string
}

// startFleet brings up n peer-aware nodes on loopback. Forward timeout
// and backoff are kept short so failure-path tests run in milliseconds.
func startFleet(t testing.TB, n int) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		ts := httptest.NewUnstartedServer(nil)
		f.http = append(f.http, ts)
		f.urls = append(f.urls, "http://"+ts.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		topo, err := cluster.NewTopology(f.urls, f.urls[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := service.New(service.Options{
			Cluster: &service.ClusterConfig{
				Topology:       topo,
				ForwardTimeout: 500 * time.Millisecond,
				PeerBackoff:    200 * time.Millisecond,
			},
		})
		f.srvs = append(f.srvs, srv)
		f.http[i].Config.Handler = srv
	}
	t.Cleanup(func() {
		for _, ts := range f.http {
			ts.Close()
		}
	})
	return f
}

// start starts node i's listener (startFleet leaves all nodes unstarted
// so tests control join order).
func (f *fleet) start(i int) { f.http[i].Start() }

func (f *fleet) startAll() {
	for i := range f.http {
		f.start(i)
	}
}

// startReference brings up a plain single-node service — the bit-identity
// oracle.
func startReference(t testing.TB) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Options{}))
	t.Cleanup(ts.Close)
	return ts
}

// solveBody renders one deterministic solve request, the same shape
// loadgen sends.
func solveBody(t testing.TB, seed int64) []byte {
	t.Helper()
	in := workload.Generate(workload.Config{Family: workload.E1, Stages: 6, Processors: 4, Seed: seed})
	b, err := json.Marshal(map[string]any{"pipeline": in.App, "platform": in.Plat, "bound": 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postSolve issues one solve and returns status, X-Cache tier and body.
func postSolve(t testing.TB, url string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// TestFleetBitIdentity is the acceptance check of the cluster lane run
// in-process: a 3-node fleet must return byte-identical bodies to a
// single node for the same deterministic, Zipf-skewed request stream,
// with zero client-visible errors. loadgen's verify mode does the
// comparison per response.
func TestFleetBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 3)
	f.startAll()
	ref := startReference(t)

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls,
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     300,
		Keys:         24,
		Seed:         7,
		Stages:       6,
		Processors:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 300 {
		t.Fatalf("sent %d of 300", rep.Sent)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("fleet diverged from single node: %d errors, %d mismatches (tiers %v, statuses %v)",
			rep.Errors, rep.Mismatches, rep.Tiers, rep.Statuses)
	}
	// The stream must actually have exercised the peer path: with 3 nodes,
	// R=2 and round-robin targeting, ~1/3 of first-touches land outside
	// the key's replica set.
	if rep.Tiers["remote-hit"]+rep.Tiers["remote-miss"]+rep.Tiers["hedged-hit"] == 0 {
		t.Fatalf("no request took the forward path: tiers %v", rep.Tiers)
	}
	// Forward traffic must show up in the owners' metrics.
	owned := uint64(0)
	for _, srv := range f.srvs {
		if c := srv.Metrics().Cluster; c != nil {
			owned += c.OwnedForwards
		}
	}
	if owned == 0 {
		t.Fatal("no node served a forwarded request")
	}
}

// TestFleetSurvivesPeerDeath kills one node mid-run: requests against the
// survivors must keep returning byte-identical 200s — the owner's death
// degrades its keys to local fallback solves, never to client errors.
func TestFleetSurvivesPeerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 3)
	f.startAll()
	ref := startReference(t)

	warm, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:  f.urls,
		Workers:  8,
		Requests: 150,
		Keys:     24,
		Seed:     7,
		Stages:   6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm phase saw %d errors", warm.Errors)
	}

	f.http[2].Close() // kill one peer; its keys must fail over to replicas

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:      f.urls[:2],
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     200,
		Keys:         24,
		Seed:         11, // a different draw order so dead-owner keys recur
		Stages:       6, Processors: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("peer death leaked to clients: %d errors, %d mismatches (tiers %v, statuses %v)",
			rep.Errors, rep.Mismatches, rep.Tiers, rep.Statuses)
	}

	// With R=2 one death costs no cache coverage: a fresh key whose
	// replica set contained the dead node still has a live replica, so
	// the forward fails over (hedged-hit while the death is undetected,
	// remote-* once the dead peer is marked down) and fallback solves
	// stay the all-replicas-down last resort, not the common case. Probe
	// fresh keys and require every one to come back 200 byte-identical,
	// with at least one taking the failover path.
	sawFailover := false
	for seed := int64(1000); seed < 1032; seed++ {
		body := solveBody(t, seed)
		status, tier, got := postSolve(t, f.urls[0], body)
		if status != http.StatusOK {
			t.Fatalf("post-death solve: status %d: %s", status, got)
		}
		switch tier {
		case "hedged-hit", "remote-hit", "remote-miss":
			sawFailover = true
			refStatus, _, want := postSolve(t, ref.URL, body)
			if refStatus != http.StatusOK || !bytes.Equal(got, want) {
				t.Fatalf("failover body diverged from reference:\n%s\nvs\n%s", got, want)
			}
		}
	}
	if !sawFailover {
		t.Fatal("no fresh key took the replica failover path although a peer is dead")
	}
}

// postLocal posts with the forward-suppression header set, so the node
// solves locally no matter who owns the key. Tests use it to populate
// one node's cache without emitting forwards (a forward parked in an
// unstarted joiner's accept backlog would replay once the joiner starts
// and warm it by accident).
func postLocal(t testing.TB, url string, body []byte) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// TestFleetJoinWarmup covers the joining-node lifecycle: a node started
// after the fleet has traffic must serve correct results immediately
// (cold = miss/forward/fallback, never wrong), and after WarmFromPeers
// must hit locally on keys it never solved itself.
func TestFleetJoinWarmup(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 2)
	f.start(0) // node 1 joins later

	// Populate node 0 with two keys while the joiner is down, forwarding
	// suppressed so nothing is parked on the joiner's backlog.
	probe := solveBody(t, 100)
	warmOnly := solveBody(t, 200)
	var wantProbe, wantWarm []byte
	for _, req := range []struct {
		body []byte
		want *[]byte
	}{{probe, &wantProbe}, {warmOnly, &wantWarm}} {
		status, _, b := postLocal(t, f.urls[0], req.body)
		if status != http.StatusOK {
			t.Fatalf("pre-join solve: status %d: %s", status, b)
		}
		*req.want = b
	}

	f.start(1) // the node joins cold

	// Before warm-up: correct bytes, whatever the tier.
	status, tier, got := postSolve(t, f.urls[1], probe)
	if status != http.StatusOK || !bytes.Equal(got, wantProbe) {
		t.Fatalf("cold joiner wrong: status %d, body %s, want %s", status, got, wantProbe)
	}
	switch tier {
	case "hit":
		t.Fatalf("cold joiner claims a local hit")
	case "miss", "collapsed", "remote-hit", "remote-miss", "hedged-hit", "fallback":
	default:
		t.Fatalf("unknown X-Cache tier %q", tier)
	}

	n, err := f.srvs[1].WarmFromPeers(context.Background())
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if n == 0 {
		t.Fatal("warm-up imported nothing although the peer has entries")
	}
	if c := f.srvs[1].Metrics().Cluster; c == nil || c.WarmedEntries == 0 {
		t.Fatal("warm-up not reflected in cluster metrics")
	}

	// After warm-up the joiner must hit locally on a key it never saw —
	// warmOnly was only ever solved by node 0.
	status, tier, got = postSolve(t, f.urls[1], warmOnly)
	if status != http.StatusOK || !bytes.Equal(got, wantWarm) {
		t.Fatalf("warmed joiner wrong: status %d, body %s, want %s", status, got, wantWarm)
	}
	if tier != "hit" {
		t.Fatalf("warmed joiner served tier %q for an imported key, want \"hit\"", tier)
	}
}

// TestFleetForwardedTierIsSecondTier pins the second-tier caching
// contract: after a remote-miss forward, the same key on the same
// non-owner node is a local hit — the forwarded bytes were installed.
func TestFleetForwardedTierIsSecondTier(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 3)
	f.startAll()

	// Find a key whose owner is not node 0, from node 0's perspective.
	for seed := int64(0); seed < 32; seed++ {
		body := solveBody(t, seed)
		status, tier, first := postSolve(t, f.urls[0], body)
		if status != http.StatusOK {
			t.Fatalf("solve: status %d: %s", status, first)
		}
		if tier != "remote-miss" && tier != "remote-hit" {
			continue // node 0 owns this key; try another
		}
		status, tier2, second := postSolve(t, f.urls[0], body)
		if status != http.StatusOK || tier2 != "hit" {
			t.Fatalf("repeat after forward: status %d tier %q, want 200 \"hit\"", status, tier2)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("second-tier hit returned different bytes:\n%s\nvs\n%s", first, second)
		}
		return
	}
	t.Fatal("no seed in 32 produced a peer-owned key — suspicious ownership skew")
}

// TestFleetMetricsEndpoint checks the cluster section is served over
// HTTP, since the e2e script scrapes it.
func TestFleetMetricsEndpoint(t *testing.T) {
	f := startFleet(t, 2)
	f.startAll()
	resp, err := http.Get(f.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Cluster *service.ClusterMetricsSnapshot `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cluster == nil {
		t.Fatal("metrics carry no cluster section in peer mode")
	}
	if m.Cluster.Peers != 2 {
		t.Fatalf("cluster.peers = %d, want 2", m.Cluster.Peers)
	}
}
