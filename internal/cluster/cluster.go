// Package cluster is the inter-process half of the serving stack's cache
// design: the machinery that lets N pipeschedd daemons share one
// canonical cache-key space. The intra-process half — the sharded LRU of
// internal/service/cache — splits a key space across cores; this package
// splits it across daemons.
//
// # Topology and ownership
//
// A fleet is a static list of peer base URLs, identical on every node
// (order does not matter: the list is normalised and sorted, so every
// node derives the same indexing). Each canonical cache key — a SHA-256
// digest computed by the service layer — has exactly one owner, chosen
// by rendezvous (highest-random-weight) hashing over the key bytes:
// every peer is scored against the key and the maximum wins. Rendezvous
// hashing gives the property that matters for cache warm-up and
// failover: removing one peer reassigns only the keys that peer owned,
// never shuffling ownership among the survivors.
//
// # Forwarding and failure semantics
//
// A node that misses locally on a key it does not own proxies the
// original request to the owner (Client.Forward) and installs the
// rendered response bytes in its own cache as a second-tier hit. Peer
// failure is never a client-visible error: a transport failure or
// forward timeout marks the peer down for a backoff window (during
// which no forwards are attempted) and the request degrades to a local
// solve — results are deterministic, so a fallback solve produces
// byte-identical bodies, only slower.
//
// # Snapshot warm-up
//
// A joining node streams the hot entries of its peers' caches
// (GET /v1/peer/snapshot, encoded by this package's wire codec) and
// imports them before taking traffic warm. The codec is
// length-prefixed and versioned; decoding bounds both entry count and
// body size so a misbehaving peer cannot balloon a joiner's memory.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Key is a canonical cache key: the SHA-256 digest the service layer
// computes for every cacheable request. It mirrors (and converts freely
// with) the service cache's key type without importing it.
type Key [32]byte

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters; the scoring
// hash must be identical on every node, so it is fixed here rather than
// delegated to anything runtime-seeded (maphash would differ per
// process).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Topology is one node's view of the fleet: the normalised, sorted peer
// list and this node's index in it. It is immutable after construction
// and safe for concurrent use.
type Topology struct {
	peers []string // sorted, normalised base URLs
	self  int      // index into peers
	seeds []uint64 // per-peer FNV-1a state over the peer URL
}

// NewTopology builds the fleet view from the static peer list and this
// node's advertised base URL. The advertise URL must appear in the list
// — a fleet where some node is not in its own peer list would compute
// ownership no other node agrees with. URLs are normalised (scheme
// defaulted to http, trailing slash dropped, host lowercased) and
// duplicates rejected.
func NewTopology(peers []string, advertise string) (*Topology, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	norm := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", u)
		}
		seen[u] = true
		norm = append(norm, u)
	}
	sort.Strings(norm)
	adv, err := normalizeURL(advertise)
	if err != nil {
		return nil, fmt.Errorf("cluster: advertise %q: %w", advertise, err)
	}
	self := sort.SearchStrings(norm, adv)
	if self >= len(norm) || norm[self] != adv {
		return nil, fmt.Errorf("cluster: advertise %q is not in the peer list %v", adv, norm)
	}
	t := &Topology{peers: norm, self: self, seeds: make([]uint64, len(norm))}
	for i, p := range norm {
		h := uint64(fnvOffset)
		for j := 0; j < len(p); j++ {
			h = (h ^ uint64(p[j])) * fnvPrime
		}
		t.seeds[i] = h
	}
	return t, nil
}

// normalizeURL canonicalises one peer base URL.
func normalizeURL(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("base URL must not carry a query or fragment")
	}
	u.Host = strings.ToLower(u.Host)
	u.Path = strings.TrimRight(u.Path, "/")
	return u.String(), nil
}

// Size returns the fleet size.
func (t *Topology) Size() int { return len(t.peers) }

// Self returns this node's index in the sorted peer list.
func (t *Topology) Self() int { return t.self }

// Peer returns the base URL of peer i.
func (t *Topology) Peer(i int) string { return t.peers[i] }

// Peers returns a copy of the sorted peer list.
func (t *Topology) Peers() []string {
	out := make([]string, len(t.peers))
	copy(out, t.peers)
	return out
}

// Owner returns the index of the peer that owns key k under rendezvous
// hashing: each peer's score is FNV-1a over its URL followed by the key
// bytes, and the highest score wins (ties broken by peer order, which is
// identical on every node because the list is sorted). The scoring walks
// 32 bytes per peer with no allocation, so ownership lookup costs tens
// of nanoseconds even before any caching.
func (t *Topology) Owner(k Key) int {
	best, bestScore := 0, uint64(0)
	for i, seed := range t.seeds {
		h := seed
		for _, b := range k {
			h = (h ^ uint64(b)) * fnvPrime
		}
		if i == 0 || h > bestScore {
			best, bestScore = i, h
		}
	}
	return best
}
