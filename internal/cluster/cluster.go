// Package cluster is the inter-process half of the serving stack's cache
// design: the machinery that lets N pipeschedd daemons share one
// canonical cache-key space. The intra-process half — the sharded LRU of
// internal/service/cache — splits a key space across cores; this package
// splits it across daemons.
//
// # Topology and ownership
//
// A fleet is a static list of peer base URLs, identical on every node
// (order does not matter: the list is normalised and sorted, so every
// node derives the same indexing). Each canonical cache key — a SHA-256
// digest computed by the service layer — has exactly one owner, chosen
// by rendezvous (highest-random-weight) hashing over the key bytes:
// every peer is scored against the key and the maximum wins. Rendezvous
// hashing gives the property that matters for cache warm-up and
// failover: removing one peer reassigns only the keys that peer owned,
// never shuffling ownership among the survivors.
//
// # Replication
//
// Ownership generalises to R replicas per key: Owners returns the top-R
// rendezvous-ranked peers, so every key has an ordered replica set that
// every node agrees on. Rendezvous ranking keeps the failover property
// replica-wise: removing one peer promotes the next-ranked peer for
// exactly the removed peer's keys and changes nothing else. With R ≥ 2
// one node's death costs no cache coverage — the surviving replicas
// already hold (or deterministically recompute) its keys.
//
// # Forwarding and failure semantics
//
// A node that misses locally on a key it does not own proxies the
// original request to the key's replicas (Client.Forward, or
// Client.ForwardHedged when more than one replica is up) and installs
// the rendered response bytes in its own cache as a second-tier hit.
// Peer failure is never a client-visible error: a transport failure or
// forward timeout marks the peer down for a capped-exponential backoff
// window (during which no forwards are attempted), a peer stuck
// returning 5xx is marked down after a few consecutive server errors,
// and the request degrades to the next replica or a local solve —
// results are deterministic, so a fallback solve produces byte-identical
// bodies, only slower.
//
// # Dynamic membership
//
// The peer list may change at runtime: ParsePeersFile reads the
// peers-file format (one URL per line, #-comments), a new Topology is
// built from it, and the serving layer swaps it in atomically — requests
// in flight finish under the view they started with. Ownership is a pure
// function of (sorted peer list, key), so a reloaded topology and a
// freshly constructed one can never disagree (FuzzMembershipReload pins
// this).
//
// # Snapshot warm-up
//
// A joining node streams the hot entries of its peers' caches
// (GET /v1/peer/snapshot, encoded by this package's wire codec) and
// imports them before taking traffic warm. The codec is
// length-prefixed and versioned; decoding bounds both entry count and
// body size so a misbehaving peer cannot balloon a joiner's memory.
package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// Key is a canonical cache key: the SHA-256 digest the service layer
// computes for every cacheable request. It mirrors (and converts freely
// with) the service cache's key type without importing it.
type Key [32]byte

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters; the scoring
// hash must be identical on every node, so it is fixed here rather than
// delegated to anything runtime-seeded (maphash would differ per
// process).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Topology is one node's view of the fleet: the normalised, sorted peer
// list and this node's index in it. It is immutable after construction
// and safe for concurrent use.
type Topology struct {
	peers []string // sorted, normalised base URLs
	self  int      // index into peers
	seeds []uint64 // per-peer FNV-1a state over the peer URL
}

// NewTopology builds the fleet view from the static peer list and this
// node's advertised base URL. The advertise URL must appear in the list
// — a fleet where some node is not in its own peer list would compute
// ownership no other node agrees with. URLs are normalised (scheme
// defaulted to http, trailing slash dropped, host lowercased) and
// duplicates rejected.
func NewTopology(peers []string, advertise string) (*Topology, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	norm := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		u, err := normalizeURL(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", p, err)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", u)
		}
		seen[u] = true
		norm = append(norm, u)
	}
	sort.Strings(norm)
	adv, err := normalizeURL(advertise)
	if err != nil {
		return nil, fmt.Errorf("cluster: advertise %q: %w", advertise, err)
	}
	self := sort.SearchStrings(norm, adv)
	if self >= len(norm) || norm[self] != adv {
		return nil, fmt.Errorf("cluster: advertise %q is not in the peer list %v", adv, norm)
	}
	t := &Topology{peers: norm, self: self, seeds: make([]uint64, len(norm))}
	for i, p := range norm {
		h := uint64(fnvOffset)
		for j := 0; j < len(p); j++ {
			h = (h ^ uint64(p[j])) * fnvPrime
		}
		t.seeds[i] = h
	}
	return t, nil
}

// normalizeURL canonicalises one peer base URL.
func normalizeURL(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("empty URL")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	if u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("base URL must not carry a query or fragment")
	}
	u.Host = strings.ToLower(u.Host)
	u.Path = strings.TrimRight(u.Path, "/")
	return u.String(), nil
}

// Size returns the fleet size.
func (t *Topology) Size() int { return len(t.peers) }

// Self returns this node's index in the sorted peer list.
func (t *Topology) Self() int { return t.self }

// Peer returns the base URL of peer i.
func (t *Topology) Peer(i int) string { return t.peers[i] }

// Peers returns a copy of the sorted peer list.
func (t *Topology) Peers() []string {
	out := make([]string, len(t.peers))
	copy(out, t.peers)
	return out
}

// Owner returns the index of the peer that owns key k under rendezvous
// hashing: each peer's score is FNV-1a over its URL followed by the key
// bytes, and the highest score wins (ties broken by peer order, which is
// identical on every node because the list is sorted). The scoring walks
// 32 bytes per peer with no allocation, so ownership lookup costs tens
// of nanoseconds even before any caching. Owner(k) is always
// Owners(k, 1, nil)[0].
func (t *Topology) Owner(k Key) int {
	best, bestScore := 0, uint64(0)
	for i, seed := range t.seeds {
		h := seed
		for _, b := range k {
			h = (h ^ uint64(b)) * fnvPrime
		}
		if i == 0 || h > bestScore {
			best, bestScore = i, h
		}
	}
	return best
}

// Owners appends the indices of the top-r rendezvous-ranked peers for
// key k to dst and returns it, highest score first — the key's ordered
// replica set. Rank 0 is exactly Owner(k); rank i is the peer that takes
// over when the i higher-ranked replicas are gone, so failover order is
// a pure function of the topology and identical on every node. r is
// clamped to the fleet size; r <= 0 yields an empty slice. Ties break by
// peer order, as in Owner.
func (t *Topology) Owners(k Key, r int, dst []int) []int {
	if r > len(t.peers) {
		r = len(t.peers)
	}
	dst = dst[:0]
	if r <= 0 {
		return dst
	}
	// Insertion-select into a tiny descending score window: R is 2 or 3
	// in practice, so this beats sorting all peers and allocates nothing
	// beyond dst.
	scores := make([]uint64, 0, 8)
	for i, seed := range t.seeds {
		h := seed
		for _, b := range k {
			h = (h ^ uint64(b)) * fnvPrime
		}
		pos := len(dst)
		for pos > 0 && h > scores[pos-1] {
			pos--
		}
		if pos >= r {
			continue
		}
		if len(dst) < r {
			dst = append(dst, 0)
			scores = append(scores, 0)
		}
		copy(dst[pos+1:], dst[pos:])
		copy(scores[pos+1:], scores[pos:])
		dst[pos], scores[pos] = i, h
	}
	return dst
}

// ParsePeersFile parses the peers-file format feeding dynamic
// membership: one peer base URL per line, with blank lines and
// #-comments ignored; commas also separate entries, so a -peers flag
// value pastes in unchanged. The returned list is raw — NewTopology
// still normalises and validates it — but an entry that is empty after
// trimming is dropped here, so a trailing newline never manufactures a
// phantom peer.
func ParsePeersFile(data []byte) []string {
	var peers []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, entry := range strings.Split(line, ",") {
			if entry = strings.TrimSpace(entry); entry != "" {
				peers = append(peers, entry)
			}
		}
	}
	return peers
}
