package cluster

// White-box tests for the replication/hedging/health additions: Owners
// ranking properties, the peers-file parser, capped exponential backoff,
// 5xx health accounting, and the hedged-forward race (including the
// no-goroutine-leak guarantee under context cancellation — this file
// runs under -race in the CI cluster lane).

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func mustTopo(t *testing.T, peers []string, advertise string) *Topology {
	t.Helper()
	topo, err := NewTopology(peers, advertise)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestOwnersRankZeroIsOwner pins the documented invariant: Owners(k, 1)
// is exactly [Owner(k)], and larger replica sets keep rank order as a
// prefix property — Owners(k, r)[0..r'-1] == Owners(k, r') for r' < r.
func TestOwnersRankZeroIsOwner(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4", "http://e:5"}
	topo := mustTopo(t, urls, "http://a:1")
	for i := 0; i < 500; i++ {
		k := keyOf(i)
		full := topo.Owners(k, 5, nil)
		if len(full) != 5 {
			t.Fatalf("key %d: %d owners, want 5", i, len(full))
		}
		if full[0] != topo.Owner(k) {
			t.Fatalf("key %d: rank 0 is %d, Owner is %d", i, full[0], topo.Owner(k))
		}
		seen := map[int]bool{}
		for _, o := range full {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %d in %v", i, o, full)
			}
			seen[o] = true
		}
		for r := 1; r < 5; r++ {
			sub := topo.Owners(k, r, nil)
			if len(sub) != r {
				t.Fatalf("key %d: Owners(%d) has %d entries", i, r, len(sub))
			}
			for j := range sub {
				if sub[j] != full[j] {
					t.Fatalf("key %d: Owners(%d)=%v is not a prefix of %v", i, r, sub, full)
				}
			}
		}
	}
}

// TestOwnersClamp: r beyond the fleet clamps, r <= 0 is empty, and dst
// is reused without spurious retention.
func TestOwnersClamp(t *testing.T) {
	topo := mustTopo(t, []string{"http://a:1", "http://b:2"}, "http://a:1")
	if got := topo.Owners(keyOf(1), 10, nil); len(got) != 2 {
		t.Fatalf("Owners clamped to %d, want 2", len(got))
	}
	if got := topo.Owners(keyOf(1), 0, nil); len(got) != 0 {
		t.Fatalf("Owners(0) returned %v", got)
	}
	dst := make([]int, 0, 8)
	a := topo.Owners(keyOf(1), 2, dst)
	b := topo.Owners(keyOf(2), 1, a)
	if len(b) != 1 {
		t.Fatalf("reused dst kept stale entries: %v", b)
	}
}

// TestOwnersFailoverPromotion pins the replica-wise minimal-disruption
// property: removing one peer promotes exactly the next-ranked replica
// for that peer's keys, and leaves every other key's replica set
// untouched.
func TestOwnersFailoverPromotion(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full := mustTopo(t, urls, "http://a:1")
	reduced := mustTopo(t, []string{"http://a:1", "http://b:2", "http://d:4"}, "http://a:1")
	removed := "http://c:3"

	name := func(topo *Topology, owners []int) []string {
		out := make([]string, len(owners))
		for i, o := range owners {
			out[i] = topo.Peer(o)
		}
		return out
	}
	promoted := 0
	for i := 0; i < 1000; i++ {
		k := keyOf(i)
		before := name(full, full.Owners(k, 2, nil))
		after := name(reduced, reduced.Owners(k, 2, nil))
		// The reduced set must be the full R=3 ranking with the removed
		// peer skipped — rendezvous scores are per-peer, so survivors
		// keep their relative order.
		want := []string{}
		for _, p := range name(full, full.Owners(k, 3, nil)) {
			if p != removed {
				want = append(want, p)
			}
			if len(want) == 2 {
				break
			}
		}
		for j := range after {
			if after[j] != want[j] {
				t.Fatalf("key %d: reduced owners %v, want %v (full %v)", i, after, want, before)
			}
		}
		if before[0] == removed || before[1] == removed {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no key had the removed peer in its replica set — test is vacuous")
	}
}

func TestParsePeersFile(t *testing.T) {
	data := []byte(`# fleet roster
http://a:1
  http://b:2   # trailing comment

http://c:3,http://d:4
,
`)
	got := ParsePeersFile(data)
	want := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %q, want %q", i, got[i], want[i])
		}
	}
	if out := ParsePeersFile(nil); len(out) != 0 {
		t.Fatalf("empty input parsed to %v", out)
	}
}

// window returns how far in the future peer i's down window currently
// ends.
func window(c *Client, i int) time.Duration {
	return time.Duration(c.health[i].downUntil.Load() - time.Now().UnixNano())
}

// TestMarkDownExponentialBackoff: consecutive failures double the down
// window (plus bounded jitter) up to the cap, and markUp resets the
// progression to the base window.
func TestMarkDownExponentialBackoff(t *testing.T) {
	base, cap_ := 100*time.Millisecond, 800*time.Millisecond
	c := NewClient(ClientConfig{Peers: 1, Backoff: base, MaxBackoff: cap_, JitterSeed: 42})

	prev := time.Duration(0)
	for i := 1; i <= 6; i++ {
		c.MarkDown(0)
		w := window(c, 0)
		// Window i is base*2^(i-1) + jitter in [0, window/2]; assert the
		// envelope rather than the exact jitter draw.
		ideal := base << (i - 1)
		if ideal > cap_ {
			ideal = cap_
		}
		if w < ideal || w > ideal+ideal/2+5*time.Millisecond {
			t.Fatalf("failure %d: window %v outside [%v, %v]", i, w, ideal, ideal+ideal/2)
		}
		if ideal < cap_ && w <= prev {
			t.Fatalf("failure %d: window %v did not grow past %v", i, w, prev)
		}
		prev = w
	}

	c.markUp(0)
	if !c.Available(0) {
		t.Fatal("markUp did not clear the down window")
	}
	c.MarkDown(0)
	if w := window(c, 0); w > base+base/2+5*time.Millisecond {
		t.Fatalf("window after markUp reset is %v, want ~base %v — failure count not reset", w, base)
	}
}

// TestForward5xxHealthAccounting: a peer stuck returning 500s is marked
// down after ServerErrLimit consecutive server errors — each exchange
// still completes and returns the result to the caller — while any
// sub-500 status resets the run.
func TestForward5xxHealthAccounting(t *testing.T) {
	var status atomic.Int64
	status.Store(500)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{Peers: 1, Timeout: time.Second, Backoff: time.Minute, ServerErrLimit: 3})
	for i := 1; i <= 2; i++ {
		res, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", []byte(`{}`))
		if err != nil || res.Status != 500 {
			t.Fatalf("5xx exchange %d: res %+v err %v — must complete and surface the status", i, res, err)
		}
		if !c.Available(0) {
			t.Fatalf("peer down after only %d consecutive 5xx (limit 3)", i)
		}
	}
	// A healthy exchange resets the consecutive-5xx run.
	status.Store(200)
	if _, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", nil); err != nil {
		t.Fatal(err)
	}
	status.Store(500)
	for i := 1; i <= 2; i++ {
		if _, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", nil); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Available(0) {
		t.Fatal("200 between 5xx runs did not reset the counter")
	}
	if _, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", nil); err != nil {
		t.Fatal(err)
	}
	if c.Available(0) {
		t.Fatal("3 consecutive 5xx did not mark the peer down")
	}
}

// hedgePair starts two stub peers with controllable delay/status and a
// client covering both.
func hedgePair(t *testing.T, delay0, delay1 time.Duration) (*Client, []string, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var served0, served1 atomic.Int64
	mk := func(d time.Duration, served *atomic.Int64, body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Drain the body first: net/http only arms its client-abort
			// detection (and with it r.Context cancellation) once the
			// request body is consumed.
			io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
			served.Add(1)
			w.Header().Set("X-Cache", "hit")
			fmt.Fprint(w, body)
		}))
	}
	// Both bodies identical: the winner must be usable either way, which
	// is exactly the deterministic-solver property hedging leans on.
	s0 := mk(delay0, &served0, `{"v":1}`)
	s1 := mk(delay1, &served1, `{"v":1}`)
	t.Cleanup(s0.Close)
	t.Cleanup(s1.Close)
	c := NewClient(ClientConfig{Peers: 2, Timeout: 2 * time.Second, Backoff: time.Minute})
	return c, []string{s0.URL, s1.URL}, &served0, &served1
}

// TestHedgedForwardSlowPrimary: the primary stalls past the hedge delay,
// the hedge wins, the result is marked Hedged, and the loser is NOT
// marked down — it lost a race, it did not fail.
func TestHedgedForwardSlowPrimary(t *testing.T) {
	c, urls, _, served1 := hedgePair(t, 500*time.Millisecond, 0)
	start := time.Now()
	res, err := c.ForwardHedged(context.Background(), []int{0, 1}, urls, "/v1/solve", []byte(`{}`), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Peer != 1 {
		t.Fatalf("winner %+v, want hedged peer 1", res)
	}
	if string(res.Body) != `{"v":1}` || res.Status != http.StatusOK {
		t.Fatalf("unexpected winning result: %+v", res)
	}
	if took := time.Since(start); took > 400*time.Millisecond {
		t.Fatalf("hedged forward took %v — it waited for the slow primary", took)
	}
	if served1.Load() != 1 {
		t.Fatalf("hedge peer served %d requests, want 1", served1.Load())
	}
	if !c.Available(0) {
		t.Fatal("cancelled race loser was marked down")
	}
}

// TestHedgedForwardFastPrimary: the primary answers before the hedge
// delay, so exactly one request is ever sent and the result is not
// Hedged.
func TestHedgedForwardFastPrimary(t *testing.T) {
	c, urls, served0, served1 := hedgePair(t, 0, 0)
	res, err := c.ForwardHedged(context.Background(), []int{0, 1}, urls, "/v1/solve", []byte(`{}`), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedged || res.Peer != 0 {
		t.Fatalf("winner %+v, want unhedged peer 0", res)
	}
	if served0.Load() != 1 || served1.Load() != 0 {
		t.Fatalf("served %d/%d, want 1/0 — the hedge fired although the primary was fast", served0.Load(), served1.Load())
	}
}

// TestHedgedForwardBothAnswer: both replicas complete (the loser's
// cancellation may lose its own race); exactly one body is returned and
// it is byte-identical either way.
func TestHedgedForwardBothAnswer(t *testing.T) {
	c, urls, _, _ := hedgePair(t, 60*time.Millisecond, 60*time.Millisecond)
	res, err := c.ForwardHedged(context.Background(), []int{0, 1}, urls, "/v1/solve", []byte(`{}`), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != `{"v":1}` {
		t.Fatalf("winning body %q — must be the shared deterministic body whoever wins", res.Body)
	}
	if res.Peer != 0 && res.Peer != 1 {
		t.Fatalf("winner peer %d", res.Peer)
	}
}

// TestHedgedForwardFailedAttemptLaunchesNext: a dead primary does not
// burn the hedge delay — the error immediately brings in the next
// replica.
func TestHedgedForwardFailedAttemptLaunchesNext(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"v":1}`))
	}))
	defer live.Close()
	c := NewClient(ClientConfig{Peers: 2, Timeout: time.Second, Backoff: time.Minute})
	dead := deadURL(t)

	start := time.Now()
	res, err := c.ForwardHedged(context.Background(), []int{0, 1}, []string{dead, live.URL}, "/v1/solve", []byte(`{}`), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Peer != 1 {
		t.Fatalf("winner %+v, want hedged peer 1", res)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("failover took %v — it waited out the hedge delay instead of reacting to the error", took)
	}
	if c.Available(0) {
		t.Fatal("dead primary not marked down")
	}
}

// TestHedgedForwardAllFail: every replica fails; the last error comes
// back and both peers are marked down.
func TestHedgedForwardAllFail(t *testing.T) {
	c := NewClient(ClientConfig{Peers: 2, Timeout: 200 * time.Millisecond, Backoff: time.Minute})
	if _, err := c.ForwardHedged(context.Background(), []int{0, 1}, []string{deadURL(t), deadURL(t)}, "/v1/solve", nil, 20*time.Millisecond); err == nil {
		t.Fatal("hedged forward to two dead peers succeeded")
	}
	if c.Available(0) || c.Available(1) {
		t.Fatal("dead peers not marked down")
	}
}

// TestHedgedForwardCancellationLeaksNothing: cancelling the caller's
// context mid-hedge (both peers still stalling) returns promptly and
// leaks no goroutines, and the stalled-but-healthy peers are NOT marked
// down — the failure was the caller's, not theirs.
func TestHedgedForwardCancellationLeaksNothing(t *testing.T) {
	c, urls, _, _ := hedgePair(t, 10*time.Second, 10*time.Second)
	// Baseline after the stub servers are up: their accept loops are
	// steady state, the hedge attempt goroutines are what must drain.
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.ForwardHedged(ctx, []int{0, 1}, urls, "/v1/solve", []byte(`{}`), 20*time.Millisecond)
		done <- err
	}()
	time.Sleep(80 * time.Millisecond) // both attempts in flight
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled hedge returned a result")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled hedge never returned")
	}
	if !c.Available(0) || !c.Available(1) {
		t.Fatal("caller-cancelled attempts were held against the peers")
	}

	// The attempt goroutines must drain: the results channel is buffered
	// to the fan-out, so each can deliver and exit once its Forward
	// aborts. Allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// deadURL reserves a loopback port and closes it: an address refusing
// connections immediately.
func deadURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	return url
}
