package cluster

import (
	"bytes"
	"errors"
	"testing"
)

func encode(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for name, entries := range map[string][]Entry{
		"empty":      {},
		"one":        {{Key: keyOf(1), Body: []byte(`{"latency":1}`)}},
		"empty-body": {{Key: keyOf(2), Body: nil}},
		"several": {
			{Key: keyOf(3), Body: []byte("a")},
			{Key: keyOf(4), Body: bytes.Repeat([]byte("x"), 4096)},
			{Key: keyOf(5), Body: []byte{0, 'P', 'S', 'N', 'P', 1, 0}}, // magic inside a body must not confuse framing
		},
	} {
		got, err := DecodeSnapshot(bytes.NewReader(encode(t, entries)), 16, 1<<20)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(got) != len(entries) {
			t.Fatalf("%s: got %d entries, want %d", name, len(got), len(entries))
		}
		for i := range entries {
			if got[i].Key != entries[i].Key {
				t.Fatalf("%s: entry %d key diverged — cross-record aliasing", name, i)
			}
			if !bytes.Equal(got[i].Body, entries[i].Body) {
				t.Fatalf("%s: entry %d body diverged", name, i)
			}
		}
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	for name, stream := range map[string][]byte{
		"empty":         {},
		"short":         {'P', 'S'},
		"wrong-magic":   {'X', 'S', 'N', 'P', 1},
		"wrong-version": {'P', 'S', 'N', 'P', 2},
	} {
		if _, err := DecodeSnapshot(bytes.NewReader(stream), 16, 1<<20); !errors.Is(err, ErrBadMagic) {
			t.Errorf("%s: got %v, want ErrBadMagic", name, err)
		}
	}
}

func TestSnapshotBounds(t *testing.T) {
	entries := []Entry{
		{Key: keyOf(1), Body: []byte("aaaa")},
		{Key: keyOf(2), Body: []byte("bbbb")},
	}
	stream := encode(t, entries)

	if _, err := DecodeSnapshot(bytes.NewReader(stream), 1, 1<<20); !errors.Is(err, ErrTooMany) {
		t.Errorf("entry bound: got %v, want ErrTooMany", err)
	}
	if _, err := DecodeSnapshot(bytes.NewReader(stream), 16, 3); !errors.Is(err, ErrBodyTooLong) {
		t.Errorf("body bound: got %v, want ErrBodyTooLong", err)
	}
	// Non-positive body bounds must reject non-empty bodies, never wrap
	// to "accept anything".
	if _, err := DecodeSnapshot(bytes.NewReader(stream), 16, -1); !errors.Is(err, ErrBodyTooLong) {
		t.Errorf("negative body bound: got %v, want ErrBodyTooLong", err)
	}
	// At the exact bounds the stream decodes.
	if _, err := DecodeSnapshot(bytes.NewReader(stream), 2, 4); err != nil {
		t.Errorf("exact bounds: %v", err)
	}
}

func TestSnapshotTruncation(t *testing.T) {
	stream := encode(t, []Entry{{Key: keyOf(1), Body: []byte("abcdef")}})
	// Every strict prefix that cuts into a record must error; the header
	// alone (5 bytes) is a valid empty snapshot.
	for cut := 6; cut < len(stream); cut++ {
		if _, err := DecodeSnapshot(bytes.NewReader(stream[:cut]), 16, 1<<20); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(stream))
		}
	}
	if got, err := DecodeSnapshot(bytes.NewReader(stream[:5]), 16, 1<<20); err != nil || len(got) != 0 {
		t.Fatalf("header-only stream: got %d entries, err %v", len(got), err)
	}
}
