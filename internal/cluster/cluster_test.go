package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// keyOf derives a deterministic test key, mimicking the service's
// SHA-256 canonical digests.
func keyOf(i int) Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return sha256.Sum256(b[:])
}

func TestTopologyOrderIndependence(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	shuffled := []string{"http://c:3", "http://a:1", "http://b:2"}
	t1, err := NewTopology(urls, "http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTopology(shuffled, "http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := t1.Peers(), t2.Peers(); len(got) != len(want) {
		t.Fatalf("peer lists differ: %v vs %v", got, want)
	}
	for i, p := range t1.Peers() {
		if t2.Peer(i) != p {
			t.Fatalf("peer %d: %q vs %q — normalisation must be order-independent", i, p, t2.Peer(i))
		}
	}
	if t1.Self() != t2.Self() {
		t.Fatalf("self index differs: %d vs %d", t1.Self(), t2.Self())
	}
	for i := 0; i < 200; i++ {
		k := keyOf(i)
		if t1.Owner(k) != t2.Owner(k) {
			t.Fatalf("key %d: owners disagree across list orders", i)
		}
	}
}

func TestTopologyNormalization(t *testing.T) {
	// Scheme defaulting, trailing slash, host case: all one peer.
	topo, err := NewTopology([]string{"LOCALHOST:9000/", "http://other:9001"}, "http://localhost:9000")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 2 {
		t.Fatalf("size %d, want 2", topo.Size())
	}
	if topo.Peer(topo.Self()) != "http://localhost:9000" {
		t.Fatalf("self resolved to %q", topo.Peer(topo.Self()))
	}
}

func TestTopologyRejects(t *testing.T) {
	for name, tc := range map[string]struct {
		peers     []string
		advertise string
	}{
		"empty-list":        {nil, "http://a:1"},
		"advertise-missing": {[]string{"http://a:1", "http://b:2"}, "http://c:3"},
		"duplicate":         {[]string{"http://a:1", "a:1"}, "http://a:1"},
		"bad-scheme":        {[]string{"ftp://a:1"}, "ftp://a:1"},
		"query":             {[]string{"http://a:1?x=1"}, "http://a:1?x=1"},
		"empty-advertise":   {[]string{"http://a:1"}, ""},
	} {
		if _, err := NewTopology(tc.peers, tc.advertise); err == nil {
			t.Errorf("%s: NewTopology accepted %v / %q", name, tc.peers, tc.advertise)
		}
	}
}

// TestOwnerBalanced: SHA-256 keys spread over rendezvous scoring should
// give every peer a fair share — no peer may starve or hog.
func TestOwnerBalanced(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	topo, err := NewTopology(urls, "http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	counts := make([]int, topo.Size())
	for i := 0; i < n; i++ {
		counts[topo.Owner(keyOf(i))]++
	}
	for i, c := range counts {
		// Expected n/3 = 1000; a uniform hash stays well inside ±30%.
		if c < n/3*7/10 || c > n/3*13/10 {
			t.Fatalf("peer %d owns %d of %d keys — ownership is not balanced: %v", i, c, n, counts)
		}
	}
}

// TestRendezvousMinimalDisruption pins the property the design leans on:
// removing one peer reassigns only that peer's keys. Every key owned by
// a survivor keeps its owner.
func TestRendezvousMinimalDisruption(t *testing.T) {
	full, err := NewTopology([]string{"http://a:1", "http://b:2", "http://c:3"}, "http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewTopology([]string{"http://a:1", "http://b:2"}, "http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 2000; i++ {
		k := keyOf(i)
		ownerFull := full.Peer(full.Owner(k))
		ownerReduced := reduced.Peer(reduced.Owner(k))
		if ownerFull == "http://c:3" {
			moved++
			continue // c's keys must move somewhere, anywhere
		}
		if ownerFull != ownerReduced {
			t.Fatalf("key %d moved %s -> %s although its owner survived", i, ownerFull, ownerReduced)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed peer — test is vacuous")
	}
}

func TestClientBackoffWindow(t *testing.T) {
	c := NewClient(ClientConfig{Peers: 2, Timeout: time.Second, Backoff: 50 * time.Millisecond})
	if !c.Available(1) {
		t.Fatal("fresh peer not available")
	}
	c.MarkDown(1)
	if c.Available(1) {
		t.Fatal("peer available immediately after MarkDown")
	}
	if !c.Available(0) {
		t.Fatal("unrelated peer affected by MarkDown")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !c.Available(1) {
		if time.Now().After(deadline) {
			t.Fatal("peer never recovered after the backoff window")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestForwardTransportFailureMarksDown(t *testing.T) {
	// A listener opened and closed again: the port is known-dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	c := NewClient(ClientConfig{Peers: 1, Timeout: 200 * time.Millisecond, Backoff: time.Minute})
	if _, err := c.Forward(context.Background(), 0, dead, "/v1/solve", []byte(`{}`)); err == nil {
		t.Fatal("forward to a dead peer succeeded")
	}
	if c.Available(0) {
		t.Fatal("dead peer not marked down")
	}
}

func TestForwardSuccessAndRecovery(t *testing.T) {
	var gotForwardHeader, gotContentType string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwardHeader = r.Header.Get(ForwardHeader)
		gotContentType = r.Header.Get("Content-Type")
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{Peers: 1, Timeout: time.Second, Backoff: time.Minute})
	c.MarkDown(0) // a successful round trip must clear the window
	res, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.XCache != "hit" || string(res.Body) != `{"ok":true}` {
		t.Fatalf("unexpected forward result: %+v", res)
	}
	if gotForwardHeader == "" {
		t.Fatal("forward did not carry the loop-prevention header")
	}
	if gotContentType != "application/json" {
		t.Fatalf("forward content type %q", gotContentType)
	}
	if !c.Available(0) {
		t.Fatal("successful forward did not mark the peer up")
	}
}

func TestForwardTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() { close(release); ts.Close() }()

	c := NewClient(ClientConfig{Peers: 1, Timeout: 50 * time.Millisecond, Backoff: time.Minute})
	start := time.Now()
	_, err := c.Forward(context.Background(), 0, ts.URL, "/v1/solve", []byte(`{}`))
	if err == nil {
		t.Fatal("forward to a hung peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forward took %v, want ~the 50ms timeout", elapsed)
	}
	if c.Available(0) {
		t.Fatal("timed-out peer not marked down")
	}
}

func TestFetchSnapshot(t *testing.T) {
	want := []Entry{
		{Key: keyOf(1), Body: []byte("alpha")},
		{Key: keyOf(2), Body: []byte{}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != SnapshotPath {
			http.NotFound(w, r)
			return
		}
		if err := EncodeSnapshot(w, want); err != nil {
			t.Errorf("encode: %v", err)
		}
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{Peers: 1, Timeout: time.Second, Backoff: time.Minute})
	got, err := c.FetchSnapshot(context.Background(), 0, ts.URL, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || string(got[i].Body) != string(want[i].Body) {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
