// Self-healing fleet tests: seed-list join, replica anti-entropy and
// membership-disagreement detection, driven deterministically through
// the same in-process harness as fleet_test.go (Fleet-prefixed names so
// the CI cluster lane's -run Fleet picks them up under -race). The e2e
// script exercises the same flows across real processes; these tests
// pin the semantics tick by tick.
package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"pipesched/internal/cluster"
	"pipesched/internal/loadgen"
	"pipesched/internal/service"
)

// TestFleetSeedJoin walks the -join bootstrap end to end in-process: a
// new node resolves the fleet from a seed URL, builds its topology at
// the fleet's epoch, announces itself, and every incumbent adopts the
// grown view — after which the whole fleet serves byte-identical
// responses with the joiner as a full member.
func TestFleetSeedJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 2)
	f.startAll()
	ref := startReference(t)
	ctx := context.Background()

	// The joiner knows one seed URL and its own address — nothing else.
	ts := httptest.NewUnstartedServer(nil)
	t.Cleanup(ts.Close)
	joinerURL := "http://" + ts.Listener.Addr().String()
	m, err := cluster.BootstrapMembers(ctx, []string{f.urls[0]}, joinerURL, &http.Client{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("seed bootstrap: %v", err)
	}
	if len(m.Peers) != 3 || !m.Contains(joinerURL) {
		t.Fatalf("bootstrap view %+v, want the 2 seeds plus the joiner", m)
	}
	topo, err := cluster.NewTopology(m.Peers, joinerURL)
	if err != nil {
		t.Fatal(err)
	}
	joiner := service.New(service.Options{
		Cluster: &service.ClusterConfig{
			Topology:       topo,
			Epoch:          m.Epoch,
			ForwardTimeout: 500 * time.Millisecond,
			PeerBackoff:    200 * time.Millisecond,
		},
	})
	ts.Config.Handler = joiner
	ts.Start()

	if err := joiner.AnnounceSelf(ctx); err != nil {
		t.Fatalf("announce: %v", err)
	}

	// Every incumbent must now hold the grown view, stamp-identical to
	// the joiner's — the join propagated without any operator action.
	wantStamp := joiner.Membership().Stamp()
	joined := 0
	for i, srv := range f.srvs {
		mm := srv.Membership()
		if len(mm.Peers) != 3 || !mm.Contains(joinerURL) {
			t.Fatalf("node %d view %+v does not include the joiner", i, mm)
		}
		if got := mm.Stamp(); got != wantStamp {
			t.Fatalf("node %d stamp %s, joiner %s — fleet not converged", i, got, wantStamp)
		}
		if c := srv.Metrics().Cluster; c != nil {
			joined += int(c.JoinsServed)
		}
	}
	if joined == 0 {
		t.Fatal("no incumbent served a join")
	}

	// The grown fleet must be byte-identical to a single node, with the
	// joiner taking client traffic as a full member.
	all := append(append([]string{}, f.urls...), joinerURL)
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Targets:      all,
		VerifyTarget: ref.URL,
		Workers:      8,
		Requests:     150,
		Keys:         24,
		Seed:         7,
		Stages:       6,
		Processors:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("joined fleet diverged: %d errors, %d mismatches (tiers %v)",
			rep.Errors, rep.Mismatches, rep.Tiers)
	}
}

// fetchDigestKeys scrapes a node's cache-key inventory over the peer
// wire, the same stream the anti-entropy loop reads.
func fetchDigestKeys(t *testing.T, url string) []cluster.Key {
	t.Helper()
	resp, err := http.Get(url + cluster.DigestPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest from %s: status %d", url, resp.StatusCode)
	}
	keys, err := cluster.DecodeDigest(resp.Body, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	slices.SortFunc(keys, func(a, b cluster.Key) int { return slices.Compare(a[:], b[:]) })
	return keys
}

// TestFleetAntiEntropy pins the replica-sync contract: entries solved on
// one replica reach the other with zero client traffic, the replica set
// converges digest-equal in one round per direction, and a converged
// pair syncs nothing.
func TestFleetAntiEntropy(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 2)
	f.startAll()
	ctx := context.Background()

	// Populate node 0 only, forwards suppressed: node 1's cache stays
	// empty, exactly the state a restarted replica wakes up in. With 2
	// nodes and R=2 every key's replica set is both nodes.
	const keys = 8
	for seed := int64(0); seed < keys; seed++ {
		status, _, b := postLocal(t, f.urls[0], solveBody(t, 3000+seed))
		if status != http.StatusOK {
			t.Fatalf("populate: status %d: %s", status, b)
		}
	}

	pulled, err := f.srvs[1].SyncOnce(ctx)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if pulled != keys {
		t.Fatalf("first sync pulled %d entries, want %d", pulled, keys)
	}
	if got, want := fetchDigestKeys(t, f.urls[1]), fetchDigestKeys(t, f.urls[0]); !slices.Equal(got, want) {
		t.Fatalf("replicas not digest-equal after one sync round: %d vs %d keys", len(got), len(want))
	}

	// Converged replicas sync nothing, in either direction.
	for i, srv := range f.srvs {
		if n, err := srv.SyncOnce(ctx); err != nil || n != 0 {
			t.Fatalf("converged node %d pulled %d entries (err %v), want 0", i, n, err)
		}
	}

	c := f.srvs[1].Metrics().Cluster
	if c == nil || c.SyncRounds < 2 || c.SyncPulled != keys {
		t.Fatalf("sync not reflected in metrics: %+v", c)
	}

	// The synced entries are real second-tier hits: node 1 serves them
	// locally, byte-identical to node 0's copies.
	for seed := int64(0); seed < keys; seed++ {
		body := solveBody(t, 3000+seed)
		status, tier, got := postLocal(t, f.urls[1], body)
		if status != http.StatusOK || tier != "hit" {
			t.Fatalf("synced key seed %d: status %d tier %q, want 200 \"hit\"", seed, status, tier)
		}
		_, _, want := postLocal(t, f.urls[0], body)
		if string(got) != string(want) {
			t.Fatalf("synced entry diverged:\n%s\nvs\n%s", got, want)
		}
	}
}

// TestFleetMembershipDisagreement drives the one split the merge rules
// refuse to heal silently — an operator view that excludes a live node —
// and checks it surfaces as counters on both sides instead of a wrong
// adoption: the excluded node keeps its own view (it never adopts a view
// without itself), and every side's mismatch counter moves.
func TestFleetMembershipDisagreement(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test in -short mode")
	}
	f := startFleet(t, 3)
	f.startAll()
	ctx := context.Background()

	// Operator shrinks the fleet to nodes 0+1 — but node 2 never gets the
	// memo (its peers file is stale).
	for i := 0; i < 2; i++ {
		topo, err := cluster.NewTopology(f.urls[:2], f.urls[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.srvs[i].ReloadTopology(ctx, topo); err != nil {
			t.Fatalf("reload node %d: %v", i, err)
		}
	}

	before := f.srvs[2].Membership()

	// Node 2 gossips and learns the survivors' higher-epoch view — which
	// excludes it. Adoption must be refused: epoch and peer list stay,
	// the rejection and mismatch are counted.
	changed, err := f.srvs[2].GossipOnce(ctx)
	if err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if changed {
		t.Fatal("excluded node adopted a view without itself")
	}
	after := f.srvs[2].Membership()
	if !after.Equal(before) {
		t.Fatalf("excluded node's view moved: %+v -> %+v", before, after)
	}
	c2 := f.srvs[2].Metrics().Cluster
	if c2 == nil || c2.MembershipsRejected == 0 || c2.MembershipMismatches == 0 {
		t.Fatalf("rejection not counted on the excluded node: %+v", c2)
	}
	if c2.MembershipEpoch != 0 || c2.Peers != 3 {
		t.Fatalf("excluded node's epoch moved: %+v", c2)
	}

	// The disagreement is visible on the survivor side too: node 2's
	// exchange carried its stale stamp, which no survivor matches.
	survivorMismatches := uint64(0)
	for i := 0; i < 2; i++ {
		c := f.srvs[i].Metrics().Cluster
		if c == nil {
			t.Fatalf("node %d lost its cluster metrics", i)
		}
		if c.MembershipEpoch != 1 || c.Peers != 2 {
			t.Fatalf("survivor %d did not hold the shrunk view: %+v", i, c)
		}
		survivorMismatches += c.MembershipMismatches
	}
	if survivorMismatches == 0 {
		t.Fatal("no survivor observed the stale stamp")
	}
	if f.srvs[0].Membership().Stamp() == after.Stamp() {
		t.Fatal("stamps agree although the views differ — disagreement would be invisible")
	}
	if f.srvs[0].Membership().Stamp() != f.srvs[1].Membership().Stamp() {
		t.Fatal("survivors disagree with each other")
	}
}
