package cluster

import (
	"bytes"
	"crypto/sha256"
	"slices"
	"strings"
	"testing"
)

func TestNewMembersCanonicalises(t *testing.T) {
	m := NewMembers(3, []string{
		"HTTP://B:7002/", // scheme/host case, trailing slash
		"http://a:7001",
		"http://b:7002",    // duplicate of the first after normalisation
		"not a url at all", // dropped — NewTopology is the strict gate
		"http://a:7001",
	})
	if m.Epoch != 3 {
		t.Fatalf("epoch %d, want 3", m.Epoch)
	}
	want := []string{"http://a:7001", "http://b:7002"}
	if !slices.Equal(m.Peers, want) {
		t.Fatalf("peers %q, want %q", m.Peers, want)
	}
	if !m.Contains("HTTP://A:7001/") {
		t.Fatal("Contains must normalise before the lookup")
	}
	if m.Contains("http://c:7003") || m.Contains("::bad::") {
		t.Fatal("Contains claims membership of a stranger")
	}
}

func TestMembersMergeRules(t *testing.T) {
	base := NewMembers(1, []string{"http://a:1", "http://b:2"})

	// Higher epoch wins wholesale — including removals: the higher view
	// drops b and the merge must not resurrect it.
	shrunk := NewMembers(2, []string{"http://a:1"})
	got, changed := base.Merge(shrunk)
	if !changed || !got.Equal(shrunk) {
		t.Fatalf("higher epoch did not win wholesale: %+v (changed=%v)", got, changed)
	}

	// Lower epoch changes nothing.
	if got, changed := base.Merge(NewMembers(0, []string{"http://z:9"})); changed || !got.Equal(base) {
		t.Fatalf("lower epoch moved the view: %+v (changed=%v)", got, changed)
	}

	// Equal epochs union, and the union commutes — concurrent joins
	// through different seeds must not erase each other.
	joinC := NewMembers(1, []string{"http://a:1", "http://c:3"})
	joinD := NewMembers(1, []string{"http://a:1", "http://d:4"})
	ab, _ := base.Merge(joinC)
	abcd1, _ := ab.Merge(joinD)
	ad, _ := base.Merge(joinD)
	abcd2, _ := ad.Merge(joinC)
	if !abcd1.Equal(abcd2) {
		t.Fatalf("equal-epoch merges do not commute: %+v vs %+v", abcd1, abcd2)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	if !slices.Equal(abcd1.Peers, want) {
		t.Fatalf("union peers %q, want %q", abcd1.Peers, want)
	}

	// Merging an identical view reports no change.
	if _, changed := base.Merge(NewMembers(1, []string{"http://b:2", "http://a:1"})); changed {
		t.Fatal("merging an equal view reported a change")
	}

	// A misbehaving peer cannot smuggle a raw, unsorted, duplicated list
	// past the merge: the result is re-canonicalised.
	raw := Members{Epoch: 5, Peers: []string{"http://z:9/", "http://z:9", "HTTP://M:5"}}
	got, _ = base.Merge(raw)
	if !slices.Equal(got.Peers, []string{"http://m:5", "http://z:9"}) {
		t.Fatalf("merge did not re-canonicalise a raw remote list: %q", got.Peers)
	}
}

func TestMembersStamp(t *testing.T) {
	a := NewMembers(2, []string{"http://b:2", "http://a:1"})
	b := NewMembers(2, []string{"http://a:1", "http://b:2/"})
	if a.Stamp() != b.Stamp() {
		t.Fatalf("equal views stamp differently: %s vs %s", a.Stamp(), b.Stamp())
	}
	if !strings.HasPrefix(a.Stamp(), "2:") || len(a.Stamp()) != len("2:")+16 {
		t.Fatalf("stamp %q is not epoch:hash16", a.Stamp())
	}
	if NewMembers(3, a.Peers).Stamp() == a.Stamp() {
		t.Fatal("epoch bump did not change the stamp")
	}
	c, _ := a.Merge(NewMembers(2, []string{"http://c:3"}))
	if c.Stamp() == a.Stamp() {
		t.Fatal("peer-list change did not change the stamp")
	}
}

func TestMembersWireRoundTrip(t *testing.T) {
	m := NewMembers(42, []string{"http://node-0:7001", "http://node-1:7001", "http://node-2:7001"})
	var buf bytes.Buffer
	if err := EncodeMembers(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMembers(bytes.NewReader(buf.Bytes()), MaxMembers)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip changed the view: %+v vs %+v", got, m)
	}

	// Empty view round-trips too (a cold seed answering before any join).
	buf.Reset()
	if err := EncodeMembers(&buf, Members{}); err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeMembers(&buf, MaxMembers); err != nil || got.Epoch != 0 || len(got.Peers) != 0 {
		t.Fatalf("empty view round trip: %+v, %v", got, err)
	}
}

func TestDecodeMembersBounds(t *testing.T) {
	m := NewMembers(1, []string{"http://a:1", "http://b:2", "http://c:3"})
	var buf bytes.Buffer
	if err := EncodeMembers(&buf, m); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()

	if _, err := DecodeMembers(bytes.NewReader(encoded), 2); err == nil {
		t.Fatal("decode accepted a view past the peer bound")
	}
	if _, err := DecodeMembers(bytes.NewReader([]byte{'P', 'M', 'B', 'R', 2}), MaxMembers); err == nil {
		t.Fatal("decode accepted a future wire version")
	}
	if _, err := DecodeMembers(bytes.NewReader(snapshotMagic), MaxMembers); err == nil {
		t.Fatal("decode accepted a snapshot stream as a membership message")
	}
	for cut := 1; cut < len(encoded); cut++ {
		if _, err := DecodeMembers(bytes.NewReader(encoded[:len(encoded)-cut]), MaxMembers); err == nil {
			t.Fatalf("decode accepted a stream truncated by %d bytes", cut)
		}
	}

	// A URL longer than the wire bound must be refused by the encoder —
	// it could never decode on the other side.
	long := Members{Epoch: 1, Peers: []string{"http://" + strings.Repeat("a", 600) + ":1"}}
	if err := EncodeMembers(&buf, long); err == nil {
		t.Fatal("encode accepted a member URL past the length bound")
	}
}

func TestDigestWireRoundTrip(t *testing.T) {
	keys := []Key{
		sha256.Sum256([]byte("one")),
		sha256.Sum256([]byte("two")),
		sha256.Sum256([]byte("three")),
	}
	var buf bytes.Buffer
	if err := EncodeDigest(&buf, keys); err != nil {
		t.Fatal(err)
	}
	encoded := append([]byte{}, buf.Bytes()...)
	got, err := DecodeDigest(&buf, len(keys))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, keys) {
		t.Fatalf("digest round trip changed keys: %x vs %x", got, keys)
	}

	if _, err := DecodeDigest(bytes.NewReader(encoded), 2); err == nil {
		t.Fatal("decode accepted a digest past the key bound")
	}
	for cut := 1; cut < 33; cut++ {
		if _, err := DecodeDigest(bytes.NewReader(encoded[:len(encoded)-cut]), len(keys)); err == nil {
			t.Fatalf("decode accepted a digest truncated by %d bytes", cut)
		}
	}
	buf.Reset()
	if err := EncodeDigest(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeDigest(&buf, 16); err != nil || len(got) != 0 {
		t.Fatalf("empty digest round trip: %x, %v", got, err)
	}
}

// TestParsePeersFileEdgeCases pins the operator-facing corners of the
// peers-file format: Windows line endings, duplicate entries (kept by
// the parser — NewTopology is the gate that rejects them), trailing
// commas, and files that are nothing but comments.
func TestParsePeersFileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"crlf", "http://a:1\r\nhttp://b:2\r\n", []string{"http://a:1", "http://b:2"}},
		{"trailing commas", "http://a:1,http://b:2,\n,http://c:3,,\n", []string{"http://a:1", "http://b:2", "http://c:3"}},
		{"duplicates kept", "http://a:1\nhttp://a:1\n", []string{"http://a:1", "http://a:1"}},
		{"comment only", "# the whole fleet is commented out\n  # every line\n", nil},
		{"empty", "", nil},
		{"inline comment with comma", "http://a:1 # was http://old:1, retired\n", []string{"http://a:1"}},
		{"crlf blank lines", "\r\n\r\nhttp://a:1\r\n\r\n", []string{"http://a:1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ParsePeersFile([]byte(tc.in)); !slices.Equal(got, tc.want) {
				t.Fatalf("ParsePeersFile(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}

	// Duplicates survive parsing but must be refused at topology build —
	// two indistinguishable peers would split ownership nondeterministically.
	dup := ParsePeersFile([]byte("http://a:1\nhttp://a:1/\n"))
	if len(dup) != 2 {
		t.Fatalf("parser collapsed duplicates: %q", dup)
	}
	if _, err := NewTopology(dup, dup[0]); err == nil {
		t.Fatal("NewTopology accepted a duplicated peer list")
	}
}

// TestOwnersJoinStability pins the rendezvous property a join leans on:
// growing the fleet by one node only reassigns keys the joiner wins —
// every key whose replica set does not include the joiner keeps its
// owner list byte for byte, so a join never reshuffles ownership among
// the incumbents.
func TestOwnersJoinStability(t *testing.T) {
	before := []string{"http://n0:1", "http://n1:1", "http://n2:1", "http://n3:1"}
	after := append(append([]string{}, before...), "http://joiner:1")
	topoA, err := NewTopology(before, before[0])
	if err != nil {
		t.Fatal(err)
	}
	topoB, err := NewTopology(after, after[0])
	if err != nil {
		t.Fatal(err)
	}
	const r = 2
	urls := func(topo *Topology, owners []int) []string {
		out := make([]string, len(owners))
		for i, o := range owners {
			out[i] = topo.Peer(o)
		}
		return out
	}
	moved, kept := 0, 0
	for i := 0; i < 512; i++ {
		k := Key(sha256.Sum256([]byte{byte(i), byte(i >> 8)}))
		oldSet := urls(topoA, topoA.Owners(k, r, nil))
		newSet := urls(topoB, topoB.Owners(k, r, nil))
		if slices.Contains(newSet, "http://joiner:1") {
			moved++
			continue // the joiner won a slot; this key is allowed to move
		}
		kept++
		if !slices.Equal(oldSet, newSet) {
			t.Fatalf("key %d moved although the joiner is not a replica: %q -> %q", i, oldSet, newSet)
		}
	}
	// With 5 nodes and R=2 the joiner should appear in roughly 2/5 of the
	// replica sets; both buckets must be well populated for the test to
	// have bite.
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: %d moved, %d kept of 512", moved, kept)
	}
}
