package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardHeader marks a request as already forwarded once. A node
// receiving it serves the request locally no matter what its own
// ownership view says, so a transient topology disagreement (e.g. two
// nodes configured with different peer lists by mistake) degrades to one
// extra hop instead of a forwarding loop.
const ForwardHeader = "X-Pipesched-Forward"

// MembershipHeader carries a node's membership stamp (Members.Stamp) on
// every peer exchange, requests and responses alike. Two nodes with the
// same fleet view always stamp identically, so a mismatch observed on
// either side is exactly a membership disagreement — counted and
// surfaced in /metrics long before a divergent fleet misroutes.
const MembershipHeader = "X-Pipesched-Membership"

// Peer-only endpoints. SnapshotPath streams a node's hot cache entries
// in the snapshot codec; MembersPath serves its membership view (the
// seed-join bootstrap source and the gossip pull); JoinPath accepts a
// pushed view and answers with the merged one; DigestPath serves the
// bounded key digest of the local cache; FetchPath accepts a digest
// want-list and answers with the matching entries as a snapshot stream.
const (
	SnapshotPath = "/v1/peer/snapshot"
	MembersPath  = "/v1/peer/members"
	JoinPath     = "/v1/peer/join"
	DigestPath   = "/v1/peer/digest"
	FetchPath    = "/v1/peer/fetch"
)

const (
	// DefaultForwardTimeout bounds one owner-forward round trip.
	DefaultForwardTimeout = 2 * time.Second
	// DefaultBackoff is the base down window after a peer's first
	// failure; consecutive failures double it up to DefaultMaxBackoff.
	DefaultBackoff = 5 * time.Second
	// DefaultMaxBackoff caps the exponential down window.
	DefaultMaxBackoff = 60 * time.Second
	// DefaultServerErrLimit is how many consecutive 5xx exchanges a peer
	// may return before it is treated as down. One stray 500 under load
	// is noise; a run of them is a sick peer that must stop absorbing
	// forwards.
	DefaultServerErrLimit = 3
)

// ForwardResult is the owner's answer to a proxied request.
type ForwardResult struct {
	Status int    // HTTP status from the owner
	XCache string // the owner's X-Cache disposition ("hit", "miss", ...)
	Body   []byte // the rendered response body, verbatim
}

// HedgedResult is the winning answer of a hedged forward race.
type HedgedResult struct {
	ForwardResult
	Peer   int  // topology index of the replica that answered
	Hedged bool // true when a hedge attempt (not the first replica) won
}

// ClientConfig parameterises a peer Client. The zero value of every
// field selects the documented default; only Peers is required.
type ClientConfig struct {
	// Peers is the fleet size the health table covers.
	Peers int
	// Timeout bounds each forward round trip (default
	// DefaultForwardTimeout).
	Timeout time.Duration
	// Backoff is the base down window after a peer's first failure
	// (default DefaultBackoff). Consecutive failures double the window.
	Backoff time.Duration
	// MaxBackoff caps the exponential window (default the larger of
	// DefaultMaxBackoff and Backoff).
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter added to every down
	// window, so a fleet of nodes configured with distinct seeds does
	// not re-probe a recovering peer in lockstep. 0 selects seed 1;
	// callers should derive the seed from their own identity (the
	// service layer uses the advertise URL's hash).
	JitterSeed int64
	// ServerErrLimit is how many consecutive completed-but-5xx
	// exchanges mark a peer down (default DefaultServerErrLimit).
	ServerErrLimit int
	// Transport overrides the HTTP transport, e.g. with a fault
	// injector in chaos tests. nil selects a pooled default.
	Transport http.RoundTripper
	// Stamp is this node's membership stamp (Members.Stamp), set on
	// every peer exchange as MembershipHeader and compared against the
	// peer's response stamp. Empty disables stamping. A Client is bound
	// to one membership epoch (the serving layer rebuilds it per swap),
	// so the stamp is immutable here.
	Stamp string
	// OnStampMismatch, when non-nil, fires once per exchange whose
	// response carried a different membership stamp than ours — the
	// disagreement-detection hook feeding /metrics.
	OnStampMismatch func(peer int, stamp string)
}

// peerHealth is one peer's failure state. Plain atomics: a racing
// update merely re-marks the same failing peer.
type peerHealth struct {
	// downUntil holds the unix-nano instant until which the peer is
	// considered down; 0 (or any past instant) means available.
	downUntil atomic.Int64
	// fails counts consecutive failures, driving the exponential window.
	fails atomic.Int32
	// srvErrs counts consecutive completed exchanges with a 5xx status.
	srvErrs atomic.Int32
}

// Client talks to the fleet: it forwards requests to key replicas
// (optionally hedged) and fetches warm-up snapshots, tracking per-peer
// health so that a dead or slow peer costs at most one timeout per
// backoff window. All methods are safe for concurrent use.
type Client struct {
	hc          *http.Client
	timeout     time.Duration
	backoff     time.Duration
	maxBackoff  time.Duration
	srvErrLimit int32
	health      []peerHealth
	stamp       string
	onMismatch  func(peer int, stamp string)

	// jitter is the seeded source behind the backoff spread. A mutex
	// (not an atomic) because rand.Rand is not concurrency-safe; it is
	// touched only on the failure path.
	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// NewClient builds a client from cfg.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultForwardTimeout
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.MaxBackoff < cfg.Backoff {
		cfg.MaxBackoff = cfg.Backoff
	}
	if cfg.ServerErrLimit <= 0 {
		cfg.ServerErrLimit = DefaultServerErrLimit
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Client{
		hc:          &http.Client{Transport: rt},
		timeout:     cfg.Timeout,
		backoff:     cfg.Backoff,
		maxBackoff:  cfg.MaxBackoff,
		srvErrLimit: int32(cfg.ServerErrLimit),
		health:      make([]peerHealth, cfg.Peers),
		stamp:       cfg.Stamp,
		onMismatch:  cfg.OnStampMismatch,
		jitter:      rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// setStamp marks an outgoing peer exchange with our membership stamp.
func (c *Client) setStamp(h http.Header) {
	if c.stamp != "" {
		h.Set(MembershipHeader, c.stamp)
	}
}

// checkStamp compares a peer's response stamp against ours and fires
// the mismatch hook on disagreement. A peer that does not stamp (an
// older build) is not a disagreement.
func (c *Client) checkStamp(i int, h http.Header) {
	if c.stamp == "" {
		return
	}
	if got := h.Get(MembershipHeader); got != "" && got != c.stamp {
		if c.onMismatch != nil {
			c.onMismatch(i, got)
		}
	}
}

// Timeout returns the per-forward round-trip bound.
func (c *Client) Timeout() time.Duration { return c.timeout }

// Available reports whether peer i is currently believed reachable: a
// peer is down only inside the backoff window after a failure.
func (c *Client) Available(i int) bool {
	return time.Now().UnixNano() >= c.health[i].downUntil.Load()
}

// MarkDown records a failure against peer i, suppressing forwards to it
// for the current backoff window: base x 2^(consecutive failures - 1),
// capped at MaxBackoff, plus up to 50% seeded jitter so a fleet of
// recovering nodes spreads its re-probes instead of stampeding.
func (c *Client) MarkDown(i int) {
	n := c.health[i].fails.Add(1)
	window := c.backoff
	// Shift with an explicit cap: past ~32 doublings the window is
	// saturated anyway and an unchecked shift would overflow.
	for s := int32(1); s < n && window < c.maxBackoff; s++ {
		window *= 2
	}
	if window > c.maxBackoff {
		window = c.maxBackoff
	}
	c.jitterMu.Lock()
	j := time.Duration(c.jitter.Int63n(int64(window)/2 + 1))
	c.jitterMu.Unlock()
	c.health[i].downUntil.Store(time.Now().Add(window + j).UnixNano())
}

// markUp clears peer i's failure state after a healthy exchange, so one
// lucky probe restores the peer immediately — window, failure count and
// server-error run all reset to zero.
func (c *Client) markUp(i int) {
	h := &c.health[i]
	h.downUntil.Store(0)
	h.fails.Store(0)
	h.srvErrs.Store(0)
}

// observeStatus folds one completed exchange into peer i's health: any
// status below 500 proves a functioning peer and resets the failure
// state, while a run of ServerErrLimit consecutive 5xx responses marks
// the peer down exactly like a transport failure — a daemon stuck
// returning 500s must stop absorbing forwards, even though each
// individual exchange "completed". The caller still receives the result
// either way; a 5xx is never surfaced to the end client (the service
// layer degrades to the next replica or a local solve).
func (c *Client) observeStatus(i, status int) {
	if status < 500 {
		c.markUp(i)
		return
	}
	if c.health[i].srvErrs.Add(1) >= c.srvErrLimit {
		c.MarkDown(i)
	}
}

// Forward proxies one request body to peer i at baseURL+path and returns
// the peer's full answer. The round trip is bounded by the client's
// forward timeout (intersected with ctx); a transport failure or timeout
// marks the peer down and returns an error — the caller degrades to the
// next replica or a local solve. A completed exchange below status 500
// marks the peer up; a run of consecutive 5xx exchanges marks it down
// (see observeStatus) while still returning the result for the caller to
// interpret. A failure caused by the caller's own context (cancelled
// hedge loser, disconnected client) is not held against the peer.
func (c *Client) Forward(ctx context.Context, i int, baseURL, path string, body []byte) (ForwardResult, error) {
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return ForwardResult{}, fmt.Errorf("cluster: forward request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, "1")
	c.setStamp(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.MarkDown(i)
		}
		return ForwardResult{}, fmt.Errorf("cluster: forward to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			c.MarkDown(i)
		}
		return ForwardResult{}, fmt.Errorf("cluster: forward read from %s: %w", baseURL, err)
	}
	c.observeStatus(i, resp.StatusCode)
	c.checkStamp(i, resp.Header)
	return ForwardResult{Status: resp.StatusCode, XCache: resp.Header.Get("X-Cache"), Body: b}, nil
}

// ForwardHedged races one forward across a key's replica set. The first
// replica is tried immediately; whenever the newest attempt has neither
// answered within hedgeAfter nor failed, the next replica joins the
// race. The first usable answer (a completed 200 exchange) wins and the
// losers are cancelled — a cancelled loser is not marked down, it lost a
// race, it did not fail. A failed or non-200 attempt immediately
// launches the next replica instead of waiting out the hedge delay.
//
// peers and urls are the replica set in rank order (peers[j] the
// topology index behind urls[j]). If no replica answers usably the last
// failure is returned: (zero, error) when every attempt errored, or the
// last completed non-200 result for the caller to interpret. Exactly one
// result is ever returned and every attempt goroutine exits promptly
// once the race settles, even when the caller's ctx is cancelled
// mid-hedge.
func (c *Client) ForwardHedged(ctx context.Context, peers []int, urls []string, path string, body []byte, hedgeAfter time.Duration) (HedgedResult, error) {
	if len(peers) == 1 {
		res, err := c.Forward(ctx, peers[0], urls[0], path, body)
		return HedgedResult{ForwardResult: res, Peer: peers[0]}, err
	}
	if hedgeAfter <= 0 {
		hedgeAfter = c.timeout / 4
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel() // settles the race: every loser's Forward aborts

	type attempt struct {
		res ForwardResult
		err error
		idx int // rank in the replica set
	}
	// Buffered to the full fan-out so attempt goroutines can always
	// deliver and exit, even after the caller has taken the winner.
	results := make(chan attempt, len(peers))
	launched := 0
	launch := func() {
		idx := launched
		launched++
		go func() {
			res, err := c.Forward(rctx, peers[idx], urls[idx], path, body)
			results <- attempt{res: res, err: err, idx: idx}
		}()
	}
	launch()

	var (
		last    attempt
		lastErr error = fmt.Errorf("cluster: no replica attempted")
		pending       = 1
		hedgeC  <-chan time.Time
	)
	if launched < len(peers) {
		hedgeC = time.After(hedgeAfter)
	}
	for pending > 0 {
		select {
		case a := <-results:
			pending--
			if a.err == nil && a.res.Status == http.StatusOK {
				return HedgedResult{ForwardResult: a.res, Peer: peers[a.idx], Hedged: a.idx > 0}, nil
			}
			last, lastErr = a, a.err
			// This rung is burnt; bring in the next replica right away.
			if launched < len(peers) {
				launch()
				pending++
				hedgeC = time.After(hedgeAfter)
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(peers) {
				launch()
				pending++
				if launched < len(peers) {
					hedgeC = time.After(hedgeAfter)
				}
			}
		case <-ctx.Done():
			return HedgedResult{}, ctx.Err()
		}
	}
	if lastErr != nil {
		return HedgedResult{}, lastErr
	}
	return HedgedResult{ForwardResult: last.res, Peer: peers[last.idx], Hedged: last.idx > 0}, nil
}

// FetchSnapshot streams peer i's hot cache entries and decodes them
// under the given bounds (see DecodeSnapshot). The round trip is bounded
// by ctx alone — warm-up tolerates longer pulls than a forward — but a
// transport failure still marks the peer down.
func (c *Client) FetchSnapshot(ctx context.Context, i int, baseURL string, maxEntries, maxBody int) ([]Entry, error) {
	resp, err := c.doPeerGet(ctx, i, baseURL, SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot from %s: status %d", baseURL, resp.StatusCode)
	}
	entries, err := DecodeSnapshot(resp.Body, maxEntries, maxBody)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return entries, nil
}

// doPeerGet issues one stamped GET exchange against peer i, with the
// shared health accounting: a transport failure not caused by the
// caller's own context marks the peer down, and any completed response
// has its membership stamp checked. The caller owns resp.Body.
func (c *Client) doPeerGet(ctx context.Context, i int, baseURL, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+path, nil)
	if err != nil {
		return nil, err
	}
	c.setStamp(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.MarkDown(i)
		}
		return nil, err
	}
	c.checkStamp(i, resp.Header)
	return resp, nil
}

// FetchMembers pulls peer i's membership view — the gossip exchange.
// The round trip is bounded by the forward timeout: a membership
// message is tiny, and a gossip tick must never hang behind a stuck
// peer.
func (c *Client) FetchMembers(ctx context.Context, i int, baseURL string) (Members, error) {
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	resp, err := c.doPeerGet(fctx, i, baseURL, MembersPath)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Members{}, fmt.Errorf("cluster: members from %s: status %d", baseURL, resp.StatusCode)
	}
	m, err := DecodeMembers(resp.Body, MaxMembers)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return m, nil
}

// Join pushes our membership view to peer i and returns the view the
// peer holds after merging — the announce half of the join protocol.
// Bounded by the forward timeout, like FetchMembers.
func (c *Client) Join(ctx context.Context, i int, baseURL string, m Members) (Members, error) {
	var buf bytes.Buffer
	if err := EncodeMembers(&buf, m); err != nil {
		return Members{}, fmt.Errorf("cluster: join encode: %w", err)
	}
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, baseURL+JoinPath, &buf)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: join request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.setStamp(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.MarkDown(i)
		}
		return Members{}, fmt.Errorf("cluster: join to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	c.checkStamp(i, resp.Header)
	if resp.StatusCode != http.StatusOK {
		return Members{}, fmt.Errorf("cluster: join to %s: status %d", baseURL, resp.StatusCode)
	}
	merged, err := DecodeMembers(resp.Body, MaxMembers)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: join to %s: %w", baseURL, err)
	}
	c.markUp(i)
	return merged, nil
}

// FetchDigest pulls the bounded key digest of peer i's cache — the
// anti-entropy comparison input. Bounded by the forward timeout.
func (c *Client) FetchDigest(ctx context.Context, i int, baseURL string, maxKeys int) ([]Key, error) {
	fctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	resp, err := c.doPeerGet(fctx, i, baseURL, DigestPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: digest from %s: status %d", baseURL, resp.StatusCode)
	}
	keys, err := DecodeDigest(resp.Body, maxKeys)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return keys, nil
}

// FetchEntries asks peer i for the listed keys' cache entries (the
// anti-entropy pull): the want-list travels as a digest message, the
// answer as a snapshot stream holding whatever subset the peer actually
// has. Bounded by ctx alone, like FetchSnapshot — an entry pull may
// legitimately move more bytes than a forward.
func (c *Client) FetchEntries(ctx context.Context, i int, baseURL string, keys []Key, maxEntries, maxBody int) ([]Entry, error) {
	var buf bytes.Buffer
	if err := EncodeDigest(&buf, keys); err != nil {
		return nil, fmt.Errorf("cluster: fetch encode: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+FetchPath, &buf)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.setStamp(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.MarkDown(i)
		}
		return nil, fmt.Errorf("cluster: fetch from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	c.checkStamp(i, resp.Header)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: fetch from %s: status %d", baseURL, resp.StatusCode)
	}
	entries, err := DecodeSnapshot(resp.Body, maxEntries, maxBody)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return entries, nil
}
