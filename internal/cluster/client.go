package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// ForwardHeader marks a request as already forwarded once. A node
// receiving it serves the request locally no matter what its own
// ownership view says, so a transient topology disagreement (e.g. two
// nodes configured with different peer lists by mistake) degrades to one
// extra hop instead of a forwarding loop.
const ForwardHeader = "X-Pipesched-Forward"

// SnapshotPath is the peer-only endpoint streaming a node's hot cache
// entries in the snapshot codec.
const SnapshotPath = "/v1/peer/snapshot"

const (
	// DefaultForwardTimeout bounds one owner-forward round trip.
	DefaultForwardTimeout = 2 * time.Second
	// DefaultBackoff is how long a peer stays marked down after a
	// transport failure before forwards are attempted again.
	DefaultBackoff = 5 * time.Second
)

// ForwardResult is the owner's answer to a proxied request.
type ForwardResult struct {
	Status int    // HTTP status from the owner
	XCache string // the owner's X-Cache disposition ("hit", "miss", ...)
	Body   []byte // the rendered response body, verbatim
}

// Client talks to the fleet: it forwards requests to key owners and
// fetches warm-up snapshots, tracking per-peer health so that a dead or
// slow peer costs at most one timeout per backoff window. All methods
// are safe for concurrent use.
type Client struct {
	hc      *http.Client
	timeout time.Duration
	backoff time.Duration
	// downUntil[i] holds the unix-nano instant until which peer i is
	// considered down; 0 (or any past instant) means available. Plain
	// atomics: a racing write merely re-marks the same failing peer.
	downUntil []atomic.Int64
}

// NewClient builds a client for a fleet of n peers. timeout bounds each
// forward round trip and backoff the down window after a transport
// failure; non-positive values select the defaults. The underlying
// http.Client reuses connections per peer, so steady-state forwarding
// costs no handshakes.
func NewClient(n int, timeout, backoff time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	return &Client{
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout:   timeout,
		backoff:   backoff,
		downUntil: make([]atomic.Int64, n),
	}
}

// Timeout returns the per-forward round-trip bound.
func (c *Client) Timeout() time.Duration { return c.timeout }

// Available reports whether peer i is currently believed reachable: a
// peer is down only inside the backoff window after a transport failure.
func (c *Client) Available(i int) bool {
	return time.Now().UnixNano() >= c.downUntil[i].Load()
}

// MarkDown records a transport failure against peer i, suppressing
// forwards to it for the backoff window.
func (c *Client) MarkDown(i int) {
	c.downUntil[i].Store(time.Now().Add(c.backoff).UnixNano())
}

// markUp clears peer i's down window after a successful round trip, so
// one lucky probe restores the peer immediately instead of waiting out
// stale backoff.
func (c *Client) markUp(i int) {
	c.downUntil[i].Store(0)
}

// Forward proxies one request body to peer i at baseURL+path and returns
// the owner's full answer. The round trip is bounded by the client's
// forward timeout (intersected with ctx); a transport failure or timeout
// marks the peer down and returns an error — the caller degrades to a
// local solve. A completed HTTP exchange of any status marks the peer up
// and returns its result for the caller to interpret.
func (c *Client) Forward(ctx context.Context, i int, baseURL, path string, body []byte) (ForwardResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return ForwardResult{}, fmt.Errorf("cluster: forward request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.MarkDown(i)
		return ForwardResult{}, fmt.Errorf("cluster: forward to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.MarkDown(i)
		return ForwardResult{}, fmt.Errorf("cluster: forward read from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return ForwardResult{Status: resp.StatusCode, XCache: resp.Header.Get("X-Cache"), Body: b}, nil
}

// FetchSnapshot streams peer i's hot cache entries and decodes them
// under the given bounds (see DecodeSnapshot). The round trip is bounded
// by ctx alone — warm-up tolerates longer pulls than a forward — but a
// transport failure still marks the peer down.
func (c *Client) FetchSnapshot(ctx context.Context, i int, baseURL string, maxEntries, maxBody int) ([]Entry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+SnapshotPath, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.MarkDown(i)
		return nil, fmt.Errorf("cluster: snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot from %s: status %d", baseURL, resp.StatusCode)
	}
	entries, err := DecodeSnapshot(resp.Body, maxEntries, maxBody)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot from %s: %w", baseURL, err)
	}
	c.markUp(i)
	return entries, nil
}
