package cluster

// Self-healing membership: the fleet's shared view of who is in it.
//
// A Members value is an epoch-stamped peer list. Nodes exchange these
// views continuously — a joining node pulls one from any seed
// (GET /v1/peer/members), announces itself to everyone it learned about
// (POST /v1/peer/join), and every node keeps pulling a random live
// peer's view on a gossip tick — and fold them together with Merge.
// The merge rules are chosen so the fleet converges without
// coordination:
//
//   - A higher epoch wins wholesale. Operator actions (a peers-file
//     reload, SIGHUP) bump the epoch by one, which is the only way a
//     peer is ever *removed* from the propagated view: shrinkage must
//     be an explicit decision, never an artifact of merge order.
//   - Equal epochs take the union of both lists. Joins therefore
//     commute — two nodes joining concurrently through different seeds
//     never erase each other — and a partially-propagated join heals in
//     one exchange.
//   - A lower epoch changes nothing (the remote node is behind; it will
//     adopt our view on its next exchange).
//
// One rule lives above Merge, in the serving layer: a node never adopts
// a view that excludes itself. A view without us is either an operator
// decommissioning this node (then an operator is driving and will stop
// the process) or a foreign fleet's view; adopting it would make this
// node compute ownership no request of ours can ever route under.
// Instead the node keeps its own view, counts the rejection, and the
// disagreement stays visible in /metrics on both sides until an
// operator resolves it.
//
// Every view hashes to a compact stamp ("epoch:hash16"), carried on all
// peer exchanges in the X-Pipesched-Membership header. Two nodes with
// the same view always produce the same stamp (lists are normalised and
// sorted), so a stamp mismatch is exactly a membership disagreement —
// surfaced as a counter plus a convergence age in /metrics, visible
// before a divergent fleet misroutes anything.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"sort"
)

// Members is one node's epoch-stamped view of the fleet membership.
type Members struct {
	// Epoch counts operator membership decisions. Gossip merges never
	// bump it; peers-file reloads do.
	Epoch uint64
	// Peers is the member base-URL list, normalised, deduplicated and
	// sorted — the same canonical form Topology uses, so equal views
	// are equal slices.
	Peers []string
}

// NewMembers canonicalises a peer list into a Members view: every URL
// is normalised (entries that fail normalisation are dropped — the
// caller's NewTopology is the strict gate), duplicates collapse, and
// the result is sorted.
func NewMembers(epoch uint64, peers []string) Members {
	norm := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		u, err := normalizeURL(p)
		if err != nil || seen[u] {
			continue
		}
		seen[u] = true
		norm = append(norm, u)
	}
	sort.Strings(norm)
	return Members{Epoch: epoch, Peers: norm}
}

// Equal reports whether two views are identical (same epoch, same
// canonical peer list).
func (m Members) Equal(other Members) bool {
	if m.Epoch != other.Epoch || len(m.Peers) != len(other.Peers) {
		return false
	}
	for i := range m.Peers {
		if m.Peers[i] != other.Peers[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the view includes url (normalised before the
// lookup; a malformed url is in no view).
func (m Members) Contains(url string) bool {
	u, err := normalizeURL(url)
	if err != nil {
		return false
	}
	i := sort.SearchStrings(m.Peers, u)
	return i < len(m.Peers) && m.Peers[i] == u
}

// Merge folds a remote view into this one under the fleet merge rules
// (higher epoch wins, equal epochs union, lower epochs are ignored) and
// reports whether the result differs from m. The remote list is
// re-canonicalised, so a misbehaving peer cannot smuggle an unsorted or
// duplicated list past the stamp.
func (m Members) Merge(other Members) (merged Members, changed bool) {
	switch {
	case other.Epoch > m.Epoch:
		merged = NewMembers(other.Epoch, other.Peers)
	case other.Epoch < m.Epoch:
		return m, false
	default:
		merged = NewMembers(m.Epoch, append(append([]string{}, m.Peers...), other.Peers...))
	}
	return merged, !merged.Equal(m)
}

// Hash digests the view: FNV-1a over the epoch and every peer URL. Two
// nodes with the same view hash identically on any platform.
func (m Members) Hash() uint64 {
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], m.Epoch)
	h := uint64(fnvOffset)
	for _, b := range eb {
		h = (h ^ uint64(b)) * fnvPrime
	}
	for _, p := range m.Peers {
		for j := 0; j < len(p); j++ {
			h = (h ^ uint64(p[j])) * fnvPrime
		}
		h = (h ^ uint64('\n')) * fnvPrime
	}
	return h
}

// Stamp renders the view's identity as carried in the
// X-Pipesched-Membership header: "<epoch>:<hash16>". Equal views stamp
// equal; any difference in epoch or peer list changes the stamp.
func (m Members) Stamp() string {
	return fmt.Sprintf("%d:%016x", m.Epoch, m.Hash())
}

// GetMembers pulls a node's membership view over plain HTTP. It is the
// transport under both Client.FetchMembers and the pre-topology seed
// bootstrap (which runs before any Topology or Client exists).
func GetMembers(ctx context.Context, hc *http.Client, baseURL string) (Members, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+MembersPath, nil)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members request: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Members{}, fmt.Errorf("cluster: members from %s: status %d", baseURL, resp.StatusCode)
	}
	m, err := DecodeMembers(resp.Body, MaxMembers)
	if err != nil {
		return Members{}, fmt.Errorf("cluster: members from %s: %w", baseURL, err)
	}
	return m, nil
}

// BootstrapMembers resolves a node's initial fleet view from a seed
// list: each seed is asked in turn for its live member list and the
// first answer wins, merged (equal-epoch union) with the advertise URL
// so the result always includes the joining node itself. All seeds
// unreachable is an error — the caller retries; a node started with
// -join has no other source of truth.
func BootstrapMembers(ctx context.Context, seeds []string, advertise string, hc *http.Client) (Members, error) {
	if _, err := normalizeURL(advertise); err != nil {
		return Members{}, fmt.Errorf("cluster: advertise %q: %w", advertise, err)
	}
	var errs []error
	for _, s := range seeds {
		u, err := normalizeURL(s)
		if err != nil {
			errs = append(errs, fmt.Errorf("cluster: seed %q: %w", s, err))
			continue
		}
		m, err := GetMembers(ctx, hc, u)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		return NewMembers(m.Epoch, append(m.Peers, advertise)), nil
	}
	if len(errs) == 0 {
		return Members{}, errors.New("cluster: empty seed list")
	}
	return Members{}, errors.Join(errs...)
}
