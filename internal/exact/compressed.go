package exact

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pipesched/internal/mapping"
)

// This file holds the speed-class-compressed dynamic program that powers
// every exact solver of the package.
//
// Processors enter the cost model only through their speed, so two
// processors of equal speed are interchangeable in any interval mapping:
// swapping them changes neither the period nor the latency. The DP
// therefore does not need to know *which* processors an optimal prefix
// consumed — only *how many of each speed class*. The 2^p used-set bitmask
// of the textbook formulation collapses into a mixed-radix vector of
// per-class usage counts, shrinking the state space from 2^p to
// ∏_k (c_k+1) where c_k is the size of class k. A homogeneous 14-processor
// platform drops from 16384 states to 15; platforms far beyond the old
// 14-processor ceiling become exactly solvable whenever their class
// structure is small.
//
// The workspace (value table, backpointers, per-class cycle tables,
// transition lists) lives in a pooled arena so that repeated solves —
// portfolio races, batch sweeps, the service daemon's cache-miss path, and
// the incremental probing of MinPeriodUnderLatency/ParetoFront — are
// allocation-free in steady state.

// objective selects which recurrence the arena runs.
type objective int

const (
	// objMinPeriod minimises the maximum interval cycle-time.
	objMinPeriod objective = iota
	// objMinLatency minimises the summed latency contributions among
	// mappings whose every cycle-time stays under a period bound.
	objMinLatency
)

const inf = math.MaxFloat64

// slack absorbs float noise on constraint boundaries, matching the
// historical behaviour of the solvers.
const slack = 1 + 1e-12

// backpointer packing: prev<<classShift | class. The guard bounds the
// class count by log2(MaxStates) < 32, so five bits always suffice for
// the class and the stage index keeps 26 bits — far beyond any pipeline.
const classShift = 5

// arena is one reusable compressed-DP workspace bound to an evaluator.
// Acquire with acquireArena, return with release; between the two, the
// candidate set and all tables are reused across any number of runs.
type arena struct {
	ev *mapping.Evaluator
	// boundTo survives release: when a pooled arena is re-acquired for
	// the evaluator it last served — the portfolio/batch/service steady
	// state — bind skips rebuilding the cost tables, transitions and
	// candidate set entirely. Holding the pointer keeps that evaluator
	// reachable, so pointer identity cannot be recycled under us; the
	// pool's GC-driven eviction bounds how long it is pinned.
	boundTo *mapping.Evaluator
	n       int // pipeline stages
	classes int // distinct speed classes K
	states  int // ∏_k (c_k+1)

	csize []int // csize[k] = c_k
	radix []int // radix[k] = ∏_{j<k} (c_j+1): stride of class k's digit

	// Per-class interval costs, indexed k*n*n + (e-1)*n + (d-1) — end-major,
	// so the DP's inner loop over interval starts reads consecutively.
	// cycle is the full cycle-time of [d..e] on class k; lat is its
	// latency contribution (input + compute terms).
	cycle []float64
	lat   []float64

	// Transitions: for every state S, the classes whose usage digit is
	// non-zero, with the predecessor state S - radix[k]. Built once per
	// bind, shared by all runs.
	transOff   []int32 // transOff[S]..transOff[S+1] indexes the two below
	transClass []int8
	transPrev  []int32
	usage      []int16 // usage[S] = Σ_k digit_k(S): processors consumed by S

	f    []float64 // DP values, states×(n+1) state-major: f[S*(n+1)+i]
	back []int32   // packed backpointers, same shape

	cands  []float64          // sorted unique candidate cycle-times (lazy)
	ivbuf  []mapping.Interval // reconstruction scratch
	cursor []int              // per-class member cursor for reconstruction

	// Usage-level buckets for the wave-parallel runner (parallel.go),
	// built lazily on first parallel engagement and cached per binding:
	// levelStates groups every state by its usage count (ascending state
	// id within a level), levelOff[u]..levelOff[u+1] delimits level u.
	levelsFor   *mapping.Evaluator
	levelOff    []int32
	levelStates []int32
	levelCur    []int32 // bucket cursors, scratch for buildLevels

	// maxCycle (set at bind) is the largest entry of the cycle table;
	// period bounds at or above it cannot prune any candidate, so
	// latency runs under such bounds skip the feasStart precompute.
	// feasStart (set per run by prepareFeasStart) holds, per (class k,
	// interval end i), the first interval start whose cycle meets the
	// run's period bound: because interval work shrinks as the start
	// advances, infeasible starts cluster at the front, and the DP's
	// inner loops skip straight past them. nil disables the prune.
	maxCycle  float64
	feasStart []int32

	// Saturated-bound memo: a latency run whose period bound is at or
	// above maxCycle can never reject a candidate, so every such bound
	// yields the identical table — the unconstrained latency optimum.
	// The serving path sees this constantly ("minimise latency, period
	// up to anything"), so the winning cell is remembered per binding
	// and the whole table fill is skipped while the table is still the
	// one that memo was taken from. Any other run overwrites f/back and
	// clears the memo (reconstruction walks back, so the memo is only
	// valid while the table it indexes into survives).
	freeValid bool
	freeBest  float64
	freeState int
	freeOK    bool
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// acquireArena takes an arena from the pool and binds it to ev: sizes the
// tables (reusing previous capacity), precomputes the per-class cycle and
// latency tables and the state transition lists. The caller must release
// the arena when done.
func acquireArena(ev *mapping.Evaluator) *arena {
	a := arenaPool.Get().(*arena)
	a.bind(ev)
	return a
}

func (a *arena) release() {
	a.ev = nil
	arenaPool.Put(a)
}

// resize returns s with length n, reusing its backing array when large
// enough so that pooled arenas stop allocating once warm.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (a *arena) bind(ev *mapping.Evaluator) {
	a.ev = ev
	if a.boundTo == ev {
		return // tables, transitions and candidates are still valid
	}
	a.boundTo = nil // invalidate while rebinding: a panic must not leave stale tables claimed
	a.levelsFor = nil
	a.feasStart = a.feasStart[:0]
	a.freeValid = false
	plat := ev.Platform()
	a.n = ev.Pipeline().Stages()
	a.classes = plat.SpeedClasses()
	a.csize = resize(a.csize, a.classes)
	a.radix = resize(a.radix, a.classes)
	states := 1
	for k := 0; k < a.classes; k++ {
		a.csize[k] = plat.ClassSize(k)
		a.radix[k] = states
		states *= a.csize[k] + 1
	}
	a.states = states

	n, nn := a.n, a.n*a.n
	a.cycle = resize(a.cycle, a.classes*nn)
	a.lat = resize(a.lat, a.classes*nn)
	a.maxCycle = 0
	for k := 0; k < a.classes; k++ {
		for d := 1; d <= n; d++ {
			for e := d; e <= n; e++ {
				in, comp, out := ev.ClassCycleParts(d, e, k)
				idx := k*nn + (e-1)*n + (d - 1)
				cy := in + comp + out
				a.cycle[idx] = cy
				a.lat[idx] = in + comp
				if cy > a.maxCycle {
					a.maxCycle = cy
				}
			}
		}
	}

	a.transOff = resize(a.transOff, states+1)
	a.transClass = a.transClass[:0]
	a.transPrev = a.transPrev[:0]
	a.usage = resize(a.usage, states)
	a.usage[0] = 0
	for S := 0; S < states; S++ {
		a.transOff[S] = int32(len(a.transClass))
		for k := 0; k < a.classes; k++ {
			if (S/a.radix[k])%(a.csize[k]+1) > 0 {
				a.transClass = append(a.transClass, int8(k))
				a.transPrev = append(a.transPrev, int32(S-a.radix[k]))
			}
		}
		if S > 0 {
			// Every transition consumes one processor: derive the usage
			// count from any predecessor (the last recorded one).
			a.usage[S] = a.usage[a.transPrev[len(a.transPrev)-1]] + 1
		}
	}
	a.transOff[states] = int32(len(a.transClass))

	a.f = resize(a.f, (n+1)*states)
	a.back = resize(a.back, (n+1)*states)
	a.cursor = resize(a.cursor, a.classes)
	a.cands = a.cands[:0]
	a.boundTo = ev
}

// candidates returns the sorted, deduplicated set of interval cycle-times
// — the only values an optimal period can take. It is computed on first
// use and cached on the arena, so the bound probing of
// MinPeriodUnderLatency and ParetoFront pays for it exactly once.
func (a *arena) candidates() []float64 {
	if len(a.cands) > 0 {
		return a.cands
	}
	n, nn := a.n, a.n*a.n
	for k := 0; k < a.classes; k++ {
		for d := 1; d <= n; d++ {
			for e := d; e <= n; e++ {
				a.cands = append(a.cands, a.cycle[k*nn+(e-1)*n+(d-1)])
			}
		}
	}
	sort.Float64s(a.cands)
	uniq := a.cands[:1]
	for _, c := range a.cands[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	a.cands = uniq
	return a.cands
}

// run executes the compressed DP and returns the optimal objective value
// with its winning final state. For objMinLatency, periodBound is the
// admissibility cutoff on individual cycle-times (slack already applied by
// the caller). ok is false when no complete assignment is feasible.
//
// The recurrence itself lives in computeRow; run only picks the schedule.
// Small state spaces stay on the serial, allocation-free path; above
// ParallelStateThreshold the usage-level wave runner (parallel.go) splits
// each level's states across worker strata. Both schedules produce the
// same table cell by cell, so the choice is invisible to every caller.
func (a *arena) run(obj objective, periodBound float64) (best float64, bestState int, ok bool) {
	saturated := obj == objMinLatency && periodBound >= a.maxCycle
	if saturated && a.freeValid {
		dpStats.memoHits.Add(1)
		return a.freeBest, a.freeState, a.freeOK
	}
	if w := a.parallelWorkers(); w > 1 {
		dpStats.parallelRuns.Add(1)
		dpStats.strata.Add(uint64(w))
		best, bestState, ok = a.runParallel(obj, periodBound, w)
	} else {
		dpStats.serialRuns.Add(1)
		best, bestState, ok = a.runSerial(obj, periodBound)
	}
	if saturated {
		a.freeValid = true
		a.freeBest, a.freeState, a.freeOK = best, bestState, ok
	}
	return best, bestState, ok
}

// prepareFeasStart arms (or disarms) the feasibility-prefix prune for
// one run. Latency runs reject every candidate whose interval cycle
// exceeds the period bound; since the cost tables are start-consecutive
// and interval work only shrinks as the start advances, the rejected
// starts cluster at the front of each (class, end) row. One scan over
// the cycle table records where the first admissible start sits, and
// every state's inner loop then begins there instead of re-rejecting the
// same prefix — the skipped candidates are exactly those the unpruned
// scan discards, so values, backpointers and tie-breaking are untouched.
// Bounds that cannot prune (period runs, or a bound at or above every
// cycle entry) disable the prune outright so the common loose-bound
// solve pays a single comparison. Disarming truncates rather than nils
// the slice: probing runs alternate armed and disarmed bounds, and the
// backing array must survive the disarmed runs for the armed ones to
// stay allocation-free.
func (a *arena) prepareFeasStart(obj objective, periodBound float64) {
	if obj != objMinLatency || periodBound >= a.maxCycle {
		a.feasStart = a.feasStart[:0]
		return
	}
	n, nn := a.n, a.n*a.n
	a.feasStart = resize(a.feasStart, a.classes*n)
	for k := 0; k < a.classes; k++ {
		for i := 1; i <= n; i++ {
			base := k*nn + (i-1)*n
			fs := i // empty admissible window unless a start qualifies
			for kk := 0; kk < i; kk++ {
				if a.cycle[base+kk] <= periodBound {
					fs = kk
					break
				}
			}
			a.feasStart[k*n+i-1] = int32(fs)
		}
	}
}

// runSerial visits states in ascending id order (every predecessor
// S-radix[k] is smaller than S, so its row is complete when read).
func (a *arena) runSerial(obj objective, periodBound float64) (best float64, bestState int, ok bool) {
	a.freeValid = false // the fill below overwrites the table the memo indexes into
	a.prepareFeasStart(obj, periodBound)
	n, states := a.n, a.states
	f := a.f
	f[0] = 0 // f[S=0][i=0]; the rest of row 0 is unreachable
	for i := 1; i <= n; i++ {
		f[i] = inf
	}
	for S := 1; S < states; S++ {
		a.computeRow(obj, periodBound, S)
	}
	return a.merge()
}

// merge scans the complete table for the winning final state. The scan
// runs in ascending state order with strict improvement, so ties resolve
// to the smallest state id no matter which schedule filled the table.
func (a *arena) merge() (best float64, bestState int, ok bool) {
	n := a.n
	best = inf
	for S := 1; S < a.states; S++ {
		if v := a.f[S*(n+1)+n]; v < best {
			best, bestState = v, S
		}
	}
	return best, bestState, best < inf
}

// computeRow fills every cell of state S's row — values and backpointers —
// reading only predecessor rows (usage level one below S's), which makes
// it safe for any schedule that completes a usage level before starting
// the next.
//
// f[S][i] is the best value over all assignments of stages 1..i to
// intervals consuming exactly the class-usage vector S; the recurrence
// closes the last interval [kk+1..i] on one processor of any class with a
// spare member. Both f and the cost tables are laid out so the inner loop
// over the last interval's start walks consecutive memory — on
// portfolio-sized instances this cache behaviour, not arithmetic, bounds
// the solve. Candidate enumeration order per cell (transition, then
// start) is unchanged from the row-major formulation, so ties break
// identically and results stay bit-identical.
func (a *arena) computeRow(obj objective, periodBound float64, S int) {
	n, nn := a.n, a.n*a.n
	f, back := a.f, a.back
	rowS := S * (n + 1)
	// A state consuming c processors covers at least c one-stage
	// intervals, so f[S][i] is unreachable (inf) below i = c, and every
	// predecessor row is unreachable below kk = c-1: the cell loops start
	// there, skipping cells the row-major formulation scanned only to
	// reject; the cells below are written unreachable directly.
	cS := int(a.usage[S])
	lim := cS
	if lim > n+1 {
		lim = n + 1
	}
	for i := 0; i < lim; i++ {
		f[rowS+i] = inf
	}
	if cS > n {
		return
	}
	t0, t1 := a.transOff[S], a.transOff[S+1]
	for i := cS; i <= n; i++ {
		bestV := inf
		var bestB int32
		for t := t0; t < t1; t++ {
			k := int(a.transClass[t])
			prevRow := int(a.transPrev[t]) * (n + 1)
			base := k*nn + (i-1)*n // cycle[k][kk+1..i] is at base + kk
			lo := cS - 1
			if obj == objMinPeriod {
				// Sliced windows over the candidate range let the
				// compiler drop the per-element bounds checks of the
				// three parallel tables — on portfolio-sized instances
				// this loop is the whole solve.
				fprev := f[prevRow+lo : prevRow+i]
				cyc := a.cycle[base+lo : base+i]
				for j, fv := range fprev {
					if fv == inf {
						continue
					}
					cand := fv
					if cy := cyc[j]; cy > cand {
						cand = cy
					}
					if cand < bestV {
						bestV = cand
						bestB = int32(lo+j)<<classShift | int32(k)
					}
				}
			} else {
				if len(a.feasStart) > 0 {
					// Skip the scanned-infeasible prefix: every entry
					// before feasStart was rejected against this run's
					// period bound by prepareFeasStart, exactly as the
					// in-loop check below would reject it.
					if fs := int(a.feasStart[k*n+i-1]); fs > lo {
						lo = fs
					}
				}
				fprev := f[prevRow+lo : prevRow+i]
				cyc := a.cycle[base+lo : base+i]
				lats := a.lat[base+lo : base+i]
				for j, fv := range fprev {
					if fv == inf {
						continue
					}
					if cyc[j] > periodBound {
						continue
					}
					if cand := fv + lats[j]; cand < bestV {
						bestV = cand
						bestB = int32(lo+j)<<classShift | int32(k)
					}
				}
			}
		}
		f[rowS+i] = bestV
		if bestV < inf {
			back[rowS+i] = bestB
		}
	}
}

// latencyTail is the constant trailing δ_n/b term of the latency: adding
// it to a run(objMinLatency, ·) value yields the mapping's latency, bit
// for bit equal to Evaluator.Latency on the reconstructed mapping.
func (a *arena) latencyTail() float64 {
	_, _, out := a.ev.ClassCycleParts(a.n, a.n, 0)
	return out
}

// reconstruct walks the backpointers from the winning final state and
// materialises the interval list, assigning concrete processor ids: the
// classes recorded along the path take their members in increasing-id
// order, which is valid because same-speed processors are interchangeable.
// The returned slice aliases the arena's scratch buffer — it is consumed
// by mapping.New (which copies) before the next run.
func (a *arena) reconstruct(bestState int) []mapping.Interval {
	a.ivbuf = a.ivbuf[:0]
	i, S := a.n, bestState
	for i > 0 {
		b := a.back[S*(a.n+1)+i]
		prev := int(b >> classShift)
		class := int(b & (1<<classShift - 1))
		a.ivbuf = append(a.ivbuf, mapping.Interval{Start: prev + 1, End: i, Proc: class})
		S -= a.radix[class]
		i = prev
	}
	// Reverse into pipeline order, then swap class indices for member ids.
	for l, r := 0, len(a.ivbuf)-1; l < r; l, r = l+1, r-1 {
		a.ivbuf[l], a.ivbuf[r] = a.ivbuf[r], a.ivbuf[l]
	}
	for k := range a.cursor {
		a.cursor[k] = 0
	}
	plat := a.ev.Platform()
	for j := range a.ivbuf {
		class := a.ivbuf[j].Proc
		a.ivbuf[j].Proc = plat.ClassMember(class, a.cursor[class])
		a.cursor[class]++
	}
	return a.ivbuf
}

// result turns a winning state into a Result with validated mapping and
// recomputed metrics.
func (a *arena) result(bestState int) (Result, error) {
	m, err := mapping.New(a.ev.Pipeline(), a.ev.Platform(), a.reconstruct(bestState))
	if err != nil {
		return Result{}, fmt.Errorf("exact: reconstructed invalid mapping: %w", err)
	}
	return Result{Mapping: m, Metrics: a.ev.Metrics(m)}, nil
}
