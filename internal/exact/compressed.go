package exact

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pipesched/internal/mapping"
)

// This file holds the speed-class-compressed dynamic program that powers
// every exact solver of the package.
//
// Processors enter the cost model only through their speed, so two
// processors of equal speed are interchangeable in any interval mapping:
// swapping them changes neither the period nor the latency. The DP
// therefore does not need to know *which* processors an optimal prefix
// consumed — only *how many of each speed class*. The 2^p used-set bitmask
// of the textbook formulation collapses into a mixed-radix vector of
// per-class usage counts, shrinking the state space from 2^p to
// ∏_k (c_k+1) where c_k is the size of class k. A homogeneous 14-processor
// platform drops from 16384 states to 15; platforms far beyond the old
// 14-processor ceiling become exactly solvable whenever their class
// structure is small.
//
// The workspace (value table, backpointers, per-class cycle tables,
// transition lists) lives in a pooled arena so that repeated solves —
// portfolio races, batch sweeps, the service daemon's cache-miss path, and
// the incremental probing of MinPeriodUnderLatency/ParetoFront — are
// allocation-free in steady state.

// objective selects which recurrence the arena runs.
type objective int

const (
	// objMinPeriod minimises the maximum interval cycle-time.
	objMinPeriod objective = iota
	// objMinLatency minimises the summed latency contributions among
	// mappings whose every cycle-time stays under a period bound.
	objMinLatency
)

const inf = math.MaxFloat64

// slack absorbs float noise on constraint boundaries, matching the
// historical behaviour of the solvers.
const slack = 1 + 1e-12

// backpointer packing: prev<<classShift | class. The guard bounds the
// class count by log2(MaxStates) < 32, so five bits always suffice for
// the class and the stage index keeps 26 bits — far beyond any pipeline.
const classShift = 5

// arena is one reusable compressed-DP workspace bound to an evaluator.
// Acquire with acquireArena, return with release; between the two, the
// candidate set and all tables are reused across any number of runs.
type arena struct {
	ev *mapping.Evaluator
	// boundTo survives release: when a pooled arena is re-acquired for
	// the evaluator it last served — the portfolio/batch/service steady
	// state — bind skips rebuilding the cost tables, transitions and
	// candidate set entirely. Holding the pointer keeps that evaluator
	// reachable, so pointer identity cannot be recycled under us; the
	// pool's GC-driven eviction bounds how long it is pinned.
	boundTo *mapping.Evaluator
	n       int // pipeline stages
	classes int // distinct speed classes K
	states  int // ∏_k (c_k+1)

	csize []int // csize[k] = c_k
	radix []int // radix[k] = ∏_{j<k} (c_j+1): stride of class k's digit

	// Per-class interval costs, indexed k*n*n + (e-1)*n + (d-1) — end-major,
	// so the DP's inner loop over interval starts reads consecutively.
	// cycle is the full cycle-time of [d..e] on class k; lat is its
	// latency contribution (input + compute terms).
	cycle []float64
	lat   []float64

	// Transitions: for every state S, the classes whose usage digit is
	// non-zero, with the predecessor state S - radix[k]. Built once per
	// bind, shared by all runs.
	transOff   []int32 // transOff[S]..transOff[S+1] indexes the two below
	transClass []int8
	transPrev  []int32
	usage      []int16 // usage[S] = Σ_k digit_k(S): processors consumed by S

	f    []float64 // DP values, states×(n+1) state-major: f[S*(n+1)+i]
	back []int32   // packed backpointers, same shape

	cands  []float64          // sorted unique candidate cycle-times (lazy)
	ivbuf  []mapping.Interval // reconstruction scratch
	cursor []int              // per-class member cursor for reconstruction
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// acquireArena takes an arena from the pool and binds it to ev: sizes the
// tables (reusing previous capacity), precomputes the per-class cycle and
// latency tables and the state transition lists. The caller must release
// the arena when done.
func acquireArena(ev *mapping.Evaluator) *arena {
	a := arenaPool.Get().(*arena)
	a.bind(ev)
	return a
}

func (a *arena) release() {
	a.ev = nil
	arenaPool.Put(a)
}

// resize returns s with length n, reusing its backing array when large
// enough so that pooled arenas stop allocating once warm.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (a *arena) bind(ev *mapping.Evaluator) {
	a.ev = ev
	if a.boundTo == ev {
		return // tables, transitions and candidates are still valid
	}
	a.boundTo = nil // invalidate while rebinding: a panic must not leave stale tables claimed
	plat := ev.Platform()
	a.n = ev.Pipeline().Stages()
	a.classes = plat.SpeedClasses()
	a.csize = resize(a.csize, a.classes)
	a.radix = resize(a.radix, a.classes)
	states := 1
	for k := 0; k < a.classes; k++ {
		a.csize[k] = plat.ClassSize(k)
		a.radix[k] = states
		states *= a.csize[k] + 1
	}
	a.states = states

	n, nn := a.n, a.n*a.n
	a.cycle = resize(a.cycle, a.classes*nn)
	a.lat = resize(a.lat, a.classes*nn)
	for k := 0; k < a.classes; k++ {
		for d := 1; d <= n; d++ {
			for e := d; e <= n; e++ {
				in, comp, out := ev.ClassCycleParts(d, e, k)
				idx := k*nn + (e-1)*n + (d - 1)
				a.cycle[idx] = in + comp + out
				a.lat[idx] = in + comp
			}
		}
	}

	a.transOff = resize(a.transOff, states+1)
	a.transClass = a.transClass[:0]
	a.transPrev = a.transPrev[:0]
	a.usage = resize(a.usage, states)
	a.usage[0] = 0
	for S := 0; S < states; S++ {
		a.transOff[S] = int32(len(a.transClass))
		for k := 0; k < a.classes; k++ {
			if (S/a.radix[k])%(a.csize[k]+1) > 0 {
				a.transClass = append(a.transClass, int8(k))
				a.transPrev = append(a.transPrev, int32(S-a.radix[k]))
			}
		}
		if S > 0 {
			// Every transition consumes one processor: derive the usage
			// count from any predecessor (the last recorded one).
			a.usage[S] = a.usage[a.transPrev[len(a.transPrev)-1]] + 1
		}
	}
	a.transOff[states] = int32(len(a.transClass))

	a.f = resize(a.f, (n+1)*states)
	a.back = resize(a.back, (n+1)*states)
	a.cursor = resize(a.cursor, a.classes)
	a.cands = a.cands[:0]
	a.boundTo = ev
}

// candidates returns the sorted, deduplicated set of interval cycle-times
// — the only values an optimal period can take. It is computed on first
// use and cached on the arena, so the bound probing of
// MinPeriodUnderLatency and ParetoFront pays for it exactly once.
func (a *arena) candidates() []float64 {
	if len(a.cands) > 0 {
		return a.cands
	}
	n, nn := a.n, a.n*a.n
	for k := 0; k < a.classes; k++ {
		for d := 1; d <= n; d++ {
			for e := d; e <= n; e++ {
				a.cands = append(a.cands, a.cycle[k*nn+(e-1)*n+(d-1)])
			}
		}
	}
	sort.Float64s(a.cands)
	uniq := a.cands[:1]
	for _, c := range a.cands[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	a.cands = uniq
	return a.cands
}

// run executes the compressed DP and returns the optimal objective value
// with its winning final state. For objMinLatency, periodBound is the
// admissibility cutoff on individual cycle-times (slack already applied by
// the caller). ok is false when no complete assignment is feasible.
//
// f[S][i] is the best value over all assignments of stages 1..i to
// intervals consuming exactly the class-usage vector S; the recurrence
// closes the last interval [kk+1..i] on one processor of any class with a
// spare member. States are visited outermost (every predecessor S-radix[k]
// is smaller than S, so its row is complete) and both f and the cost
// tables are laid out so the inner loop over the last interval's start
// walks consecutive memory — on portfolio-sized instances this cache
// behaviour, not arithmetic, bounds the solve. Candidate enumeration
// order per cell (transition, then start) is unchanged from the row-major
// formulation, so ties break identically and results stay bit-identical.
func (a *arena) run(obj objective, periodBound float64) (best float64, bestState int, ok bool) {
	n, states, nn := a.n, a.states, a.n*a.n
	f, back := a.f, a.back
	for i := range f {
		f[i] = inf
	}
	f[0] = 0 // f[S=0][i=0]; every other (S, i) starts unreachable
	for S := 1; S < states; S++ {
		rowS := S * (n + 1)
		t0, t1 := a.transOff[S], a.transOff[S+1]
		// A state consuming c processors covers at least c one-stage
		// intervals, so f[S][i] is unreachable (inf) below i = c, and
		// every predecessor row is unreachable below kk = c-1: both loops
		// start there, skipping cells the row-major formulation scanned
		// only to reject.
		cS := int(a.usage[S])
		if cS > n {
			continue
		}
		for i := cS; i <= n; i++ {
			bestV := inf
			var bestB int32
			for t := t0; t < t1; t++ {
				k := int(a.transClass[t])
				prevRow := int(a.transPrev[t]) * (n + 1)
				base := k*nn + (i-1)*n // cycle[k][kk+1..i] is at base + kk
				if obj == objMinPeriod {
					for kk := cS - 1; kk < i; kk++ {
						fv := f[prevRow+kk]
						if fv == inf {
							continue
						}
						cand := fv
						if cy := a.cycle[base+kk]; cy > cand {
							cand = cy
						}
						if cand < bestV {
							bestV = cand
							bestB = int32(kk)<<classShift | int32(k)
						}
					}
				} else {
					for kk := cS - 1; kk < i; kk++ {
						fv := f[prevRow+kk]
						if fv == inf {
							continue
						}
						if a.cycle[base+kk] > periodBound {
							continue
						}
						if cand := fv + a.lat[base+kk]; cand < bestV {
							bestV = cand
							bestB = int32(kk)<<classShift | int32(k)
						}
					}
				}
			}
			if bestV < inf {
				f[rowS+i] = bestV
				back[rowS+i] = bestB
			}
		}
	}
	best = inf
	for S := 1; S < states; S++ {
		if v := f[S*(n+1)+n]; v < best {
			best, bestState = v, S
		}
	}
	return best, bestState, best < inf
}

// latencyTail is the constant trailing δ_n/b term of the latency: adding
// it to a run(objMinLatency, ·) value yields the mapping's latency, bit
// for bit equal to Evaluator.Latency on the reconstructed mapping.
func (a *arena) latencyTail() float64 {
	_, _, out := a.ev.ClassCycleParts(a.n, a.n, 0)
	return out
}

// reconstruct walks the backpointers from the winning final state and
// materialises the interval list, assigning concrete processor ids: the
// classes recorded along the path take their members in increasing-id
// order, which is valid because same-speed processors are interchangeable.
// The returned slice aliases the arena's scratch buffer — it is consumed
// by mapping.New (which copies) before the next run.
func (a *arena) reconstruct(bestState int) []mapping.Interval {
	a.ivbuf = a.ivbuf[:0]
	i, S := a.n, bestState
	for i > 0 {
		b := a.back[S*(a.n+1)+i]
		prev := int(b >> classShift)
		class := int(b & (1<<classShift - 1))
		a.ivbuf = append(a.ivbuf, mapping.Interval{Start: prev + 1, End: i, Proc: class})
		S -= a.radix[class]
		i = prev
	}
	// Reverse into pipeline order, then swap class indices for member ids.
	for l, r := 0, len(a.ivbuf)-1; l < r; l, r = l+1, r-1 {
		a.ivbuf[l], a.ivbuf[r] = a.ivbuf[r], a.ivbuf[l]
	}
	for k := range a.cursor {
		a.cursor[k] = 0
	}
	plat := a.ev.Platform()
	for j := range a.ivbuf {
		class := a.ivbuf[j].Proc
		a.ivbuf[j].Proc = plat.ClassMember(class, a.cursor[class])
		a.cursor[class]++
	}
	return a.ivbuf
}

// result turns a winning state into a Result with validated mapping and
// recomputed metrics.
func (a *arena) result(bestState int) (Result, error) {
	m, err := mapping.New(a.ev.Pipeline(), a.ev.Platform(), a.reconstruct(bestState))
	if err != nil {
		return Result{}, fmt.Errorf("exact: reconstructed invalid mapping: %w", err)
	}
	return Result{Mapping: m, Metrics: a.ev.Metrics(m)}, nil
}
