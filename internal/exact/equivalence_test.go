package exact

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"pipesched/internal/mapping"
	"pipesched/internal/pipeline"
	"pipesched/internal/platform"
)

// dupSpeedEvaluator draws an instance whose processor speeds repeat on
// purpose: at most maxClasses distinct values over up to maxP processors,
// so the compressed DP genuinely exercises multi-member classes.
func dupSpeedEvaluator(r *rand.Rand, maxN, maxP, maxClasses int) *mapping.Evaluator {
	n := 1 + r.Intn(maxN)
	p := 1 + r.Intn(maxP)
	works := make([]float64, n)
	for i := range works {
		works[i] = float64(1 + r.Intn(20))
	}
	deltas := make([]float64, n+1)
	for i := range deltas {
		deltas[i] = float64(r.Intn(30))
	}
	classes := 1 + r.Intn(maxClasses)
	pool := make([]float64, classes)
	for i := range pool {
		pool[i] = float64(1 + r.Intn(20))
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = pool[r.Intn(classes)]
	}
	return mapping.NewEvaluator(pipeline.MustNew(works, deltas), platform.MustNew(speeds, 10))
}

// The central equivalence property of the compressed engine: on instances
// with duplicated speeds, the compressed DP, the legacy bitmask DP and
// exhaustive enumeration must agree on every solver entry point. Objective
// values are compared for exact equality — the compressed DP minimises
// over the same multiset of bit-identical interval costs as the bitmask
// formulation, so there is no tolerance to grant.
func TestCompressedMatchesLegacyAndBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := dupSpeedEvaluator(r, 6, 5, 3)

		// MinPeriod: compressed ≡ legacy ≡ brute.
		comp, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		leg, err := legacyMinPeriod(ev)
		if err != nil {
			return false
		}
		if comp.Metrics.Period != leg.Metrics.Period {
			t.Logf("seed %d: MinPeriod compressed %v != legacy %v", seed, comp.Metrics.Period, leg.Metrics.Period)
			return false
		}
		brute := BruteMinPeriod(ev)
		if math.Abs(comp.Metrics.Period-brute.Metrics.Period) > 1e-9 {
			return false
		}
		// The witness mapping must realise the claimed metrics.
		if ev.Period(comp.Mapping) != comp.Metrics.Period {
			return false
		}

		// MinLatencyUnderPeriod at a random bound between the optimum and
		// the single-processor period.
		single := mapping.SingleProcessor(ev.Pipeline(), ev.Platform(), ev.Platform().Fastest())
		maxP := ev.Period(single)
		bound := comp.Metrics.Period + r.Float64()*(maxP-comp.Metrics.Period)
		compL, errC := MinLatencyUnderPeriod(ev, bound)
		legL, errL := legacyMinLatencyUnderPeriod(ev, bound)
		if (errC == nil) != (errL == nil) {
			return false
		}
		if errC == nil {
			if compL.Metrics.Latency != legL.Metrics.Latency {
				t.Logf("seed %d: MinLatencyUnderPeriod compressed %v != legacy %v",
					seed, compL.Metrics.Latency, legL.Metrics.Latency)
				return false
			}
			best := math.Inf(1)
			Enumerate(ev, func(m *mapping.Mapping) {
				met := ev.Metrics(m)
				if met.Period <= bound*(1+1e-12) && met.Latency < best {
					best = met.Latency
				}
			})
			if math.Abs(best-compL.Metrics.Latency) > 1e-9 {
				return false
			}
		}

		// MinPeriodUnderLatency at a random bound above the optimum.
		_, optLat := ev.OptimalLatency()
		latBound := optLat * (1 + r.Float64())
		compP, errC := MinPeriodUnderLatency(ev, latBound)
		legP, errL := legacyMinPeriodUnderLatency(ev, latBound)
		if (errC == nil) != (errL == nil) {
			return false
		}
		if errC == nil && compP.Metrics.Period != legP.Metrics.Period {
			t.Logf("seed %d: MinPeriodUnderLatency compressed %v != legacy %v",
				seed, compP.Metrics.Period, legP.Metrics.Period)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The Pareto fronts of the two engines must coincide point for point.
func TestCompressedParetoFrontMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ev := dupSpeedEvaluator(r, 5, 4, 2)
		comp, err := ParetoFront(ev)
		if err != nil {
			return false
		}
		leg, err := legacyParetoFront(ev)
		if err != nil {
			return false
		}
		if len(comp) != len(leg) {
			t.Logf("seed %d: front sizes %d vs %d", seed, len(comp), len(leg))
			return false
		}
		for i := range comp {
			if comp[i].Metrics.Period != leg[i].Metrics.Period ||
				comp[i].Metrics.Latency != leg[i].Metrics.Latency {
				t.Logf("seed %d: point %d: %+v vs %+v", seed, i, comp[i].Metrics, leg[i].Metrics)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// A platform beyond the legacy 14-processor ceiling but with few speed
// classes must now solve exactly — and still agree with brute-force
// enumeration on a short pipeline.
func TestExactSolveBeyondLegacyProcessorCeiling(t *testing.T) {
	speeds := make([]float64, 20) // p = 20 > 14, 4 speed classes of 5
	for i := range speeds {
		speeds[i] = float64(1 + i%4)
	}
	plat := platform.MustNew(speeds, 10)
	if got, want := plat.ClassStateSpace(), 6*6*6*6; got != want {
		t.Fatalf("ClassStateSpace = %d, want %d", got, want)
	}
	if !Eligible(plat) {
		t.Fatal("20-processor 4-class platform should be Eligible")
	}
	if err := legacyGuard(mapping.NewEvaluator(pipeline.MustNew([]float64{1}, []float64{0, 0}), plat)); err == nil {
		t.Fatal("legacy guard should reject 20 processors")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		works := make([]float64, n)
		for i := range works {
			works[i] = float64(1 + r.Intn(50))
		}
		deltas := make([]float64, n+1)
		for i := range deltas {
			deltas[i] = float64(r.Intn(20))
		}
		ev := mapping.NewEvaluator(pipeline.MustNew(works, deltas), plat)
		res, err := MinPeriod(ev)
		if err != nil {
			return false
		}
		brute := BruteMinPeriod(ev)
		return math.Abs(res.Metrics.Period-brute.Metrics.Period) < 1e-9 &&
			ev.Period(res.Mapping) == res.Metrics.Period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// The pooled arenas must be safe to use from many goroutines at once:
// concurrent solves on one shared evaluator all reach the same optimum.
// Run under -race in CI.
func TestPooledArenaConcurrentSolves(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ev := dupSpeedEvaluator(r, 6, 6, 3)
	want, err := MinPeriod(ev)
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(ev)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := MinPeriod(ev)
				if err != nil {
					errs <- err
					return
				}
				if res.Metrics.Period != want.Metrics.Period {
					t.Errorf("concurrent MinPeriod %v, want %v", res.Metrics.Period, want.Metrics.Period)
					return
				}
				pf, err := ParetoFront(ev)
				if err != nil {
					errs <- err
					return
				}
				if len(pf) != len(front) {
					t.Errorf("concurrent ParetoFront size %d, want %d", len(pf), len(front))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
